#include <sstream>

#include <gtest/gtest.h>

#include "objalloc/workload/adversary.h"
#include "objalloc/workload/ensemble.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/multi_object.h"
#include "objalloc/workload/trace_io.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::workload {
namespace {

using model::Schedule;

TEST(UniformWorkloadTest, DeterministicPerSeed) {
  UniformWorkload uniform(0.5);
  Schedule a = uniform.Generate(6, 100, 42);
  Schedule b = uniform.Generate(6, 100, 42);
  EXPECT_EQ(a, b);
  Schedule c = uniform.Generate(6, 100, 43);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(UniformWorkloadTest, RespectsLengthAndRange) {
  UniformWorkload uniform(0.5);
  Schedule schedule = uniform.Generate(4, 250, 7);
  EXPECT_EQ(schedule.size(), 250u);
  for (const auto& request : schedule.requests()) {
    EXPECT_GE(request.processor, 0);
    EXPECT_LT(request.processor, 4);
  }
}

TEST(UniformWorkloadTest, ReadRatioApproximatelyHolds) {
  UniformWorkload uniform(0.8);
  Schedule schedule = uniform.Generate(6, 4000, 11);
  double ratio =
      static_cast<double>(schedule.CountReads()) / schedule.size();
  EXPECT_NEAR(ratio, 0.8, 0.03);
}

TEST(UniformWorkloadTest, ExtremesAreAllReadsOrAllWrites) {
  UniformWorkload reads(1.0), writes(0.0);
  EXPECT_EQ(reads.Generate(4, 50, 3).CountWrites(), 0u);
  EXPECT_EQ(writes.Generate(4, 50, 3).CountReads(), 0u);
}

TEST(HotspotWorkloadTest, SkewConcentratesTraffic) {
  HotspotWorkload hotspot(1.2, 0.7);
  Schedule schedule = hotspot.Generate(8, 4000, 5);
  std::vector<int> counts(8, 0);
  for (const auto& request : schedule.requests()) {
    ++counts[static_cast<size_t>(request.processor)];
  }
  EXPECT_GT(counts[0], counts[7] * 2);
}

TEST(RegimeWorkloadTest, HotSetShiftsBetweenRegimes) {
  RegimeWorkload regime(100, 2, 0.8);
  Schedule schedule = regime.Generate(12, 400, 17);
  // Count issuers per regime; each regime should be dominated by few
  // processors.
  for (int r = 0; r < 4; ++r) {
    std::vector<int> counts(12, 0);
    for (int k = r * 100; k < (r + 1) * 100; ++k) {
      ++counts[static_cast<size_t>(schedule[static_cast<size_t>(k)]
                                       .processor)];
    }
    std::sort(counts.rbegin(), counts.rend());
    EXPECT_GT(counts[0] + counts[1], 70) << "regime " << r;
  }
}

TEST(SaNemesisTest, AllReadsFromOneOutsideProcessor) {
  SaNemesis nemesis(2);
  Schedule schedule = nemesis.Generate(6, 80, 9);
  ASSERT_EQ(schedule.size(), 80u);
  EXPECT_EQ(schedule.CountWrites(), 0u);
  util::ProcessorId reader = schedule[0].processor;
  EXPECT_GE(reader, 2);  // outside the initial scheme {0,1}
  for (const auto& request : schedule.requests()) {
    EXPECT_EQ(request.processor, reader);
  }
}

TEST(DaNemesisTest, RoundsOfDistinctReadersThenCoreWrite) {
  DaNemesis nemesis(2, 4);
  Schedule schedule = nemesis.Generate(8, 15, 3);
  // Expect r r r r w0 r r r r w0 ...
  EXPECT_TRUE(schedule[0].is_read());
  EXPECT_TRUE(schedule[4].is_write());
  EXPECT_EQ(schedule[4].processor, 0);
  EXPECT_TRUE(schedule[9].is_write());
  // Readers within a round are distinct outsiders.
  EXPECT_NE(schedule[0].processor, schedule[1].processor);
  EXPECT_GE(schedule[0].processor, 2);
}

TEST(WriteChurnAdversaryTest, WritersRotateOutsideScheme) {
  WriteChurnAdversary churn(2);
  Schedule schedule = churn.Generate(6, 60, 21);
  for (const auto& request : schedule.requests()) {
    EXPECT_GE(request.processor, 2);
  }
  EXPECT_GT(schedule.CountWrites(), schedule.CountReads());
}

TEST(EnsembleTest, WorstCaseEnsembleIsNonEmptyAndUsable) {
  auto generators = WorstCaseEnsemble(2);
  EXPECT_GE(generators.size(), 5u);
  for (const auto& generator : generators) {
    Schedule schedule = generator->Generate(6, 30, 1);
    EXPECT_EQ(schedule.size(), 30u) << generator->name();
  }
}

TEST(EnsembleTest, AverageCaseEnsembleIsUsable) {
  auto generators = AverageCaseEnsemble();
  EXPECT_GE(generators.size(), 3u);
  for (const auto& generator : generators) {
    EXPECT_EQ(generator->Generate(6, 30, 1).size(), 30u);
  }
}

// ---------------------------------------------------------------- Traces

TEST(TraceIoTest, RoundTripThroughStream) {
  UniformWorkload uniform(0.6);
  Schedule original = uniform.Generate(9, 300, 77);
  std::stringstream buffer;
  WriteTrace(original, buffer);
  auto restored = ReadTrace(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, original);
}

TEST(TraceIoTest, RejectsMissingHeader) {
  std::stringstream buffer("r1 w2\n");
  EXPECT_FALSE(ReadTrace(buffer).ok());
}

TEST(TraceIoTest, RejectsBadHeader) {
  std::stringstream buffer("processors -3\nr1\n");
  EXPECT_FALSE(ReadTrace(buffer).ok());
}

TEST(TraceIoTest, RejectsOutOfRangeRequest) {
  std::stringstream buffer("processors 3\nr7\n");
  EXPECT_FALSE(ReadTrace(buffer).ok());
}

TEST(TraceIoTest, SkipsComments) {
  std::stringstream buffer("# a comment\nprocessors 3\n# another\nr1 w2\n");
  auto restored = ReadTrace(buffer);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->ToString(), "r1 w2");
}

TEST(TraceIoTest, FileRoundTrip) {
  UniformWorkload uniform(0.5);
  Schedule original = uniform.Generate(5, 64, 123);
  std::string path = ::testing::TempDir() + "/objalloc_trace_test.txt";
  ASSERT_TRUE(WriteTraceFile(original, path).ok());
  auto restored = ReadTraceFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, original);
}

TEST(TraceIoTest, MissingFileIsNotFound) {
  auto result = ReadTraceFile("/nonexistent/objalloc.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}


TEST(MultiObjectTraceIoTest, RoundTripThroughStream) {
  MultiObjectOptions options;
  options.length = 200;
  MultiObjectTrace original = GenerateMultiObjectTrace(options, 5);
  std::stringstream buffer;
  WriteMultiObjectTrace(original, buffer);
  auto restored = ReadMultiObjectTrace(buffer);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_processors, original.num_processors);
  EXPECT_EQ(restored->num_objects, original.num_objects);
  ASSERT_EQ(restored->events.size(), original.events.size());
  for (size_t k = 0; k < original.events.size(); ++k) {
    EXPECT_EQ(restored->events[k].object, original.events[k].object);
    EXPECT_EQ(restored->events[k].request, original.events[k].request);
  }
}

TEST(MultiObjectTraceIoTest, RejectsMissingHeader) {
  std::stringstream buffer("3 r1\n");
  EXPECT_FALSE(ReadMultiObjectTrace(buffer).ok());
}

TEST(MultiObjectTraceIoTest, RejectsObjectOutOfRange) {
  std::stringstream buffer(
      "multiobject processors 4 objects 2\n7 r1\n");
  EXPECT_FALSE(ReadMultiObjectTrace(buffer).ok());
}

TEST(MultiObjectTraceIoTest, RejectsBadRequestToken) {
  std::stringstream buffer(
      "multiobject processors 4 objects 2\n1 x1\n");
  EXPECT_FALSE(ReadMultiObjectTrace(buffer).ok());
}

TEST(MultiObjectTraceIoTest, ErrorsCarryLineNumbers) {
  // The malformed line is line 4 (comment and blank lines still count).
  std::stringstream buffer(
      "# header comment\nmultiobject processors 4 objects 2\n1 r1\n1 r9\n");
  auto result = ReadMultiObjectTrace(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().ToString();
}

TEST(MultiObjectTraceIoTest, RejectsTruncatedEventLine) {
  // An object id with no request token is malformed, not silently skipped.
  std::stringstream buffer("multiobject processors 4 objects 2\n1\n");
  auto result = ReadMultiObjectTrace(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos)
      << result.status().ToString();
}

TEST(MultiObjectTraceIoTest, RejectsTrailingTokens) {
  std::stringstream buffer(
      "multiobject processors 4 objects 2\n1 r1 extra\n");
  auto result = ReadMultiObjectTrace(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos)
      << result.status().ToString();
}

TEST(MultiObjectTraceIoTest, RejectsHeaderWithTrailingTokens) {
  std::stringstream buffer(
      "multiobject processors 4 objects 2 junk\n1 r1\n");
  EXPECT_FALSE(ReadMultiObjectTrace(buffer).ok());
}

TEST(TraceIoTest, ScheduleErrorsCarryLineNumbers) {
  std::stringstream buffer("processors 3\nr1 w2\nr1 q9\n");
  auto result = ReadTrace(buffer);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().ToString();
}

TEST(MultiObjectTraceIoTest, FileRoundTrip) {
  MultiObjectOptions options;
  options.length = 64;
  MultiObjectTrace original = GenerateMultiObjectTrace(options, 9);
  std::string path = ::testing::TempDir() + "/objalloc_multi_trace.txt";
  ASSERT_TRUE(WriteMultiObjectTraceFile(original, path).ok());
  auto restored = ReadMultiObjectTraceFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->events.size(), original.events.size());
}

}  // namespace
}  // namespace objalloc::workload
