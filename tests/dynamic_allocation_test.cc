#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/legality.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

TEST(DynamicAllocationTest, SplitsInitialSchemeIntoFAndP) {
  DynamicAllocation da;
  da.Reset(6, ProcessorSet{0, 1, 2});
  EXPECT_EQ(da.core_set(), (ProcessorSet{0, 1}));
  EXPECT_EQ(da.floating_processor(), 2);
  EXPECT_EQ(da.scheme(), (ProcessorSet{0, 1, 2}));
}

TEST(DynamicAllocationTest, DataProcessorReadsLocally) {
  DynamicAllocation da;
  da.Reset(5, ProcessorSet{0, 1});
  Decision d = da.Step(Request::Read(0));
  EXPECT_EQ(d.execution_set, ProcessorSet{0});
  EXPECT_FALSE(d.saving);
  EXPECT_EQ(da.scheme(), (ProcessorSet{0, 1}));
}

TEST(DynamicAllocationTest, OutsideReaderJoinsViaSavingRead) {
  DynamicAllocation da;
  da.Reset(5, ProcessorSet{0, 1});  // F = {0}, p = 1
  Decision d = da.Step(Request::Read(3));
  EXPECT_TRUE(d.saving);
  EXPECT_EQ(d.execution_set, ProcessorSet{0});  // served by F
  EXPECT_TRUE(da.scheme().Contains(3));
  EXPECT_TRUE(da.JoinListOf(0).Contains(3));
}

TEST(DynamicAllocationTest, SecondReadByJoinerIsLocal) {
  DynamicAllocation da;
  da.Reset(5, ProcessorSet{0, 1});
  da.Step(Request::Read(3));
  Decision d = da.Step(Request::Read(3));
  EXPECT_FALSE(d.saving);
  EXPECT_EQ(d.execution_set, ProcessorSet{3});
}

TEST(DynamicAllocationTest, CoreWriteTargetsFPlusP) {
  DynamicAllocation da;
  da.Reset(5, ProcessorSet{0, 1});  // F = {0}, p = 1
  EXPECT_EQ(da.Step(Request::Write(0)).execution_set, (ProcessorSet{0, 1}));
  EXPECT_EQ(da.Step(Request::Write(1)).execution_set, (ProcessorSet{0, 1}));
}

TEST(DynamicAllocationTest, OutsideWriteTargetsFPlusWriter) {
  DynamicAllocation da;
  da.Reset(5, ProcessorSet{0, 1});
  EXPECT_EQ(da.Step(Request::Write(4)).execution_set, (ProcessorSet{0, 4}));
  EXPECT_EQ(da.scheme(), (ProcessorSet{0, 4}));
}

TEST(DynamicAllocationTest, WriteClearsJoinLists) {
  DynamicAllocation da;
  da.Reset(6, ProcessorSet{0, 1});
  da.Step(Request::Read(3));
  da.Step(Request::Read(4));
  EXPECT_EQ(da.JoinedSinceLastWrite(), (ProcessorSet{3, 4}));
  da.Step(Request::Write(0));
  EXPECT_TRUE(da.JoinedSinceLastWrite().Empty());
  EXPECT_EQ(da.scheme(), (ProcessorSet{0, 1}));
}

TEST(DynamicAllocationTest, InvalidationCostCountsJoinersAndFloater) {
  // F = {0}, p = 1. Two joiners then a write from inside F: the write's
  // invalidations cover both joiners (p stays in the new scheme).
  DynamicAllocation da;
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(6, "r3 r4 w0").value();
  RunResult result = RunWithCost(da, sc, schedule, ProcessorSet{0, 1});
  // r3: ctrl 1, data 1, io 2 (read + save). r4 same. w0: data 1 (to p),
  // io 2, ctrl 2 (invalidate 3 and 4).
  EXPECT_EQ(result.breakdown.control_messages, 4);
  EXPECT_EQ(result.breakdown.data_messages, 3);
  EXPECT_EQ(result.breakdown.io_ops, 6);
}

TEST(DynamicAllocationTest, OutsideWriterIsNotInvalidated) {
  // A joiner that then writes must not receive an invalidation.
  DynamicAllocation da;
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(6, "r3 w3").value();
  RunResult result = RunWithCost(da, sc, schedule, ProcessorSet{0, 1});
  // r3: ctrl 1, data 1, io 2. w3: X = {0,3}; Y = {0,1,3};
  // invalidate Y\X\{3} = {1}: ctrl 1; data 1 (to 0); io 2.
  EXPECT_EQ(result.breakdown.control_messages, 2);
  EXPECT_EQ(result.breakdown.data_messages, 2);
  EXPECT_EQ(result.breakdown.io_ops, 4);
}

TEST(DynamicAllocationTest, FMembersAlwaysHoldTheObject) {
  DynamicAllocation da;
  Schedule schedule =
      Schedule::Parse(8, "r5 w6 r7 w0 r3 w7 r2 w1 r6 w4").value();
  auto allocation = RunAlgorithm(da, schedule, ProcessorSet{0, 1, 2});
  ProcessorSet f{0, 1};
  for (size_t i = 0; i <= allocation.size(); ++i) {
    EXPECT_TRUE(f.IsSubsetOf(allocation.SchemeAt(i))) << "at " << i;
  }
}

TEST(DynamicAllocationTest, ProducesLegalTAvailableSchedules) {
  for (int t = 2; t <= 4; ++t) {
    DynamicAllocation da;
    Schedule schedule =
        Schedule::Parse(7, "r5 r6 w2 r3 w3 r0 r1 w5 r4 r4 w1 r6").value();
    auto allocation = RunAlgorithm(da, schedule, ProcessorSet::FirstN(t));
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, t).ok()) << t;
  }
}

TEST(DynamicAllocationTest, RequiresAtLeastTwoInitialCopies) {
  DynamicAllocation da;
  EXPECT_DEATH(da.Reset(4, ProcessorSet{0}), "t >= 2");
}

TEST(DynamicAllocationTest, RoundRobinSpreadsJoinLists) {
  DynamicAllocation da;
  da.Reset(8, ProcessorSet{0, 1, 2});  // F = {0,1}
  da.Step(Request::Read(4));
  da.Step(Request::Read(5));
  // Two saving-reads served by different F members.
  EXPECT_EQ(da.JoinListOf(0).Size() + da.JoinListOf(1).Size(), 2);
  EXPECT_EQ(da.JoinListOf(0).Size(), 1);
  EXPECT_EQ(da.JoinListOf(1).Size(), 1);
}

}  // namespace
}  // namespace objalloc::core
