#include <sstream>

#include <gtest/gtest.h>

#include "objalloc/analysis/region_map.h"

namespace objalloc::analysis {
namespace {

RegionSweepOptions TinySweep(bool mobile) {
  RegionSweepOptions options;
  options.mobile = mobile;
  options.cd_values = {0.1, 0.6, 1.5};
  options.cc_values = {0.05, 0.4};
  options.ratio.num_processors = 6;
  options.ratio.schedule_length = 60;
  options.ratio.seeds_per_generator = 2;
  return options;
}

TEST(RegionMapTest, SkipsInvalidHalfPlane) {
  RegionSweepOptions options = TinySweep(false);
  auto points = SweepRegions(options);
  for (const RegionPoint& point : points) {
    EXPECT_LE(point.cc, point.cd);
  }
  // 3x2 grid minus the (0.1, 0.4) point where cc > cd.
  EXPECT_EQ(points.size(), 5u);
}

TEST(RegionMapTest, StationarySweepAgreesWithAnalyticRegions) {
  auto points = SweepRegions(TinySweep(false));
  for (const RegionPoint& point : points) {
    if (point.analytic == Region::kSaSuperior ||
        point.analytic == Region::kDaSuperior) {
      EXPECT_EQ(point.empirical, point.analytic)
          << "at cd=" << point.cd << " cc=" << point.cc;
    }
  }
}

TEST(RegionMapTest, MobileSweepIsAllDaSuperior) {
  auto points = SweepRegions(TinySweep(true));
  for (const RegionPoint& point : points) {
    EXPECT_EQ(point.analytic, Region::kDaSuperior);
    EXPECT_EQ(point.empirical, Region::kDaSuperior)
        << "at cd=" << point.cd << " cc=" << point.cc;
  }
}

TEST(RegionMapTest, TableHasOneRowPerPoint) {
  RegionSweepOptions options = TinySweep(false);
  auto points = SweepRegions(options);
  util::Table table = RegionTable(points);
  EXPECT_EQ(table.num_rows(), points.size());
  std::ostringstream os;
  table.WriteAligned(os);
  EXPECT_NE(os.str().find("empirical_winner"), std::string::npos);
  EXPECT_EQ(os.str().find(" NO"), std::string::npos)
      << "inconsistent point:\n" << os.str();
}

TEST(RegionMapTest, AnalyticMapShowsAllRegions) {
  std::string map = RenderAnalyticMap(RegionSweepOptions::PaperGrid(false));
  EXPECT_NE(map.find('S'), std::string::npos);
  EXPECT_NE(map.find('D'), std::string::npos);
  EXPECT_NE(map.find('?'), std::string::npos);
  EXPECT_NE(map.find('x'), std::string::npos);
}

TEST(RegionMapTest, EmpiricalMapRenders) {
  RegionSweepOptions options = TinySweep(false);
  auto points = SweepRegions(options);
  std::string map = RenderEmpiricalMap(options, points);
  EXPECT_NE(map.find('x'), std::string::npos);
  EXPECT_TRUE(map.find('S') != std::string::npos ||
              map.find('D') != std::string::npos);
}

}  // namespace
}  // namespace objalloc::analysis
