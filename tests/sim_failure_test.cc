// Failure-injection tests: DA degrades to quorum consensus and keeps
// serving fresh data; strict ROWA SA blocks writes while any scheme member
// is down; recovered processors never serve stale copies.

#include <gtest/gtest.h>

#include "objalloc/sim/simulator.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::sim {
namespace {

using model::Schedule;
using util::ProcessorSet;

SimulatorOptions MakeOptions(ProtocolKind kind, int n, ProcessorSet scheme) {
  SimulatorOptions options;
  options.protocol = kind;
  options.num_processors = n;
  options.initial_scheme = scheme;
  return options;
}

// ------------------------------------------------------------------- SA

TEST(SaFailureTest, ReadFailsOverToAnotherMember) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 5, ProcessorSet{0, 1}));
  sim.Crash(0);
  RequestOutcome outcome = sim.SubmitRead(3);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.stale);
  // Two request messages (one dropped at the crashed member) + one reply.
  EXPECT_EQ(sim.metrics().control_messages, 2);
  EXPECT_EQ(sim.metrics().dropped_messages, 1);
}

TEST(SaFailureTest, ReadUnavailableWhenAllMembersDown) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 5, ProcessorSet{0, 1}));
  sim.Crash(0);
  sim.Crash(1);
  EXPECT_FALSE(sim.SubmitRead(3).ok);
  EXPECT_EQ(sim.metrics().unavailable_requests, 1);
}

TEST(SaFailureTest, WriteBlocksWhileAnyMemberIsDown) {
  // Strict read-one-write-all cannot commit without every copy.
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 5, ProcessorSet{0, 1}));
  sim.Crash(1);
  EXPECT_FALSE(sim.SubmitWrite(2, 5).ok);
  EXPECT_EQ(sim.metrics().unavailable_requests, 1);
  // The aborted version must not be visible anywhere.
  RequestOutcome outcome = sim.SubmitRead(3);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.version, 0);
  EXPECT_FALSE(outcome.stale);
}

TEST(SaFailureTest, WritesResumeAfterRecovery) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 5, ProcessorSet{0, 1}));
  sim.Crash(1);
  EXPECT_FALSE(sim.SubmitWrite(2, 5).ok);
  sim.Recover(1);
  EXPECT_TRUE(sim.SubmitWrite(2, 6).ok);
  RequestOutcome outcome = sim.SubmitRead(4);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.value, 6u);
}

// ------------------------------------------------------------------- DA

TEST(DaFailureTest, WriteTriggersFailoverAndStillCommits) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 5, ProcessorSet{0, 1}));
  sim.Crash(0);  // the single member of F
  RequestOutcome outcome = sim.SubmitWrite(2, 42);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(sim.metrics().failovers, 1);
  // Later reads (now in quorum mode) see the committed version.
  RequestOutcome read = sim.SubmitRead(3);
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.value, 42u);
  EXPECT_FALSE(read.stale);
}

TEST(DaFailureTest, OutsideReadTriggersFailoverWhenFIsDown) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 5, ProcessorSet{0, 1}));
  sim.Crash(0);
  RequestOutcome outcome = sim.SubmitRead(4);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.version, 0);  // the initial object, via p's copy
  EXPECT_FALSE(outcome.stale);
  EXPECT_EQ(sim.metrics().failovers, 1);
}

TEST(DaFailureTest, NoStaleReadsAcrossFailoverAndRecovery) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 6, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitRead(3).ok);      // 3 joins the scheme
  EXPECT_TRUE(sim.SubmitWrite(4, 1).ok);  // normal-mode write
  sim.Crash(0);
  EXPECT_TRUE(sim.SubmitWrite(5, 2).ok);  // failover
  sim.Recover(0);
  // The recovered F member must not serve its stale (version 1) copy.
  RequestOutcome outcome = sim.SubmitRead(0);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.version, 2);
  EXPECT_FALSE(outcome.stale);
  EXPECT_EQ(sim.metrics().stale_reads, 0);
}

TEST(DaFailureTest, UnavailableWhenMajorityIsDown) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 5, ProcessorSet{0, 1}));
  sim.Crash(0);
  EXPECT_TRUE(sim.SubmitWrite(2, 1).ok);  // failover, quorum 3/5 alive: 4 up
  sim.Crash(1);
  sim.Crash(2);
  // Only 2 of 5 alive: below the majority write quorum.
  EXPECT_FALSE(sim.SubmitWrite(3, 2).ok);
  EXPECT_GT(sim.metrics().unavailable_requests, 0);
}

TEST(DaFailureTest, ServiceContinuesUnderRollingFailures) {
  workload::UniformWorkload uniform(0.7);
  Schedule schedule = uniform.Generate(7, 120, 5);
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(20, 0));
  plan.events.push_back(FailureEvent::Recover(60, 0));
  plan.events.push_back(FailureEvent::Crash(80, 3));
  plan.events.push_back(FailureEvent::Recover(110, 3));

  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 7, ProcessorSet{0, 1}));
  auto report = sim.RunSchedule(schedule, plan);
  EXPECT_EQ(report.stale_reads, 0);
  // Requests from crashed processors are unavailable; everything else is
  // served (a single failover, majority always alive).
  EXPECT_GT(report.served, 100);
  EXPECT_EQ(report.served + report.unavailable,
            static_cast<int64_t>(schedule.size()));
}

TEST(DaFailureTest, RequestsFromCrashedProcessorsAreRejected) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 5, ProcessorSet{0, 1}));
  sim.Crash(3);
  EXPECT_FALSE(sim.SubmitRead(3).ok);
  EXPECT_FALSE(sim.SubmitWrite(3, 1).ok);
  EXPECT_EQ(sim.metrics().unavailable_requests, 2);
}

// --------------------------------------------------------------- Quorum

TEST(QuorumFailureTest, ToleratesMinorityCrashes) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitWrite(2, 7).ok);
  sim.Crash(0);
  sim.Crash(2);
  RequestOutcome outcome = sim.SubmitRead(4);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.value, 7u);
  EXPECT_FALSE(outcome.stale);
  EXPECT_TRUE(sim.SubmitWrite(3, 8).ok);
}

TEST(QuorumFailureTest, BlocksBelowQuorum) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1}));
  sim.Crash(0);
  sim.Crash(1);
  sim.Crash(2);
  EXPECT_FALSE(sim.SubmitWrite(3, 1).ok);
  EXPECT_FALSE(sim.SubmitRead(4).ok);
}

TEST(QuorumFailureTest, FreshAfterCrashRecoveryChurn) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitWrite(2, 1).ok);
  sim.Crash(2);
  EXPECT_TRUE(sim.SubmitWrite(3, 2).ok);
  sim.Recover(2);
  sim.Crash(3);
  RequestOutcome outcome = sim.SubmitRead(2);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.value, 2u);
  EXPECT_EQ(sim.metrics().stale_reads, 0);
}

TEST(FailurePlanTest, Validation) {
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(5, 1));
  plan.events.push_back(FailureEvent::Recover(3, 1));  // out of order
  EXPECT_FALSE(plan.IsValid(4));
  plan.events.clear();
  plan.events.push_back(FailureEvent::Crash(1, 7));
  EXPECT_FALSE(plan.IsValid(4));  // processor out of range
  plan.events.clear();
  plan.events.push_back(FailureEvent::Crash(1, 2));
  plan.events.push_back(FailureEvent::Recover(4, 2));
  EXPECT_TRUE(plan.IsValid(4));
}

TEST(FailurePlanTest, RejectsDuplicatePairsAndRedundantTransitions) {
  // Duplicate (before_request, processor) pair — even as crash + recover.
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(2, 1));
  plan.events.push_back(FailureEvent::Recover(2, 1));
  EXPECT_FALSE(plan.IsValid(4));

  // Crash of an already-crashed processor.
  plan.events.clear();
  plan.events.push_back(FailureEvent::Crash(1, 0));
  plan.events.push_back(FailureEvent::Crash(3, 0));
  EXPECT_FALSE(plan.IsValid(4));

  // Recover of a processor that never crashed.
  plan.events.clear();
  plan.events.push_back(FailureEvent::Recover(1, 2));
  EXPECT_FALSE(plan.IsValid(4));

  // The same pair at *different* indices is a legal churn sequence.
  plan.events.clear();
  plan.events.push_back(FailureEvent::Crash(1, 2));
  plan.events.push_back(FailureEvent::Recover(3, 2));
  plan.events.push_back(FailureEvent::Crash(5, 2));
  EXPECT_TRUE(plan.IsValid(4));

  // Distinct processors at one index are independent transitions.
  plan.events.clear();
  plan.events.push_back(FailureEvent::Crash(2, 0));
  plan.events.push_back(FailureEvent::Crash(2, 1));
  EXPECT_TRUE(plan.IsValid(4));
}

TEST(FailurePlanTest, NormalizeSortsAndDropsRedundancy) {
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(6, 1));     // out of order
  plan.events.push_back(FailureEvent::Crash(2, 0));
  plan.events.push_back(FailureEvent::Crash(2, 0));     // duplicate pair
  plan.events.push_back(FailureEvent::Recover(4, 2));   // recover-of-live
  plan.events.push_back(FailureEvent::Recover(8, 0));
  plan.events.push_back(FailureEvent::Crash(8, 0));     // dup pair, dropped
  EXPECT_FALSE(plan.IsValid(4));
  plan.Normalize();
  EXPECT_TRUE(plan.IsValid(4));
  ASSERT_EQ(plan.events.size(), 3u);
  EXPECT_EQ(plan.events[0].before_request, 2u);
  EXPECT_EQ(plan.events[0].processor, 0);
  EXPECT_TRUE(plan.events[0].crash);
  EXPECT_EQ(plan.events[1].before_request, 6u);
  EXPECT_EQ(plan.events[1].processor, 1);
  EXPECT_EQ(plan.events[2].before_request, 8u);
  EXPECT_EQ(plan.events[2].processor, 0);
  EXPECT_FALSE(plan.events[2].crash);
  // Normalizing a normalized plan is the identity.
  FailurePlan again = plan;
  again.Normalize();
  ASSERT_EQ(again.events.size(), plan.events.size());
}

TEST(FailurePlanTest, ToFaultScheduleMapsFieldForField) {
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(3, 1));
  plan.events.push_back(FailureEvent::Recover(9, 1));
  plan.events.push_back(FailureEvent::Crash(12, 0));
  const core::FaultSchedule schedule = ToFaultSchedule(plan);
  ASSERT_EQ(schedule.size(), plan.events.size());
  for (size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].before_event, plan.events[i].before_request);
    EXPECT_EQ(schedule[i].processor, plan.events[i].processor);
    EXPECT_EQ(schedule[i].crash, plan.events[i].crash);
  }
  EXPECT_TRUE(core::FaultInjector::ValidateSchedule(schedule, 4).ok());
}

}  // namespace
}  // namespace objalloc::sim
