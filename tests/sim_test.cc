// Failure-free simulator tests, centered on the cross-validation invariant:
// the message-passing implementations of SA and DA must produce exactly the
// control/data/I/O counts that the analytic cost model assigns to the
// allocation schedules the core algorithms produce.

#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/sim/simulator.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::sim {
namespace {

using model::CostBreakdown;
using model::Schedule;
using util::ProcessorSet;

SimulatorOptions MakeOptions(ProtocolKind kind, int n, ProcessorSet scheme) {
  SimulatorOptions options;
  options.protocol = kind;
  options.num_processors = n;
  options.initial_scheme = scheme;
  return options;
}

TEST(SimulatorTest, OptionsValidation) {
  SimulatorOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_processors = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = SimulatorOptions{};
  options.initial_scheme = ProcessorSet{0, 63};
  options.num_processors = 8;
  EXPECT_FALSE(options.Validate().ok());
  options = SimulatorOptions{};
  options.protocol = ProtocolKind::kDynamic;
  options.initial_scheme = ProcessorSet{0};
  EXPECT_FALSE(options.Validate().ok());
}

TEST(SimulatorTest, LocalReadReturnsSeededObject) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 4, ProcessorSet{0, 1}));
  RequestOutcome outcome = sim.SubmitRead(0);
  EXPECT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.stale);
  EXPECT_EQ(outcome.version, 0);
  EXPECT_EQ(sim.metrics().io_ops, 1);
  EXPECT_EQ(sim.metrics().control_messages, 0);
}

TEST(SimulatorTest, RemoteReadCountsRequestIoTransfer) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 4, ProcessorSet{0, 1}));
  RequestOutcome outcome = sim.SubmitRead(3);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(sim.metrics().control_messages, 1);
  EXPECT_EQ(sim.metrics().data_messages, 1);
  EXPECT_EQ(sim.metrics().io_ops, 1);
}

TEST(SimulatorTest, WritesBumpVersionsAndReadsSeeThem) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, 4, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitWrite(2, 777).ok);
  RequestOutcome outcome = sim.SubmitRead(1);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.version, 1);
  EXPECT_EQ(outcome.value, 777u);
  EXPECT_FALSE(outcome.stale);
}

TEST(SimulatorTest, DaSavingReadMakesNextReadLocal) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 5, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitRead(3).ok);
  // First read: 1 ctrl, 1 data, 2 io (source input + save).
  EXPECT_EQ(sim.metrics().control_messages, 1);
  EXPECT_EQ(sim.metrics().data_messages, 1);
  EXPECT_EQ(sim.metrics().io_ops, 2);
  EXPECT_TRUE(sim.SubmitRead(3).ok);
  // Second read: local input only.
  EXPECT_EQ(sim.metrics().io_ops, 3);
  EXPECT_EQ(sim.metrics().control_messages, 1);
}

TEST(SimulatorTest, DaWriteInvalidatesJoiners) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 6, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitRead(3).ok);
  EXPECT_TRUE(sim.SubmitRead(4).ok);
  int64_t ctrl_before = sim.metrics().control_messages;
  EXPECT_TRUE(sim.SubmitWrite(0, 9).ok);
  // w0 (in F): data to p, invalidate joiners 3 and 4: +2 control.
  EXPECT_EQ(sim.metrics().control_messages, ctrl_before + 2);
  // Joiner 3 must now fetch remotely again.
  int64_t data_before = sim.metrics().data_messages;
  EXPECT_TRUE(sim.SubmitRead(3).ok);
  EXPECT_EQ(sim.metrics().data_messages, data_before + 1);
}

TEST(SimulatorTest, FreshnessInvariantOnRandomSchedules) {
  workload::UniformWorkload uniform(0.7);
  for (auto kind : {ProtocolKind::kStatic, ProtocolKind::kDynamic,
                    ProtocolKind::kQuorum}) {
    Simulator sim(MakeOptions(kind, 6, ProcessorSet{0, 1}));
    Schedule schedule = uniform.Generate(6, 150, 99);
    auto report = sim.RunSchedule(schedule);
    EXPECT_EQ(report.served, 150);
    EXPECT_EQ(report.unavailable, 0);
    EXPECT_EQ(report.stale_reads, 0);
  }
}

// --------------------------------------------- Simulator vs cost model

class CrossCheckTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossCheckTest, SaSimulatorMatchesAnalyticBreakdown) {
  workload::UniformWorkload uniform(0.7);
  Schedule schedule = uniform.Generate(7, 200, GetParam());
  ProcessorSet initial{0, 1};

  core::StaticAllocation sa;
  CostBreakdown analytic =
      core::RunWithCost(sa, model::CostModel::StationaryComputing(0.5, 1.0),
                        schedule, initial)
          .breakdown;

  Simulator sim(MakeOptions(ProtocolKind::kStatic, 7, initial));
  auto report = sim.RunSchedule(schedule);
  EXPECT_EQ(report.unavailable, 0);
  EXPECT_EQ(report.stale_reads, 0);
  EXPECT_EQ(report.metrics.ToBreakdown(), analytic);
}

TEST_P(CrossCheckTest, DaSimulatorMatchesAnalyticBreakdown) {
  workload::HotspotWorkload hotspot(0.8, 0.65);
  Schedule schedule = hotspot.Generate(7, 200, GetParam());
  ProcessorSet initial{0, 1, 2};

  core::DynamicAllocation da;
  CostBreakdown analytic =
      core::RunWithCost(da, model::CostModel::StationaryComputing(0.5, 1.0),
                        schedule, initial)
          .breakdown;

  Simulator sim(MakeOptions(ProtocolKind::kDynamic, 7, initial));
  auto report = sim.RunSchedule(schedule);
  EXPECT_EQ(report.unavailable, 0);
  EXPECT_EQ(report.stale_reads, 0);
  EXPECT_EQ(report.metrics.ToBreakdown(), analytic);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossCheckTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(QuorumSimulatorTest, ReadAssemblesQuorumAndFetchesFreshest) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitWrite(2, 5).ok);
  RequestOutcome outcome = sim.SubmitRead(4);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.version, 1);
  EXPECT_EQ(outcome.value, 5u);
  EXPECT_FALSE(outcome.stale);
}

TEST(QuorumSimulatorTest, WriteReachesWriteQuorum) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1}));
  EXPECT_TRUE(sim.SubmitWrite(3, 11).ok);
  // Majority of 5 is 3: the writer plus two propagations.
  EXPECT_EQ(sim.metrics().data_messages, 2);
  EXPECT_EQ(sim.metrics().io_ops, 3);
}

TEST(QuorumSimulatorTest, CustomQuorumSizesAreEnforced) {
  SimulatorOptions options =
      MakeOptions(ProtocolKind::kQuorum, 5, ProcessorSet{0, 1});
  options.quorum.read_quorum = 2;
  options.quorum.write_quorum = 4;
  Simulator sim(options);
  EXPECT_TRUE(sim.SubmitWrite(0, 3).ok);
  EXPECT_EQ(sim.metrics().data_messages, 3);  // w-1 pushes
  EXPECT_TRUE(sim.SubmitRead(4).ok);
}

}  // namespace
}  // namespace objalloc::sim
