// Randomized differential and fault-injection sweeps: cheap fuzzing that
// ties the substrates together.
//   * Differential: the DA/SA protocol simulators against the analytic cost
//     model (count-for-count) across many seeds, sizes, and thresholds.
//   * Failure fuzz: random crash/recover plans that always keep a majority
//     alive must never produce a stale read, and every request is either
//     served or reported unavailable.
//   * Exhaustive OPT cross-check at t = 3 (the opt_test covers t = 2).

#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/sim/simulator.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/uniform.h"

namespace objalloc {
namespace {

using model::ProcessorSet;
using model::Schedule;

TEST(DifferentialFuzzTest, SimulatorMatchesModelAcrossConfigurations) {
  util::Rng rng(0xd1ff);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3 + static_cast<int>(rng.NextBounded(8));  // 3..10
    const int t = 2 + static_cast<int>(rng.NextBounded(
                          static_cast<uint64_t>(n - 2)));     // 2..n-1
    const double read_ratio = 0.2 + 0.7 * rng.NextDouble();
    const bool dynamic = rng.NextBernoulli(0.5);
    workload::UniformWorkload uniform(read_ratio);
    Schedule schedule = uniform.Generate(n, 120, rng.Next());
    ProcessorSet initial = ProcessorSet::FirstN(t);

    model::CostBreakdown analytic;
    if (dynamic) {
      core::DynamicAllocation da;
      analytic = core::RunWithCost(
                     da, model::CostModel::StationaryComputing(0.5, 1.0),
                     schedule, initial)
                     .breakdown;
    } else {
      core::StaticAllocation sa;
      analytic = core::RunWithCost(
                     sa, model::CostModel::StationaryComputing(0.5, 1.0),
                     schedule, initial)
                     .breakdown;
    }

    sim::SimulatorOptions options;
    options.protocol = dynamic ? sim::ProtocolKind::kDynamic
                               : sim::ProtocolKind::kStatic;
    options.num_processors = n;
    options.initial_scheme = initial;
    sim::Simulator simulator(options);
    auto report = simulator.RunSchedule(schedule);
    ASSERT_EQ(report.metrics.ToBreakdown(), analytic)
        << "trial " << trial << " n=" << n << " t=" << t
        << " dynamic=" << dynamic << "\nschedule: " << schedule.ToString();
    ASSERT_EQ(report.stale_reads, 0);
  }
}

TEST(FailureFuzzTest, MajorityAliveMeansNoStaleReadsEver) {
  util::Rng rng(0xfa17);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextBounded(4));  // 5..8
    workload::UniformWorkload uniform(0.6 + 0.3 * rng.NextDouble());
    Schedule schedule = uniform.Generate(n, 150, rng.Next());

    // Random plan: crash/recover events that never take down more than a
    // minority simultaneously.
    sim::FailurePlan plan;
    std::vector<bool> down(static_cast<size_t>(n), false);
    int down_count = 0;
    const int max_down = (n - 1) / 2;
    size_t position = 0;
    while (position < schedule.size()) {
      position += 10 + rng.NextBounded(30);
      if (position >= schedule.size()) break;
      auto p = static_cast<util::ProcessorId>(rng.NextBounded(
          static_cast<uint64_t>(n)));
      if (down[static_cast<size_t>(p)]) {
        plan.events.push_back(sim::FailureEvent::Recover(position, p));
        down[static_cast<size_t>(p)] = false;
        --down_count;
      } else if (down_count < max_down) {
        plan.events.push_back(sim::FailureEvent::Crash(position, p));
        down[static_cast<size_t>(p)] = true;
        ++down_count;
      }
    }

    sim::SimulatorOptions options;
    options.protocol = sim::ProtocolKind::kDynamic;
    options.num_processors = n;
    options.initial_scheme = ProcessorSet{0, 1};
    sim::Simulator simulator(options);
    auto report = simulator.RunSchedule(schedule, plan);
    ASSERT_EQ(report.stale_reads, 0)
        << "trial " << trial << " n=" << n
        << " events=" << plan.events.size();
    ASSERT_EQ(report.served + report.unavailable,
              static_cast<int64_t>(schedule.size()));
  }
}

TEST(FailureFuzzTest, QuorumProtocolUnderTheSamePlans) {
  util::Rng rng(0x9b0b);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 5;
    workload::UniformWorkload uniform(0.7);
    Schedule schedule = uniform.Generate(n, 120, rng.Next());
    sim::FailurePlan plan;
    // One minority crash and one recovery at random positions.
    size_t crash_at = 10 + rng.NextBounded(40);
    size_t recover_at = crash_at + 10 + rng.NextBounded(40);
    auto p = static_cast<util::ProcessorId>(rng.NextBounded(n));
    plan.events.push_back(sim::FailureEvent::Crash(crash_at, p));
    plan.events.push_back(sim::FailureEvent::Recover(recover_at, p));

    sim::SimulatorOptions options;
    options.protocol = sim::ProtocolKind::kQuorum;
    options.num_processors = n;
    options.initial_scheme = ProcessorSet{0, 1};
    sim::Simulator simulator(options);
    auto report = simulator.RunSchedule(schedule, plan);
    ASSERT_EQ(report.stale_reads, 0) << "trial " << trial;
  }
}

TEST(OptFuzzTest, BracketsHoldAtHigherThresholds) {
  util::Rng rng(0x7777);
  model::CostModel models[] = {
      model::CostModel::StationaryComputing(0.3, 0.9),
      model::CostModel::MobileComputing(0.3, 0.9),
  };
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 5 + static_cast<int>(rng.NextBounded(3));
    const int t = 2 + static_cast<int>(rng.NextBounded(3));  // 2..4
    workload::UniformWorkload uniform(0.65);
    Schedule schedule = uniform.Generate(n, 60, rng.Next());
    ProcessorSet initial = ProcessorSet::FirstN(t);
    const model::CostModel& cm = models[trial % 2];

    double lb = opt::RelaxationLowerBound(cm, schedule, initial);
    double exact = opt::ExactOptCost(cm, schedule, initial);
    double ub = opt::IntervalOptCost(cm, schedule, initial);
    ASSERT_LE(lb, exact + 1e-9) << schedule.ToString();
    ASSERT_LE(exact, ub + 1e-9) << schedule.ToString();

    core::DynamicAllocation da;
    core::StaticAllocation sa;
    ASSERT_LE(exact,
              core::RunWithCost(da, cm, schedule, initial).cost + 1e-9);
    ASSERT_LE(exact,
              core::RunWithCost(sa, cm, schedule, initial).cost + 1e-9);
  }
}

TEST(LegalityFuzzTest, AllAlgorithmsProduceValidSchedulesOnAllWorkloads) {
  util::Rng rng(0x1e6a1);
  workload::UniformWorkload mixes[] = {
      workload::UniformWorkload(0.0), workload::UniformWorkload(0.5),
      workload::UniformWorkload(1.0)};
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextBounded(6));
    const int t = 2 + static_cast<int>(
                          rng.NextBounded(static_cast<uint64_t>(n - 2)));
    Schedule schedule = mixes[trial % 3].Generate(n, 100, rng.Next());
    // RunAlgorithm CHECK-fails on any legality or availability violation.
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    core::RunAlgorithm(sa, schedule, ProcessorSet::FirstN(t));
    core::RunAlgorithm(da, schedule, ProcessorSet::FirstN(t));
  }
}

}  // namespace
}  // namespace objalloc
