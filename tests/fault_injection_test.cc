// Fault-tolerant serving: the deterministic chaos path of ObjectService.
//
// Covers the four contracts of DESIGN.md §9: (1) the zero-fault chaos path
// is bit-identical to the plain engine at every shard x thread
// configuration; (2) crashes eagerly scrub schemes and repair restores
// t-availability with saving-read-priced re-replication; (3) admission
// degrades gracefully — whole-batch kUnavailable below t live processors
// (replayable after recovery), per-event refusal for crashed issuers —
// matching the simulator's semantics count for count under shared failure
// plans; (4) message loss is charged deterministically. The
// AvailabilityInvariant (|scheme ∩ live| >= t) is armed throughout and a
// randomized crash/recover fuzz hammers it across 10k seeds.

#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/object_service.h"
#include "objalloc/sim/failure.h"
#include "objalloc/sim/multi_object_sim.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {
namespace {

using util::ProcessorSet;

const model::CostModel kModel = model::CostModel::StationaryComputing(0.25,
                                                                      1.0);

workload::MultiObjectTrace MakeTrace(int num_processors, int num_objects,
                                     size_t length, uint64_t seed) {
  workload::MultiObjectOptions options;
  options.num_processors = num_processors;
  options.num_objects = num_objects;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

// A mixed SA/DA service: even ids static on {0,1,2} (t=3), odd ids dynamic
// on {0,1} (t=2).
ObjectService MakeMixedService(int num_processors, int num_objects,
                               int num_shards) {
  ServiceOptions options;
  options.num_shards = num_shards;
  ObjectService service(num_processors, kModel, options);
  for (int id = 0; id < num_objects; ++id) {
    ObjectConfig config;
    if (id % 2 == 0) {
      config.algorithm = AlgorithmKind::kStatic;
      config.initial_scheme = ProcessorSet{0, 1, 2};
    } else {
      config.algorithm = AlgorithmKind::kDynamic;
      config.initial_scheme = ProcessorSet{0, 1};
    }
    EXPECT_TRUE(service.AddObject(id, config).ok());
  }
  return service;
}

// Per-object schemes in ascending id order — the full allocation state.
std::vector<ProcessorSet> Schemes(const ObjectService& service) {
  std::vector<ProcessorSet> schemes;
  for (ObjectId id : service.SortedObjectIds()) {
    auto stats = service.StatsFor(id);
    EXPECT_TRUE(stats.ok());
    schemes.push_back(stats->scheme);
  }
  return schemes;
}

TEST(FaultInjectionTest, ZeroFaultPathBitIdenticalAcrossConfigurations) {
  const workload::MultiObjectTrace trace = MakeTrace(8, 48, 20000, 0x5eed);
  util::ScopedThreads serial(1);
  ObjectService baseline = MakeMixedService(8, 48, 1);
  auto want = baseline.ServeBatch(trace.events);
  ASSERT_TRUE(want.ok());
  const std::vector<ProcessorSet> want_schemes = Schemes(baseline);

  for (int shards : {1, 4, 16}) {
    for (int threads : {1, 2, 0}) {  // 0 = hardware concurrency
      util::ScopedThreads scope(threads);
      ObjectService service = MakeMixedService(8, 48, shards);
      ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}).ok());
      service.set_check_invariant(true);
      auto got = service.ServeBatch(trace.events);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got->costs, want->costs)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(got->breakdown, want->breakdown);
      EXPECT_EQ(got->cost, want->cost);
      EXPECT_EQ(got->unavailable, 0);
      EXPECT_EQ(Schemes(service), want_schemes);
      const FaultStats& stats = service.fault_stats();
      EXPECT_EQ(stats.crashes, 0);
      EXPECT_EQ(stats.repairs, 0);
      EXPECT_EQ(stats.lost_control + stats.lost_data, 0);
      EXPECT_EQ(stats.unavailable_requests, 0);
    }
  }
}

TEST(FaultInjectionTest, CrashScrubsAndRepairRestoresAvailabilityDynamic) {
  ObjectService service(4, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(7, config).ok());
  FaultSchedule schedule = {FaultEvent::Crash(0, 1)};
  ASSERT_TRUE(
      service.EnableFaults(FaultInjectorOptions{}, schedule).ok());
  service.set_check_invariant(true);

  std::vector<workload::MultiObjectEvent> batch{{7, model::Request::Read(0)}};
  auto result = service.ServeBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The crash scrubbed {0,1} down to {0}; entry repair re-replicated onto
  // the lowest live non-member (2), charged as one saving-read {1,1,2};
  // the member read itself cost one input.
  EXPECT_EQ(result->breakdown.control_messages, 1);
  EXPECT_EQ(result->breakdown.data_messages, 1);
  EXPECT_EQ(result->breakdown.io_ops, 3);
  auto stats = service.StatsFor(7);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->scheme, (ProcessorSet{0, 2}));
  const FaultStats& fs = service.fault_stats();
  EXPECT_EQ(fs.crashes, 1);
  EXPECT_EQ(fs.repairs, 1);
  EXPECT_EQ(fs.replicas_added, 1);
  ASSERT_EQ(fs.repair_latency.size(), 1u);
  EXPECT_EQ(fs.repair_latency[0], 2.0);  // two hops, no retransmissions
  EXPECT_EQ(service.degraded_count(), 0u);
}

TEST(FaultInjectionTest, CrashScrubsAndRepairRestoresAvailabilityStatic) {
  ObjectService service(4, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kStatic;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(3, config).ok());
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{},
                                   {FaultEvent::Crash(0, 1)})
                  .ok());
  service.set_check_invariant(true);

  std::vector<workload::MultiObjectEvent> batch{
      {3, model::Request::Write(0)}};
  auto result = service.ServeBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Repair {1,1,2} + member write over the repaired Q = {0,2}: one data
  // transfer, two outputs.
  EXPECT_EQ(result->breakdown.control_messages, 1);
  EXPECT_EQ(result->breakdown.data_messages, 2);
  EXPECT_EQ(result->breakdown.io_ops, 4);
  auto stats = service.StatsFor(3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->scheme, (ProcessorSet{0, 2}));
}

TEST(FaultInjectionTest, BelowThresholdRejectsAtomicallyAndReplays) {
  ObjectService service(3, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(1, config).ok());
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}).ok());
  service.set_check_invariant(true);
  ASSERT_TRUE(service.Crash(1).ok());
  ASSERT_TRUE(service.Crash(2).ok());
  ASSERT_EQ(service.live_processors(), ProcessorSet{0});

  std::vector<workload::MultiObjectEvent> batch{
      {1, model::Request::Read(0)}, {1, model::Request::Write(0)}};
  auto rejected = service.ServeBatch(batch);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kUnavailable);
  // Atomic: nothing was served, nothing charged.
  EXPECT_EQ(service.TotalRequests(), 0);
  EXPECT_EQ(service.TotalBreakdown(), model::CostBreakdown());
  EXPECT_EQ(service.fault_stats().rejected_batches, 1);

  // After recovery the same batch succeeds: entry repair restores two live
  // replicas and both events serve.
  ASSERT_TRUE(service.Recover(1).ok());
  auto replay = service.ServeBatch(batch);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->unavailable, 0);
  EXPECT_EQ(service.TotalRequests(), 2);
  auto stats = service.StatsFor(1);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->scheme.Size(), 2);
}

TEST(FaultInjectionTest, CrashedIssuerIsRefusedIndividually) {
  ObjectService service(4, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(0, config).ok());
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}).ok());
  ASSERT_TRUE(service.Crash(3).ok());  // three live >= t: batch admitted

  std::vector<workload::MultiObjectEvent> batch{
      {0, model::Request::Read(3)}, {0, model::Request::Read(0)}};
  auto result = service.ServeBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->served.size(), 2u);
  EXPECT_EQ(result->served[0], 0);  // issuer crashed
  EXPECT_EQ(result->served[1], 1);
  EXPECT_EQ(result->costs[0], 0.0);
  EXPECT_EQ(result->unavailable, 1);
  EXPECT_EQ(service.fault_stats().unavailable_requests, 1);
  EXPECT_EQ(service.TotalRequests(), 1);  // the refused event left no trace
}

TEST(FaultInjectionTest, MessageLossIsDeterministicAndCharged) {
  const workload::MultiObjectTrace trace = MakeTrace(8, 48, 4000, 0x10c1);
  util::ScopedThreads serial(1);
  ObjectService plain = MakeMixedService(8, 48, 1);
  auto clean = plain.ServeBatch(trace.events);
  ASSERT_TRUE(clean.ok());
  const std::vector<ProcessorSet> clean_schemes = Schemes(plain);

  FaultInjectorOptions options;
  options.seed = 42;
  options.control_loss_rate = 0.3;
  options.data_loss_rate = 0.2;

  bool first = true;
  BatchResult want;
  for (int shards : {1, 8}) {
    for (int threads : {1, 0}) {
      util::ScopedThreads scope(threads);
      ObjectService service = MakeMixedService(8, 48, shards);
      ASSERT_TRUE(service.EnableFaults(options).ok());
      service.set_check_invariant(true);
      auto got = service.ServeBatch(trace.events);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      if (first) {
        want = *got;
        first = false;
        // Loss only adds retransmissions: more messages than the clean run,
        // identical I/O, identical schemes.
        EXPECT_GT(want.breakdown.control_messages,
                  clean->breakdown.control_messages);
        EXPECT_GT(want.breakdown.data_messages,
                  clean->breakdown.data_messages);
        EXPECT_EQ(want.breakdown.io_ops, clean->breakdown.io_ops);
        const FaultStats& stats = service.fault_stats();
        EXPECT_GT(stats.lost_control, 0);
        EXPECT_GT(stats.lost_data, 0);
        EXPECT_GT(stats.backoff_units, 0);
        EXPECT_EQ(stats.crashes, 0);
      } else {
        EXPECT_EQ(got->costs, want.costs)
            << "shards=" << shards << " threads=" << threads;
        EXPECT_EQ(got->breakdown, want.breakdown);
        EXPECT_EQ(got->cost, want.cost);
      }
      EXPECT_EQ(Schemes(service), clean_schemes);
    }
  }
}

TEST(FaultInjectionTest, RandomCrashRecoverFuzzKeepsInvariant) {
  // 10k seeds of random crash/recover churn with the min_live floor at t:
  // the AvailabilityInvariant (checked fatally inside the serve path) must
  // hold after every served event, and no batch may be rejected.
  util::ScopedThreads serial(1);
  int64_t total_crashes = 0;
  int64_t total_repairs = 0;
  for (uint64_t seed = 0; seed < 10000; ++seed) {
    const workload::MultiObjectTrace trace = MakeTrace(6, 8, 120, seed);
    ServiceOptions service_options;
    service_options.num_shards = 4;
    ObjectService service(6, kModel, service_options);
    ObjectConfig config;
    config.algorithm = AlgorithmKind::kDynamic;
    config.initial_scheme = ProcessorSet{0, 1};
    for (int id = 0; id < 8; ++id) {
      ASSERT_TRUE(service.AddObject(id, config).ok());
    }
    FaultInjectorOptions options;
    options.seed = seed;
    options.crash_rate = 0.05;
    options.recover_rate = 0.10;
    options.min_live = 2;  // never below t: admission cannot reject
    ASSERT_TRUE(service.EnableFaults(options).ok());
    service.set_check_invariant(true);
    // Two batches: fault time must carry across batch boundaries.
    std::span<const workload::MultiObjectEvent> events(trace.events);
    auto first = service.ServeBatch(events.subspan(0, 60));
    ASSERT_TRUE(first.ok()) << "seed " << seed << ": "
                            << first.status().ToString();
    auto second = service.ServeBatch(events.subspan(60));
    ASSERT_TRUE(second.ok()) << "seed " << seed << ": "
                             << second.status().ToString();
    total_crashes += service.fault_stats().crashes;
    total_repairs += service.fault_stats().repairs;
  }
  // The fuzz must actually exercise the machinery.
  EXPECT_GT(total_crashes, 1000);
  EXPECT_GT(total_repairs, 100);
}

TEST(FaultInjectionTest, ScriptedPlansMatchSimulatorCountForCount) {
  // The same failure plan drives the discrete-event simulator and (via the
  // ToFaultSchedule adapter) the serving engine; both must agree on which
  // requests serve and which go unavailable. The agreement envelope is the
  // simulator's documented one (tests/sim_failure_test.cc): at most one
  // processor down at a time, so the DA protocol always has a live replica
  // to fail over to and every non-crashed issuer is served — overlapping
  // crashes can wipe every holder of the latest version, which the
  // simulator reports as aborted ops while the service repairs from its
  // idealized replica model.
  util::ScopedThreads serial(1);
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const int n = 6;
    const workload::MultiObjectTrace trace = MakeTrace(n, 8, 200, seed);

    // Random state-tracked plan of non-overlapping crash windows — valid by
    // construction (no duplicate transitions).
    util::Rng rng(seed * 977);
    sim::FailurePlan plan;
    ProcessorSet crashed;
    size_t position = 0;
    while (position + 7 < trace.events.size()) {
      position += 7 + rng.NextBounded(23);
      if (position >= trace.events.size()) break;
      const auto p =
          static_cast<util::ProcessorId>(rng.NextBounded(uint64_t{n}));
      if (crashed.Contains(p)) {
        plan.events.push_back(sim::FailureEvent::Recover(position, p));
        crashed.Erase(p);
      } else if (crashed.Empty()) {
        plan.events.push_back(sim::FailureEvent::Crash(position, p));
        crashed.Insert(p);
      }
    }
    ASSERT_TRUE(plan.IsValid(n));

    sim::MultiObjectSimOptions sim_options;
    sim_options.base.protocol = sim::ProtocolKind::kDynamic;
    sim_options.base.num_processors = n;
    sim_options.base.initial_scheme = ProcessorSet{0, 1};
    sim_options.num_objects = 8;
    sim::MultiObjectSimulator simulator(sim_options);
    auto report = simulator.RunTrace(trace, plan);
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    ObjectService service(n, kModel);
    ObjectConfig config;
    config.algorithm = AlgorithmKind::kDynamic;
    config.initial_scheme = ProcessorSet{0, 1};
    for (int id = 0; id < 8; ++id) {
      ASSERT_TRUE(service.AddObject(id, config).ok());
    }
    ASSERT_TRUE(service
                    .EnableFaults(FaultInjectorOptions{},
                                  sim::ToFaultSchedule(plan))
                    .ok());
    service.set_check_invariant(true);
    auto batch = service.ServeBatch(trace.events);
    ASSERT_TRUE(batch.ok()) << "seed " << seed << ": "
                            << batch.status().ToString();
    EXPECT_EQ(report->unavailable, batch->unavailable) << "seed " << seed;
    EXPECT_EQ(report->served,
              static_cast<int64_t>(trace.events.size()) - batch->unavailable)
        << "seed " << seed;
    EXPECT_EQ(report->stale_reads, 0) << "seed " << seed;
  }
}

TEST(FaultInjectionTest, RepairDegradedEagerlyHealsEveryObject) {
  ObjectService service(6, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  for (int id = 0; id < 10; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}).ok());
  service.set_check_invariant(true);
  ASSERT_TRUE(service.Crash(1).ok());
  EXPECT_EQ(service.degraded_count(), 10u);
  EXPECT_EQ(service.RepairDegraded(), 10);  // one replica per object
  EXPECT_EQ(service.degraded_count(), 0u);
  EXPECT_EQ(service.fault_stats().repairs, 10);
  for (int id = 0; id < 10; ++id) {
    auto stats = service.StatsFor(id);
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->scheme, (ProcessorSet{0, 2})) << "object " << id;
  }
  // Recover does not rejoin schemes: the copy at 1 is stale.
  ASSERT_TRUE(service.Recover(1).ok());
  auto stats = service.StatsFor(0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->scheme, (ProcessorSet{0, 2}));
}

TEST(FaultInjectionTest, EnableFaultsRejectsFallbackKinds) {
  ObjectService service(4, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kAdaptive;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(0, config).ok());
  util::Status status = service.EnableFaults(FaultInjectorOptions{});
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(FaultInjectionTest, FaultModeGuardsAndStatusBoundaries) {
  ObjectService service(4, kModel);
  // Fault controls require fault mode.
  EXPECT_EQ(service.Crash(1).code(), util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Recover(1).code(),
            util::StatusCode::kFailedPrecondition);

  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(service.AddObject(0, config).ok());
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}).ok());
  EXPECT_EQ(service.Crash(9).code(), util::StatusCode::kOutOfRange);

  // Single-request Serve bypasses fault time: refused while armed.
  EXPECT_EQ(service.Serve(0, model::Request::Read(0)).status().code(),
            util::StatusCode::kFailedPrecondition);

  // Registration under fault mode: fallback kinds and schemes born on
  // crashed processors are refused.
  ASSERT_TRUE(service.Crash(3).ok());
  ObjectConfig adaptive = config;
  adaptive.algorithm = AlgorithmKind::kAdaptive;
  EXPECT_EQ(service.AddObject(1, adaptive).code(),
            util::StatusCode::kFailedPrecondition);
  ObjectConfig dead = config;
  dead.initial_scheme = ProcessorSet{0, 3};
  EXPECT_EQ(service.AddObject(1, dead).code(),
            util::StatusCode::kFailedPrecondition);

  // Invalid injector options are reported, not CHECKed.
  FaultInjectorOptions bad;
  bad.crash_rate = 1.5;
  EXPECT_EQ(service.EnableFaults(bad).code(),
            util::StatusCode::kInvalidArgument);
  FaultSchedule unsorted = {FaultEvent::Crash(5, 0),
                            FaultEvent::Crash(2, 1)};
  EXPECT_EQ(service.EnableFaults(FaultInjectorOptions{}, unsorted).code(),
            util::StatusCode::kInvalidArgument);

  service.DisableFaults();
  EXPECT_FALSE(service.faults_enabled());
  EXPECT_TRUE(service.Serve(0, model::Request::Read(0)).ok());
}

TEST(FaultInjectionTest, CreateAndBatchBoundariesReturnStatus) {
  EXPECT_FALSE(ObjectService::Create(0, kModel).ok());
  ServiceOptions bad_options;
  bad_options.num_shards = 0;
  EXPECT_FALSE(ObjectService::Create(4, kModel, bad_options).ok());
  auto created = ObjectService::Create(4, kModel);
  ASSERT_TRUE(created.ok());

  // Zero-sized stream batches are an error, not a CHECK.
  const workload::MultiObjectTrace trace = MakeTrace(4, 4, 10, 1);
  workload::TraceEventSource source(trace);
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  for (int id = 0; id < 4; ++id) {
    ASSERT_TRUE(created->AddObject(id, config).ok());
  }
  EXPECT_EQ(created->ServeStream(source, 0).status().code(),
            util::StatusCode::kInvalidArgument);
}

TEST(FaultInjectionTest, StreamAccumulatesUnavailableEvents) {
  const workload::MultiObjectTrace trace = MakeTrace(6, 8, 400, 11);
  ObjectService service(6, kModel);
  ObjectConfig config;
  config.algorithm = AlgorithmKind::kDynamic;
  config.initial_scheme = ProcessorSet{0, 1};
  for (int id = 0; id < 8; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  // Crash processor 5 for the middle half of the stream.
  FaultSchedule schedule = {FaultEvent::Crash(100, 5),
                            FaultEvent::Recover(300, 5)};
  ASSERT_TRUE(service.EnableFaults(FaultInjectorOptions{}, schedule).ok());
  service.set_check_invariant(true);
  workload::TraceEventSource source(trace);
  auto result = service.ServeStream(source, 64);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  int64_t expected = 0;
  for (size_t k = 100; k < 300; ++k) {
    if (trace.events[k].request.processor == 5) ++expected;
  }
  EXPECT_EQ(result->unavailable, expected);
  EXPECT_EQ(result->events, static_cast<int64_t>(trace.events.size()));
}

}  // namespace
}  // namespace objalloc::core
