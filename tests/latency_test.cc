// Virtual-time latency accounting: known critical paths for simple
// operations, distribution plumbing, and protocol comparisons.

#include <gtest/gtest.h>

#include "objalloc/sim/simulator.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::sim {
namespace {

using util::ProcessorSet;

SimulatorOptions MakeOptions(ProtocolKind kind, LatencyModel latency) {
  SimulatorOptions options;
  options.protocol = kind;
  options.num_processors = 6;
  options.initial_scheme = ProcessorSet{0, 1};
  options.latency = latency;
  return options;
}

constexpr LatencyModel kLatency{1.0, 3.0, 5.0};  // control, data, io

TEST(LatencyTest, LocalReadIsOneIo) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, kLatency));
  RequestOutcome outcome = sim.SubmitRead(0);
  ASSERT_TRUE(outcome.ok);
  EXPECT_DOUBLE_EQ(outcome.latency, 5.0);
}

TEST(LatencyTest, SaRemoteReadIsRequestIoReply) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, kLatency));
  RequestOutcome outcome = sim.SubmitRead(4);
  ASSERT_TRUE(outcome.ok);
  // control (1) + source input (5) + data reply (3).
  EXPECT_DOUBLE_EQ(outcome.latency, 1 + 5 + 3);
}

TEST(LatencyTest, DaSavingReadAddsTheLocalStore) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, kLatency));
  RequestOutcome outcome = sim.SubmitRead(4);
  ASSERT_TRUE(outcome.ok);
  // control + source input + data reply + save.
  EXPECT_DOUBLE_EQ(outcome.latency, 1 + 5 + 3 + 5);
  // Second read is local.
  EXPECT_DOUBLE_EQ(sim.SubmitRead(4).latency, 5.0);
}

TEST(LatencyTest, SaWritePropagatesInParallel) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, kLatency));
  RequestOutcome outcome = sim.SubmitWrite(0, 1);
  ASSERT_TRUE(outcome.ok);
  // Writer's own Put (5) overlaps the transfer to the other member
  // (3 + 5 = 8): the settle time is the slowest branch.
  EXPECT_DOUBLE_EQ(outcome.latency, 8.0);
}

TEST(LatencyTest, OutsideWriterPaysTransferPlusStore) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic, kLatency));
  RequestOutcome outcome = sim.SubmitWrite(4, 1);
  ASSERT_TRUE(outcome.ok);
  // Both members receive the object in parallel: 3 + 5.
  EXPECT_DOUBLE_EQ(outcome.latency, 8.0);
}

TEST(LatencyTest, DaWriteIncludesInvalidationSettling) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, kLatency));
  ASSERT_TRUE(sim.SubmitRead(4).ok);  // 4 joins via F member 0
  RequestOutcome outcome = sim.SubmitWrite(0, 9);
  ASSERT_TRUE(outcome.ok);
  // Branches from the writer (0, an F member): propagate to p (3+5 = 8);
  // own Put then invalidate joiner 4: the invalidation leaves after the
  // local Put (5) and lands at 5+1 = 6. Slowest branch: 8.
  EXPECT_DOUBLE_EQ(outcome.latency, 8.0);
}

TEST(LatencyTest, QuorumReadPaysTwoRounds) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum, kLatency));
  RequestOutcome outcome = sim.SubmitRead(4);
  ASSERT_TRUE(outcome.ok);
  // Version round (1 + 1) then fetch (1 + 5 + 3) from the freshest holder.
  EXPECT_DOUBLE_EQ(outcome.latency, 1 + 1 + 1 + 5 + 3);
}

TEST(LatencyTest, ReportCollectsDistributions) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, kLatency));
  workload::UniformWorkload uniform(0.7);
  auto report = sim.RunSchedule(uniform.Generate(6, 200, 3));
  EXPECT_GT(report.read_latency.count(), 0);
  EXPECT_GT(report.write_latency.count(), 0);
  EXPECT_GE(report.read_latency.Percentile(0.99),
            report.read_latency.Median());
  // Every DA read is local (5) or fetch-and-save (14).
  EXPECT_GE(report.read_latency.Median(), 5.0);
  EXPECT_LE(report.read_latency.Percentile(1.0), 14.0);
}

TEST(LatencyTest, DaReadLatencyBeatsSaUnderRepeatReaders) {
  // Repeat readers: DA serves them locally after the first fetch; SA pays
  // the remote round trip every time.
  model::Schedule schedule(6);
  for (int round = 0; round < 50; ++round) {
    schedule.AppendRead(4);
    schedule.AppendRead(5);
  }
  Simulator da(MakeOptions(ProtocolKind::kDynamic, kLatency));
  Simulator sa(MakeOptions(ProtocolKind::kStatic, kLatency));
  auto da_report = da.RunSchedule(schedule);
  auto sa_report = sa.RunSchedule(schedule);
  EXPECT_LT(da_report.read_latency.Median(),
            sa_report.read_latency.Median());
}

TEST(LatencyTest, ZeroLatencyModelYieldsZeroLatencies) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic, LatencyModel{0, 0, 0}));
  workload::UniformWorkload uniform(0.5);
  auto report = sim.RunSchedule(uniform.Generate(6, 50, 1));
  EXPECT_DOUBLE_EQ(report.read_latency.Percentile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(report.write_latency.Percentile(1.0), 0.0);
}

}  // namespace
}  // namespace objalloc::sim
