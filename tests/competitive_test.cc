// Property tests for the paper's competitive-analysis results (Theorems 1-4,
// Propositions 1-3): measured worst-case ratios against the exact offline
// OPT must respect the analytic upper bounds everywhere, and the nemesis
// workloads must drive the ratios toward the analytic lower bounds.

#include <cmath>

#include <gtest/gtest.h>

#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/util/csv.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/workload/adversary.h"
#include "objalloc/workload/ensemble.h"

namespace objalloc::analysis {
namespace {

using core::DynamicAllocation;
using core::StaticAllocation;

struct GridCase {
  double cc, cd;
  int t;
};

std::string GridName(const ::testing::TestParamInfo<GridCase>& info) {
  auto fmt = [](double v) {
    std::string s = util::FormatDouble(v, 2);
    for (char& c : s) {
      if (c == '.') c = '_';
    }
    return s;
  };
  return "cc" + fmt(info.param.cc) + "_cd" + fmt(info.param.cd) + "_t" +
         std::to_string(info.param.t);
}

RatioOptions SmallOptions(int t) {
  RatioOptions options;
  options.num_processors = 7;
  options.t = t;
  options.schedule_length = 120;
  options.seeds_per_generator = 3;
  return options;
}

class StationaryGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(StationaryGridTest, SaStaysWithinTheorem1Bound) {
  const GridCase& param = GetParam();
  CostModel sc = CostModel::StationaryComputing(param.cc, param.cd);
  StaticAllocation sa;
  RatioSummary summary = MeasureCompetitiveRatio(
      sa, sc, workload::WorstCaseEnsemble(param.t), SmallOptions(param.t));
  double bound = SaCompetitiveFactor(sc).value();
  EXPECT_LE(summary.worst.ratio, bound + 0.05)
      << "worst on " << summary.worst.generator << " seed "
      << summary.worst.seed;
}

TEST_P(StationaryGridTest, DaStaysWithinTheorem2And3Bounds) {
  const GridCase& param = GetParam();
  CostModel sc = CostModel::StationaryComputing(param.cc, param.cd);
  DynamicAllocation da;
  RatioSummary summary = MeasureCompetitiveRatio(
      da, sc, workload::WorstCaseEnsemble(param.t), SmallOptions(param.t));
  double bound = DaCompetitiveFactor(sc);
  EXPECT_LE(summary.worst.ratio, bound + 0.05)
      << "worst on " << summary.worst.generator << " seed "
      << summary.worst.seed;
}

INSTANTIATE_TEST_SUITE_P(
    CostGrid, StationaryGridTest,
    ::testing::Values(GridCase{0.0, 0.0, 2}, GridCase{0.1, 0.2, 2},
                      GridCase{0.25, 0.25, 2}, GridCase{0.1, 0.6, 2},
                      GridCase{0.5, 0.5, 2}, GridCase{0.5, 1.0, 2},
                      GridCase{0.0, 1.5, 2}, GridCase{0.5, 2.0, 2},
                      GridCase{1.0, 2.0, 2}, GridCase{0.1, 0.2, 3},
                      GridCase{0.5, 1.0, 3}, GridCase{0.5, 2.0, 4}),
    GridName);

class MobileGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(MobileGridTest, DaStaysWithinTheorem4Bound) {
  const GridCase& param = GetParam();
  CostModel mc = CostModel::MobileComputing(param.cc, param.cd);
  DynamicAllocation da;
  RatioSummary summary = MeasureCompetitiveRatio(
      da, mc, workload::WorstCaseEnsemble(param.t), SmallOptions(param.t));
  double bound = DaCompetitiveFactor(mc);
  EXPECT_LE(summary.worst.ratio, bound + 0.05)
      << "worst on " << summary.worst.generator << " seed "
      << summary.worst.seed;
  EXPECT_LE(bound, 5.0 + 1e-9);  // the paper: at most 5 since cc <= cd
}

INSTANTIATE_TEST_SUITE_P(
    CostGrid, MobileGridTest,
    ::testing::Values(GridCase{0.1, 0.2, 2}, GridCase{0.25, 0.25, 2},
                      GridCase{0.5, 1.0, 2}, GridCase{1.0, 1.0, 2},
                      GridCase{0.2, 2.0, 2}, GridCase{0.5, 1.0, 3}),
    GridName);

// ---------------------------------------------------------- Lower bounds

TEST(Proposition1Test, SaNemesisApproachesTightFactor) {
  // SA's ratio on the nemesis tends to (1 + cc + cd) from below as the
  // schedule grows.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  const double bound = SaCompetitiveFactor(sc).value();  // 2.5
  workload::SaNemesis nemesis(2);
  StaticAllocation sa;
  ProcessorSet initial = ProcessorSet::FirstN(2);
  double previous = 0;
  for (size_t length : {20u, 80u, 320u}) {
    model::Schedule schedule = nemesis.Generate(6, length, 1);
    double ratio = RatioOnSchedule(sa, sc, schedule, initial);
    EXPECT_GT(ratio, previous);  // monotonically approaching
    EXPECT_LT(ratio, bound);
    previous = ratio;
  }
  EXPECT_GT(previous, bound - 0.05);  // within 2% at length 320
}

TEST(Proposition2Test, DaNemesisExceedsOneAndAHalfWhereSaIsSuperior) {
  // In the region cc + cd < 0.5 (where the paper declares SA superior via
  // this proposition), the join-churn nemesis drives DA's ratio above 1.5.
  for (auto [cc, cd] : {std::pair{0.0, 0.0}, {0.1, 0.2}, {0.2, 0.25}}) {
    CostModel sc = CostModel::StationaryComputing(cc, cd);
    workload::DaNemesis nemesis(2, /*readers_per_round=*/4);
    DynamicAllocation da;
    model::Schedule schedule = nemesis.Generate(7, 200, 1);
    double ratio =
        RatioOnSchedule(da, sc, schedule, ProcessorSet::FirstN(2));
    EXPECT_GE(ratio, kDaLowerBound) << "cc=" << cc << " cd=" << cd;
  }
}

TEST(Proposition3Test, SaRatioGrowsWithoutBoundInMobileComputing) {
  // MC: local reads are free, so OPT pays once for the nemesis reader while
  // SA pays per read — the ratio grows linearly with the schedule.
  CostModel mc = CostModel::MobileComputing(0.25, 1.0);
  workload::SaNemesis nemesis(2);
  StaticAllocation sa;
  ProcessorSet initial = ProcessorSet::FirstN(2);
  double r100 = RatioOnSchedule(sa, mc, nemesis.Generate(6, 100, 1), initial);
  double r200 = RatioOnSchedule(sa, mc, nemesis.Generate(6, 200, 1), initial);
  double r400 = RatioOnSchedule(sa, mc, nemesis.Generate(6, 400, 1), initial);
  EXPECT_GT(r200, r100 * 1.8);
  EXPECT_GT(r400, r200 * 1.8);
  EXPECT_GT(r400, 100.0);  // far above any constant factor
}

TEST(MobileDominanceTest, DaBeatsSaOnEveryWorkloadFamilyInMc) {
  // Figure 2: DA is strictly superior in mobile computing.
  CostModel mc = CostModel::MobileComputing(0.25, 1.0);
  StaticAllocation sa;
  DynamicAllocation da;
  RatioOptions options = SmallOptions(2);
  RatioSummary sa_summary = MeasureCompetitiveRatio(
      sa, mc, workload::WorstCaseEnsemble(2), options);
  RatioSummary da_summary = MeasureCompetitiveRatio(
      da, mc, workload::WorstCaseEnsemble(2), options);
  EXPECT_GT(sa_summary.worst.ratio, da_summary.worst.ratio);
}

// ------------------------------------------------------ Analytic factors

TEST(TheoremFactorsTest, SaFactorMatchesTheorem1) {
  EXPECT_DOUBLE_EQ(
      SaCompetitiveFactor(CostModel::StationaryComputing(0.5, 1.0)).value(),
      2.5);
  EXPECT_FALSE(
      SaCompetitiveFactor(CostModel::MobileComputing(0.5, 1.0)).has_value());
}

TEST(TheoremFactorsTest, DaFactorSwitchesAtCdEqualsIo) {
  // Theorem 2 vs Theorem 3: the bound drops from 2+2cc to 2+cc when cd > 1.
  EXPECT_DOUBLE_EQ(
      DaCompetitiveFactor(CostModel::StationaryComputing(0.5, 0.8)), 3.0);
  EXPECT_DOUBLE_EQ(
      DaCompetitiveFactor(CostModel::StationaryComputing(0.5, 1.5)), 2.5);
}

TEST(TheoremFactorsTest, DaMobileFactor) {
  EXPECT_DOUBLE_EQ(
      DaCompetitiveFactor(CostModel::MobileComputing(0.5, 1.0)), 3.5);
  EXPECT_DOUBLE_EQ(DaCompetitiveFactor(CostModel::MobileComputing(1.0, 1.0)),
                   5.0);  // the maximum, at cc == cd
}

TEST(TheoremFactorsTest, FactorsAreIndependentOfT) {
  // §2: "these competitiveness factors are independent of the integer t".
  // The formulas take no t; verify the measured worst ratios do not grow
  // with t either (checked more cheaply here than in the benches).
  CostModel sc = CostModel::StationaryComputing(0.25, 0.5);
  double bound = DaCompetitiveFactor(sc);
  for (int t = 2; t <= 4; ++t) {
    DynamicAllocation da;
    RatioSummary summary = MeasureCompetitiveRatio(
        da, sc, workload::WorstCaseEnsemble(t), SmallOptions(t));
    EXPECT_LE(summary.worst.ratio, bound + 0.05) << "t=" << t;
  }
}

TEST(RegionClassificationTest, MatchesFigure1) {
  EXPECT_EQ(ClassifyStationary(1.5, 1.0), Region::kCannotBeTrue);
  EXPECT_EQ(ClassifyStationary(0.5, 1.5), Region::kDaSuperior);
  EXPECT_EQ(ClassifyStationary(0.1, 0.2), Region::kSaSuperior);
  EXPECT_EQ(ClassifyStationary(0.3, 0.4), Region::kUnknown);
  EXPECT_EQ(ClassifyStationary(0.2, 0.9), Region::kUnknown);
}

TEST(RegionClassificationTest, MatchesFigure2) {
  EXPECT_EQ(ClassifyMobile(1.5, 1.0), Region::kCannotBeTrue);
  EXPECT_EQ(ClassifyMobile(0.1, 0.2), Region::kDaSuperior);
  EXPECT_EQ(ClassifyMobile(1.0, 2.0), Region::kDaSuperior);
}

TEST(RegionClassificationTest, CostModelOverloadNormalizesByIo) {
  // cio = 2, cc = 0.4, cd = 0.5 normalizes to (0.2, 0.25): SA-superior.
  CostModel scaled{2.0, 0.4, 0.5};
  EXPECT_EQ(Classify(scaled), Region::kSaSuperior);
}

TEST(RatioOptionsTest, Validation) {
  RatioOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.t = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = RatioOptions{};
  options.num_processors = 40;  // beyond exact OPT
  EXPECT_FALSE(options.Validate().ok());
  options = RatioOptions{};
  options.seeds_per_generator = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace objalloc::analysis
