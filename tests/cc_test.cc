// Concurrency-control substrate: lock manager semantics, deadlock
// detection, and the Serializer's end-to-end guarantee — every transaction
// commits and the emitted per-object schedules are consistent with strict
// two-phase locking.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "objalloc/cc/lock_manager.h"
#include "objalloc/cc/serializer.h"
#include "objalloc/core/object_manager.h"
#include "objalloc/util/rng.h"

namespace objalloc::cc {
namespace {

// ------------------------------------------------------------ LockManager

TEST(LockManagerTest, ExclusiveExcludes) {
  LockManager locks;
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 100, LockMode::kShared),
            LockOutcome::kWaiting);
  EXPECT_TRUE(locks.IsWaiting(2));
}

TEST(LockManagerTest, SharedLocksAreCompatible) {
  LockManager locks;
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 100, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_TRUE(locks.Holds(1, 100));
  EXPECT_TRUE(locks.Holds(2, 100));
}

TEST(LockManagerTest, ReacquisitionIsIdempotent) {
  LockManager locks;
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kShared),
            LockOutcome::kGranted);
}

TEST(LockManagerTest, SoleHolderUpgrades) {
  LockManager locks;
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kShared), LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  EXPECT_EQ(locks.Acquire(2, 100, LockMode::kShared),
            LockOutcome::kWaiting);
}

TEST(LockManagerTest, ReleaseWakesFifoWaiters) {
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 100, LockMode::kShared),
            LockOutcome::kWaiting);
  ASSERT_EQ(locks.Acquire(3, 100, LockMode::kShared),
            LockOutcome::kWaiting);
  auto woken = locks.ReleaseAll(1);
  // Both shared waiters are granted together.
  EXPECT_EQ(std::set<TransactionId>(woken.begin(), woken.end()),
            (std::set<TransactionId>{2, 3}));
  EXPECT_TRUE(locks.Holds(2, 100));
  EXPECT_TRUE(locks.Holds(3, 100));
}

TEST(LockManagerTest, WriterWaitsBehindEarlierWaiter) {
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 100, LockMode::kExclusive),
            LockOutcome::kWaiting);
  ASSERT_EQ(locks.Acquire(3, 100, LockMode::kExclusive),
            LockOutcome::kWaiting);
  auto woken = locks.ReleaseAll(1);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 2);  // FIFO
  EXPECT_FALSE(locks.Holds(3, 100));
}

TEST(LockManagerTest, DetectsTwoTransactionCycle) {
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 200, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(1, 200, LockMode::kExclusive),
            LockOutcome::kWaiting);
  // 2 -> 1 would close the cycle 1 -> 2.
  EXPECT_EQ(locks.Acquire(2, 100, LockMode::kExclusive),
            LockOutcome::kDeadlock);
}

TEST(LockManagerTest, DetectsThreeTransactionCycle) {
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 200, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(3, 300, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(1, 200, LockMode::kExclusive),
            LockOutcome::kWaiting);
  ASSERT_EQ(locks.Acquire(2, 300, LockMode::kExclusive),
            LockOutcome::kWaiting);
  EXPECT_EQ(locks.Acquire(3, 100, LockMode::kExclusive),
            LockOutcome::kDeadlock);
}

TEST(LockManagerTest, UpgradeDeadlockIsDetected) {
  // Two shared holders both upgrading: the second must be the victim.
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kShared), LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 100, LockMode::kShared), LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kWaiting);
  EXPECT_EQ(locks.Acquire(2, 100, LockMode::kExclusive),
            LockOutcome::kDeadlock);
  // The victim aborts; the survivor's upgrade completes.
  auto woken = locks.ReleaseAll(2);
  ASSERT_EQ(woken.size(), 1u);
  EXPECT_EQ(woken[0], 1);
}

TEST(LockManagerTest, AbortedBlockerUnblocksChains) {
  LockManager locks;
  ASSERT_EQ(locks.Acquire(1, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
  ASSERT_EQ(locks.Acquire(2, 100, LockMode::kExclusive),
            LockOutcome::kWaiting);
  locks.ReleaseAll(2);  // waiter gives up
  auto woken = locks.ReleaseAll(1);
  EXPECT_TRUE(woken.empty());  // nobody left
  EXPECT_EQ(locks.Acquire(3, 100, LockMode::kExclusive),
            LockOutcome::kGranted);
}

// ------------------------------------------------------------- Serializer

Transaction MakeTxn(TransactionId id, model::ProcessorId processor,
                    std::vector<Operation> operations) {
  return Transaction{id, processor, std::move(operations)};
}

TEST(SerializerTest, SingleTransactionPassesThrough) {
  Serializer serializer(4);
  auto result = serializer.Run(
      {MakeTxn(1, 2, {Operation::Read(7), Operation::Write(7)})}, 1);
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(result.deadlock_aborts, 0);
  ASSERT_EQ(result.schedules.count(7), 1u);
  EXPECT_EQ(result.schedules.at(7).ToString(), "r2 w2");
}

TEST(SerializerTest, ConflictingWritersCommitAllOperations) {
  Serializer serializer(4);
  std::vector<Transaction> txns = {
      MakeTxn(1, 0, {Operation::Write(5), Operation::Write(5)}),
      MakeTxn(2, 1, {Operation::Write(5), Operation::Write(5)}),
      MakeTxn(3, 2, {Operation::Read(5)}),
  };
  auto result = serializer.Run(txns, 7);
  EXPECT_EQ(result.committed, 3u);
  const model::Schedule& schedule = result.schedules.at(5);
  EXPECT_EQ(schedule.size(), 5u);
  EXPECT_EQ(schedule.CountWrites(), 4u);
}

TEST(SerializerTest, StrictTwoPhaseLockingKeepsWritesContiguous) {
  // Under strict 2PL, a transaction's operations on one object can never be
  // interleaved with a *conflicting* operation of another transaction.
  Serializer serializer(8);
  std::vector<Transaction> txns;
  for (TransactionId id = 1; id <= 6; ++id) {
    txns.push_back(MakeTxn(id, static_cast<model::ProcessorId>(id),
                           {Operation::Write(1), Operation::Write(1)}));
  }
  auto result = serializer.Run(txns, 99);
  const model::Schedule& schedule = result.schedules.at(1);
  ASSERT_EQ(schedule.size(), 12u);
  // Writes by the same processor arrive in adjacent pairs.
  for (size_t k = 0; k < schedule.size(); k += 2) {
    EXPECT_EQ(schedule[k].processor, schedule[k + 1].processor) << k;
  }
}

TEST(SerializerTest, DeadlockVictimsRetryAndCommit) {
  // The classic crossing pattern forces at least one deadlock for some
  // interleavings; every transaction must still commit.
  Serializer serializer(4);
  std::vector<Transaction> txns = {
      MakeTxn(1, 0, {Operation::Write(1), Operation::Write(2)}),
      MakeTxn(2, 1, {Operation::Write(2), Operation::Write(1)}),
  };
  int64_t total_aborts = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    auto result = serializer.Run(txns, seed);
    EXPECT_EQ(result.committed, 2u) << "seed " << seed;
    EXPECT_EQ(result.schedules.at(1).size(), 2u) << "seed " << seed;
    EXPECT_EQ(result.schedules.at(2).size(), 2u) << "seed " << seed;
    total_aborts += result.deadlock_aborts;
  }
  EXPECT_GT(total_aborts, 0) << "the crossing pattern never deadlocked?";
}

TEST(SerializerTest, DeterministicPerSeed) {
  Serializer serializer(6);
  std::vector<Transaction> txns = {
      MakeTxn(1, 0, {Operation::Write(1), Operation::Read(2)}),
      MakeTxn(2, 1, {Operation::Read(1), Operation::Write(2)}),
      MakeTxn(3, 2, {Operation::Write(1), Operation::Write(2)}),
  };
  auto a = serializer.Run(txns, 1234);
  auto b = serializer.Run(txns, 1234);
  EXPECT_EQ(a.schedules.at(1).ToString(), b.schedules.at(1).ToString());
  EXPECT_EQ(a.schedules.at(2).ToString(), b.schedules.at(2).ToString());
}

TEST(SerializerTest, RandomBatchesAlwaysCommitEverything) {
  util::Rng rng(0xcc);
  for (int trial = 0; trial < 20; ++trial) {
    const int num_objects = 5;
    std::vector<Transaction> txns;
    size_t expected_ops_total = 0;
    for (TransactionId id = 1; id <= 12; ++id) {
      Transaction txn;
      txn.id = id;
      txn.processor = static_cast<model::ProcessorId>(rng.NextBounded(6));
      size_t ops = 1 + rng.NextBounded(4);
      for (size_t k = 0; k < ops; ++k) {
        auto object = static_cast<ObjectId>(rng.NextBounded(num_objects));
        txn.operations.push_back(rng.NextBernoulli(0.5)
                                     ? Operation::Write(object)
                                     : Operation::Read(object));
      }
      expected_ops_total += ops;
      txns.push_back(std::move(txn));
    }
    Serializer serializer(6);
    auto result = serializer.Run(txns, rng.Next());
    EXPECT_EQ(result.committed, txns.size());
    size_t emitted = 0;
    for (const auto& [object, schedule] : result.schedules) {
      emitted += schedule.size();
    }
    EXPECT_EQ(emitted, expected_ops_total) << "trial " << trial;
  }
}

TEST(SerializerTest, FeedsTheAllocationLayerEndToEnd) {
  // The full pipeline: transactions -> 2PL serializer -> per-object
  // schedules -> multi-object DA allocation with costs.
  util::Rng rng(0xe2e);
  std::vector<Transaction> txns;
  for (TransactionId id = 1; id <= 30; ++id) {
    Transaction txn;
    txn.id = id;
    txn.processor = static_cast<model::ProcessorId>(rng.NextBounded(6));
    for (int k = 0; k < 4; ++k) {
      auto object = static_cast<ObjectId>(rng.NextBounded(8));
      txn.operations.push_back(rng.NextBernoulli(0.7)
                                   ? Operation::Read(object)
                                   : Operation::Write(object));
    }
    txns.push_back(std::move(txn));
  }
  Serializer serializer(6);
  auto serialized = serializer.Run(txns, 5);

  core::ObjectManager manager(
      6, model::CostModel::StationaryComputing(0.25, 1.0));
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  for (const auto& [object, schedule] : serialized.schedules) {
    ASSERT_TRUE(manager.AddObject(object, config).ok());
    for (const auto& request : schedule.requests()) {
      ASSERT_TRUE(manager.Serve(object, request).ok());
    }
  }
  EXPECT_EQ(manager.TotalRequests(), 30 * 4);
  EXPECT_GT(manager.TotalCost(), 0);
}

TEST(SerializerTest, RejectsDuplicateIds) {
  Serializer serializer(4);
  std::vector<Transaction> txns = {
      MakeTxn(1, 0, {Operation::Read(1)}),
      MakeTxn(1, 1, {Operation::Read(1)}),
  };
  EXPECT_DEATH(serializer.Run(txns, 1), "duplicate");
}

}  // namespace
}  // namespace objalloc::cc
