// The durability layer's contract (DESIGN.md §10): recovery from any crash
// point reproduces a bit-identical prefix of history. The WAL logs the
// admission stream, the checkpoint snapshots the full state, and because
// the serving engine is deterministic, snapshot + replayed tail == the
// state the crashed process held. These tests drive the whole pipeline —
// truncate-at-every-offset sweeps, bit flips, manifest loss, fault-mode
// histories — and assert exact state equality, never "close enough".

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/checkpoint.h"
#include "objalloc/core/object_service.h"
#include "objalloc/core/wal.h"
#include "objalloc/util/io.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/record_io.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using util::ScopedThreads;
using workload::MultiObjectEvent;
using workload::MultiObjectTrace;

namespace fs = std::filesystem;

// --- Helpers ------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void CopyDir(const std::string& from, const std::string& to) {
  fs::remove_all(to);
  fs::create_directories(to);
  for (const auto& entry : fs::directory_iterator(from)) {
    fs::copy(entry.path(), fs::path(to) / entry.path().filename());
  }
}

// The complete observable state of a service, captured exactly: per-object
// traffic and schemes, lifetime totals, liveness, and the integer fault
// counters. Two services are interchangeable iff their images are equal.
struct StateImage {
  std::vector<std::tuple<ObjectId, int64_t, int64_t, int64_t, int64_t,
                         uint64_t>>
      objects;  // id, requests, control, data, io, scheme mask
  int64_t total_requests = 0;
  model::CostBreakdown total;
  uint64_t live_mask = 0;
  size_t degraded = 0;
  bool faults_enabled = false;
  int64_t crashes = 0, recoveries = 0, repairs = 0, replicas_added = 0;
  int64_t lost_control = 0, lost_data = 0, backoff_units = 0;
  int64_t unavailable_requests = 0, rejected_batches = 0;

  bool operator==(const StateImage&) const = default;
};

StateImage Capture(const ObjectService& service) {
  StateImage image;
  for (ObjectId id : service.SortedObjectIds()) {
    auto stats = service.StatsFor(id);
    EXPECT_TRUE(stats.ok());
    image.objects.emplace_back(id, stats->requests,
                               stats->breakdown.control_messages,
                               stats->breakdown.data_messages,
                               stats->breakdown.io_ops,
                               stats->scheme.mask());
  }
  image.total_requests = service.TotalRequests();
  image.total = service.TotalBreakdown();
  image.live_mask = service.live_processors().mask();
  image.degraded = service.degraded_count();
  image.faults_enabled = service.faults_enabled();
  const FaultStats& fault_stats = service.fault_stats();
  image.crashes = fault_stats.crashes;
  image.recoveries = fault_stats.recoveries;
  image.repairs = fault_stats.repairs;
  image.replicas_added = fault_stats.replicas_added;
  image.lost_control = fault_stats.lost_control;
  image.lost_data = fault_stats.lost_data;
  image.backoff_units = fault_stats.backoff_units;
  image.unavailable_requests = fault_stats.unavailable_requests;
  image.rejected_batches = fault_stats.rejected_batches;
  return image;
}

MultiObjectTrace TestTrace(size_t length, uint64_t seed = 99,
                           int num_objects = 32) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = num_objects;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

ObjectConfig TestConfig(AlgorithmKind kind = AlgorithmKind::kDynamic) {
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  config.algorithm = kind;
  return config;
}

void RegisterObjects(ObjectService& service, int num_objects,
                     const ObjectConfig& config) {
  service.ReserveObjects(static_cast<size_t>(num_objects));
  for (int id = 0; id < num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
}

// --- Round trips --------------------------------------------------------

TEST(DurabilityTest, RecoverReproducesStateBitForBit) {
  const std::string dir = FreshDir("durability_roundtrip");
  const MultiObjectTrace trace = TestTrace(4000);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  StateImage expected;
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    // Mixed batch sizes, a checkpoint mid-stream, a tail past it.
    std::span<const MultiObjectEvent> events(trace.events);
    ASSERT_TRUE(service.ServeBatch(events.subspan(0, 1500)).ok());
    ASSERT_TRUE(service.Checkpoint().ok());
    ASSERT_TRUE(service.ServeBatch(events.subspan(1500, 2000)).ok());
    ASSERT_TRUE(service.Serve(3, trace.events[3500].request).ok());
    ASSERT_TRUE(service.ServeBatch(events.subspan(3501)).ok());
    expected = Capture(service);
    // No Sync, no clean shutdown: the destructor is the crash.
  }

  RecoveryReport report;
  auto recovered = ObjectService::Recover(dir, {}, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
  EXPECT_EQ(report.checkpoint_sequence, 2u);
  EXPECT_FALSE(report.fell_back);
  EXPECT_TRUE(recovered->durability_enabled());

  // The recovered service keeps appending: serve more, recover again.
  ASSERT_TRUE(recovered->ServeBatch(
                  std::span<const MultiObjectEvent>(trace.events).first(500))
                  .ok());
  const StateImage continued = Capture(*recovered);
  { ObjectService drop = std::move(*recovered); }
  auto again = ObjectService::Recover(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Capture(*again), continued);
}

TEST(DurabilityTest, BitIdenticalAcrossShardAndThreadCounts) {
  const MultiObjectTrace trace = TestTrace(3000);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  // Reference: one undurable serial run of the whole trace.
  ObjectService reference(trace.num_processors, sc);
  RegisterObjects(reference, trace.num_objects, TestConfig());
  ASSERT_TRUE(
      reference.ServeBatch(std::span<const MultiObjectEvent>(trace.events))
          .ok());
  const StateImage expected = Capture(reference);

  for (int shards : {1, 4, 16}) {
    for (int threads : {1, 2, util::GlobalThreads()}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ScopedThreads scope(threads);
      const std::string dir =
          FreshDir("durability_grid_" + std::to_string(shards) + "_" +
                   std::to_string(threads));
      ServiceOptions options;
      options.num_shards = shards;
      DurabilityOptions durability;
      durability.checkpoint_interval_events = 1100;  // auto-checkpoints
      {
        ObjectService service(trace.num_processors, sc, options);
        ASSERT_TRUE(service.EnableDurability(dir, durability).ok());
        RegisterObjects(service, trace.num_objects, TestConfig());
        // Crash after 1700 of 3000 events.
        ASSERT_TRUE(
            service
                .ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                                .first(1700))
                .ok());
      }
      auto recovered = ObjectService::Recover(dir, durability);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      ASSERT_TRUE(recovered
                      ->ServeBatch(
                          std::span<const MultiObjectEvent>(trace.events)
                              .subspan(1700))
                      .ok());
      EXPECT_EQ(Capture(*recovered), expected);
    }
  }
}

// --- Old-format compatibility -------------------------------------------

// Rewrites a (v2, chunked) checkpoint file in the v1 monolithic framing:
// the same header/state/footer payloads, each shard's chunks concatenated
// back into one kShard record, version stamp 1. The shard payload bytes
// are untouched — this is exactly the file a format-v1 writer produced.
void DownConvertCheckpointToV1(const std::string& path) {
  auto reader = CheckpointReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  std::string v1;
  BeginCheckpoint(reader->sequence(), reader->config(), &v1, /*version=*/1);
  std::vector<std::string> shard_payloads(reader->config().num_shards);
  ServiceStateImage state;
  bool saw_state = false;
  for (;;) {
    CheckpointReader::Piece piece;
    auto status = reader->Next(&piece);
    ASSERT_TRUE(status.ok()) << status.ToString();
    if (piece.done) break;
    if (piece.service_state) {
      state = piece.state;
      saw_state = true;
      continue;
    }
    shard_payloads[piece.shard].append(piece.bytes);
  }
  ASSERT_TRUE(saw_state);
  AppendServiceStateRecord(state, &v1);
  for (const std::string& payload : shard_payloads) {
    AppendShardRecord(payload, &v1);
  }
  FinishCheckpoint(static_cast<uint32_t>(shard_payloads.size()), &v1);
  ASSERT_TRUE(util::WriteFileAtomic(path, v1).ok());
}

// Re-stamps a WAL's header record with format version 1 (the record layout
// never changed across the version bump; only the stamp moves).
void DownConvertWalToV1(const std::string& path) {
  auto buffer = util::ReadFileToString(path);
  ASSERT_TRUE(buffer.ok()) << buffer.status().ToString();
  util::RecordCursor cursor(*buffer);
  util::RecordView record;
  ASSERT_TRUE(cursor.Next(&record));
  ASSERT_EQ(record.type, static_cast<uint8_t>(WalRecordType::kWalHeader));
  auto header = DecodeWalHeader(record.payload);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  std::string payload;
  EncodeWalHeader(header->sequence, header->config, &payload, /*version=*/1);
  std::string v1;
  util::AppendRecord(static_cast<uint8_t>(WalRecordType::kWalHeader), payload,
                     &v1);
  // Everything after the header record rides along byte for byte.
  v1.append(buffer->substr(util::kRecordHeaderSize + record.payload.size()));
  ASSERT_TRUE(util::WriteFileAtomic(path, v1).ok());
}

// A durable directory written entirely in the old format — monolithic
// snapshot blobs, v1 version stamps — must restore bit-identically through
// the streaming reader, fall back across v1 generations, and keep
// appending (the recovered service continues the history in the current
// format).
TEST(DurabilityTest, OldFormatV1GenerationsRestoreBitForBit) {
  const std::string dir = FreshDir("durability_v1_compat");
  const MultiObjectTrace trace = TestTrace(4000);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ServiceOptions options;
  options.num_shards = 4;

  StateImage expected;
  {
    ObjectService service(trace.num_processors, sc, options);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    std::span<const MultiObjectEvent> events(trace.events);
    ASSERT_TRUE(service.ServeBatch(events.first(2500)).ok());
    ASSERT_TRUE(service.Checkpoint().ok());
    ASSERT_TRUE(service.ServeBatch(events.subspan(2500)).ok());
    expected = Capture(service);
  }

  // Rewrite every durable file the old writer would have produced: both
  // retained snapshot generations and both WALs.
  DownConvertCheckpointToV1(dir + "/" + CheckpointFileName(1));
  DownConvertCheckpointToV1(dir + "/" + CheckpointFileName(2));
  DownConvertWalToV1(dir + "/" + WalFileName(1));
  DownConvertWalToV1(dir + "/" + WalFileName(2));

  RecoveryReport report;
  auto recovered = ObjectService::Recover(dir, {}, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
  EXPECT_EQ(report.checkpoint_sequence, 2u);
  EXPECT_FALSE(report.fell_back);

  // Corrupt the newest v1 snapshot: recovery falls back to the older v1
  // generation and replays both v1 WALs to the same state.
  {
    std::fstream file(dir + "/" + CheckpointFileName(2),
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(200);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);  // guaranteed to differ
    file.seekp(200);
    file.write(&byte, 1);
  }
  auto fallback = ObjectService::Recover(dir, {}, &report);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(Capture(*fallback), expected);
  EXPECT_EQ(report.checkpoint_sequence, 1u);
  EXPECT_TRUE(report.fell_back);

  // The recovered service keeps the history appendable in the new format.
  ASSERT_TRUE(fallback
                  ->ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                                   .first(300))
                  .ok());
  const StateImage continued = Capture(*fallback);
  { ObjectService drop = std::move(*fallback); }
  auto again = ObjectService::Recover(dir);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(Capture(*again), continued);
}

// --- Torn-write sweep ---------------------------------------------------

// Truncate the final WAL at *every* byte offset and recover. Each offset
// must yield exactly the state after some event prefix — never a mix, never
// silent acceptance of garbage — and the prefix length must be monotone in
// the offset.
TEST(DurabilityTest, TruncateAtEveryOffsetRecoversAConsistentPrefix) {
  const std::string dir = FreshDir("durability_sweep");
  const MultiObjectTrace trace = TestTrace(160, 7, 8);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  // Reference images after every event count 0..N (durability off).
  std::vector<StateImage> prefix(trace.events.size() + 1);
  {
    ObjectService service(trace.num_processors, sc);
    RegisterObjects(service, trace.num_objects, TestConfig());
    prefix[0] = Capture(service);
    for (size_t i = 0; i < trace.events.size(); ++i) {
      ASSERT_TRUE(
          service.Serve(trace.events[i].object, trace.events[i].request)
              .ok());
      prefix[i + 1] = Capture(service);
    }
  }

  // Durable run, one event per logged batch, no checkpoint after arming.
  // Objects are registered *before* arming so they live in the generation-1
  // snapshot and the WAL holds events only — each truncation offset then
  // corresponds exactly to an event-count prefix.
  {
    ObjectService service(trace.num_processors, sc);
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    for (const MultiObjectEvent& event : trace.events) {
      ASSERT_TRUE(service.Serve(event.object, event.request).ok());
    }
  }
  {
    auto size = util::FileSize(dir + "/wal-1.log");
    ASSERT_TRUE(size.ok());
    const std::string scratch = ::testing::TempDir() + "/durability_sweep_at";
    size_t last_events = 0;
    bool past_header = false;
    for (uint64_t offset = 0; offset <= *size; ++offset) {
      CopyDir(dir, scratch);
      ASSERT_TRUE(
          util::TruncateFile(scratch + "/wal-1.log", offset).ok());
      RecoveryReport report;
      auto recovered = ObjectService::Recover(scratch, {}, &report);
      if (!recovered.ok()) {
        // Only legitimate below the synced header (a state no real crash
        // can produce, since the header hits disk before the manifest).
        ASSERT_FALSE(past_header)
            << "offset " << offset << ": " << recovered.status().ToString();
        continue;
      }
      past_header = true;
      const size_t events = report.events_replayed;
      ASSERT_LE(events, trace.events.size()) << "offset " << offset;
      ASSERT_GE(events, last_events) << "offset " << offset
                                     << ": prefix must be monotone";
      last_events = events;
      EXPECT_EQ(Capture(*recovered), prefix[events])
          << "offset " << offset << " recovered a non-prefix state";
      if (offset == *size) {
        EXPECT_FALSE(report.torn_tail) << "untruncated log has no torn tail";
      } else if (report.torn_tail) {
        EXPECT_GT(report.torn_bytes_truncated, 0u) << "offset " << offset;
      }
    }
    EXPECT_EQ(last_events, trace.events.size());
  }
}

// A torn tail is physically truncated at recovery; appending afterwards
// produces a log that recovers cleanly again.
TEST(DurabilityTest, TornTailTruncatedThenAppendable) {
  const std::string dir = FreshDir("durability_torn_append");
  const MultiObjectTrace trace = TestTrace(300, 21, 8);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(
        service
            .ServeBatch(
                std::span<const MultiObjectEvent>(trace.events).first(200))
            .ok());
  }
  auto size = util::FileSize(dir + "/wal-1.log");
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(util::TruncateFile(dir + "/wal-1.log", *size - 5).ok());

  RecoveryReport report;
  {
    auto recovered = ObjectService::Recover(dir, {}, &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(report.torn_tail);
    EXPECT_GT(report.torn_bytes_truncated, 0u);
    ASSERT_TRUE(recovered
                    ->ServeBatch(
                        std::span<const MultiObjectEvent>(trace.events)
                            .subspan(200))
                    .ok());
  }
  RecoveryReport second;
  auto again = ObjectService::Recover(dir, {}, &second);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_FALSE(second.torn_tail) << "tail was truncated on first recovery";
}

// --- Corruption and fallback --------------------------------------------

TEST(DurabilityTest, CorruptNewestCheckpointFallsBackToPrevious) {
  const std::string dir = FreshDir("durability_fallback");
  const MultiObjectTrace trace = TestTrace(2000);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  StateImage expected;
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    std::span<const MultiObjectEvent> events(trace.events);
    ASSERT_TRUE(service.ServeBatch(events.first(1200)).ok());
    ASSERT_TRUE(service.Checkpoint().ok());  // generation 2
    ASSERT_TRUE(service.ServeBatch(events.subspan(1200)).ok());
    expected = Capture(service);
  }
  // Flip one byte in the middle of the newest snapshot.
  {
    std::fstream file(dir + "/checkpoint-2.ckpt",
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(200);
    char byte = 0x5a;
    file.write(&byte, 1);
  }
  RecoveryReport report;
  auto recovered = ObjectService::Recover(dir, {}, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.fell_back);
  EXPECT_EQ(report.checkpoint_sequence, 1u);
  EXPECT_EQ(report.manifest_sequence, 2u);
  EXPECT_FALSE(report.warnings.empty());
  // Generation 1 + wal-1 + wal-2 replays the *same* history.
  EXPECT_EQ(Capture(*recovered), expected);
}

TEST(DurabilityTest, CorruptWalInteriorIsAnErrorNotSilentLoss) {
  const std::string dir = FreshDir("durability_corrupt_wal");
  const MultiObjectTrace trace = TestTrace(500);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(
        service.ServeBatch(std::span<const MultiObjectEvent>(trace.events))
            .ok());
  }
  // Flip a payload byte of an interior record: the record still frames
  // (later records parse), so this is corruption inside the valid prefix —
  // acknowledged history is damaged and recovery must refuse, not quietly
  // drop the tail.
  auto size = util::FileSize(dir + "/wal-1.log");
  ASSERT_TRUE(size.ok());
  {
    std::fstream file(dir + "/wal-1.log",
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekp(static_cast<std::streamoff>(*size / 2));
    char byte = 0x77;
    file.write(&byte, 1);
  }
  RecoveryReport report;
  auto recovered = ObjectService::Recover(dir, {}, &report);
  ASSERT_FALSE(recovered.ok());
  EXPECT_FALSE(ObjectService::VerifyDurableDir(dir, &report).ok());
}

TEST(DurabilityTest, MissingManifestRecoversByScanAndRepublishes) {
  const std::string dir = FreshDir("durability_no_manifest");
  const MultiObjectTrace trace = TestTrace(800);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  StateImage expected;
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(
        service.ServeBatch(std::span<const MultiObjectEvent>(trace.events))
            .ok());
    ASSERT_TRUE(service.Checkpoint().ok());
    expected = Capture(service);
  }
  ASSERT_TRUE(util::RemoveFile(dir + "/MANIFEST").ok());
  RecoveryReport report;
  auto recovered = ObjectService::Recover(dir, {}, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.manifest_missing);
  EXPECT_FALSE(report.warnings.empty());
  EXPECT_EQ(Capture(*recovered), expected);
  // Recover republished the commit point.
  EXPECT_TRUE(util::FileExists(dir + "/MANIFEST"));
  auto verify = ObjectService::VerifyDurableDir(dir, &report);
  EXPECT_TRUE(verify.ok()) << verify.ToString();
  EXPECT_FALSE(report.manifest_missing);
}

TEST(DurabilityTest, EmptyDirectoryIsNotFound) {
  const std::string dir = FreshDir("durability_empty");
  auto recovered = ObjectService::Recover(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), util::StatusCode::kNotFound);
}

// --- Checkpoint rotation and GC -----------------------------------------

TEST(DurabilityTest, CheckpointRotationGarbageCollectsOldGenerations) {
  const std::string dir = FreshDir("durability_gc");
  const MultiObjectTrace trace = TestTrace(2500);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ObjectService service(trace.num_processors, sc);
  ASSERT_TRUE(service.EnableDurability(dir).ok());
  RegisterObjects(service, trace.num_objects, TestConfig());
  std::span<const MultiObjectEvent> events(trace.events);
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(service.ServeBatch(events.subspan(
                            static_cast<size_t>(round) * 500, 500))
                    .ok());
    ASSERT_TRUE(service.Checkpoint().ok());
  }
  // Generations 1..4 are beyond keep_generations=2; 5 and 6 remain.
  EXPECT_FALSE(util::FileExists(dir + "/checkpoint-4.ckpt"));
  EXPECT_FALSE(util::FileExists(dir + "/wal-4.log"));
  EXPECT_TRUE(util::FileExists(dir + "/checkpoint-5.ckpt"));
  EXPECT_TRUE(util::FileExists(dir + "/checkpoint-6.ckpt"));
  EXPECT_TRUE(util::FileExists(dir + "/wal-6.log"));
  const StateImage expected = Capture(service);
  auto recovered = ObjectService::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
}

// --- Fault-mode histories -----------------------------------------------

TEST(DurabilityTest, FaultModeHistoryRecoversBitForBit) {
  const MultiObjectTrace trace = TestTrace(3000, 42);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  FaultInjectorOptions fault_options;
  fault_options.seed = 7;
  fault_options.crash_rate = 0.002;
  fault_options.recover_rate = 0.02;
  fault_options.control_loss_rate = 0.01;
  fault_options.data_loss_rate = 0.01;
  FaultSchedule schedule = {FaultEvent::Crash(100, 3),
                            FaultEvent::Recover(900, 3),
                            FaultEvent::Crash(2200, 5)};

  auto run_reference = [&]() {
    ObjectService service(trace.num_processors, sc);
    RegisterObjects(service, trace.num_objects, TestConfig());
    EXPECT_TRUE(service.EnableFaults(fault_options, schedule).ok());
    EXPECT_TRUE(service.Crash(6).ok());
    EXPECT_TRUE(
        service
            .ServeBatch(
                std::span<const MultiObjectEvent>(trace.events).first(1500))
            .ok());
    EXPECT_TRUE(service.Recover(6).ok());
    service.RepairDegraded();
    EXPECT_TRUE(service
                    .ServeBatch(std::span<const MultiObjectEvent>(
                                    trace.events)
                                    .subspan(1500))
                    .ok());
    return Capture(service);
  };
  const StateImage expected = run_reference();

  const std::string dir = FreshDir("durability_faulty");
  DurabilityOptions durability;
  durability.checkpoint_interval_events = 700;
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir, durability).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(service.EnableFaults(fault_options, schedule).ok());
    ASSERT_TRUE(service.Crash(6).ok());
    ASSERT_TRUE(
        service
            .ServeBatch(
                std::span<const MultiObjectEvent>(trace.events).first(1500))
            .ok());
    // Crash the host mid-history: destructor, no sync, no checkpoint.
  }
  auto recovered = ObjectService::Recover(dir, durability);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered->faults_enabled());
  ASSERT_TRUE(recovered->Recover(6).ok());
  recovered->RepairDegraded();
  ASSERT_TRUE(recovered
                  ->ServeBatch(std::span<const MultiObjectEvent>(
                                   trace.events)
                                   .subspan(1500))
                  .ok());
  EXPECT_EQ(Capture(*recovered), expected);
}

// --- Preconditions and edge cases ---------------------------------------

TEST(DurabilityTest, AdaptiveObjectsRefuseDurability) {
  const std::string dir = FreshDir("durability_adaptive");
  ObjectService service(4, CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.AddObject(1, TestConfig(AlgorithmKind::kAdaptive)).ok());
  auto status = service.EnableDurability(dir);
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);

  // And under durability, registering one is refused up front — it must
  // never reach the WAL, where it would poison replay.
  ObjectService clean(4, CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(clean.EnableDurability(dir).ok());
  EXPECT_EQ(clean.AddObject(1, TestConfig(AlgorithmKind::kAdaptive)).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(clean.durability_enabled()) << "refusal must not detach";
  ASSERT_TRUE(clean.AddObject(2, TestConfig()).ok());
}

TEST(DurabilityTest, RejectedRegistrationIsNotLogged) {
  const std::string dir = FreshDir("durability_bad_add");
  ObjectService service(4, CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.EnableDurability(dir).ok());
  ASSERT_TRUE(service.AddObject(1, TestConfig()).ok());
  // Duplicate id and invalid scheme both fail before the WAL sees them.
  EXPECT_FALSE(service.AddObject(1, TestConfig()).ok());
  ObjectConfig bad = TestConfig();
  bad.initial_scheme = ProcessorSet{};
  EXPECT_FALSE(service.AddObject(2, bad).ok());
  ASSERT_TRUE(service.Serve(1, model::Request::Write(0)).ok());
  const StateImage expected = Capture(service);
  { ObjectService drop = std::move(service); }
  auto recovered = ObjectService::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
}

TEST(DurabilityTest, DisableThenEnableStartsAFreshHistory) {
  const std::string dir = FreshDir("durability_restart");
  const MultiObjectTrace trace = TestTrace(400);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ObjectService service(trace.num_processors, sc);
  ASSERT_TRUE(service.EnableDurability(dir).ok());
  RegisterObjects(service, trace.num_objects, TestConfig());
  ASSERT_TRUE(
      service
          .ServeBatch(
              std::span<const MultiObjectEvent>(trace.events).first(200))
          .ok());
  ASSERT_TRUE(service.DisableDurability().ok());
  EXPECT_FALSE(service.durability_enabled());
  // Un-logged traffic...
  ASSERT_TRUE(service
                  .ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                                  .subspan(200, 100))
                  .ok());
  // ...then a fresh history snapshots the *current* state, including it.
  ASSERT_TRUE(service.EnableDurability(dir).ok());
  ASSERT_TRUE(service
                  .ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                                  .subspan(300))
                  .ok());
  const StateImage expected = Capture(service);
  { ObjectService drop = std::move(service); }
  auto recovered = ObjectService::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
}

TEST(DurabilityTest, SyncAndCheckpointRequireDurability) {
  ObjectService service(4, CostModel::StationaryComputing(0.25, 1.0));
  EXPECT_EQ(service.Checkpoint().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.SyncDurable().code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.DisableDurability().code(),
            util::StatusCode::kFailedPrecondition);
}

TEST(DurabilityTest, RecoveryReportToStringMentionsTheEssentials) {
  const std::string dir = FreshDir("durability_report");
  ObjectService service(4, CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.EnableDurability(dir).ok());
  ASSERT_TRUE(service.AddObject(1, TestConfig()).ok());
  ASSERT_TRUE(service.Serve(1, model::Request::Read(2)).ok());
  // The WAL is appended asynchronously; an external reader (here, the
  // verify pass on the live directory) only sees what has been synced.
  ASSERT_TRUE(service.SyncDurable().ok());
  RecoveryReport report;
  ASSERT_TRUE(ObjectService::VerifyDurableDir(dir, &report).ok());
  const std::string text = report.ToString();
  EXPECT_NE(text.find("generation"), std::string::npos) << text;
  EXPECT_EQ(report.events_replayed, 1u);
  EXPECT_EQ(report.objects_restored, 0u);
}

// --- Delta checkpoints --------------------------------------------------

// Serve with delta checkpointing on, snapshot the directory after every
// checkpoint, and recover every one of those crash images: each must land
// bit-identically on the state at its checkpoint, mid-chain prefixes
// included, and recovering must work with the manifest deleted (the scan
// now has to find delta generations too). Each recovered service then
// serves the rest of the trace and must match the uninterrupted run.
TEST(DurabilityTest, DeltaChainRecoversAtEveryPrefix) {
  const MultiObjectTrace trace = TestTrace(2400);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const size_t kSlice = 300;
  const size_t slices = trace.events.size() / kSlice;

  // Reference: undurable run, capturing the state at every slice boundary.
  std::vector<StateImage> at_slice(slices);
  StateImage final_expected;
  {
    ObjectService reference(trace.num_processors, sc);
    RegisterObjects(reference, trace.num_objects, TestConfig());
    std::span<const MultiObjectEvent> events(trace.events);
    for (size_t i = 0; i < slices; ++i) {
      ASSERT_TRUE(reference.ServeBatch(events.subspan(i * kSlice, kSlice))
                      .ok());
      at_slice[i] = Capture(reference);
    }
    final_expected = Capture(reference);
  }

  const std::string dir = FreshDir("durability_delta_chain");
  DurabilityOptions durability;
  durability.delta_chain_limit = 3;  // gen 2,3,4 delta; gen 5 full; ...
  durability.keep_generations = 16;  // keep everything; copies stay whole
  {
    ObjectService service(trace.num_processors, sc);
    RegisterObjects(service, trace.num_objects, TestConfig());
    ASSERT_TRUE(service.EnableDurability(dir, durability).ok());
    std::span<const MultiObjectEvent> events(trace.events);
    for (size_t i = 0; i < slices; ++i) {
      ASSERT_TRUE(service.ServeBatch(events.subspan(i * kSlice, kSlice))
                      .ok());
      ASSERT_TRUE(service.Checkpoint().ok());
      CopyDir(dir, dir + "_at" + std::to_string(i));
    }
  }
  // The chain policy must actually have produced deltas *and* compacted:
  // with limit 3, generations 2..4 are deltas, 5 is full again.
  EXPECT_TRUE(util::FileExists(dir + "/" + DeltaCheckpointFileName(2)));
  EXPECT_TRUE(util::FileExists(dir + "/" + DeltaCheckpointFileName(4)));
  EXPECT_TRUE(util::FileExists(dir + "/" + CheckpointFileName(5)));
  EXPECT_FALSE(util::FileExists(dir + "/" + DeltaCheckpointFileName(5)));

  // Pristine image for the manifest-loss scenario below — the recovery
  // loop appends the continuation traffic into each _at copy, so take this
  // one before any of them is recovered.
  CopyDir(dir + "_at2", dir + "_noman");  // generation 4 = delta
  ASSERT_TRUE(util::RemoveFile(dir + "_noman/MANIFEST").ok());

  bool saw_delta_recovery = false;
  for (size_t i = 0; i < slices; ++i) {
    SCOPED_TRACE("checkpoint copy " + std::to_string(i));
    const std::string copy = dir + "_at" + std::to_string(i);
    RecoveryReport report;
    auto recovered = ObjectService::Recover(copy, durability, &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(Capture(*recovered), at_slice[i]);
    if (report.delta_checkpoints_applied > 0) saw_delta_recovery = true;
    // Serving must continue seamlessly on the delta-restored state.
    if ((i + 1) * kSlice < trace.events.size()) {
      ASSERT_TRUE(recovered
                      ->ServeBatch(std::span<const MultiObjectEvent>(
                                       trace.events)
                                       .subspan((i + 1) * kSlice))
                      .ok());
    }
    EXPECT_EQ(Capture(*recovered), final_expected);
  }
  EXPECT_TRUE(saw_delta_recovery)
      << "no copy exercised the delta-apply path";

  // Manifest loss with a delta generation on top: the directory scan must
  // offer delta generations as candidates, not just the last full one.
  {
    RecoveryReport report;
    auto recovered =
        ObjectService::Recover(dir + "_noman", durability, &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(report.manifest_missing);
    EXPECT_GT(report.delta_checkpoints_applied, 0u);
    EXPECT_EQ(Capture(*recovered), at_slice[2]);
  }
}

// --- Group commit under crash -------------------------------------------

// sync_every_batch with the async writer: LogBatch blocks on WaitDurable
// before the batch externalizes, so a crash image taken at any point
// between calls (here: a literal copy of the live directory, the moral
// equivalent of SIGKILL) contains every acknowledged batch, exactly.
TEST(DurabilityTest, SyncEveryBatchCrashImageLosesNothing) {
  const MultiObjectTrace trace = TestTrace(600, 31, 8);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const std::string dir = FreshDir("durability_synced_crash");
  DurabilityOptions durability;
  durability.sync_every_batch = true;
  durability.group_commit_delay_us = 50000;  // the waiter must force seals

  ObjectService service(trace.num_processors, sc);
  RegisterObjects(service, trace.num_objects, TestConfig());
  ASSERT_TRUE(service.EnableDurability(dir, durability).ok());
  std::span<const MultiObjectEvent> events(trace.events);
  for (size_t served = 0; served < events.size(); served += 150) {
    ASSERT_TRUE(service.ServeBatch(events.subspan(served, 150)).ok());
    const StateImage expected = Capture(service);
    const std::string crash = dir + "_img";
    CopyDir(dir, crash);  // the service is still live and unsynced
    auto recovered = ObjectService::Recover(crash, durability);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ(Capture(*recovered), expected)
        << "acknowledged batches lost at event " << served + 150;
  }
}

// Default (async group commit) mode: crash images taken mid-history are
// allowed to miss the un-synced suffix but must always recover a monotone
// event-count *prefix* — never a torn mixture. Tiny groups make the image
// points land across many group-commit boundaries.
TEST(DurabilityTest, AsyncGroupCommitCrashImagesRecoverPrefixes) {
  const MultiObjectTrace trace = TestTrace(160, 13, 8);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  std::vector<StateImage> prefix(trace.events.size() + 1);
  {
    ObjectService reference(trace.num_processors, sc);
    RegisterObjects(reference, trace.num_objects, TestConfig());
    prefix[0] = Capture(reference);
    for (size_t i = 0; i < trace.events.size(); ++i) {
      ASSERT_TRUE(reference
                      .Serve(trace.events[i].object,
                             trace.events[i].request)
                      .ok());
      prefix[i + 1] = Capture(reference);
    }
  }

  const std::string dir = FreshDir("durability_async_crash");
  DurabilityOptions durability;
  durability.group_commit_bytes = 128;  // a few records per group
  durability.group_commit_delay_us = 200;
  ObjectService service(trace.num_processors, sc);
  RegisterObjects(service, trace.num_objects, TestConfig());
  ASSERT_TRUE(service.EnableDurability(dir, durability).ok());
  size_t floor_events = 0;
  for (size_t i = 0; i < trace.events.size(); ++i) {
    ASSERT_TRUE(
        service.Serve(trace.events[i].object, trace.events[i].request)
            .ok());
    if (i % 7 != 6) continue;
    const std::string crash = dir + "_img";
    CopyDir(dir, crash);  // may catch the log thread mid-group
    RecoveryReport report;
    auto recovered = ObjectService::Recover(crash, durability, &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    const size_t events = report.events_replayed;
    ASSERT_LE(events, i + 1);
    ASSERT_GE(events, floor_events) << "durable prefix went backwards";
    floor_events = events;
    EXPECT_EQ(Capture(*recovered), prefix[events])
        << "crash image after event " << i << " is not a prefix";
  }
  // Once synced, everything must be there.
  ASSERT_TRUE(service.SyncDurable().ok());
  const std::string crash = dir + "_img";
  CopyDir(dir, crash);
  RecoveryReport report;
  auto recovered = ObjectService::Recover(crash, durability, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.events_replayed, trace.events.size());
  EXPECT_EQ(Capture(*recovered), prefix[trace.events.size()]);
}

// --- Parallel replay ----------------------------------------------------

// Replay must be bit-identical however it is scheduled: serial
// record-by-record (replay_batch_events = 0), tiny coalesced super-batches
// (7), and the default (32768), across shard counts and thread counts.
TEST(DurabilityTest, ReplayCoalescingBitIdenticalAcrossShardsAndThreads) {
  const MultiObjectTrace trace = TestTrace(3000);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  ObjectService reference(trace.num_processors, sc);
  RegisterObjects(reference, trace.num_objects, TestConfig());
  ASSERT_TRUE(reference
                  .ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                                  .first(2200))
                  .ok());
  const StateImage expected = Capture(reference);

  for (int shards : {1, 4, 16}) {
    const std::string dir =
        FreshDir("durability_replay_grid_" + std::to_string(shards));
    ServiceOptions options;
    options.num_shards = shards;
    {
      ObjectService service(trace.num_processors, sc, options);
      ASSERT_TRUE(service.EnableDurability(dir).ok());
      RegisterObjects(service, trace.num_objects, TestConfig());
      ASSERT_TRUE(
          service
              .ServeBatch(std::span<const MultiObjectEvent>(trace.events)
                              .first(2200))
              .ok());
      // Destructor flushes; the WAL tail is the whole 2200-event history.
    }
    for (int threads : {1, 2, util::GlobalThreads()}) {
      for (size_t coalesce : {size_t{0}, size_t{7}, size_t{32768}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) +
                     " replay_batch_events=" + std::to_string(coalesce));
        ScopedThreads scope(threads);
        DurabilityOptions durability;
        durability.replay_batch_events = coalesce;
        auto recovered = ObjectService::Recover(dir, durability);
        ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
        EXPECT_EQ(Capture(*recovered), expected);
      }
    }
  }
}

// Coalescing stops at fault-control records and while the injector is
// armed — batch boundaries are the rejection unit there. A history that
// interleaves fault windows with traffic must replay identically with
// coalescing off and on.
TEST(DurabilityTest, FaultModeReplayCoalescingMatchesSerial) {
  const MultiObjectTrace trace = TestTrace(1200);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const std::string dir = FreshDir("durability_fault_coalesce");
  {
    ObjectService service(trace.num_processors, sc);
    ASSERT_TRUE(service.EnableDurability(dir).ok());
    RegisterObjects(service, trace.num_objects, TestConfig());
    std::span<const MultiObjectEvent> events(trace.events);
    ASSERT_TRUE(service.ServeBatch(events.first(400)).ok());
    FaultInjectorOptions fault_options;
    fault_options.seed = 1234;
    fault_options.crash_rate = 0.02;
    fault_options.recover_rate = 0.5;
    fault_options.data_loss_rate = 0.05;
    ASSERT_TRUE(service.EnableFaults(fault_options, {}).ok());
    for (size_t pos = 400; pos < 800; pos += 50) {
      auto result = service.ServeBatch(events.subspan(pos, 50));
      ASSERT_TRUE(result.ok() ||
                  result.status().code() ==
                      util::StatusCode::kUnavailable);
    }
    service.DisableFaults();
    service.RepairDegraded();
    ASSERT_TRUE(service.ServeBatch(events.subspan(800)).ok());
  }
  DurabilityOptions serial;
  serial.replay_batch_events = 0;
  auto serial_recovered = ObjectService::Recover(dir, serial);
  ASSERT_TRUE(serial_recovered.ok())
      << serial_recovered.status().ToString();
  DurabilityOptions coalesced;
  coalesced.replay_batch_events = 32768;
  auto coalesced_recovered = ObjectService::Recover(dir, coalesced);
  ASSERT_TRUE(coalesced_recovered.ok())
      << coalesced_recovered.status().ToString();
  EXPECT_EQ(Capture(*serial_recovered), Capture(*coalesced_recovered));
}

}  // namespace
}  // namespace objalloc::core
