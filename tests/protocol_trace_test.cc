// Message-level protocol conformance: with tracing enabled, the simulator
// must emit exactly the wire sequences the paper's algorithm descriptions
// imply — request/transfer pairs for reads, propagate+invalidate fans for
// writes, query/reply rounds for quorum consensus.

#include <gtest/gtest.h>

#include "objalloc/sim/simulator.h"

namespace objalloc::sim {
namespace {

using util::ProcessorSet;

SimulatorOptions MakeOptions(ProtocolKind kind, int n = 5) {
  SimulatorOptions options;
  options.protocol = kind;
  options.num_processors = n;
  options.initial_scheme = ProcessorSet{0, 1};
  return options;
}

std::vector<MessageType> Types(const std::vector<Network::TraceEntry>& trace) {
  std::vector<MessageType> types;
  for (const auto& entry : trace) types.push_back(entry.message.type);
  return types;
}

TEST(ProtocolTraceTest, SaLocalReadSendsNothing) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitRead(0).ok);
  EXPECT_TRUE(sim.message_trace().empty());
}

TEST(ProtocolTraceTest, SaRemoteReadIsRequestThenReply) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitRead(3).ok);
  const auto& trace = sim.message_trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].message.type, MessageType::kReadRequest);
  EXPECT_EQ(trace[0].message.src, 3);
  EXPECT_EQ(trace[1].message.type, MessageType::kObjectReply);
  EXPECT_EQ(trace[1].message.dst, 3);
  EXPECT_EQ(trace[1].message.src, trace[0].message.dst);
}

TEST(ProtocolTraceTest, SaWriteFansOutToTheScheme) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitWrite(3, 7).ok);
  const auto& trace = sim.message_trace();
  ASSERT_EQ(trace.size(), 2u);  // one kObjectPropagate per member of Q
  for (const auto& entry : trace) {
    EXPECT_EQ(entry.message.type, MessageType::kObjectPropagate);
    EXPECT_EQ(entry.message.src, 3);
    EXPECT_EQ(entry.message.version, 1);
  }
  EXPECT_NE(trace[0].message.dst, trace[1].message.dst);
}

TEST(ProtocolTraceTest, DaSavingReadThenInvalidateOnWrite) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitRead(3).ok);  // join via F = {0}
  {
    const auto& trace = sim.message_trace();
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[0].message.type, MessageType::kReadRequest);
    EXPECT_EQ(trace[0].message.dst, 0);
    EXPECT_EQ(trace[1].message.type, MessageType::kObjectReply);
  }
  sim.ClearMessageTrace();
  ASSERT_TRUE(sim.SubmitWrite(0, 9).ok);  // F member writes
  const auto& trace = sim.message_trace();
  // Propagate to p (1), invalidate joiner 3 — exactly two messages.
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].message.type, MessageType::kObjectPropagate);
  EXPECT_EQ(trace[0].message.dst, 1);
  EXPECT_EQ(trace[1].message.type, MessageType::kInvalidate);
  EXPECT_EQ(trace[1].message.dst, 3);
  EXPECT_EQ(trace[1].message.origin, 0) << "invalidation names the writer";
}

TEST(ProtocolTraceTest, DaOutsideWriteInvalidatesTheFloatingMember) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitWrite(4, 9).ok);  // scheme {0,1} -> {0,4}
  auto types = Types(sim.message_trace());
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], MessageType::kObjectPropagate);  // to F member 0
  EXPECT_EQ(types[1], MessageType::kInvalidate);       // to p = 1
  EXPECT_EQ(sim.message_trace()[1].message.dst, 1);
}

TEST(ProtocolTraceTest, QuorumReadIsScanThenFetch) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum));
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitRead(4).ok);
  auto types = Types(sim.message_trace());
  // 4 version queries + 4 replies + request + object reply.
  ASSERT_EQ(types.size(), 10u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(types[static_cast<size_t>(k)], MessageType::kVersionQuery);
  }
  int replies = 0, requests = 0, objects = 0;
  for (size_t k = 4; k < types.size(); ++k) {
    replies += types[k] == MessageType::kVersionReply;
    requests += types[k] == MessageType::kReadRequest;
    objects += types[k] == MessageType::kObjectReply;
  }
  EXPECT_EQ(replies, 4);
  EXPECT_EQ(requests, 1);
  EXPECT_EQ(objects, 1);
}

TEST(ProtocolTraceTest, FailoverBroadcastsModeSwitchFirst) {
  Simulator sim(MakeOptions(ProtocolKind::kDynamic));
  sim.Crash(0);  // the single F member
  sim.EnableMessageTrace(4096);
  ASSERT_TRUE(sim.SubmitWrite(2, 5).ok);
  const auto& trace = sim.message_trace();
  // After the failed propagate, the kModeSwitch broadcast must precede any
  // quorum traffic so no node serves a stale normal-mode read.
  size_t first_switch = trace.size(), first_query = trace.size();
  for (size_t k = 0; k < trace.size(); ++k) {
    if (trace[k].message.type == MessageType::kModeSwitch) {
      first_switch = std::min(first_switch, k);
    }
    if (trace[k].message.type == MessageType::kVersionQuery) {
      first_query = std::min(first_query, k);
    }
  }
  ASSERT_LT(first_switch, trace.size());
  ASSERT_LT(first_query, trace.size());
  EXPECT_LT(first_switch, first_query);
}

TEST(ProtocolTraceTest, DroppedMessagesAreMarked) {
  Simulator sim(MakeOptions(ProtocolKind::kStatic));
  sim.Crash(0);
  sim.EnableMessageTrace();
  ASSERT_TRUE(sim.SubmitRead(3).ok);  // first try 0 (down), then 1
  const auto& trace = sim.message_trace();
  ASSERT_GE(trace.size(), 3u);
  EXPECT_FALSE(trace[0].delivered);
  EXPECT_EQ(trace[0].message.dst, 0);
  EXPECT_TRUE(trace[1].delivered);
}

TEST(ProtocolTraceTest, TraceCapacityIsBounded) {
  Simulator sim(MakeOptions(ProtocolKind::kQuorum));
  sim.EnableMessageTrace(/*capacity=*/4);
  ASSERT_TRUE(sim.SubmitRead(4).ok);  // 10 messages
  EXPECT_EQ(sim.message_trace().size(), 4u);
  // The retained entries are the most recent ones.
  EXPECT_EQ(sim.message_trace().back().message.type,
            MessageType::kObjectReply);
}

}  // namespace
}  // namespace objalloc::sim
