#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/lookahead_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/model/legality.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

TEST(LookaheadTest, FullLookaheadEqualsOfflineOpt) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload uniform(0.7);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Schedule schedule = uniform.Generate(6, 50, seed);
    LookaheadAllocation oracle(sc, static_cast<int>(schedule.size()));
    oracle.Prime(schedule);
    double cost = RunWithCost(oracle, sc, schedule, ProcessorSet{0, 1}).cost;
    EXPECT_NEAR(cost, opt::ExactOptCost(sc, schedule, ProcessorSet{0, 1}),
                1e-9)
        << "seed " << seed;
  }
}

TEST(LookaheadTest, ProducesLegalTAvailableSchedules) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload uniform(0.6);
  for (int k : {1, 2, 8}) {
    Schedule schedule = uniform.Generate(6, 60, 9);
    LookaheadAllocation lookahead(sc, k);
    lookahead.Prime(schedule);
    auto allocation = RunAlgorithm(lookahead, schedule, ProcessorSet{0, 1});
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 2).ok())
        << "k=" << k;
  }
}

TEST(LookaheadTest, CostNeverBelowOpt) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload uniform(0.7);
  Schedule schedule = uniform.Generate(6, 60, 4);
  double opt = opt::ExactOptCost(sc, schedule, ProcessorSet{0, 1});
  for (int k : {1, 2, 4, 16}) {
    LookaheadAllocation lookahead(sc, k);
    lookahead.Prime(schedule);
    double cost =
        RunWithCost(lookahead, sc, schedule, ProcessorSet{0, 1}).cost;
    EXPECT_GE(cost, opt - 1e-9) << "k=" << k;
  }
}

TEST(LookaheadTest, MoreLookaheadHelpsOnAverage) {
  // Per-schedule monotonicity does not hold for receding-horizon control,
  // but averaged over an ensemble more foresight must not hurt much and
  // the extremes must order strictly.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload uniform(0.7);
  double total_k1 = 0, total_k8 = 0, total_full = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Schedule schedule = uniform.Generate(6, 60, seed);
    auto cost_at = [&](int k) {
      LookaheadAllocation lookahead(sc, k);
      lookahead.Prime(schedule);
      return RunWithCost(lookahead, sc, schedule, ProcessorSet{0, 1}).cost;
    };
    total_k1 += cost_at(1);
    total_k8 += cost_at(8);
    total_full += cost_at(60);
  }
  EXPECT_GE(total_k1, total_k8);
  EXPECT_GE(total_k8, total_full);
  EXPECT_GT(total_k1, total_full);
}

TEST(LookaheadTest, WindowOptBeatsPlainDaOnItsNemesis) {
  // The join-churn pattern that hurts DA is transparent to even modest
  // lookahead: the allocator sees the write coming and skips the save.
  CostModel sc = CostModel::StationaryComputing(0.1, 0.2);
  Schedule schedule(6);
  for (int round = 0; round < 15; ++round) {
    schedule.AppendRead(2);
    schedule.AppendRead(3);
    schedule.AppendRead(4);
    schedule.AppendWrite(0);
  }
  LookaheadAllocation lookahead(sc, 5);
  lookahead.Prime(schedule);
  DynamicAllocation da;
  double lookahead_cost =
      RunWithCost(lookahead, sc, schedule, ProcessorSet{0, 1}).cost;
  double da_cost = RunWithCost(da, sc, schedule, ProcessorSet{0, 1}).cost;
  EXPECT_LT(lookahead_cost, da_cost);
}

TEST(LookaheadTest, RejectsMismatchedReplay) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  Schedule primed = Schedule::Parse(4, "r1 w2").value();
  LookaheadAllocation lookahead(sc, 2);
  lookahead.Prime(primed);
  lookahead.Reset(4, ProcessorSet{0, 1});
  EXPECT_DEATH(lookahead.Step(model::Request::Read(3)),
               "different schedule");
}

}  // namespace
}  // namespace objalloc::core
