// Determinism contract of the parallel layer: every parallel compute path
// must produce bit-identical results for threads = 1, 2, and the hardware
// default, and across repeated runs with the same seed. These tests force
// thread counts with ScopedThreads; the pool grows workers on demand, so the
// multi-threaded paths are exercised even on single-core machines.

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/analysis/adversarial_search.h"
#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/ensemble_runner.h"
#include "objalloc/analysis/region_map.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/ensemble.h"
#include "objalloc/workload/uniform.h"

namespace objalloc {
namespace {

using util::ParallelFor;
using util::ScopedThreads;

// The thread counts every determinism assertion sweeps over.
std::vector<int> ThreadCounts() { return {1, 2, util::GlobalThreads()}; }

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ScopedThreads threads(4);
  constexpr size_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelFor(0, kCount, 64, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndTinyRangesRunInline) {
  ScopedThreads threads(8);
  int calls = 0;
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range below two grains must be one inline call on this thread.
  ParallelFor(0, 10, 16, [&](size_t lo, size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 10u);
    EXPECT_FALSE(util::InParallelWorker());
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, NestedCallsRunSeriallyInsideWorkers) {
  ScopedThreads threads(4);
  std::atomic<int> nested_chunks{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    // Inner loops from pool workers must not re-enter the pool; the caller
    // thread's chunk may legitimately split further.
    if (util::InParallelWorker()) {
      ParallelFor(0, 1000, 1, [&](size_t lo, size_t hi) {
        nested_chunks.fetch_add(1);
        EXPECT_EQ(hi - lo, 1000u);
      });
    }
  });
  SUCCEED();
}

TEST(ParallelForTest, PropagatesExceptions) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](size_t lo, size_t) {
                    if (lo >= 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(SubSeedTest, DependsOnBothBaseAndIndex) {
  EXPECT_NE(util::SubSeed(1, 0), util::SubSeed(1, 1));
  EXPECT_NE(util::SubSeed(1, 0), util::SubSeed(2, 0));
  EXPECT_EQ(util::SubSeed(42, 7), util::SubSeed(42, 7));
}

TEST(ParallelDeterminismTest, ExactOptCostIsBitIdenticalAcrossThreadCounts) {
  // n = 14 exceeds the DP's parallel grain, so the lattice sweeps really
  // split across workers.
  workload::UniformWorkload uniform(0.6);
  model::Schedule schedule = uniform.Generate(14, 120, 77);
  model::CostModel sc = model::CostModel::StationaryComputing(0.3, 0.8);
  const model::ProcessorSet initial = model::ProcessorSet::FirstN(3);

  double reference = 0;
  {
    ScopedThreads threads(1);
    reference = opt::ExactOptCost(sc, schedule, initial);
  }
  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    EXPECT_EQ(opt::ExactOptCost(sc, schedule, initial), reference)
        << "threads=" << count;
    EXPECT_EQ(opt::ExactOptCost(sc, schedule, initial), reference)
        << "repeat, threads=" << count;
  }
}

TEST(ParallelDeterminismTest, ExactOptScheduleReconstructionMatches) {
  workload::UniformWorkload uniform(0.5);
  model::Schedule schedule = uniform.Generate(9, 80, 123);
  model::CostModel mc = model::CostModel::MobileComputing(0.2, 0.9);
  const model::ProcessorSet initial = model::ProcessorSet::FirstN(2);

  std::string reference;
  {
    ScopedThreads threads(1);
    reference = opt::ExactOptSchedule(mc, schedule, initial).ToString();
  }
  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    EXPECT_EQ(opt::ExactOptSchedule(mc, schedule, initial).ToString(),
              reference)
        << "threads=" << count;
  }
}

analysis::RegionSweepOptions SmallSweep() {
  analysis::RegionSweepOptions options;
  options.mobile = false;
  options.cd_values = {0.1, 0.6, 1.5};
  options.cc_values = {0.05, 0.4};
  options.ratio.num_processors = 6;
  options.ratio.schedule_length = 40;
  options.ratio.seeds_per_generator = 2;
  return options;
}

TEST(ParallelDeterminismTest, RegionSweepIsBitIdenticalAcrossThreadCounts) {
  std::vector<analysis::RegionPoint> reference;
  {
    ScopedThreads threads(1);
    reference = analysis::SweepRegions(SmallSweep());
  }
  ASSERT_FALSE(reference.empty());
  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    auto points = analysis::SweepRegions(SmallSweep());
    ASSERT_EQ(points.size(), reference.size()) << "threads=" << count;
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(points[i].cc, reference[i].cc);
      EXPECT_EQ(points[i].cd, reference[i].cd);
      EXPECT_EQ(points[i].sa_worst_ratio, reference[i].sa_worst_ratio)
          << "threads=" << count << " point " << i;
      EXPECT_EQ(points[i].da_worst_ratio, reference[i].da_worst_ratio)
          << "threads=" << count << " point " << i;
      EXPECT_EQ(points[i].sa_mean_ratio, reference[i].sa_mean_ratio)
          << "threads=" << count << " point " << i;
      EXPECT_EQ(points[i].da_mean_ratio, reference[i].da_mean_ratio)
          << "threads=" << count << " point " << i;
      EXPECT_EQ(points[i].empirical, reference[i].empirical);
    }
  }
}

TEST(ParallelDeterminismTest, CompetitiveRatioIsBitIdentical) {
  analysis::RatioOptions options;
  options.num_processors = 6;
  options.schedule_length = 50;
  options.seeds_per_generator = 2;

  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 0.5);
  auto generators = workload::WorstCaseEnsemble(options.t);

  analysis::RatioSummary reference;
  {
    ScopedThreads threads(1);
    reference = analysis::MeasureCompetitiveRatio(da, sc, generators,
                                                  options);
  }
  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    analysis::RatioSummary summary =
        analysis::MeasureCompetitiveRatio(da, sc, generators, options);
    EXPECT_EQ(summary.mean_ratio, reference.mean_ratio)
        << "threads=" << count;
    EXPECT_EQ(summary.worst.ratio, reference.worst.ratio);
    EXPECT_EQ(summary.worst.seed, reference.worst.seed);
    ASSERT_EQ(summary.samples.size(), reference.samples.size());
    for (size_t i = 0; i < summary.samples.size(); ++i) {
      EXPECT_EQ(summary.samples[i].seed, reference.samples[i].seed);
      EXPECT_EQ(summary.samples[i].ratio, reference.samples[i].ratio);
    }
  }
}

TEST(ParallelDeterminismTest, AdversarialSearchIsBitIdentical) {
  analysis::SearchOptions options;
  options.num_processors = 5;
  options.t = 2;
  options.schedule_length = 25;
  options.max_length = 50;
  options.iterations = 60;
  options.restarts = 3;

  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.2, 0.4);

  analysis::SearchResult reference;
  {
    ScopedThreads threads(1);
    reference = analysis::FindAdversarialSchedule(da, sc, options);
  }
  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    analysis::SearchResult result =
        analysis::FindAdversarialSchedule(da, sc, options);
    EXPECT_EQ(result.best_ratio, reference.best_ratio)
        << "threads=" << count;
    EXPECT_EQ(result.best_schedule.ToString(),
              reference.best_schedule.ToString());
    EXPECT_EQ(result.evaluations, reference.evaluations);
  }
}

TEST(ParallelDeterminismTest, EnsembleAggregatesAreBitIdentical) {
  workload::UniformWorkload balanced(0.7);
  workload::UniformWorkload write_heavy(0.3);
  core::StaticAllocation sa;
  core::DynamicAllocation da;
  const model::CostModel sc = model::CostModel::StationaryComputing(0.3, 0.6);
  const model::CostModel mc = model::CostModel::MobileComputing(0.1, 0.5);

  std::vector<analysis::EnsembleUnit> units;
  for (const auto* generator :
       {static_cast<const workload::ScheduleGenerator*>(&balanced),
        static_cast<const workload::ScheduleGenerator*>(&write_heavy)}) {
    for (const auto* algorithm :
         {static_cast<const core::DomAlgorithm*>(&sa),
          static_cast<const core::DomAlgorithm*>(&da)}) {
      for (const auto& cost_model : {sc, mc}) {
        analysis::EnsembleUnit unit;
        unit.label = algorithm->name() + "/" + generator->name() + "/" +
                     cost_model.ToString();
        unit.generator = generator;
        unit.algorithm = algorithm;
        unit.cost_model = cost_model;
        unit.num_processors = 6;
        unit.schedule_length = 40;
        unit.t = 2;
        units.push_back(unit);
      }
    }
  }

  analysis::EnsembleOptions options;
  options.replications = 3;

  analysis::EnsembleSummary reference;
  {
    ScopedThreads threads(1);
    reference = analysis::RunEnsemble(units, options);
  }
  ASSERT_EQ(reference.aggregates.size(), units.size());
  ASSERT_EQ(reference.outcomes.size(),
            units.size() * static_cast<size_t>(options.replications));

  for (int count : ThreadCounts()) {
    ScopedThreads threads(count);
    analysis::EnsembleSummary summary = analysis::RunEnsemble(units, options);
    ASSERT_EQ(summary.outcomes.size(), reference.outcomes.size());
    for (size_t i = 0; i < summary.outcomes.size(); ++i) {
      EXPECT_EQ(summary.outcomes[i].seed, reference.outcomes[i].seed);
      EXPECT_EQ(summary.outcomes[i].cost, reference.outcomes[i].cost)
          << "threads=" << count << " outcome " << i;
      EXPECT_EQ(summary.outcomes[i].opt_cost, reference.outcomes[i].opt_cost);
      EXPECT_EQ(summary.outcomes[i].ratio, reference.outcomes[i].ratio);
    }
    for (size_t u = 0; u < summary.aggregates.size(); ++u) {
      EXPECT_EQ(summary.aggregates[u].mean_cost,
                reference.aggregates[u].mean_cost);
      EXPECT_EQ(summary.aggregates[u].mean_ratio,
                reference.aggregates[u].mean_ratio);
      EXPECT_EQ(summary.aggregates[u].worst_ratio,
                reference.aggregates[u].worst_ratio);
    }
  }
}

TEST(ProcessorSetIterationTest, IteratorMatchesToVector) {
  const model::ProcessorSet sets[] = {
      model::ProcessorSet{}, model::ProcessorSet{0},
      model::ProcessorSet{3, 17, 41, 63}, model::ProcessorSet::FirstN(64)};
  for (const auto& set : sets) {
    std::vector<util::ProcessorId> via_iterator;
    for (util::ProcessorId id : set) via_iterator.push_back(id);
    EXPECT_EQ(via_iterator, set.ToVector());
  }
}

TEST(ProcessorSetIterationTest, LastAndNth) {
  const model::ProcessorSet set{2, 5, 9, 63};
  EXPECT_EQ(set.Last(), 63);
  EXPECT_EQ(set.Nth(0), 2);
  EXPECT_EQ(set.Nth(1), 5);
  EXPECT_EQ(set.Nth(2), 9);
  EXPECT_EQ(set.Nth(3), 63);
  EXPECT_EQ(model::ProcessorSet::Singleton(7).Last(), 7);
}

}  // namespace
}  // namespace objalloc
