#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/topology.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::model {
namespace {

TEST(TopologyTest, UniformMultipliersAreOne) {
  NetworkTopology topology = NetworkTopology::Uniform(4);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(topology.IoMultiplier(2), 1.0);
}

TEST(TopologyTest, SettersAreSymmetric) {
  NetworkTopology topology(4);
  topology.SetMessageMultiplier(1, 3, 2.5);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(1, 3), 2.5);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(3, 1), 2.5);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(1, 2), 1.0);
}

TEST(TopologyTest, TwoClustersChargeInterClusterLinks) {
  NetworkTopology topology = NetworkTopology::TwoClusters(6, 3, 4.0);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(3, 5), 1.0);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(1, 4), 4.0);
}

TEST(TopologyTest, StarRelaysSpokeToSpoke) {
  NetworkTopology topology = NetworkTopology::Star(5, 0, 0.5);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(topology.MessageMultiplier(2, 4), 2.0);
  EXPECT_DOUBLE_EQ(topology.IoMultiplier(0), 0.5);
  EXPECT_DOUBLE_EQ(topology.IoMultiplier(3), 1.0);
}

TEST(WeightedCostTest, UniformTopologyMatchesHomogeneousEvaluator) {
  // The weighted evaluator must specialize exactly to the paper's cost
  // function when every multiplier is 1.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  NetworkTopology uniform = NetworkTopology::Uniform(7);
  workload::UniformWorkload workload(0.6);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Schedule schedule = workload.Generate(7, 120, seed);
    core::DynamicAllocation da;
    AllocationSchedule allocation =
        core::RunAlgorithm(da, schedule, ProcessorSet{0, 1});
    EXPECT_NEAR(WeightedScheduleCost(sc, uniform, allocation),
                ScheduleCost(sc, allocation), 1e-9);
  }
}

TEST(WeightedCostTest, RemoteReadAcrossClustersCostsMore) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  NetworkTopology clusters = NetworkTopology::TwoClusters(6, 3, 4.0);
  AllocatedRequest intra{Request::Read(1), ProcessorSet{0}, false};
  AllocatedRequest inter{Request::Read(4), ProcessorSet{0}, false};
  ProcessorSet scheme{0};
  // Intra: (cc+cd)*1 + io. Inter: (cc+cd)*4 + io.
  EXPECT_DOUBLE_EQ(WeightedRequestCost(sc, clusters, intra, scheme),
                   1.25 + 1.0);
  EXPECT_DOUBLE_EQ(WeightedRequestCost(sc, clusters, inter, scheme),
                   1.25 * 4 + 1.0);
}

TEST(WeightedCostTest, IoMultiplierAppliesToSavingToo) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  NetworkTopology topology(4);
  topology.SetIoMultiplier(2, 3.0);
  AllocatedRequest saving{Request::Read(2), ProcessorSet{0}, true};
  // cc + cd + io(source)*1 + io(save at 2)*3.
  EXPECT_DOUBLE_EQ(WeightedRequestCost(sc, topology, saving, ProcessorSet{0}),
                   0.25 + 1.0 + 1.0 + 3.0);
}

TEST(WeightedCostTest, WriteInvalidationsUsePairMultipliers) {
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  NetworkTopology clusters = NetworkTopology::TwoClusters(6, 3, 4.0);
  // Writer 0 (cluster 0) writes to {0, 1}; stale copies at 2 (intra) and 4
  // (inter): invalidations 0.5*1 + 0.5*4; transfer to 1: 1*1; io 2.
  AllocatedRequest write{Request::Write(0), ProcessorSet{0, 1}, false};
  EXPECT_DOUBLE_EQ(
      WeightedRequestCost(sc, clusters, write, ProcessorSet{0, 2, 4}),
      0.5 + 2.0 + 1.0 + 2.0);
}

TEST(WeightedCostTest, DynamicAllocationExploitsClusterLocality) {
  // Readers concentrated in the remote cluster: DA's saving-reads keep the
  // expensive inter-cluster link mostly idle; SA pays it per read. The gap
  // must widen as the inter-cluster multiplier grows.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  Schedule schedule(8);
  for (int round = 0; round < 30; ++round) {
    schedule.AppendRead(5);
    schedule.AppendRead(6);
    schedule.AppendRead(7);
  }
  core::StaticAllocation sa;
  core::DynamicAllocation da;
  AllocationSchedule sa_alloc =
      core::RunAlgorithm(sa, schedule, ProcessorSet{0, 1});
  AllocationSchedule da_alloc =
      core::RunAlgorithm(da, schedule, ProcessorSet{0, 1});
  double previous_gap = -1e18;
  for (double inter : {1.0, 2.0, 8.0}) {
    NetworkTopology clusters = NetworkTopology::TwoClusters(8, 4, inter);
    double gap = WeightedScheduleCost(sc, clusters, sa_alloc) -
                 WeightedScheduleCost(sc, clusters, da_alloc);
    EXPECT_GT(gap, previous_gap);
    previous_gap = gap;
  }
  EXPECT_GT(previous_gap, 0);
}

TEST(WeightedCostTest, RejectsMismatchedSystemSizes) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  NetworkTopology topology(4);
  AllocationSchedule allocation(5, ProcessorSet{0});
  EXPECT_DEATH(WeightedScheduleCost(sc, topology, allocation), "");
}

}  // namespace
}  // namespace objalloc::model
