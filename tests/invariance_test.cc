// §3.1: "Our analysis using the model applies almost verbatim even if reads
// between two consecutive writes are partially ordered." Operationally:
// permuting the reads inside any write interval must not change the cost of
// SA, DA, Counter, the offline bounds, or the exact OPT. (The windowed
// Adaptive allocator is order-sensitive by design and is excluded.)

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/counter_replication.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/uniform.h"

namespace objalloc {
namespace {

using model::ProcessorSet;
using model::Schedule;

// Shuffles the reads within each maximal run of reads (write positions and
// identities stay fixed).
Schedule PermuteReadsWithinIntervals(const Schedule& schedule,
                                     util::Rng& rng) {
  std::vector<model::Request> requests = schedule.requests();
  size_t begin = 0;
  while (begin < requests.size()) {
    size_t end = begin;
    while (end < requests.size() && requests[end].is_read()) ++end;
    // Fisher-Yates over [begin, end).
    for (size_t k = end; k > begin + 1; --k) {
      size_t pick = begin + rng.NextBounded(k - begin);
      std::swap(requests[k - 1], requests[pick]);
    }
    begin = end + 1;
  }
  return Schedule(schedule.num_processors(), std::move(requests));
}

class ReadPermutationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReadPermutationTest, OnlineAlgorithmCostsAreInvariant) {
  util::Rng rng(GetParam());
  workload::UniformWorkload uniform(0.8);
  Schedule original = uniform.Generate(7, 160, GetParam());
  Schedule permuted = PermuteReadsWithinIntervals(original, rng);
  ASSERT_EQ(original.CountReads(), permuted.CountReads());

  model::CostModel models[] = {
      model::CostModel::StationaryComputing(0.25, 1.0),
      model::CostModel::MobileComputing(0.25, 1.0),
  };
  ProcessorSet initial{0, 1};
  for (const auto& cost_model : models) {
    core::StaticAllocation sa_a, sa_b;
    EXPECT_DOUBLE_EQ(
        core::RunWithCost(sa_a, cost_model, original, initial).cost,
        core::RunWithCost(sa_b, cost_model, permuted, initial).cost);

    core::DynamicAllocation da_a, da_b;
    EXPECT_DOUBLE_EQ(
        core::RunWithCost(da_a, cost_model, original, initial).cost,
        core::RunWithCost(da_b, cost_model, permuted, initial).cost);

    core::CounterReplication counter_a(core::CounterReplicationOptions{});
    core::CounterReplication counter_b(core::CounterReplicationOptions{});
    EXPECT_DOUBLE_EQ(
        core::RunWithCost(counter_a, cost_model, original, initial).cost,
        core::RunWithCost(counter_b, cost_model, permuted, initial).cost);
  }
}

TEST_P(ReadPermutationTest, OfflineCostsAreInvariant) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  workload::UniformWorkload uniform(0.75);
  Schedule original = uniform.Generate(6, 80, GetParam());
  Schedule permuted = PermuteReadsWithinIntervals(original, rng);

  model::CostModel sc = model::CostModel::StationaryComputing(0.3, 0.9);
  ProcessorSet initial{0, 1};
  EXPECT_NEAR(opt::ExactOptCost(sc, original, initial),
              opt::ExactOptCost(sc, permuted, initial), 1e-9);
  EXPECT_NEAR(opt::RelaxationLowerBound(sc, original, initial),
              opt::RelaxationLowerBound(sc, permuted, initial), 1e-9);
  EXPECT_NEAR(opt::IntervalOptCost(sc, original, initial),
              opt::IntervalOptCost(sc, permuted, initial), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadPermutationTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace objalloc
