// The devirtualized serving engine's contracts (DESIGN.md §8): the inline
// SA/DA dispatch in ObjectShard is bit-identical to the virtual reference
// classes, the handle-addressed path is bit-identical to the id-addressed
// path for every shard x thread configuration, stale or tampered handles are
// rejected atomically, and the steady-state batch path performs zero heap
// allocations (asserted through a global operator-new counting hook).

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/core/object_manager.h"
#include "objalloc/core/object_service.h"
#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/multi_object.h"

// Global allocation counter: every scalar operator new bumps it (the array
// forms delegate here by default). The zero-allocation test reads the delta
// across a measured region; everything else just pays one relaxed add.
static std::atomic<int64_t> g_heap_allocations{0};

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace objalloc::core {
namespace {

using model::CostModel;
using util::ScopedThreads;
using workload::MultiObjectEvent;
using workload::MultiObjectTrace;

MultiObjectTrace TestTrace(size_t length = 4000, uint64_t seed = 77) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = 48;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

ObjectConfig TestConfig(AlgorithmKind kind = AlgorithmKind::kDynamic) {
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1, 2};
  config.algorithm = kind;
  return config;
}

void RegisterObjects(ObjectService& service, const MultiObjectTrace& trace,
                     const ObjectConfig& config) {
  service.ReserveObjects(static_cast<size_t>(trace.num_objects));
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
}

std::vector<HandleEvent> ResolveAll(const ObjectService& service,
                                    const MultiObjectTrace& trace) {
  std::vector<ObjectHandle> handles(trace.num_objects);
  for (int id = 0; id < trace.num_objects; ++id) {
    auto handle = service.Resolve(id);
    EXPECT_TRUE(handle.ok());
    handles[id] = *handle;
  }
  std::vector<HandleEvent> events;
  events.reserve(trace.events.size());
  for (const MultiObjectEvent& event : trace.events) {
    events.push_back(HandleEvent{handles[event.object], event.request});
  }
  return events;
}

// The engine's core identity: the inline SA/DA switch in ObjectShard must
// be the same function as the virtual DomAlgorithm reference path, request
// for request — exact double equality, exact breakdowns, exact schemes.
TEST(ServingEngineTest, InlineDispatchMatchesVirtualReference) {
  const MultiObjectTrace trace = TestTrace();
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  for (AlgorithmKind kind : {AlgorithmKind::kStatic, AlgorithmKind::kDynamic,
                             AlgorithmKind::kAdaptive}) {
    SCOPED_TRACE(AlgorithmKindToString(kind));
    const ObjectConfig config = TestConfig(kind);

    ObjectShard shard(trace.num_processors, sc);
    // Reference: one virtual algorithm instance per object, stepped through
    // the model-layer cost evaluator exactly as the pre-devirtualization
    // serving path did.
    struct Reference {
      std::unique_ptr<DomAlgorithm> algorithm;
      ProcessorSet scheme;
      model::CostBreakdown breakdown;
    };
    std::vector<Reference> references(trace.num_objects);
    for (int id = 0; id < trace.num_objects; ++id) {
      ASSERT_TRUE(shard.AddObject(id, config).ok());
      references[id].algorithm = CreateAlgorithm(kind, sc);
      references[id].algorithm->Reset(trace.num_processors,
                                      config.initial_scheme);
      references[id].scheme = config.initial_scheme;
    }

    for (const MultiObjectEvent& event : trace.events) {
      Reference& ref = references[event.object];
      Decision decision = ref.algorithm->Step(event.request);
      model::AllocatedRequest entry{event.request, decision.execution_set,
                                    event.request.is_read() &&
                                        decision.saving};
      const model::CostBreakdown expected =
          model::RequestBreakdown(entry, ref.scheme);
      ref.scheme = model::NextScheme(ref.scheme, entry);
      ref.breakdown += expected;

      auto cost = shard.Serve(event.object, event.request);
      ASSERT_TRUE(cost.ok());
      EXPECT_EQ(*cost, expected.Cost(sc));
    }
    for (int id = 0; id < trace.num_objects; ++id) {
      auto stats = shard.StatsFor(id);
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->scheme.mask(), references[id].scheme.mask());
      EXPECT_EQ(stats->breakdown, references[id].breakdown);
    }
  }
}

// Handle-addressed serving must be bit-identical to id-addressed serving —
// and both to the serial ObjectManager — for every shard count and thread
// count, per-event costs included.
TEST(ServingEngineTest, HandlePathMatchesIdPathBitForBit) {
  const MultiObjectTrace trace = TestTrace();
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const ObjectConfig config = TestConfig();

  ObjectManager reference(trace.num_processors, sc);
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(reference.AddObject(id, config).ok());
  }
  std::vector<double> reference_costs;
  reference_costs.reserve(trace.events.size());
  for (const MultiObjectEvent& event : trace.events) {
    auto cost = reference.Serve(event.object, event.request);
    ASSERT_TRUE(cost.ok());
    reference_costs.push_back(*cost);
  }

  constexpr size_t kBatch = 512;
  for (int shards : {1, 4, 16}) {
    for (int threads : {1, 2, util::GlobalThreads()}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ScopedThreads scope(threads);
      ServiceOptions options;
      options.num_shards = shards;

      ObjectService by_id(trace.num_processors, sc, options);
      RegisterObjects(by_id, trace, config);
      ObjectService by_handle(trace.num_processors, sc, options);
      RegisterObjects(by_handle, trace, config);
      const std::vector<HandleEvent> handle_events =
          ResolveAll(by_handle, trace);

      std::span<const MultiObjectEvent> id_span(trace.events);
      std::span<const HandleEvent> handle_span(handle_events);
      size_t event_index = 0;
      for (size_t pos = 0; pos < trace.events.size(); pos += kBatch) {
        const size_t n = std::min(kBatch, trace.events.size() - pos);
        auto id_batch = by_id.ServeBatch(id_span.subspan(pos, n));
        auto handle_batch = by_handle.ServeBatch(handle_span.subspan(pos, n));
        ASSERT_TRUE(id_batch.ok());
        ASSERT_TRUE(handle_batch.ok());
        ASSERT_EQ(id_batch->costs.size(), n);
        ASSERT_EQ(handle_batch->costs.size(), n);
        EXPECT_EQ(id_batch->breakdown, handle_batch->breakdown);
        for (size_t i = 0; i < n; ++i, ++event_index) {
          ASSERT_EQ(id_batch->costs[i], reference_costs[event_index]);
          ASSERT_EQ(handle_batch->costs[i], reference_costs[event_index]);
        }
      }
      EXPECT_EQ(by_id.TotalBreakdown(), by_handle.TotalBreakdown());
      EXPECT_EQ(by_id.TotalBreakdown(), reference.TotalBreakdown());
      EXPECT_EQ(by_id.TotalRequests(), by_handle.TotalRequests());
      for (int id = 0; id < trace.num_objects; ++id) {
        EXPECT_EQ(by_id.StatsFor(id)->scheme.mask(),
                  by_handle.StatsFor(id)->scheme.mask());
      }
    }
  }
}

TEST(ServingEngineTest, ResolveRejectsUnknownObjects) {
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ObjectService service(8, sc, ServiceOptions{.num_shards = 4});
  ASSERT_TRUE(service.AddObject(7, TestConfig()).ok());

  auto known = service.Resolve(7);
  ASSERT_TRUE(known.ok());
  EXPECT_EQ(known->id, 7);
  EXPECT_LT(known->shard, 4u);

  EXPECT_EQ(service.Resolve(8).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(service.Resolve(-1).status().code(), util::StatusCode::kNotFound);
}

TEST(ServingEngineTest, StaleAndTamperedHandlesAreRejected) {
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const Request read = Request::Read(0);

  ObjectService service(8, sc, ServiceOptions{.num_shards = 4});
  ASSERT_TRUE(service.AddObject(1, TestConfig()).ok());
  ASSERT_TRUE(service.AddObject(2, TestConfig()).ok());
  ObjectHandle good = *service.Resolve(1);

  // A default-constructed handle, an out-of-range shard or slot, and a
  // handle whose claimed id disagrees with what the slot holds must all be
  // rejected — never dereferenced.
  EXPECT_EQ(service.Serve(ObjectHandle{}, read).status().code(),
            util::StatusCode::kInvalidArgument);
  ObjectHandle bad_shard = good;
  bad_shard.shard = 99;
  EXPECT_EQ(service.Serve(bad_shard, read).status().code(),
            util::StatusCode::kInvalidArgument);
  ObjectHandle bad_slot = good;
  bad_slot.slot = 12345;
  EXPECT_EQ(service.Serve(bad_slot, read).status().code(),
            util::StatusCode::kInvalidArgument);
  ObjectHandle bad_id = good;
  bad_id.id = 2;  // registered object, wrong route
  EXPECT_EQ(service.Serve(bad_id, read).status().code(),
            util::StatusCode::kInvalidArgument);

  // Handles do not transfer between services: a route resolved against a
  // differently-sharded service must fail validation here.
  ObjectService other(8, sc, ServiceOptions{.num_shards = 16});
  ASSERT_TRUE(other.AddObject(1, TestConfig()).ok());
  ObjectHandle foreign = *other.Resolve(1);
  const bool foreign_same_route =
      foreign.shard == good.shard && foreign.slot == good.slot;
  if (!foreign_same_route) {
    EXPECT_FALSE(service.Serve(foreign, read).ok());
  }

  // Batch admission stays atomic on the handle path: one bad handle rejects
  // the whole batch before any state changes.
  const int64_t before = service.TotalRequests();
  std::vector<HandleEvent> batch = {HandleEvent{good, read},
                                    HandleEvent{bad_id, read}};
  auto result = service.ServeBatch(std::span<const HandleEvent>(batch));
  EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ(service.TotalRequests(), before);

  // The good handle still serves after all the rejections.
  EXPECT_TRUE(service.Serve(good, read).ok());
}

// The scratch-arena contract: after one warm-up batch, repeated batches
// allocate nothing — on the id path, the handle path, and ServeStream's
// inner loop equivalent (ServeBatchInto with recycled storage).
TEST(ServingEngineTest, SteadyStateBatchesDoNotAllocate) {
  const MultiObjectTrace trace = TestTrace(2048);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ScopedThreads scope(1);  // the serial in-place path (see header comment)

  ObjectService service(trace.num_processors, sc,
                        ServiceOptions{.num_shards = 4});
  RegisterObjects(service, trace, TestConfig());
  const std::vector<HandleEvent> handle_events = ResolveAll(service, trace);

  std::span<const MultiObjectEvent> id_span(trace.events);
  std::span<const HandleEvent> handle_span(handle_events);
  BatchResult result;
  // Warm-up: sizes routes_ and result->costs to the maximal batch.
  ASSERT_TRUE(service.ServeBatchInto(id_span, &result).ok());
  ASSERT_TRUE(service.ServeBatchInto(handle_span, &result).ok());

  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(service.ServeBatchInto(id_span, &result).ok());
    ASSERT_TRUE(service.ServeBatchInto(handle_span, &result).ok());
  }
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state ServeBatchInto must not touch the heap";
}

// The same contract on the shard-executor path (threads > 1): once the
// worker pool is up and every pipeline context has served the maximal
// batch, both the synchronous entry and the pipelined SubmitBatch/WaitBatch
// entry are allocation-free — the per-shard op lists, the per-context
// scratch, and the SPSC rings are all warm fixed-capacity storage.
TEST(ServingEngineTest, SteadyStateExecutorBatchesDoNotAllocate) {
  const MultiObjectTrace trace = TestTrace(2048);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ScopedThreads scope(2);  // engages the executor path

  ObjectService service(trace.num_processors, sc,
                        ServiceOptions{.num_shards = 4});
  RegisterObjects(service, trace, TestConfig());
  const std::vector<HandleEvent> handle_events = ResolveAll(service, trace);

  std::span<const MultiObjectEvent> id_span(trace.events);
  std::span<const HandleEvent> handle_span(handle_events);
  BatchResult result;
  BatchResult results[2];
  BatchTicket tickets[2];
  // Warm-up: spin up the executor, then cycle every pipeline context
  // twice through the maximal batch on both entries so each context's
  // per-shard op lists reach steady capacity (contexts are visited
  // round-robin, so 2 x depth batches guarantee two visits each).
  ASSERT_TRUE(service.ServeBatchInto(id_span, &result).ok());
  const size_t rounds = 2 * ShardExecutor::kDefaultDepth;
  for (size_t round = 0; round < rounds; ++round) {
    ASSERT_TRUE(service.ServeBatchInto(id_span, &result).ok());
    ASSERT_TRUE(service.ServeBatchInto(handle_span, &result).ok());
    const int cur = static_cast<int>(round % 2);
    if (!tickets[cur].completed) {
      ASSERT_TRUE(service.WaitBatch(&tickets[cur]).ok());
    }
    ASSERT_TRUE(
        service.SubmitBatch(id_span, &results[cur], &tickets[cur]).ok());
  }
  ASSERT_TRUE(service.DrainBatches().ok());

  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(service.ServeBatchInto(id_span, &result).ok());
    ASSERT_TRUE(service.ServeBatchInto(handle_span, &result).ok());
    const int cur = round % 2;
    if (!tickets[cur].completed) {
      ASSERT_TRUE(service.WaitBatch(&tickets[cur]).ok());
    }
    ASSERT_TRUE(
        service.SubmitBatch(id_span, &results[cur], &tickets[cur]).ok());
  }
  ASSERT_TRUE(service.DrainBatches().ok());
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "steady-state executor batches must not touch the heap";
}

// ReserveObjects pre-sizes every table a registration touches — the route
// directory, each shard's slot pages, the free lists — so a registration
// burst inside the reserved envelope never touches the heap. This is the
// contract that makes pre-sized million-object loads O(1) allocations.
TEST(ServingEngineTest, PostReserveRegistrationDoesNotAllocate) {
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ScopedThreads scope(1);  // serial path: no executor to spin up

  ObjectService service(8, sc, ServiceOptions{.num_shards = 4});
  const int kObjects = 4096;
  service.ReserveObjects(static_cast<size_t>(kObjects));
  const ObjectConfig config = TestConfig();

  const int64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  const int64_t after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0)
      << "a post-reserve registration burst must not touch the heap";
  EXPECT_EQ(service.object_count(), static_cast<size_t>(kObjects));
}

// ReserveObjects is a pure capacity hint: identical results with and
// without it.
TEST(ServingEngineTest, ReserveObjectsDoesNotChangeResults) {
  const MultiObjectTrace trace = TestTrace(1500);
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const ObjectConfig config = TestConfig();

  ObjectService reserved(trace.num_processors, sc,
                         ServiceOptions{.num_shards = 4});
  RegisterObjects(reserved, trace, config);
  ObjectService unreserved(trace.num_processors, sc,
                           ServiceOptions{.num_shards = 4});
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(unreserved.AddObject(id, config).ok());
  }

  auto a = reserved.ServeBatch(std::span<const MultiObjectEvent>(trace.events));
  auto b =
      unreserved.ServeBatch(std::span<const MultiObjectEvent>(trace.events));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->breakdown, b->breakdown);
  EXPECT_EQ(a->costs, b->costs);
  for (int id = 0; id < trace.num_objects; ++id) {
    EXPECT_EQ(reserved.StatsFor(id)->scheme.mask(),
              unreserved.StatsFor(id)->scheme.mask());
  }
}

}  // namespace
}  // namespace objalloc::core
