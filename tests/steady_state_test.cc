// Validates the steady-state expected-cost models against long-run averages
// of the real algorithms on matching synthetic workloads.

#include <gtest/gtest.h>

#include "objalloc/analysis/steady_state.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::analysis {
namespace {

using model::CostModel;
using model::ProcessorSet;

double EmpiricalCostPerRequest(core::DomAlgorithm& algorithm,
                               const CostModel& cost_model, int n,
                               double read_fraction, int t, size_t length,
                               int seeds) {
  workload::UniformWorkload uniform(read_fraction);
  double total = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    model::Schedule schedule = uniform.Generate(n, length, seed);
    total += core::RunWithCost(algorithm, cost_model, schedule,
                               ProcessorSet::FirstN(t))
                 .cost;
  }
  return total / (static_cast<double>(length) * seeds);
}

TEST(SteadyStateTest, WorkloadValidation) {
  SymmetricWorkload workload;
  EXPECT_TRUE(workload.Validate(2).ok());
  workload.read_fraction = 1.5;
  EXPECT_FALSE(workload.Validate(2).ok());
  workload = SymmetricWorkload{};
  EXPECT_FALSE(workload.Validate(1).ok());
  EXPECT_FALSE(workload.Validate(workload.num_processors).ok());
}

TEST(SteadyStateTest, SaClosedFormSimpleCase) {
  // n = 4, t = 2, rho = 1 (all reads), SC(cc=0.5, cd=1):
  // E = (2/4)*1 + (2/4)*(0.5+1+1) = 0.5 + 1.25 = 1.75.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  SymmetricWorkload workload{4, 1.0};
  EXPECT_DOUBLE_EQ(SaExpectedCostPerRequest(sc, workload, 2), 1.75);
}

TEST(SteadyStateTest, SaAllWritesCase) {
  // rho = 0: E = (t/n)((t-1)cd + t) + (1-t/n)(t(cd+1)).
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  SymmetricWorkload workload{4, 0.0};
  EXPECT_DOUBLE_EQ(SaExpectedCostPerRequest(sc, workload, 2),
                   0.5 * (1.0 + 2) + 0.5 * (2 * 2.0));
}

TEST(SteadyStateTest, DaChainDegenerateAllWrites) {
  // rho = 0: DA stays in states A_0 / B_1 forever; every write costs the
  // base (t-1)cd + t*cio plus the expected invalidation of the previous
  // floating member. Sanity: prediction must be finite and at least the
  // write base.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  SymmetricWorkload workload{6, 0.0};
  double prediction = DaExpectedCostPerRequest(sc, workload, 2);
  EXPECT_GE(prediction, 1.0 + 2.0);  // (t-1)cd + t*cio
  EXPECT_LT(prediction, 1.0 + 2.0 + 1.0);
}

struct SteadyCase {
  double cc, cd, read_fraction;
  bool mobile;
};

class SteadyStatePredictionTest
    : public ::testing::TestWithParam<SteadyCase> {};

TEST_P(SteadyStatePredictionTest, SaPredictionMatchesSimulation) {
  const SteadyCase& param = GetParam();
  CostModel cost_model =
      param.mobile ? CostModel::MobileComputing(param.cc, param.cd)
                   : CostModel::StationaryComputing(param.cc, param.cd);
  const int n = 8, t = 2;
  SymmetricWorkload workload{n, param.read_fraction};
  double predicted = SaExpectedCostPerRequest(cost_model, workload, t);
  core::StaticAllocation sa;
  double measured = EmpiricalCostPerRequest(sa, cost_model, n,
                                            param.read_fraction, t, 4000, 4);
  EXPECT_NEAR(measured, predicted, 0.05 * std::max(predicted, 0.2));
}

TEST_P(SteadyStatePredictionTest, DaPredictionMatchesSimulation) {
  const SteadyCase& param = GetParam();
  CostModel cost_model =
      param.mobile ? CostModel::MobileComputing(param.cc, param.cd)
                   : CostModel::StationaryComputing(param.cc, param.cd);
  const int n = 8, t = 2;
  SymmetricWorkload workload{n, param.read_fraction};
  double predicted = DaExpectedCostPerRequest(cost_model, workload, t);
  core::DynamicAllocation da;
  double measured = EmpiricalCostPerRequest(da, cost_model, n,
                                            param.read_fraction, t, 4000, 4);
  EXPECT_NEAR(measured, predicted, 0.05 * std::max(predicted, 0.2));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SteadyStatePredictionTest,
    ::testing::Values(SteadyCase{0.25, 1.0, 0.9, false},
                      SteadyCase{0.25, 1.0, 0.6, false},
                      SteadyCase{0.25, 1.0, 0.3, false},
                      SteadyCase{0.5, 0.5, 0.8, false},
                      SteadyCase{0.0, 2.0, 0.7, false},
                      SteadyCase{0.25, 1.0, 0.8, true},
                      SteadyCase{1.0, 1.0, 0.5, true}));

TEST(BreakEvenTest, DaWinsAtBothExtremes) {
  // The gap DA - SA is non-monotone: an outside write stores the object at
  // the writer (one transfer fewer than read-one-write-all), and saving
  // makes read-only traffic local — DA is cheaper at rho = 0 AND rho = 1,
  // while SA can win in the churny middle.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const int n = 8, t = 2;
  SymmetricWorkload all_writes{n, 0.0}, all_reads{n, 1.0};
  EXPECT_LT(DaExpectedCostPerRequest(sc, all_writes, t),
            SaExpectedCostPerRequest(sc, all_writes, t));
  EXPECT_LT(DaExpectedCostPerRequest(sc, all_reads, t),
            SaExpectedCostPerRequest(sc, all_reads, t));
}

TEST(BreakEvenTest, SaFavorableBandEdgesAreCrossings) {
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  ReadFractionInterval band = SaFavorableReadFractions(sc, 8, 2);
  ASSERT_FALSE(band.empty);  // SA wins somewhere in the mixed middle here
  EXPECT_LT(band.lo, band.hi);
  auto gap = [&](double rho) {
    SymmetricWorkload workload{8, rho};
    return DaExpectedCostPerRequest(sc, workload, 2) -
           SaExpectedCostPerRequest(sc, workload, 2);
  };
  // Inside the band SA is cheaper; just outside, DA is.
  EXPECT_GT(gap((band.lo + band.hi) / 2), 0);
  if (band.lo > 0) {
    EXPECT_NEAR(gap(band.lo), 0, 1e-6);
    EXPECT_LT(gap(band.lo * 0.5), 0);
  }
  if (band.hi < 1) {
    EXPECT_NEAR(gap(band.hi), 0, 1e-6);
    EXPECT_LT(gap(band.hi + (1 - band.hi) * 0.5), 0);
  }
}

TEST(BreakEvenTest, CheapCommunicationShrinksOrKillsTheBand) {
  // With nearly free messages (far inside Figure 1's SA-superior region for
  // the worst case, cc + cd < 0.5), the *average-case* band where SA wins
  // should be wide; with expensive data messages (cd > 1, DA-superior
  // worst-case region) it should shrink or vanish.
  CostModel cheap = CostModel::StationaryComputing(0.05, 0.1);
  CostModel dear = CostModel::StationaryComputing(0.25, 2.0);
  ReadFractionInterval cheap_band = SaFavorableReadFractions(cheap, 8, 2);
  ReadFractionInterval dear_band = SaFavorableReadFractions(dear, 8, 2);
  double cheap_width =
      cheap_band.empty ? 0 : cheap_band.hi - cheap_band.lo;
  double dear_width = dear_band.empty ? 0 : dear_band.hi - dear_band.lo;
  EXPECT_GE(cheap_width, dear_width);
}

}  // namespace
}  // namespace objalloc::analysis
