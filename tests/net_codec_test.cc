// Codec robustness (DESIGN.md §15): the frame decoder and every payload
// parser must treat arbitrary bytes as data, never as trust. The fuzz-
// style sections run the exhaustive deterministic sweeps the ISSUE asks
// for — truncation at every offset, a bit flip at every byte — plus the
// targeted oversized-length / wrong-version cases. Under ASan (CI's
// address-ub-sanitizer job) these double as over-read detectors.

#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "objalloc/net/wire.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/rng.h"
#include "objalloc/util/status.h"

namespace objalloc::net {
namespace {

std::string SampleFrame() {
  BatchRequest request;
  request.deadline_ms = 250;
  for (int i = 0; i < 5; ++i) {
    BatchItem item;
    item.object = 1000 + i;
    item.processor = static_cast<uint32_t>(i % 3);
    item.is_write = static_cast<uint8_t>(i % 2);
    request.items.push_back(item);
  }
  std::string payload;
  EncodeBatch(request, &payload);
  std::string frame;
  AppendFrame(MsgType::kBatch, 0, 0x1122334455667788ull, payload, &frame);
  return frame;
}

TEST(WireFrameTest, RoundTrip) {
  const std::string frame = SampleFrame();
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(frame, kDefaultMaxFrameBytes, &decoded, &consumed,
                        &error),
            DecodeResult::kFrame)
      << error;
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(decoded.version, kWireVersion);
  EXPECT_EQ(decoded.type, MsgType::kBatch);
  EXPECT_EQ(decoded.request_id, 0x1122334455667788ull);

  BatchRequest parsed;
  ASSERT_TRUE(ParseBatch(decoded.payload, 4096, &parsed).ok());
  ASSERT_EQ(parsed.items.size(), 5u);
  EXPECT_EQ(parsed.deadline_ms, 250u);
  EXPECT_EQ(parsed.items[3].object, 1003);
  EXPECT_EQ(parsed.items[3].processor, 0u);
  EXPECT_EQ(parsed.items[3].is_write, 1u);
}

TEST(WireFrameTest, RoundTripAllPayloadKinds) {
  {
    RegisterRequest request{42, 0b1011, 1};
    std::string payload;
    EncodeRegister(request, &payload);
    RegisterRequest parsed;
    ASSERT_TRUE(ParseRegister(payload, &parsed).ok());
    EXPECT_EQ(parsed.object, 42);
    EXPECT_EQ(parsed.scheme_mask, 0b1011u);
    EXPECT_EQ(parsed.algorithm, 1u);
  }
  {
    ServeRequest request{-7, 3, 1500};
    std::string payload;
    EncodeServe(request, &payload);
    ServeRequest parsed;
    ASSERT_TRUE(ParseServe(payload, &parsed).ok());
    EXPECT_EQ(parsed.object, -7);
    EXPECT_EQ(parsed.processor, 3u);
    EXPECT_EQ(parsed.deadline_ms, 1500u);
  }
  {
    std::vector<double> costs = {0.0, 1.5, -2.25, 1e9};
    std::string payload;
    EncodeCosts(costs, &payload);
    std::vector<double> parsed;
    ASSERT_TRUE(ParseCosts(payload, 4096, &parsed).ok());
    EXPECT_EQ(parsed, costs);
  }
  {
    WireStats stats;
    stats.objects = 17;
    stats.total_requests = 1234;
    stats.scheme_crc = 0xDEADBEEF;
    stats.shed_overloaded = 99;
    stats.durability_state = 2;
    std::string payload;
    EncodeStats(stats, &payload);
    WireStats parsed;
    ASSERT_TRUE(ParseStats(payload, &parsed).ok());
    EXPECT_EQ(parsed.objects, 17u);
    EXPECT_EQ(parsed.total_requests, 1234);
    EXPECT_EQ(parsed.scheme_crc, 0xDEADBEEFu);
    EXPECT_EQ(parsed.shed_overloaded, 99u);
    EXPECT_EQ(parsed.durability_state, 2u);
  }
}

// Every strict prefix of a valid frame must decode as kNeedMore — never a
// frame, never an error (a prefix is indistinguishable from in-flight
// delivery), and never an out-of-bounds read.
TEST(WireFuzzTest, TruncationAtEveryOffset) {
  const std::string frame = SampleFrame();
  for (size_t len = 0; len < frame.size(); ++len) {
    // Heap-exact copy so ASan red-zones sit directly past the prefix.
    std::string prefix(frame.data(), len);
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(prefix, kDefaultMaxFrameBytes, &decoded, &consumed,
                          &error),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
  }
}

// A single flipped bit anywhere must never crash, and anywhere past the
// length field must be rejected by the CRC. Flips inside the length field
// either resize the frame (kNeedMore/kError) or land the CRC on the wrong
// span (kError) — decoding a *valid-looking* frame is only acceptable if
// the CRC still holds, which a flip makes impossible outside the length.
TEST(WireFuzzTest, BitFlipAtEveryByte) {
  const std::string frame = SampleFrame();
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped(frame.data(), frame.size());
      flipped[byte] = static_cast<char>(static_cast<uint8_t>(flipped[byte]) ^
                                        (1u << bit));
      Frame decoded;
      size_t consumed = 0;
      std::string error;
      const DecodeResult result = DecodeFrame(
          flipped, kDefaultMaxFrameBytes, &decoded, &consumed, &error);
      if (byte < 4) {
        // Length-field flip: any verdict but a successfully decoded frame.
        EXPECT_NE(result, DecodeResult::kFrame)
            << "byte " << byte << " bit " << bit;
      } else {
        EXPECT_EQ(result, DecodeResult::kError)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(WireFuzzTest, OversizedLengthRejectedBeforeBuffering) {
  std::string frame = SampleFrame();
  // Claim a frame far beyond the cap; only the original bytes exist.
  const uint32_t huge = static_cast<uint32_t>(kDefaultMaxFrameBytes) + 1;
  std::memcpy(frame.data(), &huge, sizeof(huge));
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  // Even with just the 4 length bytes present the decoder must reject —
  // waiting for 4GiB that never arrives is the hang the cap prevents.
  std::string only_length(frame.data(), 4);
  EXPECT_EQ(DecodeFrame(only_length, kDefaultMaxFrameBytes, &decoded,
                        &consumed, &error),
            DecodeResult::kError);
  EXPECT_EQ(DecodeFrame(frame, kDefaultMaxFrameBytes, &decoded, &consumed,
                        &error),
            DecodeResult::kError);
}

TEST(WireFuzzTest, UndersizedLengthRejected) {
  // length below the fixed header can never frame a message.
  for (uint32_t length = 0; length < kFrameHeaderBytes; ++length) {
    std::string bytes(sizeof(uint32_t) + length, '\0');
    std::memcpy(bytes.data(), &length, sizeof(length));
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(bytes, kDefaultMaxFrameBytes, &decoded, &consumed,
                          &error),
              DecodeResult::kError)
        << "length " << length;
  }
}

TEST(WireFuzzTest, WrongVersionRejectedWithValidCrc) {
  for (int version = 0; version < 256; ++version) {
    if (version == kWireVersion) continue;
    std::string frame = SampleFrame();
    frame[8] = static_cast<char>(version);
    // Re-seal the CRC so the version check itself is what fires.
    const uint32_t crc = util::Crc32(frame.data() + 8, frame.size() - 8);
    std::memcpy(frame.data() + 4, &crc, sizeof(crc));
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    EXPECT_EQ(DecodeFrame(frame, kDefaultMaxFrameBytes, &decoded, &consumed,
                          &error),
              DecodeResult::kError)
        << "version " << version;
    EXPECT_NE(error.find("version"), std::string::npos);
  }
}

TEST(WireFuzzTest, UnknownTypeRejectedWithValidCrc) {
  std::string frame = SampleFrame();
  frame[9] = static_cast<char>(0x7E);  // not a request, reply, or error type
  const uint32_t crc = util::Crc32(frame.data() + 8, frame.size() - 8);
  std::memcpy(frame.data() + 4, &crc, sizeof(crc));
  Frame decoded;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(DecodeFrame(frame, kDefaultMaxFrameBytes, &decoded, &consumed,
                        &error),
            DecodeResult::kError);
}

// Payload parsers against every truncation and a declared count that lies
// about the byte length — reserve() must never see an unvalidated count.
TEST(WireFuzzTest, PayloadParsersRejectEveryTruncation) {
  BatchRequest batch;
  for (int i = 0; i < 3; ++i) {
    batch.items.push_back({i, 0, 0});
  }
  std::string payload;
  EncodeBatch(batch, &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::string prefix(payload.data(), len);
    BatchRequest out;
    EXPECT_FALSE(ParseBatch(prefix, 4096, &out).ok()) << "length " << len;
  }

  std::string serve;
  EncodeServe({1, 2, 3}, &serve);
  for (size_t len = 0; len < serve.size(); ++len) {
    std::string prefix(serve.data(), len);
    ServeRequest out;
    EXPECT_FALSE(ParseServe(prefix, &out).ok()) << "length " << len;
  }
}

TEST(WireFuzzTest, BatchCountLiesRejected) {
  BatchRequest batch;
  batch.items.push_back({7, 1, 1});
  std::string payload;
  EncodeBatch(batch, &payload);
  // Inflate the declared count without the bytes to back it.
  uint32_t count = 1000000;
  std::memcpy(payload.data(), &count, sizeof(count));
  BatchRequest out;
  EXPECT_FALSE(ParseBatch(payload, 1u << 30, &out).ok());
  // And a count over the parser's cap, with backing bytes this time.
  BatchRequest big;
  for (int i = 0; i < 32; ++i) big.items.push_back({i, 0, 0});
  payload.clear();
  EncodeBatch(big, &payload);
  EXPECT_FALSE(ParseBatch(payload, 16, &out).ok());
}

// Seeded random garbage through the frame decoder: whatever the bytes,
// the only legal outcomes are kNeedMore/kError/kFrame without over-read.
TEST(WireFuzzTest, RandomGarbageNeverCrashes) {
  util::Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    const size_t len = rng.NextBounded(256);
    std::string garbage;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    Frame decoded;
    size_t consumed = 0;
    std::string error;
    const DecodeResult result = DecodeFrame(
        garbage, kDefaultMaxFrameBytes, &decoded, &consumed, &error);
    if (result == DecodeResult::kFrame) {
      // A random 16+-byte CRC collision is ~2^-32 per round; if one ever
      // appears the decode must still be internally consistent.
      EXPECT_LE(consumed, garbage.size());
    }
  }
}

TEST(WireStatusTest, TaxonomyCrossesTheWireVerbatim) {
  for (util::StatusCode code :
       {util::StatusCode::kOk, util::StatusCode::kNotFound,
        util::StatusCode::kUnavailable, util::StatusCode::kTimeout,
        util::StatusCode::kOverloaded}) {
    EXPECT_EQ(CodeFromWireStatus(WireStatus(code)), code);
  }
  // Unknown future codes map to kInternal, not garbage.
  EXPECT_EQ(CodeFromWireStatus(999), util::StatusCode::kInternal);

  std::string frame_bytes;
  AppendFrame(MsgType::kReadReply, WireStatus(util::StatusCode::kOverloaded),
              77, "shed", &frame_bytes);
  Frame frame;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(DecodeFrame(frame_bytes, kDefaultMaxFrameBytes, &frame, &consumed,
                        &error),
            DecodeResult::kFrame);
  const util::Status status = StatusFromReply(frame);
  EXPECT_TRUE(util::IsTransientRejection(status));
  EXPECT_EQ(status.code(), util::StatusCode::kOverloaded);
  EXPECT_EQ(status.message(), "shed");
}

}  // namespace
}  // namespace objalloc::net
