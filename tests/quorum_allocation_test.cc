#include <gtest/gtest.h>

#include "objalloc/core/quorum_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/legality.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

QuorumAllocation Make(int r = 0, int w = 0) {
  QuorumAllocationOptions options;
  options.read_quorum = r;
  options.write_quorum = w;
  return QuorumAllocation(options);
}

TEST(QuorumAllocationTest, OptionsValidation) {
  QuorumAllocationOptions options;
  options.read_quorum = 2;
  options.write_quorum = 3;
  EXPECT_FALSE(options.ValidateFor(6, 2).ok());  // r + w <= n
  options.write_quorum = 5;
  EXPECT_TRUE(options.ValidateFor(6, 2).ok());
  EXPECT_FALSE(options.ValidateFor(6, 6).ok());  // w < t
  options.read_quorum = 9;
  EXPECT_FALSE(options.ValidateFor(6, 2).ok());  // r > n
}

TEST(QuorumAllocationTest, MajorityDefaults) {
  auto quorum = Make();
  quorum.Reset(7, ProcessorSet{0, 1});
  EXPECT_EQ(quorum.read_quorum(), 4);
  EXPECT_EQ(quorum.write_quorum(), 4);
}

TEST(QuorumAllocationTest, ReadPollsRProcessors) {
  auto quorum = Make(3, 5);
  quorum.Reset(7, ProcessorSet{0, 1});
  Decision d = quorum.Step(Request::Read(6));
  EXPECT_EQ(d.execution_set.Size(), 3);
  EXPECT_FALSE(d.saving);
  // Anchored on a scheme member: the poll sees the latest version.
  EXPECT_TRUE(d.execution_set.Intersects((ProcessorSet{0, 1})));
}

TEST(QuorumAllocationTest, WriteReachesWProcessorsIncludingWriter) {
  auto quorum = Make(3, 5);
  quorum.Reset(7, ProcessorSet{0, 1});
  Decision d = quorum.Step(Request::Write(6));
  EXPECT_EQ(d.execution_set.Size(), 5);
  EXPECT_TRUE(d.execution_set.Contains(6));
}

TEST(QuorumAllocationTest, AlwaysLegalAndTAvailable) {
  workload::UniformWorkload uniform(0.6);
  for (auto [r, w] : {std::pair{3, 5}, {4, 4}, {2, 6}}) {
    auto quorum = Make(r, w);
    Schedule schedule = uniform.Generate(7, 300, 4);
    auto allocation = RunAlgorithm(quorum, schedule, ProcessorSet{0, 1});
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 2).ok())
        << "r=" << r << " w=" << w;
  }
}

TEST(QuorumAllocationTest, RotationSpreadsWriteQuorums) {
  auto quorum = Make(3, 5);
  quorum.Reset(7, ProcessorSet{0, 1});
  ProcessorSet first = quorum.Step(Request::Write(0)).execution_set;
  ProcessorSet second = quorum.Step(Request::Write(0)).execution_set;
  EXPECT_NE(first, second);
}

TEST(QuorumAllocationTest, CheaperWritesThanRowaOnWriteHeavyTraffic) {
  // The classical trade: w-fold writes instead of scheme-wide, r-fold reads
  // instead of 1. With mostly writes and a large SA scheme, voting wins.
  CostModel sc = CostModel::StationaryComputing(0.1, 1.0);
  workload::UniformWorkload writes(0.1);
  Schedule schedule = writes.Generate(7, 400, 8);
  ProcessorSet initial = ProcessorSet::FirstN(5);  // t = 5: SA writes 5-wide

  auto quorum = Make(3, 5);
  StaticAllocation sa;
  double quorum_cost = RunWithCost(quorum, sc, schedule, initial).cost;
  double sa_cost = RunWithCost(sa, sc, schedule, initial).cost;
  EXPECT_LT(quorum_cost, sa_cost * 1.05);
}

TEST(QuorumAllocationTest, ReadsCostRFoldEvenWhenLocal) {
  // The §3.1 footnote semantics: a quorum read inputs r copies.
  CostModel sc = CostModel::StationaryComputing(0.1, 1.0);
  auto quorum = Make(3, 5);
  Schedule schedule = Schedule::Parse(7, "r0").value();
  RunResult result = RunWithCost(quorum, sc, schedule, ProcessorSet{0, 1});
  EXPECT_EQ(result.breakdown.io_ops, 3);
}

}  // namespace
}  // namespace objalloc::core
