// Durable storage substrate: crash-atomic on-disk records with CRC
// verification, and their integration with the simulator's crash/recovery
// path.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "objalloc/sim/durable_store.h"
#include "objalloc/sim/simulator.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/env.h"
#include "objalloc/util/faulty_env.h"

namespace objalloc::sim {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Crc32Test, KnownVector) {
  // The classic IEEE CRC-32 check value for "123456789".
  EXPECT_EQ(util::Crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, SeedChaining) {
  const char* text = "hello world";
  uint32_t whole = util::Crc32(text, 11);
  uint32_t chained = util::Crc32(text + 5, 6, util::Crc32(text, 5));
  EXPECT_EQ(whole, chained);
}

TEST(DurableStoreTest, MissingFileIsAbsentNotError) {
  DurableObjectStore store(TestPath("never_written.bin"));
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_FALSE(snapshot->present);
}

TEST(DurableStoreTest, PersistLoadRoundTrip) {
  DurableObjectStore store(TestPath("roundtrip.bin"));
  ASSERT_TRUE(store.Persist(42, 0xdeadbeef, true).ok());
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_TRUE(snapshot->present);
  EXPECT_TRUE(snapshot->valid);
  EXPECT_EQ(snapshot->version, 42);
  EXPECT_EQ(snapshot->value, 0xdeadbeefu);
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, OverwriteKeepsLatest) {
  DurableObjectStore store(TestPath("overwrite.bin"));
  ASSERT_TRUE(store.Persist(1, 10, true).ok());
  ASSERT_TRUE(store.Persist(2, 20, false).ok());
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 2);
  EXPECT_FALSE(snapshot->valid);
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, SurvivesReopen) {
  std::string path = TestPath("reopen.bin");
  {
    DurableObjectStore store(path);
    ASSERT_TRUE(store.Persist(7, 70, true).ok());
  }
  DurableObjectStore reopened(path);
  auto snapshot = reopened.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 7);
  ASSERT_TRUE(reopened.Remove().ok());
}

TEST(DurableStoreTest, DetectsCorruption) {
  std::string path = TestPath("corrupt.bin");
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(9, 90, true).ok());
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(10);
    char byte = 0x5a;
    file.write(&byte, 1);
  }
  auto snapshot = store.Load();
  EXPECT_FALSE(snapshot.ok());
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, StaleTempFileIsSweptNotServed) {
  // A crash between writing the temp file and the rename strands
  // `path + ".tmp"`; Load must ignore it (the record was never published)
  // and clean it up so it cannot shadow a later Persist.
  std::string path = TestPath("stale_tmp.bin");
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(3, 30, true).ok());
  {
    std::ofstream tmp(path + ".tmp", std::ios::binary | std::ios::trunc);
    tmp << "half-written garbage";
  }
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 3);
  EXPECT_EQ(snapshot->value, 30u);
  std::ifstream check(path + ".tmp");
  EXPECT_FALSE(check.good()) << "stale temp file must be removed";
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, DetectsTruncation) {
  std::string path = TestPath("truncated.bin");
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(9, 90, true).ok());
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << "xyz";
  }
  EXPECT_FALSE(store.Load().ok());
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, InjectedWriteFaultSurfacesFromPersist) {
  // The store's IO rides the util::Env seam, so a scripted disk fault
  // surfaces as a Persist error — and the previously published record
  // survives untouched (atomic publish: old or new, never a mix).
  std::string path = TestPath("faulty_persist.bin");
  util::FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(1, 10, true).ok());

  faulty.SetPlan({faulty.op_count(), util::FaultKind::kEio,
                  util::FaultPlan::kForever});
  EXPECT_FALSE(store.Persist(2, 20, true).ok());

  faulty.ClearPlan();
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 1);
  EXPECT_EQ(snapshot->value, 10u);
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, InjectedReadFaultSurfacesFromLoad) {
  std::string path = TestPath("faulty_load.bin");
  util::FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(5, 50, true).ok());

  faulty.SetPlan({faulty.op_count(), util::FaultKind::kEio,
                  util::FaultPlan::kForever});
  EXPECT_FALSE(store.Load().ok());

  faulty.ClearPlan();
  EXPECT_TRUE(store.Load().ok());
  ASSERT_TRUE(store.Remove().ok());
}

TEST(DurableStoreTest, BitFlipOnTheWireIsCaughtByTheCrc) {
  // A read that silently corrupts one bit (bad cable, bad DRAM on the
  // controller) must be indistinguishable from on-disk corruption: the
  // record CRC rejects it.
  std::string path = TestPath("faulty_flip.bin");
  util::FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  DurableObjectStore store(path);
  ASSERT_TRUE(store.Persist(6, 60, true).ok());

  // The Load sequence is Open, then the data-carrying Read.
  faulty.SetPlan({faulty.op_count() + 1, util::FaultKind::kBitFlipRead, 1});
  EXPECT_FALSE(store.Load().ok());

  faulty.ClearPlan();
  auto snapshot = store.Load();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->version, 6);
  ASSERT_TRUE(store.Remove().ok());
}

// ----------------------------------------------- Simulator integration

SimulatorOptions DurableOptions(ProtocolKind kind) {
  SimulatorOptions options;
  options.protocol = kind;
  options.num_processors = 5;
  options.initial_scheme = util::ProcessorSet{0, 1};
  options.durable_dir = ::testing::TempDir();
  return options;
}

TEST(DurableSimulatorTest, CrashLosesVolatileStateRecoveryReloads) {
  Simulator sim(DurableOptions(ProtocolKind::kQuorum));
  ASSERT_TRUE(sim.SubmitWrite(2, 11).ok);
  // Processor 2 holds version 1 on disk.
  sim.Crash(2);
  EXPECT_FALSE(sim.database(2).has_copy()) << "volatile image lost";
  sim.Recover(2);
  EXPECT_TRUE(sim.database(2).has_copy()) << "reloaded from disk";
  EXPECT_EQ(sim.database(2).version(), 1);
}

TEST(DurableSimulatorTest, RecoveredQuorumNodeServesAsVersionHolder) {
  Simulator sim(DurableOptions(ProtocolKind::kQuorum));
  ASSERT_TRUE(sim.SubmitWrite(2, 11).ok);  // quorum {2, 0, 1}
  sim.Crash(0);
  sim.Crash(1);
  sim.Recover(0);
  sim.Recover(1);
  sim.Crash(2);  // the writer goes down; 0 or 1 must still hold v1
  RequestOutcome outcome = sim.SubmitRead(4);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.value, 11u);
  EXPECT_FALSE(outcome.stale);
}

TEST(DurableSimulatorTest, DaStillDistrustsRecoveredCopyInNormalMode) {
  Simulator sim(DurableOptions(ProtocolKind::kDynamic));
  // Joiner 3 gets a copy, then misses nothing — but after a crash its copy
  // must not be trusted in normal mode (invalidations may have been lost).
  ASSERT_TRUE(sim.SubmitRead(3).ok);
  sim.Crash(3);
  sim.Recover(3);
  EXPECT_FALSE(sim.database(3).has_copy());
  RequestOutcome outcome = sim.SubmitRead(3);  // re-fetches
  ASSERT_TRUE(outcome.ok);
  EXPECT_FALSE(outcome.stale);
}

TEST(DurableSimulatorTest, NoStaleReadsWithDurableBackingUnderChurn) {
  Simulator sim(DurableOptions(ProtocolKind::kDynamic));
  ASSERT_TRUE(sim.SubmitWrite(2, 1).ok);
  sim.Crash(0);
  ASSERT_TRUE(sim.SubmitWrite(3, 2).ok);  // failover
  sim.Recover(0);
  ASSERT_TRUE(sim.SubmitWrite(4, 3).ok);
  RequestOutcome outcome = sim.SubmitRead(0);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.value, 3u);
  EXPECT_EQ(sim.metrics().stale_reads, 0);
}

}  // namespace
}  // namespace objalloc::sim
