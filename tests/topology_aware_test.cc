#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/topology_aware.h"
#include "objalloc/model/legality.h"
#include "objalloc/model/topology.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::NetworkTopology;
using model::Schedule;

TEST(TopologyAwareTest, UniformTopologyCostsExactlyLikeDa) {
  // With all multipliers 1, every source choice is equivalent: the costs
  // must coincide with plain DA on every schedule.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload uniform(0.7);
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Schedule schedule = uniform.Generate(8, 150, seed);
    TopologyAwareAllocation topo(NetworkTopology::Uniform(8));
    DynamicAllocation da;
    double topo_cost =
        RunWithCost(topo, sc, schedule, ProcessorSet{0, 1}).cost;
    double da_cost = RunWithCost(da, sc, schedule, ProcessorSet{0, 1}).cost;
    EXPECT_DOUBLE_EQ(topo_cost, da_cost) << "seed " << seed;
  }
}

TEST(TopologyAwareTest, FloatingMemberIsTheLeastCentral) {
  // Initial scheme {0, 7}: processor 7 sits in the far cluster, so it
  // becomes p and the central processor 0 anchors F.
  NetworkTopology clusters = NetworkTopology::TwoClusters(8, 7, 5.0);
  TopologyAwareAllocation topo(clusters);
  topo.Reset(8, ProcessorSet{0, 7});
  EXPECT_EQ(topo.floating_processor(), 7);
  EXPECT_EQ(topo.core_set(), ProcessorSet{0});
}

TEST(TopologyAwareTest, ReadsFetchFromNearestReplica) {
  NetworkTopology clusters = NetworkTopology::TwoClusters(8, 4, 5.0);
  TopologyAwareAllocation topo(clusters);
  topo.Reset(8, ProcessorSet{0, 1});
  // Reader 5 (far cluster): only far source would be a joiner; first read
  // must cross the WAN to a scheme member.
  Decision first = topo.Step(Request::Read(5));
  EXPECT_TRUE(first.saving);
  EXPECT_TRUE(first.execution_set.IsSubsetOf((ProcessorSet{0, 1})));
  // Reader 6 can now fetch from 5, inside its own cluster.
  Decision second = topo.Step(Request::Read(6));
  EXPECT_EQ(second.execution_set, ProcessorSet{5});
}

TEST(TopologyAwareTest, SchemeDynamicsMatchDa) {
  NetworkTopology star = NetworkTopology::Star(6, 0, 1.0);
  TopologyAwareAllocation topo(star);
  topo.Reset(6, ProcessorSet{0, 1});
  topo.Step(Request::Read(4));
  EXPECT_TRUE(topo.scheme().Contains(4));
  topo.Step(Request::Write(3));
  EXPECT_EQ(topo.scheme(), topo.core_set().WithInserted(3));
  EXPECT_FALSE(topo.scheme().Contains(4)) << "write invalidates joiners";
}

TEST(TopologyAwareTest, ProducesLegalTAvailableSchedules) {
  NetworkTopology clusters = NetworkTopology::TwoClusters(9, 4, 3.0);
  workload::UniformWorkload uniform(0.6);
  for (int t = 2; t <= 4; ++t) {
    TopologyAwareAllocation topo(clusters);
    Schedule schedule = uniform.Generate(9, 120, 77);
    auto allocation =
        RunAlgorithm(topo, schedule, ProcessorSet::FirstN(t));
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, t).ok()) << t;
  }
}

TEST(TopologyAwareTest, BeatsDaOnClusteredReads) {
  // Far-cluster readers: after the first WAN fetch, TopoDA serves the
  // cluster locally; DA keeps crossing to F.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  NetworkTopology clusters = NetworkTopology::TwoClusters(8, 4, 5.0);
  Schedule schedule(8);
  for (int round = 0; round < 20; ++round) {
    for (util::ProcessorId reader = 4; reader < 8; ++reader) {
      schedule.AppendRead(reader);
    }
  }
  TopologyAwareAllocation topo(clusters);
  DynamicAllocation da;
  auto topo_alloc = RunAlgorithm(topo, schedule, ProcessorSet{0, 1});
  auto da_alloc = RunAlgorithm(da, schedule, ProcessorSet{0, 1});
  EXPECT_LT(model::WeightedScheduleCost(sc, clusters, topo_alloc),
            model::WeightedScheduleCost(sc, clusters, da_alloc));
}

TEST(TopologyAwareTest, RejectsMismatchedSystemSize) {
  TopologyAwareAllocation topo(NetworkTopology::Uniform(4));
  EXPECT_DEATH(topo.Reset(6, ProcessorSet{0, 1}), "");
}

}  // namespace
}  // namespace objalloc::core
