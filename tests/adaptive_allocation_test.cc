#include <gtest/gtest.h>

#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/legality.h"
#include "objalloc/workload/regime.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

AdaptiveAllocation MakeAdaptive(const CostModel& model, int window = 64) {
  AdaptiveOptions options;
  options.window_size = window;
  return AdaptiveAllocation(model, options);
}

TEST(AdaptiveAllocationTest, OptionsValidation) {
  AdaptiveOptions bad;
  bad.window_size = 0;
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_TRUE(AdaptiveOptions{}.Validate().ok());
}

TEST(AdaptiveAllocationTest, MemberReadsLocally) {
  auto adaptive = MakeAdaptive(CostModel::StationaryComputing(0.2, 0.5));
  adaptive.Reset(5, ProcessorSet{0, 1});
  Decision d = adaptive.Step(Request::Read(0));
  EXPECT_EQ(d.execution_set, ProcessorSet{0});
  EXPECT_FALSE(d.saving);
}

TEST(AdaptiveAllocationTest, RepeatedReaderGetsPromoted) {
  auto adaptive = MakeAdaptive(CostModel::StationaryComputing(0.2, 0.5));
  adaptive.Reset(5, ProcessorSet{0, 1});
  // With no writes in the window, copies are free: the first outside read
  // already saves.
  Decision d = adaptive.Step(Request::Read(3));
  EXPECT_TRUE(d.saving);
  EXPECT_TRUE(adaptive.scheme().Contains(3));
}

TEST(AdaptiveAllocationTest, WriteKeepsAvailabilityThreshold) {
  auto adaptive = MakeAdaptive(CostModel::StationaryComputing(0.2, 0.5));
  adaptive.Reset(6, ProcessorSet{0, 1, 2});
  Decision d = adaptive.Step(Request::Write(4));
  EXPECT_GE(d.execution_set.Size(), 3);
  EXPECT_TRUE(d.execution_set.Contains(4));
}

TEST(AdaptiveAllocationTest, ColdMembersAreDroppedOnWrite) {
  auto adaptive = MakeAdaptive(CostModel::StationaryComputing(0.1, 0.2));
  adaptive.Reset(8, ProcessorSet{0, 1});
  // Processor 5 reads heavily; 0 and 1 never read. After a streak of writes
  // and reads, the scheme should track the readers.
  for (int round = 0; round < 10; ++round) {
    adaptive.Step(Request::Read(5));
    adaptive.Step(Request::Read(5));
    adaptive.Step(Request::Write(6));
  }
  EXPECT_TRUE(adaptive.scheme().Contains(5));
}

TEST(AdaptiveAllocationTest, ProducesLegalTAvailableSchedules) {
  CostModel sc = CostModel::StationaryComputing(0.3, 0.6);
  for (int t = 2; t <= 4; ++t) {
    auto adaptive = MakeAdaptive(sc);
    Schedule schedule =
        Schedule::Parse(7, "r5 r6 w2 r3 w3 r0 r1 w5 r4 r4 w1 r6").value();
    auto allocation =
        RunAlgorithm(adaptive, schedule, ProcessorSet::FirstN(t));
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, t).ok()) << t;
  }
}

TEST(AdaptiveAllocationTest, BeatsStaticAllocationOnRegularPattern) {
  // §5.1: convergent algorithms shine on regular read-write patterns. A
  // stable hot set of readers far from the static scheme should favor the
  // adaptive allocator.
  CostModel sc = CostModel::StationaryComputing(0.2, 1.0);
  workload::RegimeWorkload regime(/*regime_length=*/200, /*hot_set_size=*/2,
                                  /*read_ratio=*/0.9);
  Schedule schedule = regime.Generate(10, 600, /*seed=*/42);

  auto adaptive = MakeAdaptive(sc);
  StaticAllocation sa;
  double adaptive_cost =
      RunWithCost(adaptive, sc, schedule, ProcessorSet{0, 1}).cost;
  double static_cost =
      RunWithCost(sa, sc, schedule, ProcessorSet{0, 1}).cost;
  EXPECT_LT(adaptive_cost, static_cost);
}

TEST(AdaptiveAllocationTest, SmallWindowStillLegal) {
  CostModel mc = CostModel::MobileComputing(0.1, 0.4);
  auto adaptive = MakeAdaptive(mc, /*window=*/4);
  Schedule schedule =
      Schedule::Parse(5, "w4 r3 r3 w0 r2 w2 r1 r1 r1 w3").value();
  auto allocation = RunAlgorithm(adaptive, schedule, ProcessorSet{0, 1});
  EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 2).ok());
}

}  // namespace
}  // namespace objalloc::core
