#include <gtest/gtest.h>

#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/legality.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

TEST(StaticAllocationTest, LocalReadUsesOwnCopy) {
  StaticAllocation sa;
  sa.Reset(4, ProcessorSet{0, 1});
  Decision d = sa.Step(Request::Read(1));
  EXPECT_EQ(d.execution_set, ProcessorSet{1});
  EXPECT_FALSE(d.saving);
}

TEST(StaticAllocationTest, RemoteReadContactsOneMember) {
  StaticAllocation sa;
  sa.Reset(4, ProcessorSet{0, 1});
  Decision d = sa.Step(Request::Read(3));
  EXPECT_EQ(d.execution_set.Size(), 1);
  EXPECT_TRUE(d.execution_set.IsSubsetOf((ProcessorSet{0, 1})));
  EXPECT_FALSE(d.saving);
}

TEST(StaticAllocationTest, WritePropagatesToWholeScheme) {
  StaticAllocation sa;
  sa.Reset(4, ProcessorSet{0, 1});
  EXPECT_EQ(sa.Step(Request::Write(3)).execution_set, (ProcessorSet{0, 1}));
  EXPECT_EQ(sa.Step(Request::Write(0)).execution_set, (ProcessorSet{0, 1}));
}

TEST(StaticAllocationTest, SchemeNeverChanges) {
  StaticAllocation sa;
  Schedule schedule = Schedule::Parse(5, "r3 w4 r2 w0 r1 r4").value();
  auto allocation = RunAlgorithm(sa, schedule, ProcessorSet{0, 1});
  for (size_t i = 0; i <= allocation.size(); ++i) {
    EXPECT_EQ(allocation.SchemeAt(i), (ProcessorSet{0, 1}));
  }
}

TEST(StaticAllocationTest, ProducesLegalTAvailableSchedules) {
  StaticAllocation sa;
  Schedule schedule =
      Schedule::Parse(6, "r5 r5 w2 r3 w3 r0 r1 w5 r4 r4 w1").value();
  auto allocation = RunAlgorithm(sa, schedule, ProcessorSet{0, 1, 2});
  EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 3).ok());
}

TEST(StaticAllocationTest, CostOnKnownSchedule) {
  // Q = {0,1}, t = 2, cc = 0.5, cd = 1 (SC). r2: cc+1+cd = 2.5;
  // w2: |X|(cd+1) = 4; r0: 1; w1: (|X|-1)cd + |X| = 3.
  StaticAllocation sa;
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(3, "r2 w2 r0 w1").value();
  RunResult result = RunWithCost(sa, sc, schedule, ProcessorSet{0, 1});
  EXPECT_DOUBLE_EQ(result.cost, 2.5 + 4 + 1 + 3);
}

TEST(StaticAllocationTest, ReadOneWriteAllBreakdown) {
  StaticAllocation sa;
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(4, "r3 r3 w0").value();
  RunResult result = RunWithCost(sa, sc, schedule, ProcessorSet{0, 1});
  // Two remote reads: 2 ctrl, 2 data, 2 io. Write by member: 1 data, 2 io.
  EXPECT_EQ(result.breakdown.control_messages, 2);
  EXPECT_EQ(result.breakdown.data_messages, 3);
  EXPECT_EQ(result.breakdown.io_ops, 4);
}

TEST(StaticAllocationTest, WorksWithLargerThresholds) {
  for (int t = 2; t <= 5; ++t) {
    StaticAllocation sa;
    Schedule schedule = Schedule::Parse(8, "r7 w6 r5 w7 r6").value();
    auto allocation =
        RunAlgorithm(sa, schedule, ProcessorSet::FirstN(t));
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, t).ok()) << t;
    // Every write execution set is exactly the scheme.
    for (const auto& entry : allocation.entries()) {
      if (entry.request.is_write()) {
        EXPECT_EQ(entry.execution_set, ProcessorSet::FirstN(t));
      }
    }
  }
}

}  // namespace
}  // namespace objalloc::core
