#include <gtest/gtest.h>

#include "objalloc/analysis/adversarial_search.h"
#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::analysis {
namespace {

SearchOptions SmallSearch() {
  SearchOptions options;
  options.num_processors = 5;
  options.t = 2;
  options.schedule_length = 30;
  options.max_length = 60;
  options.iterations = 150;
  options.restarts = 2;
  return options;
}

TEST(AdversarialSearchTest, OptionsValidation) {
  SearchOptions options = SmallSearch();
  EXPECT_TRUE(options.Validate().ok());
  options.t = 1;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallSearch();
  options.max_length = 10;
  EXPECT_FALSE(options.Validate().ok());
  options = SmallSearch();
  options.iterations = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(AdversarialSearchTest, FoundScheduleReproducesItsRatio) {
  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 0.5);
  SearchResult result = FindAdversarialSchedule(da, sc, SmallSearch());
  ASSERT_GT(result.best_ratio, 1.0);
  ASSERT_FALSE(result.best_schedule.empty());
  double replayed = RatioOnSchedule(da, sc, result.best_schedule,
                                    model::ProcessorSet::FirstN(2));
  EXPECT_NEAR(replayed, result.best_ratio, 1e-9);
}

TEST(AdversarialSearchTest, BeatsTheRandomBaseline) {
  // The climb must strictly improve on plain random sampling with the same
  // evaluation budget.
  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 0.5);
  SearchOptions options = SmallSearch();
  SearchResult climbed = FindAdversarialSchedule(da, sc, options);

  workload::UniformWorkload uniform(0.7);
  double random_best = 0;
  for (int64_t k = 0; k < climbed.evaluations; ++k) {
    model::Schedule schedule = uniform.Generate(
        options.num_processors, options.schedule_length,
        static_cast<uint64_t>(k) + 1);
    random_best = std::max(
        random_best, RatioOnSchedule(da, sc, schedule,
                                     model::ProcessorSet::FirstN(2)));
  }
  EXPECT_GT(climbed.best_ratio, random_best);
}

TEST(AdversarialSearchTest, NeverExceedsTheAnalyticUpperBound) {
  core::DynamicAllocation da;
  for (auto [cc, cd] : {std::pair{0.1, 0.4}, {0.3, 0.5}}) {
    model::CostModel sc = model::CostModel::StationaryComputing(cc, cd);
    SearchResult result = FindAdversarialSchedule(da, sc, SmallSearch());
    EXPECT_LE(result.best_ratio, DaCompetitiveFactor(sc) + 1e-9)
        << "cc=" << cc << " cd=" << cd;
  }
}

TEST(AdversarialSearchTest, ExceedsTheGenericLowerBoundInTheBand) {
  // Inside the unknown band the search should at least rediscover ratios
  // above Prop. 2's 1.5.
  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 0.3);
  SearchOptions options = SmallSearch();
  options.iterations = 300;
  SearchResult result = FindAdversarialSchedule(da, sc, options);
  EXPECT_GE(result.best_ratio, kDaLowerBound);
}

TEST(AdversarialSearchTest, FindsSaTightFactorQuickly) {
  // Against SA the climber should approach 1 + cc + cd (it can grow the
  // nemesis seed toward max_length).
  core::StaticAllocation sa;
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  SearchOptions options = SmallSearch();
  options.max_length = 100;
  SearchResult result = FindAdversarialSchedule(sa, sc, options);
  EXPECT_GT(result.best_ratio, 2.2);  // limit 2.5
  EXPECT_LE(result.best_ratio, 2.5);
}

TEST(AdversarialSearchTest, DeterministicPerSeed) {
  core::DynamicAllocation da;
  model::CostModel sc = model::CostModel::StationaryComputing(0.2, 0.4);
  SearchResult a = FindAdversarialSchedule(da, sc, SmallSearch());
  SearchResult b = FindAdversarialSchedule(da, sc, SmallSearch());
  EXPECT_DOUBLE_EQ(a.best_ratio, b.best_ratio);
  EXPECT_EQ(a.best_schedule.ToString(), b.best_schedule.ToString());
}

}  // namespace
}  // namespace objalloc::analysis
