#include <gtest/gtest.h>

#include "objalloc/core/counter_replication.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/model/legality.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using model::Schedule;

CounterReplication Make(int lifetime = 2) {
  CounterReplicationOptions options;
  options.lifetime = lifetime;
  return CounterReplication(options);
}

TEST(CounterReplicationTest, OptionsValidation) {
  CounterReplicationOptions bad;
  bad.lifetime = 0;
  EXPECT_FALSE(bad.Validate().ok());
  EXPECT_TRUE(CounterReplicationOptions{}.Validate().ok());
}

TEST(CounterReplicationTest, ReaderJoinsWithFreshCounter) {
  auto counter = Make(3);
  counter.Reset(6, ProcessorSet{0, 1});
  Decision d = counter.Step(Request::Read(4));
  EXPECT_TRUE(d.saving);
  EXPECT_TRUE(counter.scheme().Contains(4));
  EXPECT_EQ(counter.CounterOf(4), 3);
}

TEST(CounterReplicationTest, ReplicaSurvivesLifetimeWrites) {
  // With lifetime 2 the reader's copy survives one write and is evicted by
  // the second.
  auto counter = Make(2);
  counter.Reset(6, ProcessorSet{0, 1, 2});  // t = 3
  counter.Step(Request::Read(4));
  EXPECT_TRUE(counter.scheme().Contains(4));
  counter.Step(Request::Write(0));
  EXPECT_TRUE(counter.scheme().Contains(4)) << "counter 1 left";
  counter.Step(Request::Write(0));
  EXPECT_FALSE(counter.scheme().Contains(4)) << "expired";
}

TEST(CounterReplicationTest, LocalReadRefreshesCounter) {
  auto counter = Make(2);
  counter.Reset(6, ProcessorSet{0, 1, 2});
  counter.Step(Request::Read(4));
  counter.Step(Request::Write(0));
  counter.Step(Request::Read(4));  // local read, counter back to 2
  counter.Step(Request::Write(0));
  EXPECT_TRUE(counter.scheme().Contains(4));
}

TEST(CounterReplicationTest, NeverDropsBelowThreshold) {
  auto counter = Make(1);
  workload::UniformWorkload uniform(0.3);  // write heavy: much eviction
  for (int t = 2; t <= 4; ++t) {
    auto algorithm = Make(1);
    Schedule schedule = uniform.Generate(7, 200, 99);
    auto allocation =
        RunAlgorithm(algorithm, schedule, ProcessorSet::FirstN(t));
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, t).ok()) << t;
  }
}

TEST(CounterReplicationTest, WriterAlwaysHoldsTheNewVersion) {
  auto counter = Make(2);
  counter.Reset(6, ProcessorSet{0, 1});
  Decision d = counter.Step(Request::Write(5));
  EXPECT_TRUE(d.execution_set.Contains(5));
  EXPECT_TRUE(counter.scheme().Contains(5));
}

TEST(CounterReplicationTest, HeavyReaderKeptAcrossWritesUnlikeDa) {
  // The hysteresis distinguishes Counter from DA: DA invalidates a joiner on
  // the next write; Counter keeps it for `lifetime` writes.
  Schedule schedule = Schedule::Parse(6, "r4 w0 r4").value();
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);

  auto counter = Make(2);
  DynamicAllocation da;
  RunResult counter_run =
      RunWithCost(counter, sc, schedule, ProcessorSet{0, 1});
  RunResult da_run = RunWithCost(da, sc, schedule, ProcessorSet{0, 1});
  // DA: second r4 is a remote saving-read again; Counter: local.
  EXPECT_LT(counter_run.cost, da_run.cost);
  EXPECT_FALSE(counter_run.allocation[2].is_saving_read());
  EXPECT_TRUE(da_run.allocation[2].is_saving_read());
}

}  // namespace
}  // namespace objalloc::core
