#include <limits>

#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/core/topology_aware.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/weighted_opt.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::opt {
namespace {

using model::CostModel;
using model::NetworkTopology;
using model::ProcessorSet;
using model::Request;
using model::Schedule;

// Exhaustive weighted reference: every execution set and saving choice.
double WeightedBruteForce(const CostModel& cost_model,
                          const NetworkTopology& topology,
                          const Schedule& schedule, int t, size_t index,
                          ProcessorSet scheme) {
  if (index == schedule.size()) return 0;
  const Request& req = schedule[index];
  const int n = schedule.num_processors();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 1; mask < (uint64_t{1} << n); ++mask) {
    ProcessorSet x(mask);
    if (req.is_read()) {
      if (!x.Intersects(scheme)) continue;
      for (bool saving : {false, true}) {
        model::AllocatedRequest entry{req, x, saving};
        ProcessorSet next = model::NextScheme(scheme, entry);
        if (next.Size() < t) continue;
        double cost =
            model::WeightedRequestCost(cost_model, topology, entry, scheme) +
            WeightedBruteForce(cost_model, topology, schedule, t, index + 1,
                               next);
        best = std::min(best, cost);
      }
    } else {
      if (x.Size() < t) continue;
      model::AllocatedRequest entry{req, x, false};
      double cost =
          model::WeightedRequestCost(cost_model, topology, entry, scheme) +
          WeightedBruteForce(cost_model, topology, schedule, t, index + 1, x);
      best = std::min(best, cost);
    }
  }
  return best;
}

NetworkTopology RandomTopology(int n, util::Rng& rng) {
  NetworkTopology topology(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      topology.SetMessageMultiplier(a, b, 1.0 + rng.NextDouble() * 3);
    }
    topology.SetIoMultiplier(a, 0.5 + rng.NextDouble() * 2);
  }
  return topology;
}

TEST(WeightedOptTest, UniformTopologyMatchesHomogeneousDp) {
  CostModel sc = CostModel::StationaryComputing(0.3, 0.9);
  NetworkTopology uniform = NetworkTopology::Uniform(6);
  workload::UniformWorkload workload(0.7);
  for (uint64_t seed : {1u, 2u, 3u}) {
    Schedule schedule = workload.Generate(6, 60, seed);
    EXPECT_NEAR(
        WeightedExactOptCost(sc, uniform, schedule, ProcessorSet{0, 1}),
        ExactOptCost(sc, schedule, ProcessorSet{0, 1}), 1e-9)
        << "seed " << seed;
  }
}

TEST(WeightedOptTest, MatchesBruteForceOnTinyInstances) {
  util::Rng rng(0x3e1);
  CostModel models[] = {CostModel::StationaryComputing(0.25, 0.75),
                        CostModel::MobileComputing(0.25, 0.75)};
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3;
    NetworkTopology topology = RandomTopology(n, rng);
    Schedule schedule(n);
    size_t length = 1 + rng.NextBounded(4);
    for (size_t k = 0; k < length; ++k) {
      auto p = static_cast<util::ProcessorId>(rng.NextBounded(n));
      if (rng.NextBernoulli(0.6)) {
        schedule.AppendRead(p);
      } else {
        schedule.AppendWrite(p);
      }
    }
    const CostModel& cm = models[trial % 2];
    ProcessorSet initial{0, 1};
    double dp = WeightedExactOptCost(cm, topology, schedule, initial);
    double brute =
        WeightedBruteForce(cm, topology, schedule, 2, 0, initial);
    EXPECT_NEAR(dp, brute, 1e-9) << schedule.ToString();
  }
}

TEST(WeightedOptTest, LowerBoundsEveryAlgorithmUnderTopologies) {
  util::Rng rng(0x3e2);
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  workload::UniformWorkload workload(0.7);
  for (int trial = 0; trial < 10; ++trial) {
    NetworkTopology topology =
        trial % 2 == 0 ? NetworkTopology::TwoClusters(7, 3, 4.0)
                       : RandomTopology(7, rng);
    Schedule schedule = workload.Generate(7, 60, rng.Next());
    ProcessorSet initial{0, 1};
    double opt = WeightedExactOptCost(sc, topology, schedule, initial);

    core::StaticAllocation sa;
    core::DynamicAllocation da;
    core::TopologyAwareAllocation topo(topology);
    for (core::DomAlgorithm* algorithm :
         std::initializer_list<core::DomAlgorithm*>{&sa, &da, &topo}) {
      auto allocation = core::RunAlgorithm(*algorithm, schedule, initial);
      double cost = model::WeightedScheduleCost(sc, topology, allocation);
      EXPECT_LE(opt, cost + 1e-9) << algorithm->name();
    }
  }
}

TEST(WeightedOptTest, ExpensiveLinkChangesTheOptimalPlacement) {
  // Reads from the far cluster: with a cheap WAN the optimum may serve them
  // remotely; with an expensive WAN it must migrate a replica across.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  Schedule schedule = Schedule::Parse(6, "r4 r5 r4 r5 r4 r5").value();
  ProcessorSet initial{0, 1};
  double cheap = WeightedExactOptCost(
      sc, NetworkTopology::TwoClusters(6, 3, 1.0), schedule, initial);
  double dear = WeightedExactOptCost(
      sc, NetworkTopology::TwoClusters(6, 3, 10.0), schedule, initial);
  EXPECT_GT(dear, cheap);
  // With the 10x link the optimum pays at most two crossings (one fetch
  // into the cluster, reads then stay local): far below six remote reads.
  double six_remote_reads = 6 * ((0.25 + 1.0) * 10 + 1.0);
  EXPECT_LT(dear, six_remote_reads);
}

}  // namespace
}  // namespace objalloc::opt
