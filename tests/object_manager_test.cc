#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/object_manager.h"
#include "objalloc/core/runner.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {
namespace {

using model::CostModel;

ObjectManager MakeManager(int n = 8) {
  return ObjectManager(n, CostModel::StationaryComputing(0.5, 1.0));
}

TEST(ObjectManagerTest, AddObjectValidation) {
  ObjectManager manager = MakeManager();
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  EXPECT_TRUE(manager.AddObject(1, config).ok());
  EXPECT_FALSE(manager.AddObject(1, config).ok()) << "duplicate id";
  config.initial_scheme = ProcessorSet{};
  EXPECT_FALSE(manager.AddObject(2, config).ok()) << "empty scheme";
  config.initial_scheme = ProcessorSet{0, 63};
  EXPECT_FALSE(manager.AddObject(3, config).ok()) << "outside the system";
  config.initial_scheme = ProcessorSet{0};
  config.algorithm = AlgorithmKind::kDynamic;
  EXPECT_FALSE(manager.AddObject(4, config).ok()) << "DA needs t >= 2";
  config.algorithm = AlgorithmKind::kStatic;
  EXPECT_TRUE(manager.AddObject(5, config).ok()) << "SA tolerates t = 1";
}

TEST(ObjectManagerTest, ServeUnknownObjectFails) {
  ObjectManager manager = MakeManager();
  auto result = manager.Serve(42, Request::Read(0));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
}

TEST(ObjectManagerTest, ServeOutOfRangeProcessorFails) {
  ObjectManager manager = MakeManager(4);
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(manager.AddObject(1, config).ok());
  EXPECT_FALSE(manager.Serve(1, Request::Read(7)).ok());
}

TEST(ObjectManagerTest, PerObjectCostMatchesStandaloneRun) {
  // One object managed through the manager must cost exactly what a
  // standalone DA run costs.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  ObjectManager manager(8, sc);
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(manager.AddObject(7, config).ok());

  model::Schedule schedule =
      model::Schedule::Parse(8, "r5 r5 w2 r3 w0 r5").value();
  double total = 0;
  for (const auto& request : schedule.requests()) {
    auto cost = manager.Serve(7, request);
    ASSERT_TRUE(cost.ok());
    total += *cost;
  }
  DynamicAllocation da;
  RunResult reference = RunWithCost(da, sc, schedule, ProcessorSet{0, 1});
  EXPECT_DOUBLE_EQ(total, reference.cost);
  auto stats = manager.StatsFor(7);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->breakdown, reference.breakdown);
  EXPECT_EQ(stats->scheme, reference.allocation.FinalScheme());
}

TEST(ObjectManagerTest, ObjectsAreIsolated) {
  ObjectManager manager = MakeManager();
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  ASSERT_TRUE(manager.AddObject(1, config).ok());
  ASSERT_TRUE(manager.AddObject(2, config).ok());
  // A write to object 1 must not invalidate object 2's replicas.
  ASSERT_TRUE(manager.Serve(2, Request::Read(5)).ok());  // 5 joins obj 2
  ASSERT_TRUE(manager.Serve(1, Request::Write(3)).ok());
  auto stats2 = manager.StatsFor(2);
  ASSERT_TRUE(stats2.ok());
  EXPECT_TRUE(stats2->scheme.Contains(5));
}

TEST(ObjectManagerTest, MixedAlgorithmsPerObject) {
  ObjectManager manager = MakeManager();
  ObjectConfig dynamic;
  dynamic.initial_scheme = ProcessorSet{0, 1};
  dynamic.algorithm = AlgorithmKind::kDynamic;
  ObjectConfig fixed;
  fixed.initial_scheme = ProcessorSet{2, 3};
  fixed.algorithm = AlgorithmKind::kStatic;
  ASSERT_TRUE(manager.AddObject(1, dynamic).ok());
  ASSERT_TRUE(manager.AddObject(2, fixed).ok());

  ASSERT_TRUE(manager.Serve(1, Request::Read(6)).ok());
  ASSERT_TRUE(manager.Serve(2, Request::Read(6)).ok());
  // DA saves at the reader, SA does not.
  EXPECT_TRUE(manager.StatsFor(1)->scheme.Contains(6));
  EXPECT_FALSE(manager.StatsFor(2)->scheme.Contains(6));
}

TEST(ObjectManagerTest, AggregatesAcrossObjects) {
  ObjectManager manager = MakeManager();
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(manager.AddObject(id, config).ok());
  }
  EXPECT_EQ(manager.object_count(), 10u);
  for (ObjectId id = 0; id < 10; ++id) {
    ASSERT_TRUE(manager.Serve(id, Request::Read(0)).ok());
  }
  EXPECT_EQ(manager.TotalRequests(), 10);
  EXPECT_EQ(manager.TotalBreakdown().io_ops, 10);
  EXPECT_DOUBLE_EQ(manager.TotalCost(), 10.0);
}

TEST(MultiObjectTraceTest, GeneratorValidation) {
  workload::MultiObjectOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_objects = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = workload::MultiObjectOptions{};
  options.min_read_fraction = 0.9;
  options.max_read_fraction = 0.5;
  EXPECT_FALSE(options.Validate().ok());
  options = workload::MultiObjectOptions{};
  options.locality_set = 99;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(MultiObjectTraceTest, DeterministicAndInRange) {
  workload::MultiObjectOptions options;
  options.length = 500;
  auto a = workload::GenerateMultiObjectTrace(options, 7);
  auto b = workload::GenerateMultiObjectTrace(options, 7);
  ASSERT_EQ(a.events.size(), 500u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].object, b.events[i].object);
    EXPECT_EQ(a.events[i].request, b.events[i].request);
    EXPECT_GE(a.events[i].object, 0);
    EXPECT_LT(a.events[i].object, options.num_objects);
    EXPECT_LT(a.events[i].request.processor, options.num_processors);
  }
}

TEST(MultiObjectTraceTest, PopularityIsSkewed) {
  workload::MultiObjectOptions options;
  options.length = 4000;
  options.popularity_skew = 1.0;
  auto trace = workload::GenerateMultiObjectTrace(options, 9);
  std::vector<int> counts(static_cast<size_t>(options.num_objects), 0);
  for (const auto& event : trace.events) {
    ++counts[static_cast<size_t>(event.object)];
  }
  EXPECT_GT(counts[0], counts[static_cast<size_t>(options.num_objects - 1)] * 3);
}

TEST(MultiObjectTraceTest, EndToEndThroughManager) {
  workload::MultiObjectOptions options;
  options.length = 2000;
  auto trace = workload::GenerateMultiObjectTrace(options, 11);

  ObjectManager manager(options.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  for (int id = 0; id < options.num_objects; ++id) {
    ASSERT_TRUE(manager.AddObject(id, config).ok());
  }
  for (const auto& event : trace.events) {
    ASSERT_TRUE(manager.Serve(event.object, event.request).ok());
  }
  EXPECT_EQ(manager.TotalRequests(), static_cast<int64_t>(options.length));
  EXPECT_GT(manager.TotalCost(), 0.0);
}

}  // namespace
}  // namespace objalloc::core
