// §6.2: the object-allocation results apply verbatim to the append-only
// (satellite feed / standing orders) model. These tests verify the mapping
// and the cost-for-cost equivalence between the feed managers and the SA/DA
// DOM algorithms.

#include <gtest/gtest.h>

#include "objalloc/appendonly/feed.h"
#include "objalloc/appendonly/feed_manager.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/rng.h"

namespace objalloc::appendonly {
namespace {

using model::CostModel;

FeedSchedule RandomFeed(int stations, size_t length, uint64_t seed) {
  util::Rng rng(seed);
  FeedSchedule feed(stations);
  for (size_t i = 0; i < length; ++i) {
    auto station = static_cast<ProcessorId>(
        rng.NextBounded(static_cast<uint64_t>(stations)));
    if (rng.NextBernoulli(0.3)) {
      feed.AppendGenerate(station);
    } else {
      feed.AppendRead(station);
    }
  }
  return feed;
}

TEST(FeedScheduleTest, MappingToObjectSchedule) {
  FeedSchedule feed(4);
  feed.AppendGenerate(2);
  feed.AppendRead(3);
  feed.AppendRead(3);
  feed.AppendGenerate(0);
  model::Schedule schedule = feed.ToObjectSchedule();
  EXPECT_EQ(schedule.ToString(), "w2 r3 r3 w0");
}

TEST(StaticFeedTest, GenerateTransmitsToAllStandingOrders) {
  StaticFeedManager manager(ProcessorSet{0, 1, 2});
  manager.OnGenerate(5);  // generator outside Q
  EXPECT_EQ(manager.breakdown().data_messages, 3);
  EXPECT_EQ(manager.breakdown().io_ops, 3);
  manager.OnGenerate(0);  // generator inside Q keeps its copy locally
  EXPECT_EQ(manager.breakdown().data_messages, 5);
  EXPECT_EQ(manager.breakdown().io_ops, 6);
}

TEST(StaticFeedTest, ReadsLocalOrOnDemand) {
  StaticFeedManager manager(ProcessorSet{0, 1});
  manager.OnRead(0);
  EXPECT_EQ(manager.breakdown().io_ops, 1);
  EXPECT_EQ(manager.breakdown().control_messages, 0);
  manager.OnRead(4);
  EXPECT_EQ(manager.breakdown().control_messages, 1);
  EXPECT_EQ(manager.breakdown().data_messages, 1);
  EXPECT_EQ(manager.breakdown().io_ops, 2);
}

TEST(DynamicFeedTest, TemporaryStandingOrderIsCancelledByNextObject) {
  DynamicFeedManager manager(ProcessorSet{0, 1});  // F = {0}, p = 1
  manager.OnRead(3);  // temporary standing order at 3
  EXPECT_TRUE(manager.holders().Contains(3));
  int64_t ctrl = manager.breakdown().control_messages;
  manager.OnGenerate(0);  // next object cancels 3's order
  EXPECT_FALSE(manager.holders().Contains(3));
  EXPECT_EQ(manager.breakdown().control_messages, ctrl + 1);
}

TEST(DynamicFeedTest, RepeatReaderKeepsLocalCopyUntilNextObject) {
  DynamicFeedManager manager(ProcessorSet{0, 1});
  manager.OnRead(3);
  int64_t data = manager.breakdown().data_messages;
  manager.OnRead(3);  // already holds the latest object
  EXPECT_EQ(manager.breakdown().data_messages, data);
}

TEST(EquivalenceTest, StaticFeedMatchesSaCostForCost) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    FeedSchedule feed = RandomFeed(7, 150, seed);
    StaticFeedManager manager(ProcessorSet{0, 1});
    model::CostBreakdown feed_cost = manager.Run(feed);

    core::StaticAllocation sa;
    model::CostBreakdown dom_cost =
        core::RunWithCost(sa, CostModel::StationaryComputing(0.5, 1.0),
                          feed.ToObjectSchedule(), ProcessorSet{0, 1})
            .breakdown;
    EXPECT_EQ(feed_cost, dom_cost) << "seed " << seed;
  }
}

TEST(EquivalenceTest, DynamicFeedMatchesDaCostForCost) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    for (int t = 2; t <= 3; ++t) {
      FeedSchedule feed = RandomFeed(7, 150, seed);
      DynamicFeedManager manager(ProcessorSet::FirstN(t));
      model::CostBreakdown feed_cost = manager.Run(feed);

      core::DynamicAllocation da;
      model::CostBreakdown dom_cost =
          core::RunWithCost(da, CostModel::StationaryComputing(0.5, 1.0),
                            feed.ToObjectSchedule(), ProcessorSet::FirstN(t))
              .breakdown;
      EXPECT_EQ(feed_cost, dom_cost) << "seed " << seed << " t " << t;
    }
  }
}

TEST(EquivalenceTest, HoldsInMobileCostModelToo) {
  // The breakdown counts are cost-model independent; scalar costs under MC
  // therefore agree as well.
  FeedSchedule feed = RandomFeed(6, 100, 9);
  DynamicFeedManager manager(ProcessorSet{0, 1});
  model::CostBreakdown feed_cost = manager.Run(feed);
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  core::DynamicAllocation da;
  double dom_cost = core::RunWithCost(da, mc, feed.ToObjectSchedule(),
                                      ProcessorSet{0, 1})
                        .cost;
  EXPECT_DOUBLE_EQ(feed_cost.Cost(mc), dom_cost);
}

TEST(FeedScheduleTest, RejectsOutOfRangeStation) {
  FeedSchedule feed(3);
  EXPECT_DEATH(feed.AppendRead(3), "");
}

}  // namespace
}  // namespace objalloc::appendonly
