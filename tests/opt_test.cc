#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/legality.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::opt {
namespace {

using model::AllocationSchedule;
using model::CostModel;
using model::ProcessorSet;
using model::Request;
using model::Schedule;

// Exhaustive reference optimum: explores EVERY legal t-available allocation
// schedule, including choices the DP prunes (multi-member read execution
// sets, saving-reads by scheme members), so it independently validates the
// DP's optimality argument. Exponential — tiny instances only.
double BruteForceOpt(const CostModel& cost_model, const Schedule& schedule,
                     ProcessorSet initial, int t, size_t index,
                     ProcessorSet scheme) {
  if (index == schedule.size()) return 0;
  const Request& req = schedule[index];
  const int n = schedule.num_processors();
  double best = std::numeric_limits<double>::infinity();
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t mask = 1; mask < limit; ++mask) {
    ProcessorSet x(mask);
    if (req.is_read()) {
      if (!x.Intersects(scheme)) continue;  // illegal read
      for (bool saving : {false, true}) {
        model::AllocatedRequest entry{req, x, saving && req.is_read()};
        ProcessorSet next = model::NextScheme(scheme, entry);
        if (next.Size() < t) continue;
        double cost = model::RequestCost(cost_model, entry, scheme) +
                      BruteForceOpt(cost_model, schedule, initial, t,
                                    index + 1, next);
        best = std::min(best, cost);
      }
    } else {
      if (x.Size() < t) continue;  // t-availability after the write
      model::AllocatedRequest entry{req, x, false};
      double cost = model::RequestCost(cost_model, entry, scheme) +
                    BruteForceOpt(cost_model, schedule, initial, t, index + 1,
                                  x);
      best = std::min(best, cost);
    }
  }
  return best;
}

TEST(ExactOptTest, EmptyScheduleCostsNothing) {
  Schedule schedule(4);
  EXPECT_DOUBLE_EQ(ExactOptCost(CostModel::StationaryComputing(0.5, 1.0),
                                schedule, ProcessorSet{0, 1}),
                   0.0);
}

TEST(ExactOptTest, SingleLocalRead) {
  Schedule schedule = Schedule::Parse(4, "r0").value();
  EXPECT_DOUBLE_EQ(ExactOptCost(CostModel::StationaryComputing(0.5, 1.0),
                                schedule, ProcessorSet{0, 1}),
                   1.0);
}

TEST(ExactOptTest, SingleRemoteReadDoesNotSave) {
  Schedule schedule = Schedule::Parse(4, "r3").value();
  // One remote read: saving (+1) cannot pay off.
  EXPECT_DOUBLE_EQ(ExactOptCost(CostModel::StationaryComputing(0.5, 1.0),
                                schedule, ProcessorSet{0, 1}),
                   0.5 + 1 + 1.0);
}

TEST(ExactOptTest, RepeatedRemoteReadsSave) {
  Schedule schedule = Schedule::Parse(4, "r3 r3 r3").value();
  // Save on the first read (0.5+1+1+1), then read locally twice.
  EXPECT_DOUBLE_EQ(ExactOptCost(CostModel::StationaryComputing(0.5, 1.0),
                                schedule, ProcessorSet{0, 1}),
                   3.5 + 1 + 1);
}

TEST(ExactOptTest, WriteMovesSchemeToWriter) {
  Schedule schedule = Schedule::Parse(4, "w3 r3 r3").value();
  // X = {3, y}: cd + 2 io, no invalidation needed if y covers the old
  // scheme; best write cost = 1*1 (cd) + 2 (io) with X = {3,0} or {3,1}
  // (invalidating the other member costs cc) vs X={3,2} (2 invalidations).
  // With cc = 0.5: write = 1 + 2 + 0.5 = 3.5, reads local = 2.
  EXPECT_DOUBLE_EQ(ExactOptCost(CostModel::StationaryComputing(0.5, 1.0),
                                schedule, ProcessorSet{0, 1}),
                   3.5 + 2);
}

TEST(ExactOptTest, MatchesBruteForceOnTinyInstances) {
  util::Rng rng(0x5eed);
  const CostModel models[] = {
      CostModel::StationaryComputing(0.0, 0.0),
      CostModel::StationaryComputing(0.25, 0.75),
      CostModel::StationaryComputing(0.5, 2.0),
      CostModel::MobileComputing(0.25, 0.75),
      CostModel::MobileComputing(1.0, 1.0),
  };
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3;
    const int t = 2;
    const size_t length = 1 + rng.NextBounded(4);
    Schedule schedule(n);
    for (size_t k = 0; k < length; ++k) {
      auto p = static_cast<util::ProcessorId>(rng.NextBounded(n));
      if (rng.NextBernoulli(0.6)) {
        schedule.AppendRead(p);
      } else {
        schedule.AppendWrite(p);
      }
    }
    const CostModel& cost_model = models[trial % 5];
    ProcessorSet initial{0, 1};
    double dp = ExactOptCost(cost_model, schedule, initial);
    double brute =
        BruteForceOpt(cost_model, schedule, initial, t, 0, initial);
    EXPECT_NEAR(dp, brute, 1e-9)
        << "schedule: " << schedule.ToString() << " model "
        << cost_model.ToString();
  }
}

TEST(ExactOptTest, ReconstructionMatchesCostAndIsValid) {
  util::Rng rng(0xface);
  CostModel sc = CostModel::StationaryComputing(0.5, 1.5);
  for (int trial = 0; trial < 20; ++trial) {
    workload::UniformWorkload uniform(0.7);
    Schedule schedule = uniform.Generate(6, 40, rng.Next());
    ProcessorSet initial{0, 1};
    AllocationSchedule allocation =
        ExactOptSchedule(sc, schedule, initial);
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 2).ok());
    EXPECT_NEAR(model::ScheduleCost(sc, allocation),
                ExactOptCost(sc, schedule, initial), 1e-9);
    EXPECT_EQ(allocation.ToSchedule().ToString(), schedule.ToString());
  }
}

TEST(ExactOptTest, RespectsAvailabilityThreshold) {
  // With t = 3 every write must leave >= 3 copies, so writes are costlier
  // than with t = 2.
  CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  Schedule schedule = Schedule::Parse(5, "w4 r4").value();
  double t2 = ExactOptCostWithThreshold(sc, schedule,
                                        ProcessorSet{0, 1, 2}, 2);
  double t3 = ExactOptCostWithThreshold(sc, schedule,
                                        ProcessorSet{0, 1, 2}, 3);
  EXPECT_LT(t2, t3);
}

TEST(ExactOptTest, NeverExceedsOnlineAlgorithms) {
  util::Rng rng(0xabcd);
  const CostModel models[] = {
      CostModel::StationaryComputing(0.25, 0.75),
      CostModel::StationaryComputing(0.0, 2.0),
      CostModel::MobileComputing(0.5, 1.0),
  };
  workload::UniformWorkload uniform(0.7);
  for (int trial = 0; trial < 30; ++trial) {
    Schedule schedule = uniform.Generate(7, 60, rng.Next());
    ProcessorSet initial{0, 1};
    const CostModel& cost_model = models[trial % 3];
    double opt = ExactOptCost(cost_model, schedule, initial);
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    double sa_cost =
        core::RunWithCost(sa, cost_model, schedule, initial).cost;
    double da_cost =
        core::RunWithCost(da, cost_model, schedule, initial).cost;
    EXPECT_LE(opt, sa_cost + 1e-9);
    EXPECT_LE(opt, da_cost + 1e-9);
  }
}

// ------------------------------------------------------------- Brackets

struct BracketCase {
  double cc, cd;
  bool mobile;
};

class BracketTest : public ::testing::TestWithParam<BracketCase> {};

TEST_P(BracketTest, LowerBoundAndIntervalHeuristicBracketOpt) {
  const BracketCase& param = GetParam();
  CostModel cost_model =
      param.mobile ? CostModel::MobileComputing(param.cc, param.cd)
                   : CostModel::StationaryComputing(param.cc, param.cd);
  util::Rng rng(0xb00c);
  workload::UniformWorkload uniform(0.65);
  for (int trial = 0; trial < 12; ++trial) {
    Schedule schedule = uniform.Generate(6, 50, rng.Next());
    ProcessorSet initial{0, 1};
    double lb = RelaxationLowerBound(cost_model, schedule, initial);
    double opt = ExactOptCost(cost_model, schedule, initial);
    double ub = IntervalOptCost(cost_model, schedule, initial);
    EXPECT_LE(lb, opt + 1e-9) << schedule.ToString();
    EXPECT_LE(opt, ub + 1e-9) << schedule.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    CostGrid, BracketTest,
    ::testing::Values(BracketCase{0.0, 0.0, false},
                      BracketCase{0.1, 0.3, false},
                      BracketCase{0.5, 0.5, false},
                      BracketCase{0.5, 2.0, false},
                      BracketCase{1.0, 2.0, false},
                      BracketCase{0.1, 0.3, true},
                      BracketCase{0.5, 1.0, true},
                      BracketCase{1.0, 1.0, true}));

TEST(IntervalOptTest, ProducesValidSchedules) {
  util::Rng rng(0x1d1d);
  CostModel sc = CostModel::StationaryComputing(0.3, 1.2);
  workload::UniformWorkload uniform(0.5);
  for (int trial = 0; trial < 10; ++trial) {
    Schedule schedule = uniform.Generate(9, 80, rng.Next());
    AllocationSchedule allocation =
        IntervalOptSchedule(sc, schedule, ProcessorSet{0, 1, 2});
    EXPECT_TRUE(model::CheckLegalAndTAvailable(allocation, 3).ok());
  }
}

TEST(IntervalOptTest, SavesForRepeatedReaders) {
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(5, "r4 r4 r4 r4").value();
  AllocationSchedule allocation =
      IntervalOptSchedule(sc, schedule, ProcessorSet{0, 1});
  EXPECT_TRUE(allocation[0].is_saving_read());
  EXPECT_EQ(allocation[1].execution_set, ProcessorSet{4});
}

TEST(IntervalOptTest, PushesCopiesToUpcomingReaders) {
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(6, "w0 r4 r4 r4").value();
  AllocationSchedule allocation =
      IntervalOptSchedule(sc, schedule, ProcessorSet{0, 1});
  EXPECT_TRUE(allocation[0].execution_set.Contains(4));
}

TEST(RelaxationLowerBoundTest, ExactOnLocalOnlyWorkload) {
  // All requests from scheme members: the relaxation has no slack.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  Schedule schedule = Schedule::Parse(4, "r0 r1 r0 r1").value();
  EXPECT_DOUBLE_EQ(
      RelaxationLowerBound(sc, schedule, ProcessorSet{0, 1}),
      ExactOptCost(sc, schedule, ProcessorSet{0, 1}));
}

TEST(RelaxationLowerBoundTest, ScalesLinearly) {
  // The bound must be computable for systems far beyond the exact DP.
  CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  workload::UniformWorkload uniform(0.7);
  Schedule schedule = uniform.Generate(48, 4000, 7);
  double lb =
      RelaxationLowerBound(sc, schedule, ProcessorSet::FirstN(3));
  EXPECT_GT(lb, 0.0);
}

}  // namespace
}  // namespace objalloc::opt
