// Surviving a bad disk (DESIGN.md §14): the Env seam, the deterministic
// FaultyEnv, retry/backoff, degrade-and-reattach durability, and the
// error-at-every-op sweep — for every IO operation a durable workload
// performs, and for a spread of seeds and fault kinds, the service must
// either ride the fault out (retry) or degrade, keep serving bit-identically
// in memory, and heal through ReattachDurability into a directory whose
// recovery is bit-identical again.
//
// Also here: the record_io corruption taxonomy (torn header vs torn payload
// vs CRC mismatch, at every truncation offset and bit position), driven
// through the same FaultyEnv that the durability layer sees.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/checkpoint.h"
#include "objalloc/core/object_service.h"
#include "objalloc/core/wal.h"
#include "objalloc/util/env.h"
#include "objalloc/util/faulty_env.h"
#include "objalloc/util/io.h"
#include "objalloc/util/record_io.h"
#include "objalloc/workload/multi_object.h"
#include "objalloc/workload/trace_io.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using util::FaultKind;
using util::FaultPlan;
using util::FaultyEnv;
using util::FaultyEnvOptions;
using workload::MultiObjectEvent;
using workload::MultiObjectTrace;

namespace fs = std::filesystem;

// --- Helpers (same idioms as durability_test.cc) ------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct StateImage {
  std::vector<std::tuple<ObjectId, int64_t, int64_t, int64_t, int64_t,
                         uint64_t>>
      objects;  // id, requests, control, data, io, scheme mask
  int64_t total_requests = 0;
  model::CostBreakdown total;

  bool operator==(const StateImage&) const = default;
};

StateImage Capture(const ObjectService& service) {
  StateImage image;
  for (ObjectId id : service.SortedObjectIds()) {
    auto stats = service.StatsFor(id);
    EXPECT_TRUE(stats.ok());
    image.objects.emplace_back(id, stats->requests,
                               stats->breakdown.control_messages,
                               stats->breakdown.data_messages,
                               stats->breakdown.io_ops,
                               stats->scheme.mask());
  }
  image.total_requests = service.TotalRequests();
  image.total = service.TotalBreakdown();
  return image;
}

MultiObjectTrace TestTrace(size_t length, uint64_t seed = 99,
                           int num_objects = 24) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = num_objects;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

ObjectConfig TestConfig() {
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  config.algorithm = AlgorithmKind::kDynamic;
  return config;
}

void RegisterObjects(ObjectService& service, int num_objects) {
  service.ReserveObjects(static_cast<size_t>(num_objects));
  for (int id = 0; id < num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, TestConfig()).ok());
  }
}

DurabilityOptions SweepOptions() {
  DurabilityOptions options;
  options.sync_every_batch = true;  // memory and disk never diverge
  options.checkpoint_interval_events = 400;
  options.retry.initial_backoff_us = 10;  // virtual time anyway
  return options;
}

// --- Env seam unit tests ------------------------------------------------

TEST(EnvTest, DefaultEnvRoundTripsAFile) {
  const std::string dir = FreshDir("env_roundtrip");
  const std::string path = dir + "/file";
  ASSERT_TRUE(util::WriteFileAtomic(path, "hello env", util::Env::Default())
                  .ok());
  auto read = util::ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello env");
}

TEST(EnvTest, ScopedEnvInstallsAndRestores) {
  util::Env* original = util::CurrentEnv();
  FaultyEnv faulty;
  {
    util::ScopedEnv scoped(&faulty);
    EXPECT_EQ(util::CurrentEnv(), &faulty);
  }
  EXPECT_EQ(util::CurrentEnv(), original);
}

TEST(EnvTest, ErrnoClassification) {
  // EIO-class errnos map to kUnavailable (transient, retryable); ENOSPC and
  // friends to kInternal (persistent); a missing file stays kNotFound.
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  const std::string dir = FreshDir("env_classify");

  faulty.SetPlan({0, FaultKind::kEio, FaultPlan::kForever});
  util::Status eio = util::WriteFileAtomic(dir + "/a", "x");
  EXPECT_EQ(eio.code(), util::StatusCode::kUnavailable) << eio.ToString();
  EXPECT_TRUE(util::IsTransientIoError(eio));

  // op_count() is the upcoming Open; +1 lands the fault on the Write, which
  // is where ENOSPC is meaningful (it specializes to EIO elsewhere).
  faulty.SetPlan({faulty.op_count() + 1, FaultKind::kEnospc, 1});
  util::Status enospc = util::WriteFileAtomic(dir + "/b", "x");
  EXPECT_EQ(enospc.code(), util::StatusCode::kInternal) << enospc.ToString();
  EXPECT_FALSE(util::IsTransientIoError(enospc));

  faulty.ClearPlan();
  auto missing = util::ReadFileToString(dir + "/never-written");
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
  EXPECT_FALSE(util::IsTransientIoError(missing.status()));
}

TEST(EnvTest, RetryIoRetriesTransientOnly) {
  FaultyEnv faulty;  // virtual clock: backoff sleeps cost nothing
  util::RetryPolicy policy;
  policy.max_attempts = 4;

  int calls = 0;
  uint64_t retries = 0;
  // Fails transiently twice, then succeeds.
  util::Status status = util::RetryIo(policy, &faulty, &retries, [&] {
    return ++calls <= 2 ? util::Status::Unavailable("flaky")
                        : util::Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);

  // A persistent error is never retried.
  calls = 0;
  retries = 0;
  status = util::RetryIo(policy, &faulty, &retries, [&] {
    ++calls;
    return util::Status::Internal("disk full");
  });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);

  // Exhaustion returns the last transient failure.
  calls = 0;
  status = util::RetryIo(policy, &faulty, &retries, [&] {
    ++calls;
    return util::Status::Unavailable("still flaky");
  });
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3u);
}

TEST(EnvTest, RetryPolicyValidates) {
  util::RetryPolicy policy;
  EXPECT_TRUE(policy.Validate().ok());
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = {};
  policy.backoff_multiplier = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = {};
  policy.max_backoff_us = policy.initial_backoff_us - 1;
  EXPECT_FALSE(policy.Validate().ok());
}

// --- FaultyEnv behavior -------------------------------------------------

TEST(FaultyEnvTest, DeterministicAcrossRuns) {
  // Same seed, same plan, same op sequence -> same outcome, op for op.
  auto run = [](uint64_t seed) {
    const std::string dir =
        FreshDir("faulty_det_" + std::to_string(seed & 1));
    FaultyEnvOptions options;
    options.seed = seed;
    options.error_rate = 0.3;
    FaultyEnv faulty(options);
    std::vector<bool> outcomes;
    for (int i = 0; i < 50; ++i) {
      outcomes.push_back(
          util::WriteFileAtomic(dir + "/f", "payload", &faulty).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // and the seed matters
}

TEST(FaultyEnvTest, ScriptedPlanFiresAtExactIndex) {
  const std::string dir = FreshDir("faulty_exact");
  FaultyEnv faulty;
  // Fault-free pass: count the ops one atomic write costs.
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/probe", "x", &faulty).ok());
  const uint64_t per_write = faulty.op_count();
  ASSERT_GT(per_write, 0u);

  // Fail exactly the first op of the second write; the first is untouched.
  faulty.SetPlan({per_write, FaultKind::kEio, 1});
  EXPECT_FALSE(util::WriteFileAtomic(dir + "/second", "x", &faulty).ok());
  EXPECT_EQ(faulty.faults_injected(), 1u);
  // Plan exhausted: the next write sails through.
  EXPECT_TRUE(util::WriteFileAtomic(dir + "/third", "x", &faulty).ok());
}

TEST(FaultyEnvTest, ShortWriteIsAbsorbedByTheWriteLoop) {
  // POSIX allows short writes; util/io's WriteAll must loop, so a scripted
  // short write is invisible to the caller and the bytes land intact.
  const std::string dir = FreshDir("faulty_short");
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  const std::string payload(1000, 'A');
  auto file = util::AppendFile::Open(dir + "/log");
  ASSERT_TRUE(file.ok());
  faulty.SetPlan({faulty.op_count(), FaultKind::kShortWrite, 1});
  ASSERT_TRUE(file->Append(payload).ok());
  ASSERT_TRUE(file->Sync().ok());
  EXPECT_GE(faulty.faults_injected(), 1u);
  auto read = util::ReadFileToString(dir + "/log");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(FaultyEnvTest, TornWriteLeavesPartialBytes) {
  const std::string dir = FreshDir("faulty_torn");
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  const std::string payload(1000, 'B');
  auto file = util::AppendFile::Open(dir + "/log");
  ASSERT_TRUE(file.ok());
  faulty.SetPlan({faulty.op_count(), FaultKind::kTornWrite, 1});
  util::Status status = file->Append(payload);
  EXPECT_EQ(status.code(), util::StatusCode::kUnavailable);
  auto size = util::FileSize(dir + "/log");
  ASSERT_TRUE(size.ok());
  EXPECT_GT(*size, 0u);               // some bytes landed...
  EXPECT_LT(*size, payload.size());   // ...but not all — the torn hazard
}

TEST(FaultyEnvTest, BitFlipReadIsCaughtByRecordCrc) {
  const std::string dir = FreshDir("faulty_flip");
  std::string framed;
  util::AppendRecord(7, "the payload that must not silently change", &framed);
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/rec", framed).ok());

  FaultyEnv faulty;
  auto clean = util::ReadFileToString(dir + "/rec", &faulty);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(*clean, framed);
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    FaultyEnvOptions options;
    options.seed = seed;
    FaultyEnv flipper(options);
    // Op 0 is the Open; op 1 is the data-carrying Read. The seed picks
    // which bit of the returned buffer flips.
    flipper.SetPlan({1, FaultKind::kBitFlipRead, FaultPlan::kForever});
    auto flipped = util::ReadFileToString(dir + "/rec", &flipper);
    ASSERT_TRUE(flipped.ok());  // the read "succeeds" — silent corruption
    ASSERT_EQ(flipped->size(), framed.size());
    ASSERT_NE(*flipped, framed);
    util::RecordCursor cursor(*flipped);
    util::RecordView record;
    size_t records = 0;
    while (cursor.Next(&record)) ++records;
    // One flipped bit must never parse as the original record: either the
    // CRC trips, or the length field grew and the record looks torn.
    EXPECT_TRUE(!cursor.status().ok() || records == 0)
        << "seed " << seed << " parsed a corrupted record";
  }
}

TEST(FaultyEnvTest, VirtualClockAdvancesOnLatency) {
  FaultyEnv faulty;
  const uint64_t before = faulty.NowMicros();
  faulty.SetPlan({0, FaultKind::kLatency, 1, /*latency_us=*/5000});
  const std::string dir = FreshDir("faulty_latency");
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/f", "x", &faulty).ok());
  EXPECT_GE(faulty.NowMicros(), before + 5000);
}

// --- Record corruption taxonomy (every offset, every bit) ---------------

// Builds a small "log": three framed records of distinct sizes.
std::string ThreeRecords() {
  std::string buffer;
  util::AppendRecord(1, "first-payload", &buffer);
  util::AppendRecord(2, std::string(100, 'x'), &buffer);
  util::AppendRecord(3, "tail", &buffer);
  return buffer;
}

TEST(RecordTaxonomyTest, TruncationAtEveryOffsetIsTornNeverCorrupt) {
  const std::string buffer = ThreeRecords();
  // Record boundaries, for classifying each truncation point.
  std::vector<size_t> boundaries = {0};
  {
    util::RecordCursor cursor(buffer);
    util::RecordView record;
    while (cursor.Next(&record)) boundaries.push_back(cursor.valid_prefix());
  }
  ASSERT_EQ(boundaries.size(), 4u);

  const std::string dir = FreshDir("taxonomy_truncate");
  const std::string path = dir + "/log";
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    ASSERT_TRUE(util::WriteFileAtomic(path, buffer).ok());
    ASSERT_TRUE(util::TruncateFile(path, cut).ok());
    auto read = util::ReadFileToString(path);
    ASSERT_TRUE(read.ok());
    util::RecordCursor cursor(*read);
    util::RecordView record;
    size_t records = 0;
    while (cursor.Next(&record)) ++records;
    // Truncation — whether it cut a header or a payload — is always a torn
    // tail (or a clean end exactly at a boundary), never corruption: the
    // valid prefix is intact and recovery may truncate there.
    EXPECT_TRUE(cursor.status().ok()) << "cut at " << cut << ": "
                                      << cursor.status().ToString();
    size_t whole = 0;
    while (whole + 1 < boundaries.size() && boundaries[whole + 1] <= cut) {
      ++whole;
    }
    EXPECT_EQ(records, whole) << "cut at " << cut;
    EXPECT_EQ(cursor.valid_prefix(), boundaries[whole]) << "cut at " << cut;
    EXPECT_EQ(cursor.tail_bytes(), cut - boundaries[whole])
        << "cut at " << cut;
  }
}

TEST(RecordTaxonomyTest, BitFlipAtEveryPositionNeverParsesClean) {
  const std::string buffer = ThreeRecords();
  std::vector<size_t> boundaries = {0};
  {
    util::RecordCursor cursor(buffer);
    util::RecordView record;
    while (cursor.Next(&record)) boundaries.push_back(cursor.valid_prefix());
  }
  for (size_t bit = 0; bit < buffer.size() * 8; ++bit) {
    std::string flipped = buffer;
    flipped[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));
    util::RecordCursor cursor(flipped);
    util::RecordView record;
    size_t records = 0;
    while (cursor.Next(&record)) ++records;
    // Whichever field the flip hit — length, type, CRC, payload — the
    // parse must stop at or before the damaged record: CRC mismatch
    // (corruption), an inflated length (torn tail), or a shrunk length
    // (CRC over the wrong span). Records before the flip parse intact.
    const size_t damaged =
        std::upper_bound(boundaries.begin(), boundaries.end(), bit / 8) -
        boundaries.begin() - 1;
    EXPECT_LE(records, damaged) << "bit " << bit;
    EXPECT_LE(cursor.valid_prefix(), boundaries[damaged]) << "bit " << bit;
    const bool clean_full_parse =
        cursor.status().ok() && cursor.tail_bytes() == 0 &&
        records == boundaries.size() - 1;
    EXPECT_FALSE(clean_full_parse) << "bit " << bit;
  }
}

// --- Service-level: retry rides out transient faults --------------------

TEST(IoFaultServiceTest, TransientWalFaultIsRetriedNotDegraded) {
  const std::string dir = FreshDir("svc_transient");
  const MultiObjectTrace trace = TestTrace(600);
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);

  ObjectService service(trace.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.EnableDurability(dir, SweepOptions()).ok());
  RegisterObjects(service, trace.num_objects);

  // One transient EIO on the next write: the WAL group rolls back, backs
  // off (virtual time), rewrites, and stays durable.
  std::span<const MultiObjectEvent> events(trace.events);
  ASSERT_TRUE(service.ServeBatch(events.first(100)).ok());
  faulty.SetPlan({faulty.op_count(), FaultKind::kEio, 1});
  ASSERT_TRUE(service.ServeBatch(events.subspan(100, 100)).ok());
  ASSERT_TRUE(service.ServeBatch(events.subspan(200)).ok());
  ASSERT_TRUE(service.SyncDurable().ok());

  EXPECT_EQ(service.durability_state(), DurabilityState::kDurable);
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.wal_write_retries + stats.checkpoint_retries, 0u)
      << "the transient fault should have been absorbed by a retry";
  EXPECT_EQ(stats.degraded_batches, 0u);

  const StateImage expected = Capture(service);
  { ObjectService drop = std::move(service); }
  auto recovered = ObjectService::Recover(dir, SweepOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);
}

// --- Service-level: degrade, report, reattach ---------------------------

TEST(IoFaultServiceTest, PersistentFaultDegradesAndKeepsServing) {
  const std::string dir = FreshDir("svc_degrade");
  const MultiObjectTrace trace = TestTrace(1000);
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);

  ObjectService service(trace.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.EnableDurability(dir, SweepOptions()).ok());
  RegisterObjects(service, trace.num_objects);

  std::span<const MultiObjectEvent> events(trace.events);
  ASSERT_TRUE(service.ServeBatch(events.first(200)).ok());

  // The disk dies for good.
  faulty.SetPlan({faulty.op_count(), FaultKind::kEio, FaultPlan::kForever});
  for (size_t at = 200; at < events.size(); at += 100) {
    ASSERT_TRUE(service.ServeBatch(events.subspan(at, 100)).ok())
        << "a degraded service must keep serving";
  }
  EXPECT_EQ(service.durability_state(), DurabilityState::kDegraded);
  EXPECT_FALSE(service.durability_enabled());

  // Satellite regression: the *original* failure status is sticky — every
  // probe returns the same error, not Ok and not a second-order error.
  const util::Status first = service.SyncDurable();
  EXPECT_FALSE(first.ok());
  EXPECT_EQ(service.SyncDurable(), first);
  EXPECT_EQ(service.durability_error(), first);
  EXPECT_EQ(service.Checkpoint(), first);

  // Stats surface the degradation instead of silently dropping durability.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.durability, DurabilityState::kDegraded);
  EXPECT_EQ(stats.durability_error, first);
  EXPECT_GT(stats.degraded_batches, 0u);

  // Reattach while the disk is still bad: fails, stays degraded.
  EXPECT_FALSE(service.ReattachDurability().ok());
  EXPECT_EQ(service.durability_state(), DurabilityState::kDegraded);

  // Replace the disk; reattach heals and the gap is captured.
  faulty.ClearPlan();
  ASSERT_TRUE(service.ReattachDurability().ok());
  EXPECT_EQ(service.durability_state(), DurabilityState::kDurable);
  EXPECT_TRUE(service.durability_enabled());
  EXPECT_TRUE(service.durability_error().ok());
  EXPECT_EQ(service.Stats().reattach_count, 1u);

  // The healed directory recovers to exactly the live state, including
  // every batch served while degraded.
  ASSERT_TRUE(service.SyncDurable().ok());
  const StateImage expected = Capture(service);
  { ObjectService drop = std::move(service); }
  auto recovered = ObjectService::Recover(dir, SweepOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(Capture(*recovered), expected);

  // And the quarantined generation is visible to the scrub, which still
  // calls the directory recoverable.
  ScrubReport scrub;
  EXPECT_TRUE(ObjectService::Scrub(dir, &scrub).ok());
  EXPECT_TRUE(scrub.recoverable);
  EXPECT_FALSE(scrub.clean);  // the quarantine is an anomaly worth flagging
  bool saw_quarantine = false;
  for (const ScrubFileReport& file : scrub.files) {
    saw_quarantine |= file.verdict == ScrubVerdict::kQuarantined;
  }
  EXPECT_TRUE(saw_quarantine);
}

TEST(IoFaultServiceTest, DisableDurabilityReportsTheDegradedError) {
  const std::string dir = FreshDir("svc_disable_degraded");
  const MultiObjectTrace trace = TestTrace(300);
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);

  ObjectService service(trace.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  ASSERT_TRUE(service.EnableDurability(dir, SweepOptions()).ok());
  RegisterObjects(service, trace.num_objects);
  faulty.SetPlan({faulty.op_count(), FaultKind::kEio, FaultPlan::kForever});
  std::span<const MultiObjectEvent> events(trace.events);
  ASSERT_TRUE(service.ServeBatch(events).ok());
  ASSERT_EQ(service.durability_state(), DurabilityState::kDegraded);
  const util::Status degraded = service.durability_error();
  EXPECT_EQ(service.DisableDurability(), degraded);
  EXPECT_EQ(service.durability_state(), DurabilityState::kDetached);
}

// --- Scrub --------------------------------------------------------------

TEST(ScrubTest, CleanDirectoryThenEachAnomaly) {
  const std::string dir = FreshDir("scrub_clean");
  // 300 events < the 400-event checkpoint interval, so the live WAL holds
  // the header plus real batch records (a truncation tears a data record,
  // not the WAL header).
  const MultiObjectTrace trace = TestTrace(300);
  {
    ObjectService service(trace.num_processors,
                          CostModel::StationaryComputing(0.25, 1.0));
    ASSERT_TRUE(service.EnableDurability(dir, SweepOptions()).ok());
    RegisterObjects(service, trace.num_objects);
    ASSERT_TRUE(
        service.ServeBatch(std::span<const MultiObjectEvent>(trace.events))
            .ok());
    ASSERT_TRUE(service.SyncDurable().ok());
    ASSERT_TRUE(service.DisableDurability().ok());
  }
  ScrubReport clean;
  ASSERT_TRUE(ObjectService::Scrub(dir, &clean).ok());
  EXPECT_TRUE(clean.recoverable);
  EXPECT_TRUE(clean.clean) << clean.ToString();
  for (const ScrubFileReport& file : clean.files) {
    EXPECT_EQ(file.verdict, ScrubVerdict::kOk) << file.name;
    EXPECT_GT(file.records, 0u) << file.name;
  }

  // A stray temp file: recoverable, not clean.
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/junk.tmp", "debris").ok());
  ScrubReport stray;
  ASSERT_TRUE(ObjectService::Scrub(dir, &stray).ok());
  EXPECT_TRUE(stray.recoverable);
  EXPECT_FALSE(stray.clean);
  ASSERT_TRUE(util::RemoveFile(dir + "/junk.tmp").ok());

  // A torn WAL tail: recoverable, flagged on the right file.
  auto names = util::ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string wal_name;
  for (const std::string& name : *names) {
    if (name.rfind("wal-", 0) == 0 && name.ends_with(".log")) wal_name = name;
  }
  ASSERT_FALSE(wal_name.empty());
  auto wal_size = util::FileSize(dir + "/" + wal_name);
  ASSERT_TRUE(wal_size.ok());
  ASSERT_TRUE(util::TruncateFile(dir + "/" + wal_name, *wal_size - 3).ok());
  ScrubReport torn;
  ASSERT_TRUE(ObjectService::Scrub(dir, &torn).ok());
  EXPECT_TRUE(torn.recoverable);
  EXPECT_FALSE(torn.clean);
  for (const ScrubFileReport& file : torn.files) {
    if (file.name == wal_name) {
      EXPECT_EQ(file.verdict, ScrubVerdict::kTornTail) << file.detail;
    }
  }

  // Corrupt the manifest: a fallback-only directory, still recoverable by
  // scan, but the manifest is called out.
  ASSERT_TRUE(util::WriteFileAtomic(dir + "/" + kManifestFileName,
                                    "not a manifest")
                  .ok());
  ScrubReport corrupt;
  util::Status status = ObjectService::Scrub(dir, &corrupt);
  for (const ScrubFileReport& file : corrupt.files) {
    if (file.name == kManifestFileName) {
      EXPECT_EQ(file.verdict, ScrubVerdict::kCorrupt);
    }
  }
  EXPECT_FALSE(corrupt.clean);
  // Recoverability is the recovery pipeline's call (manifest-less scan);
  // either way the report and status must agree.
  EXPECT_EQ(status.ok(), corrupt.recoverable);
}

TEST(ScrubTest, EmptyDirectoryIsUnrecoverable) {
  const std::string dir = FreshDir("scrub_empty");
  ScrubReport report;
  EXPECT_FALSE(ObjectService::Scrub(dir, &report).ok());
  EXPECT_FALSE(report.recoverable);
  EXPECT_FALSE(report.clean);
}

// --- Trace IO through the Env seam --------------------------------------

TEST(TraceIoEnvTest, TraceFilesRouteThroughTheEnv) {
  const std::string dir = FreshDir("trace_env");
  const MultiObjectTrace trace = TestTrace(200);
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);

  // A dead disk fails the write; the file never appears (atomic publish).
  faulty.SetPlan({0, FaultKind::kEio, FaultPlan::kForever});
  EXPECT_FALSE(
      workload::WriteMultiObjectTraceFile(trace, dir + "/t.trace").ok());
  EXPECT_FALSE(util::FileExists(dir + "/t.trace"));

  faulty.ClearPlan();
  ASSERT_TRUE(
      workload::WriteMultiObjectTraceFile(trace, dir + "/t.trace").ok());
  auto read = workload::ReadMultiObjectTraceFile(dir + "/t.trace");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->events.size(), trace.events.size());
  for (size_t i = 0; i < trace.events.size(); ++i) {
    EXPECT_EQ(read->events[i].object, trace.events[i].object);
  }

  // The streaming source sees injected read faults as real errors.
  faulty.SetPlan({faulty.op_count(), FaultKind::kEio, FaultPlan::kForever});
  workload::TraceFileEventSource source(dir + "/t.trace");
  std::vector<MultiObjectEvent> buffer(64);
  auto filled = source.FillBatch(buffer);
  EXPECT_FALSE(filled.ok());
  faulty.ClearPlan();

  // Missing files still read as NotFound.
  auto missing = workload::ReadMultiObjectTraceFile(dir + "/absent.trace");
  EXPECT_EQ(missing.status().code(), util::StatusCode::kNotFound);
}

// --- The error-at-every-op sweep ----------------------------------------
//
// A fault-free run under FaultyEnv counts the N data-path IO operations the
// durable workload performs and captures the golden in-memory state. Then,
// for every op index and a rotation of fault kinds and seeds, one run
// injects there. Whatever happens to the disk, the run must (a) serve the
// whole trace, (b) land bit-identically on the golden in-memory state, and
// (c) either remain durable (recovery reproduces the golden state) or be
// degraded-and-reported, in which case healing the env and reattaching must
// yield a directory whose recovery is bit-identical again.

struct SweepWorkload {
  MultiObjectTrace trace;
  StateImage golden;
  uint64_t fault_free_ops = 0;
};

SweepWorkload BuildSweepWorkload() {
  SweepWorkload workload;
  workload.trace = TestTrace(1200);
  const std::string dir = FreshDir("sweep_fault_free");
  FaultyEnv faulty;
  util::ScopedEnv scoped(&faulty);
  ObjectService service(workload.trace.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  EXPECT_TRUE(service.EnableDurability(dir, SweepOptions()).ok());
  service.ReserveObjects(
      static_cast<size_t>(workload.trace.num_objects));
  for (int id = 0; id < workload.trace.num_objects; ++id) {
    EXPECT_TRUE(service.AddObject(id, TestConfig()).ok());
  }
  std::span<const MultiObjectEvent> events(workload.trace.events);
  for (size_t at = 0; at < events.size(); at += 100) {
    EXPECT_TRUE(service.ServeBatch(events.subspan(at, 100)).ok());
  }
  EXPECT_TRUE(service.SyncDurable().ok());
  EXPECT_TRUE(service.DisableDurability().ok());
  workload.golden = Capture(service);
  workload.fault_free_ops = faulty.op_count();
  EXPECT_GT(workload.fault_free_ops, 0u);
  return workload;
}

// One sweep run: inject `kind` starting at `index` (with `count` coverage)
// under `seed`, then assert the contract above.
void SweepOne(const SweepWorkload& workload, const std::string& dir,
              uint64_t index, FaultKind kind, uint64_t count, uint64_t seed) {
  SCOPED_TRACE("op " + std::to_string(index) + " kind " +
               std::to_string(static_cast<int>(kind)) + " count " +
               std::to_string(count) + " seed " + std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);
  FaultyEnvOptions env_options;
  env_options.seed = seed;
  FaultyEnv faulty(env_options);
  faulty.SetPlan({index, kind, count});
  util::ScopedEnv scoped(&faulty);

  ObjectService service(workload.trace.num_processors,
                        CostModel::StationaryComputing(0.25, 1.0));
  const util::Status enabled = service.EnableDurability(dir, SweepOptions());
  service.ReserveObjects(static_cast<size_t>(workload.trace.num_objects));
  for (int id = 0; id < workload.trace.num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, TestConfig()).ok());
  }
  // (a) The trace is served end to end no matter what the disk does.
  std::span<const MultiObjectEvent> events(workload.trace.events);
  for (size_t at = 0; at < events.size(); at += 100) {
    ASSERT_TRUE(service.ServeBatch(events.subspan(at, 100)).ok());
  }
  // (b) Bit-identical in-memory state.
  ASSERT_EQ(Capture(service), workload.golden);

  if (!enabled.ok()) {
    // The fault struck while durability was being *started* — a clean
    // refusal, nothing on disk to recover. The service served plain.
    ASSERT_EQ(service.durability_state(), DurabilityState::kDetached);
    return;
  }

  // (c) Durable or degraded-and-reported; both must recover bit-identically.
  if (service.durability_state() == DurabilityState::kDegraded) {
    ASSERT_FALSE(service.durability_error().ok());
    faulty.ClearPlan();  // the disk is replaced
    ASSERT_TRUE(service.ReattachDurability().ok())
        << service.durability_error().ToString();
    ASSERT_EQ(service.durability_state(), DurabilityState::kDurable);
  } else {
    ASSERT_EQ(service.durability_state(), DurabilityState::kDurable);
    faulty.ClearPlan();  // a lingering transient window must not outlive (a)
    ASSERT_TRUE(service.SyncDurable().ok());
  }
  // Prove the (possibly reattached) WAL accepts appends, then kill.
  ASSERT_TRUE(service.ServeBatch(events.first(100)).ok());
  ASSERT_TRUE(service.SyncDurable().ok());
  const StateImage expected = Capture(service);
  { ObjectService drop = std::move(service); }
  auto recovered = ObjectService::Recover(dir, SweepOptions());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(Capture(*recovered), expected);
}

TEST(IoFaultSweepTest, ErrorAtEveryOpEverySeed) {
  const SweepWorkload workload = BuildSweepWorkload();
  const std::string dir = ::testing::TempDir() + "/sweep_run";
  // Kinds rotate per (index, seed): transient glitch, dead disk, full disk,
  // tearing disk — every op index sees several, across >= 20 seeds.
  struct KindCase {
    FaultKind kind;
    uint64_t count;
  };
  const KindCase kinds[] = {
      {FaultKind::kEio, 1},
      {FaultKind::kEio, FaultPlan::kForever},
      {FaultKind::kEnospc, FaultPlan::kForever},
      {FaultKind::kTornWrite, FaultPlan::kForever},
  };
  constexpr uint64_t kSeeds = 20;
  for (uint64_t index = 0; index < workload.fault_free_ops; ++index) {
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      const KindCase& c = kinds[(index + seed) % std::size(kinds)];
      SweepOne(workload, dir, index, c.kind, c.count, seed + 1);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace objalloc::core
