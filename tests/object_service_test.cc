// The service layer's determinism contract: the sharded, batched
// ObjectService must be bit-identical to the serial ObjectManager for every
// shard count and every thread count, the streaming paths must equal the
// materialized path event for event, and batch admission must be atomic.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/object_manager.h"
#include "objalloc/core/object_service.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/trace_io.h"

namespace objalloc::core {
namespace {

using model::CostModel;
using util::ScopedThreads;
using workload::MultiObjectEvent;
using workload::MultiObjectTrace;

std::vector<int> ShardCounts() { return {1, 4, 16}; }
std::vector<int> ThreadCounts() { return {1, 2, util::GlobalThreads()}; }

MultiObjectTrace TestTrace(size_t length = 3000, uint64_t seed = 1234) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = 64;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

ObjectConfig TestConfig(AlgorithmKind kind = AlgorithmKind::kDynamic) {
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  config.algorithm = kind;
  return config;
}

void RegisterObjects(ObjectService& service, const MultiObjectTrace& trace,
                     const ObjectConfig& config) {
  service.ReserveObjects(static_cast<size_t>(trace.num_objects));
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
}

TEST(ObjectServiceTest, ShardedBatchedMatchesSerialBitForBit) {
  const MultiObjectTrace trace = TestTrace();
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const ObjectConfig config = TestConfig();

  // Reference: the serial single-shard ObjectManager, request by request.
  ObjectManager reference(trace.num_processors, sc);
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(reference.AddObject(id, config).ok());
  }
  std::vector<double> reference_costs;
  for (const auto& event : trace.events) {
    auto cost = reference.Serve(event.object, event.request);
    ASSERT_TRUE(cost.ok());
    reference_costs.push_back(*cost);
  }

  for (int shards : ShardCounts()) {
    for (int threads : ThreadCounts()) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      ScopedThreads scope(threads);
      ServiceOptions options;
      options.num_shards = shards;
      ObjectService service(trace.num_processors, sc, options);
      RegisterObjects(service, trace, config);

      // Serve in a few differently sized batches to cross batch boundaries.
      std::vector<double> costs;
      size_t position = 0;
      for (size_t batch_size : {1000u, 700u, 1u, 1299u}) {
        auto result = service.ServeBatch(
            std::span<const MultiObjectEvent>(trace.events)
                .subspan(position, batch_size));
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        costs.insert(costs.end(), result->costs.begin(),
                     result->costs.end());
        position += batch_size;
      }
      ASSERT_EQ(position, trace.events.size());

      // Per-event costs, submission order, bit-identical.
      ASSERT_EQ(costs.size(), reference_costs.size());
      for (size_t i = 0; i < costs.size(); ++i) {
        ASSERT_EQ(costs[i], reference_costs[i]) << "event " << i;
      }
      // Aggregates.
      EXPECT_EQ(service.TotalBreakdown(), reference.TotalBreakdown());
      EXPECT_EQ(service.TotalCost(), reference.TotalCost());
      EXPECT_EQ(service.TotalRequests(), reference.TotalRequests());
      // Per-object stats and final schemes.
      for (int id = 0; id < trace.num_objects; ++id) {
        auto got = service.StatsFor(id);
        auto want = reference.StatsFor(id);
        ASSERT_TRUE(got.ok());
        ASSERT_TRUE(want.ok());
        EXPECT_EQ(got->requests, want->requests) << "object " << id;
        EXPECT_EQ(got->breakdown, want->breakdown) << "object " << id;
        EXPECT_EQ(got->scheme, want->scheme) << "object " << id;
      }
    }
  }
}

TEST(ObjectServiceTest, SingleServePathMatchesManager) {
  const MultiObjectTrace trace = TestTrace(500);
  const CostModel mc = CostModel::MobileComputing(0.5, 1.0);
  ObjectManager manager(trace.num_processors, mc);
  ServiceOptions options;
  options.num_shards = 7;  // not a divisor of anything interesting
  ObjectService service(trace.num_processors, mc, options);
  const ObjectConfig config = TestConfig();
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(manager.AddObject(id, config).ok());
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  for (const auto& event : trace.events) {
    auto want = manager.Serve(event.object, event.request);
    auto got = service.Serve(event.object, event.request);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, *want);
  }
  EXPECT_EQ(service.TotalBreakdown(), manager.TotalBreakdown());
}

TEST(ObjectServiceTest, BatchRejectsUnknownObjectAtomically) {
  const CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  ObjectService service(8, sc);
  ASSERT_TRUE(service.AddObject(1, TestConfig()).ok());
  // Two valid events surround the invalid one: nothing may be served.
  std::vector<MultiObjectEvent> batch = {
      {1, model::Request::Read(0)},
      {99, model::Request::Read(0)},
      {1, model::Request::Write(2)},
  };
  auto result = service.ServeBatch(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("event 1"), std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(service.TotalRequests(), 0) << "rejected batch must not serve";
}

TEST(ObjectServiceTest, BatchRejectsOutOfRangeProcessorAtomically) {
  const CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  ObjectService service(4, sc);
  ASSERT_TRUE(service.AddObject(1, TestConfig()).ok());
  std::vector<MultiObjectEvent> batch = {
      {1, model::Request::Read(0)},
      {1, model::Request::Write(7)},
  };
  auto result = service.ServeBatch(batch);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kOutOfRange);
  EXPECT_EQ(service.TotalRequests(), 0);

  std::vector<MultiObjectEvent> negative = {{1, model::Request::Read(-1)}};
  auto rejected = service.ServeBatch(negative);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), util::StatusCode::kOutOfRange);
}

TEST(ObjectServiceTest, AddObjectValidationMatchesManagerRules) {
  ObjectService service(8, CostModel::StationaryComputing(0.5, 1.0));
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  EXPECT_TRUE(service.AddObject(1, config).ok());
  EXPECT_FALSE(service.AddObject(1, config).ok()) << "duplicate id";
  config.initial_scheme = ProcessorSet{};
  EXPECT_FALSE(service.AddObject(2, config).ok()) << "empty scheme";
  config.initial_scheme = ProcessorSet{0, 63};
  EXPECT_FALSE(service.AddObject(3, config).ok()) << "outside the system";
  config.initial_scheme = ProcessorSet{0};
  config.algorithm = AlgorithmKind::kDynamic;
  EXPECT_FALSE(service.AddObject(4, config).ok()) << "DA needs t >= 2";
  EXPECT_EQ(service.object_count(), 1u);
  EXPECT_TRUE(service.HasObject(1));
  EXPECT_FALSE(service.HasObject(4));
}

TEST(EventSourceTest, GeneratorSourceEqualsMaterializedTrace) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = 32;
  options.length = 1777;
  const MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, 42);

  workload::GeneratorEventSource source(options, 42);
  EXPECT_EQ(source.num_processors(), options.num_processors);
  std::vector<MultiObjectEvent> streamed;
  std::vector<MultiObjectEvent> buffer(100);
  while (true) {
    auto filled = source.FillBatch(buffer);
    ASSERT_TRUE(filled.ok());
    if (*filled == 0) break;
    streamed.insert(streamed.end(), buffer.begin(),
                    buffer.begin() + static_cast<ptrdiff_t>(*filled));
  }
  ASSERT_EQ(streamed.size(), trace.events.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].object, trace.events[i].object);
    EXPECT_EQ(streamed[i].request, trace.events[i].request);
  }
  // Exhausted sources stay exhausted.
  auto again = source.FillBatch(buffer);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
}

TEST(EventSourceTest, TraceStreamRoundTripsIdenticallyToMaterializedPath) {
  const MultiObjectTrace trace = TestTrace(800, 77);
  std::ostringstream out;
  workload::WriteMultiObjectTrace(trace, out);

  // Materialized read-back (itself built on the stream source).
  std::istringstream materialized_in(out.str());
  auto materialized = workload::ReadMultiObjectTrace(materialized_in);
  ASSERT_TRUE(materialized.ok());
  ASSERT_EQ(materialized->events.size(), trace.events.size());

  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const ObjectConfig config = TestConfig();

  // Path A: the whole materialized trace in one batch.
  ObjectService batch_service(trace.num_processors, sc);
  RegisterObjects(batch_service, trace, config);
  auto batch = batch_service.ServeBatch(materialized->events);
  ASSERT_TRUE(batch.ok());

  // Path B: streamed from the text format with a small bounded buffer.
  std::istringstream stream_in(out.str());
  workload::TraceStreamEventSource source(stream_in);
  ASSERT_TRUE(source.ReadHeader().ok());
  EXPECT_EQ(source.num_processors(), trace.num_processors);
  EXPECT_EQ(source.num_objects(), trace.num_objects);
  ObjectService stream_service(trace.num_processors, sc);
  RegisterObjects(stream_service, trace, config);
  auto streamed = stream_service.ServeStream(source, /*batch_size=*/64);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

  EXPECT_EQ(streamed->events, static_cast<int64_t>(trace.events.size()));
  EXPECT_EQ(streamed->batches, (trace.events.size() + 63) / 64);
  EXPECT_EQ(streamed->breakdown, batch->breakdown);
  EXPECT_EQ(streamed->cost, batch->cost);
  EXPECT_EQ(stream_service.TotalBreakdown(), batch_service.TotalBreakdown());
  for (int id = 0; id < trace.num_objects; ++id) {
    EXPECT_EQ(stream_service.StatsFor(id)->scheme,
              batch_service.StatsFor(id)->scheme);
  }
}

TEST(EventSourceTest, TraceStreamRejectsMalformedInput) {
  {
    std::istringstream in("garbage header\n");
    workload::TraceStreamEventSource source(in);
    EXPECT_FALSE(source.ReadHeader().ok());
    std::vector<MultiObjectEvent> buffer(4);
    EXPECT_FALSE(source.FillBatch(buffer).ok()) << "failed source stays failed";
  }
  {
    std::istringstream in("multiobject processors 4 objects 2\n5 r0\n");
    workload::TraceStreamEventSource source(in);
    std::vector<MultiObjectEvent> buffer(4);
    auto filled = source.FillBatch(buffer);
    ASSERT_FALSE(filled.ok());
    EXPECT_EQ(filled.status().code(), util::StatusCode::kOutOfRange);
  }
  {
    workload::TraceFileEventSource source("/nonexistent/trace.txt");
    std::vector<MultiObjectEvent> buffer(4);
    auto filled = source.FillBatch(buffer);
    ASSERT_FALSE(filled.ok());
    EXPECT_EQ(filled.status().code(), util::StatusCode::kNotFound);
  }
}

TEST(ObjectServiceTest, StreamingServesGeneratorInBoundedMemory) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = 48;
  options.length = 5000;
  const CostModel sc = CostModel::StationaryComputing(0.25, 1.0);
  const ObjectConfig config = TestConfig();

  // Materialized reference.
  const MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, 9001);
  ObjectService reference(options.num_processors, sc);
  reference.ReserveObjects(static_cast<size_t>(options.num_objects));
  for (int id = 0; id < options.num_objects; ++id) {
    ASSERT_TRUE(reference.AddObject(id, config).ok());
  }
  auto want = reference.ServeBatch(trace.events);
  ASSERT_TRUE(want.ok());

  // Streaming run, never materializing more than 256 events.
  workload::GeneratorEventSource source(options, 9001);
  ServiceOptions sharded;
  sharded.num_shards = 16;
  ObjectService service(options.num_processors, sc, sharded);
  service.ReserveObjects(static_cast<size_t>(options.num_objects));
  for (int id = 0; id < options.num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  auto got = service.ServeStream(source, /*batch_size=*/256);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->events, static_cast<int64_t>(options.length));
  EXPECT_EQ(got->breakdown, want->breakdown);
  EXPECT_EQ(got->cost, want->cost);
}

TEST(ObjectServiceTest, IncrementalTotalsMatchPerObjectSums) {
  const MultiObjectTrace trace = TestTrace(1000, 5);
  const CostModel sc = CostModel::StationaryComputing(0.3, 0.7);
  ServiceOptions options;
  options.num_shards = 4;
  ObjectService service(trace.num_processors, sc, options);
  RegisterObjects(service, trace, TestConfig());
  ASSERT_TRUE(service.ServeBatch(trace.events).ok());

  model::CostBreakdown summed;
  int64_t requests = 0;
  const std::vector<ObjectId> ids = service.SortedObjectIds();
  EXPECT_EQ(ids.size(), static_cast<size_t>(trace.num_objects));
  for (ObjectId id : ids) {
    auto stats = service.StatsFor(id);
    ASSERT_TRUE(stats.ok());
    summed += stats->breakdown;
    requests += stats->requests;
  }
  EXPECT_EQ(service.TotalBreakdown(), summed);
  EXPECT_EQ(service.TotalRequests(), requests);
  EXPECT_EQ(service.TotalCost(), summed.Cost(sc));
}

TEST(ObjectServiceTest, MixedAlgorithmsAcrossShards) {
  const CostModel sc = CostModel::StationaryComputing(0.5, 1.0);
  ServiceOptions options;
  options.num_shards = 4;
  ObjectService service(8, sc, options);
  ASSERT_TRUE(service.AddObject(1, TestConfig(AlgorithmKind::kDynamic)).ok());
  ASSERT_TRUE(service.AddObject(2, TestConfig(AlgorithmKind::kStatic)).ok());
  std::vector<MultiObjectEvent> batch = {
      {1, model::Request::Read(6)},
      {2, model::Request::Read(6)},
  };
  ASSERT_TRUE(service.ServeBatch(batch).ok());
  // DA saves at the reader, SA does not; objects stay isolated.
  EXPECT_TRUE(service.StatsFor(1)->scheme.Contains(6));
  EXPECT_FALSE(service.StatsFor(2)->scheme.Contains(6));
}

}  // namespace
}  // namespace objalloc::core
