#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/util/ascii_plot.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/util/processor_set.h"
#include "objalloc/util/rng.h"
#include "objalloc/util/spsc_queue.h"
#include "objalloc/util/stats.h"
#include "objalloc/util/status.h"

namespace objalloc::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad t");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad t");
}

TEST(StatusTest, StatusOrHoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusTest, StatusOrHoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusTest, RejectionTaxonomy) {
  // Transient rejections: nothing was applied, a retry can succeed. The
  // wire protocol (net/wire.h) and the library agree on this partition.
  EXPECT_TRUE(IsTransientRejection(Status::Unavailable("degraded")));
  EXPECT_TRUE(IsTransientRejection(Status::Timeout("deadline")));
  EXPECT_TRUE(IsTransientRejection(Status::Overloaded("shed")));
  EXPECT_FALSE(IsTransientRejection(Status::NotFound("missing")));
  EXPECT_FALSE(IsTransientRejection(Status::Internal("bug")));
  EXPECT_FALSE(IsTransientRejection(Status::Ok()));

  // Caller errors: retrying verbatim cannot help.
  EXPECT_TRUE(IsCallerError(Status::InvalidArgument("bad")));
  EXPECT_TRUE(IsCallerError(Status::NotFound("missing")));
  EXPECT_TRUE(IsCallerError(Status::OutOfRange("processor 99")));
  EXPECT_FALSE(IsCallerError(Status::Overloaded("shed")));
  EXPECT_FALSE(IsCallerError(Status::Internal("bug")));

  EXPECT_EQ(Status::Timeout("t").ToString(), "TIMEOUT: t");
  EXPECT_EQ(Status::Overloaded("o").ToString(), "OVERLOADED: o");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) {
    return fail ? Status::Internal("boom") : Status::Ok();
  };
  auto outer = [&](bool fail) -> Status {
    OBJALLOC_RETURN_IF_ERROR(inner(fail));
    return Status::Ok();
  };
  EXPECT_TRUE(outer(false).ok());
  EXPECT_EQ(outer(true).code(), StatusCode::kInternal);
}

// ---------------------------------------------------------- ProcessorSet

TEST(ProcessorSetTest, EmptyByDefault) {
  ProcessorSet set;
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Size(), 0);
}

TEST(ProcessorSetTest, InsertEraseContains) {
  ProcessorSet set;
  set.Insert(3);
  set.Insert(5);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
  EXPECT_EQ(set.Size(), 2);
  set.Erase(3);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.Size(), 1);
}

TEST(ProcessorSetTest, InitializerList) {
  ProcessorSet set{0, 2, 63};
  EXPECT_EQ(set.Size(), 3);
  EXPECT_TRUE(set.Contains(63));
}

TEST(ProcessorSetTest, FirstN) {
  EXPECT_EQ(ProcessorSet::FirstN(0).Size(), 0);
  EXPECT_EQ(ProcessorSet::FirstN(3), (ProcessorSet{0, 1, 2}));
  EXPECT_EQ(ProcessorSet::FirstN(64).Size(), 64);
}

TEST(ProcessorSetTest, SetAlgebra) {
  ProcessorSet a{0, 1, 2};
  ProcessorSet b{2, 3};
  EXPECT_EQ(a.Union(b), (ProcessorSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), ProcessorSet{2});
  EXPECT_EQ(a.Minus(b), (ProcessorSet{0, 1}));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Minus(b).Intersects(b));
  EXPECT_TRUE((ProcessorSet{1}).IsSubsetOf(a));
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(ProcessorSetTest, FirstAndToVector) {
  ProcessorSet set{5, 1, 9};
  EXPECT_EQ(set.First(), 1);
  EXPECT_EQ(set.ToVector(), (std::vector<ProcessorId>{1, 5, 9}));
}

TEST(ProcessorSetTest, ToStringIsSorted) {
  EXPECT_EQ((ProcessorSet{3, 0, 5}).ToString(), "{0,3,5}");
  EXPECT_EQ(ProcessorSet().ToString(), "{}");
}

TEST(ProcessorSetTest, WithInsertedDoesNotMutate) {
  ProcessorSet set{1};
  ProcessorSet grown = set.WithInserted(2);
  EXPECT_EQ(set.Size(), 1);
  EXPECT_EQ(grown.Size(), 2);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 10; ++i) differ += a.Next() != b.Next();
  EXPECT_GT(differ, 5);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(10), 10u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.NextBounded(5)];
  for (int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedSamplingRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.05);
}

TEST(RngTest, ForkIsIndependent) {
  Rng a(23);
  Rng b = a.Fork();
  // The fork must not replay the parent's stream.
  int equal = 0;
  for (int i = 0; i < 20; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 3);
}

// ------------------------------------------------------- FlatDirectory

TEST(FlatDirectoryTest, HeavyGrowthKeepsEveryMapping) {
  // 50k sparse keys through repeated rehashes: every mapping must survive,
  // and keys never inserted must stay absent.
  FlatDirectory<uint32_t> directory;
  Rng rng(41);
  std::vector<int64_t> keys;
  keys.reserve(50000);
  while (keys.size() < 50000) {
    const auto key = static_cast<int64_t>(rng.Next() >> 1);
    if (directory.Contains(key)) continue;
    directory.Insert(key, static_cast<uint32_t>(keys.size()));
    keys.push_back(key);
  }
  EXPECT_EQ(directory.size(), 50000u);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(directory.Find(keys[i]), static_cast<uint32_t>(i))
        << "key " << keys[i];
  }
  for (int i = 0; i < 1000; ++i) {
    const auto absent = static_cast<int64_t>(-2 - i);
    EXPECT_EQ(directory.Find(absent), FlatDirectory<uint32_t>::kNotFound);
  }
}

TEST(FlatDirectoryTest, EraseLeavesProbeChainsIntact) {
  // Keys that collide into shared probe chains: erasing one in the middle
  // must not hide the ones that probed past it.
  FlatDirectory<uint32_t> directory;
  for (int64_t key = 0; key < 64; ++key) {
    directory.Insert(key, static_cast<uint32_t>(key + 100));
  }
  // Erase every third key, then verify all survivors resolve.
  for (int64_t key = 0; key < 64; key += 3) {
    EXPECT_TRUE(directory.Erase(key));
    EXPECT_FALSE(directory.Erase(key));  // second erase: already gone
  }
  EXPECT_EQ(directory.size(), 64u - 22u);
  for (int64_t key = 0; key < 64; ++key) {
    if (key % 3 == 0) {
      EXPECT_EQ(directory.Find(key), FlatDirectory<uint32_t>::kNotFound);
    } else {
      EXPECT_EQ(directory.Find(key), static_cast<uint32_t>(key + 100));
    }
  }
  // Erased keys can rejoin (tombstone reuse on the same chain).
  for (int64_t key = 0; key < 64; key += 3) {
    directory.Insert(key, static_cast<uint32_t>(key + 500));
  }
  EXPECT_EQ(directory.size(), 64u);
  for (int64_t key = 0; key < 64; key += 3) {
    EXPECT_EQ(directory.Find(key), static_cast<uint32_t>(key + 500));
  }
}

TEST(FlatDirectoryTest, InsertEraseChurnMatchesReferenceMap) {
  // Randomized churn over a small key universe forces heavy tombstone
  // traffic and tombstone-dropping rehashes; a reference map arbitrates.
  FlatDirectory<uint32_t> directory;
  std::vector<int64_t> live_value(512, -1);  // -1 = absent, else value
  Rng rng(43);
  for (int step = 0; step < 200000; ++step) {
    const auto key = static_cast<int64_t>(rng.NextBounded(512));
    if (live_value[static_cast<size_t>(key)] >= 0) {
      EXPECT_TRUE(directory.Erase(key));
      live_value[static_cast<size_t>(key)] = -1;
    } else {
      const auto value = static_cast<uint32_t>(rng.NextBounded(1 << 20));
      directory.Insert(key, value);
      live_value[static_cast<size_t>(key)] = value;
    }
    if (step % 4096 == 0) {
      for (int64_t k = 0; k < 512; ++k) {
        const int64_t expected = live_value[static_cast<size_t>(k)];
        ASSERT_EQ(directory.Find(k),
                  expected < 0 ? FlatDirectory<uint32_t>::kNotFound
                               : static_cast<uint32_t>(expected))
            << "step " << step << " key " << k;
      }
    }
  }
  size_t live = 0;
  for (const int64_t v : live_value) live += v >= 0;
  EXPECT_EQ(directory.size(), live);
}

TEST(FlatDirectoryTest, MillionEntryGrowthErasureAndProbeLengths) {
  // The storage engine's registration pattern at full scale: a million
  // sequential ids through incremental growth. Every mapping must survive,
  // memory must stay near the 12-bytes-per-bucket ideal (a migration in
  // flight briefly holds both tables), and probe chains must stay short —
  // long chains would silently turn every million-object serve into a
  // cache-miss crawl.
  FlatDirectory<uint32_t> directory;
  constexpr int64_t kEntries = 1000000;
  for (int64_t key = 0; key < kEntries; ++key) {
    directory.Insert(key, static_cast<uint32_t>(key));
  }
  ASSERT_EQ(directory.size(), static_cast<size_t>(kEntries));
  // 12 bytes/bucket; the worst landing spot is a freshly doubled table
  // (~4M buckets for 1M keys) plus a migration's tail of the old one.
  EXPECT_LE(directory.MemoryUsageBytes(),
            static_cast<size_t>(kEntries) * 80);

  size_t total_probe = 0;
  constexpr int64_t kSample = 10000;
  for (int64_t key = 0; key < kSample; ++key) {
    ASSERT_EQ(directory.Find(key * (kEntries / kSample)),
              static_cast<uint32_t>(key * (kEntries / kSample)));
    total_probe += directory.ProbeLength(key * (kEntries / kSample));
  }
  EXPECT_LT(static_cast<double>(total_probe) / kSample, 4.0)
      << "mean probe length degraded at the million-entry load";

  // Erase every even key; odd keys and their probe chains must survive,
  // and the erased half must stay gone through the tombstone traffic.
  for (int64_t key = 0; key < kEntries; key += 2) {
    ASSERT_TRUE(directory.Erase(key));
  }
  ASSERT_EQ(directory.size(), static_cast<size_t>(kEntries) / 2);
  for (int64_t key = 1; key < kEntries; key += 1000) {
    ASSERT_EQ(directory.Find(key), static_cast<uint32_t>(key));
  }
  for (int64_t key = 0; key < kEntries; key += 1000) {
    ASSERT_EQ(directory.Find(key), FlatDirectory<uint32_t>::kNotFound);
  }
  // Erased ids can re-register (the engine reuses freed slots).
  for (int64_t key = 0; key < kEntries; key += 2) {
    directory.Insert(key, static_cast<uint32_t>(key + 1));
  }
  ASSERT_EQ(directory.size(), static_cast<size_t>(kEntries));
  for (int64_t key = 0; key < kEntries; key += 1000) {
    ASSERT_EQ(directory.Find(key), static_cast<uint32_t>(key + 1));
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  Rng rng(29);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c / 8000.0, 0.25, 0.05);
}

TEST(ZipfTest, SkewFavorsLowIds) {
  Rng rng(31);
  ZipfSampler zipf(8, 1.2);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[7] * 3);
}

// ---------------------------------------------------------------- Stats

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  RunningStats a, b, combined;
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    double x = rng.NextDouble() * 10;
    (i % 2 == 0 ? a : b).Add(x);
    combined.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
}

TEST(PercentileTest, MedianAndTails) {
  PercentileTracker tracker;
  for (int i = 1; i <= 100; ++i) tracker.Add(i);
  EXPECT_DOUBLE_EQ(tracker.Median(), 50);
  EXPECT_DOUBLE_EQ(tracker.Percentile(0.99), 99);
  EXPECT_DOUBLE_EQ(tracker.Percentile(0.0), 1);
  EXPECT_DOUBLE_EQ(tracker.Percentile(1.0), 100);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram histogram(0, 10, 5);
  histogram.Add(1);    // bucket 0
  histogram.Add(9.5);  // bucket 4
  histogram.Add(-3);   // clamps to bucket 0
  histogram.Add(42);   // clamps to bucket 4
  EXPECT_EQ(histogram.total(), 4);
  EXPECT_EQ(histogram.buckets()[0], 2);
  EXPECT_EQ(histogram.buckets()[4], 2);
  EXPECT_FALSE(histogram.Render().empty());
}

// ------------------------------------------------------------------ CSV

TEST(TableTest, AlignedAndCsvOutput) {
  Table table({"name", "value"});
  table.AddRow().Cell("alpha").Cell(int64_t{1});
  table.AddRow().Cell("beta,with comma").Cell(2.5, 1);
  std::ostringstream csv;
  table.WriteCsv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1\n\"beta,with comma\",2.5\n");
  std::ostringstream aligned;
  table.WriteAligned(aligned);
  EXPECT_NE(aligned.str().find("alpha"), std::string::npos);
  EXPECT_NE(aligned.str().find("----"), std::string::npos);
}

TEST(TableTest, QuotesEmbeddedQuotes) {
  Table table({"x"});
  table.AddRow().Cell("say \"hi\"");
  std::ostringstream csv;
  table.WriteCsv(csv);
  EXPECT_EQ(csv.str(), "x\n\"say \"\"hi\"\"\"\n");
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(1.5, 2), "1.50");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

// ----------------------------------------------------------- SpscQueue

TEST(SpscQueueTest, StartsEmpty) {
  SpscQueue<int> queue(4);
  EXPECT_TRUE(queue.EmptyApprox());
  EXPECT_EQ(queue.SizeApprox(), 0u);
  int value = -1;
  EXPECT_FALSE(queue.TryPop(&value));
  EXPECT_EQ(value, -1);
}

TEST(SpscQueueTest, FifoOrderWithinCapacity) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_EQ(queue.SizeApprox(), 8u);
  for (int i = 0; i < 8; ++i) {
    int value = -1;
    EXPECT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_TRUE(queue.EmptyApprox());
}

TEST(SpscQueueTest, RejectsPushWhenFullUntilPop) {
  SpscQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // exact capacity, not the pow2 storage
  int value = 0;
  EXPECT_TRUE(queue.TryPop(&value));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_FALSE(queue.TryPush(4));
}

TEST(SpscQueueTest, CapacityOneAlternates) {
  SpscQueue<int> queue(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
    EXPECT_FALSE(queue.TryPush(i + 1000));
    int value = -1;
    EXPECT_TRUE(queue.TryPop(&value));
    EXPECT_EQ(value, i);
    EXPECT_FALSE(queue.TryPop(&value));
  }
}

TEST(SpscQueueTest, WraparoundPreservesOrder) {
  // Non-pow2 capacity forces the mask to cover a larger storage array;
  // push/pop in unequal strides so head and tail lap the ring repeatedly.
  SpscQueue<int> queue(3);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (queue.TryPush(next_push)) ++next_push;
    int value = -1;
    ASSERT_TRUE(queue.TryPop(&value));
    ASSERT_EQ(value, next_pop);
    ++next_pop;
    if (round % 3 == 0) {
      while (queue.TryPop(&value)) {
        ASSERT_EQ(value, next_pop);
        ++next_pop;
      }
    }
  }
  EXPECT_GT(next_push, 1000);  // the ring really did wrap many times
}

// ----------------------------------------------------------- RegionPlot

TEST(RegionPlotTest, RendersClassifierOutput) {
  RegionPlot plot(0, 2, 0, 1, 20, 6);
  plot.AddLegend('A', "above diagonal");
  std::string out = plot.Render([](double x, double y) {
    return y > x ? 'A' : 'B';
  });
  EXPECT_NE(out.find('A'), std::string::npos);
  EXPECT_NE(out.find('B'), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
}

}  // namespace
}  // namespace objalloc::util
