// The TCP serving front-end's robustness envelope (DESIGN.md §15), over
// real loopback sockets: wire traffic is bit-identical to the in-process
// path, budgets shed with kOverloaded instead of queueing, deadlines reply
// kTimeout, slow clients and idle connections are evicted, protocol chaos
// never takes the server down, and RequestDrain exits cleanly with every
// admitted request answered. Runs under TSan in CI (chaos-tsan job): the
// event loop, the engine's shard workers, and the chaos clients race here
// on purpose.

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/object_service.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/net/chaos.h"
#include "objalloc/net/client.h"
#include "objalloc/net/server.h"
#include "objalloc/net/wire.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::net {
namespace {

using core::ObjectService;
using core::ServiceOptions;
using model::CostModel;

constexpr int kProcessors = 8;
constexpr uint64_t kSchemeMask = 0b0111;  // processors {0,1,2}

CostModel TestModel() { return CostModel::StationaryComputing(0.25, 1.0); }

ObjectService MakeService() {
  return ObjectService(kProcessors, TestModel(),
                       ServiceOptions{.num_shards = 4});
}

core::ObjectConfig TestConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet(kSchemeMask);
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

uint32_t SchemeCrcOf(const ObjectService& service) {
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  return crc;
}

// Starts the server on an ephemeral loopback port and runs its loop on a
// background thread; the destructor drains and joins.
class ServerHarness {
 public:
  explicit ServerHarness(ObjectService* service, ServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<Server>(service, options);
    start_status_ = server_->Start();
    if (start_status_.ok()) {
      thread_ = std::thread([this] { run_status_ = server_->Run(); });
    }
  }

  ~ServerHarness() { Shutdown(); }

  void Shutdown() {
    if (thread_.joinable()) {
      server_->RequestDrain();
      thread_.join();
    }
  }

  Server& server() { return *server_; }
  uint16_t port() const { return server_->port(); }
  const util::Status& start_status() const { return start_status_; }
  const util::Status& run_status() const { return run_status_; }

 private:
  std::unique_ptr<Server> server_;
  std::thread thread_;
  util::Status start_status_ = util::Status::Ok();
  util::Status run_status_ = util::Status::Ok();
};

TEST(NetServerTest, PingRegisterReadWrite) {
  ObjectService service = MakeService();
  ServerHarness harness(&service);
  ASSERT_TRUE(harness.start_status().ok()) << harness.start_status().ToString();

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_TRUE(client.Ping().ok());

  ASSERT_TRUE(client.Register(7, kSchemeMask, /*algorithm=*/1).ok());
  // Registering the same object twice is the library's error, not a
  // connection-killer.
  EXPECT_FALSE(client.Register(7, kSchemeMask, 1).ok());
  EXPECT_TRUE(client.connected());

  util::StatusOr<double> read = client.Read(7, /*processor=*/0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_GE(*read, 0.0);
  util::StatusOr<double> write = client.Write(7, /*processor=*/5);
  ASSERT_TRUE(write.ok());
  EXPECT_GT(*write, 0.0);  // write outside the scheme moves data

  // Caller errors come back typed and leave the connection alive.
  EXPECT_EQ(client.Read(999, 0).status().code(), util::StatusCode::kNotFound);
  EXPECT_EQ(client.Read(7, kProcessors + 3).status().code(),
            util::StatusCode::kOutOfRange);
  EXPECT_EQ(client.Register(8, kSchemeMask, 77).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.Ping().ok());

  harness.Shutdown();
  EXPECT_TRUE(harness.run_status().ok());
  EXPECT_EQ(service.TotalRequests(), 2);
}

TEST(NetServerTest, BatchIsAllOrNothing) {
  ObjectService service = MakeService();
  ServerHarness harness(&service);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  for (int64_t id = 0; id < 4; ++id) {
    ASSERT_TRUE(client.Register(id, kSchemeMask, 1).ok());
  }

  BatchRequest good;
  for (int i = 0; i < 16; ++i) {
    good.items.push_back({i % 4, static_cast<uint32_t>(i % kProcessors),
                          static_cast<uint8_t>(i % 3 == 0)});
  }
  util::StatusOr<std::vector<double>> costs = client.Batch(good);
  ASSERT_TRUE(costs.ok()) << costs.status().ToString();
  EXPECT_EQ(costs->size(), 16u);

  // One unknown object rejects the whole wire batch with no state change.
  const int64_t before = service.TotalRequests();
  BatchRequest bad = good;
  bad.items[9].object = 424242;
  EXPECT_EQ(client.Batch(bad).status().code(), util::StatusCode::kNotFound);
  harness.Shutdown();
  EXPECT_EQ(service.TotalRequests(), before);
}

// The acceptance bar of the tentpole: traffic served over TCP leaves the
// engine bit-identical to the same traffic served in process. Two
// connections with disjoint object sets pipeline concurrently — per-object
// event order is then exactly per-connection send order, so the
// interleaving the server happens to pick cannot perturb the fingerprint.
TEST(NetServerTest, WireTrafficMatchesInProcessFingerprint) {
  constexpr int64_t kObjectsPerConn = 8;
  constexpr int kEventsPerConn = 600;

  auto events_for = [](int64_t first_object, uint64_t seed) {
    std::vector<workload::MultiObjectEvent> events;
    uint64_t state = seed;
    for (int i = 0; i < kEventsPerConn; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      workload::MultiObjectEvent event;
      event.object = first_object + static_cast<int64_t>((state >> 33) %
                                                         kObjectsPerConn);
      const auto processor =
          static_cast<model::ProcessorId>((state >> 13) % kProcessors);
      event.request = (state >> 7) % 3 == 0
                          ? model::Request::Write(processor)
                          : model::Request::Read(processor);
      events.push_back(event);
    }
    return events;
  };
  const std::vector<workload::MultiObjectEvent> conn1 = events_for(0, 11);
  const std::vector<workload::MultiObjectEvent> conn2 =
      events_for(kObjectsPerConn, 22);

  // In-process reference: one service, both sequences (order across
  // connections is irrelevant — the objects are disjoint).
  ObjectService reference = MakeService();
  for (int64_t id = 0; id < 2 * kObjectsPerConn; ++id) {
    ASSERT_TRUE(reference.AddObject(id, TestConfig()).ok());
  }
  for (const auto* events : {&conn1, &conn2}) {
    core::BatchResult result;
    core::BatchTicket ticket;
    ASSERT_TRUE(reference
                    .SubmitBatch(std::span<const workload::MultiObjectEvent>(
                                     *events),
                                 &result, &ticket)
                    .ok());
    ASSERT_TRUE(reference.WaitBatch(&ticket).ok());
  }

  // Networked run: the same traffic through two pipelined connections.
  ObjectService service = MakeService();
  ServerOptions options;
  options.batch_max_delay_us = 100;
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", harness.port()).ok());
  for (int64_t id = 0; id < 2 * kObjectsPerConn; ++id) {
    ASSERT_TRUE(admin.Register(id, kSchemeMask, 1).ok());
  }

  auto drive = [&](const std::vector<workload::MultiObjectEvent>& events) {
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
    constexpr size_t kWindow = 64;
    size_t completed = 0;
    for (const workload::MultiObjectEvent& event : events) {
      util::StatusOr<uint64_t> id = client.SendServe(
          event.request.is_write(), event.object,
          static_cast<uint32_t>(event.request.processor));
      ASSERT_TRUE(id.ok());
      while (client.outstanding() >= kWindow) {
        util::StatusOr<Client::Reply> reply = client.WaitReply(5000);
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        ASSERT_TRUE(reply->status.ok()) << reply->status.ToString();
        ++completed;
      }
    }
    while (client.outstanding() > 0) {
      util::StatusOr<Client::Reply> reply = client.WaitReply(5000);
      ASSERT_TRUE(reply.ok());
      ASSERT_TRUE(reply->status.ok());
      ++completed;
    }
    EXPECT_EQ(completed, events.size());
  };
  std::thread t1(drive, std::cref(conn1));
  std::thread t2(drive, std::cref(conn2));
  t1.join();
  t2.join();
  harness.Shutdown();
  ASSERT_TRUE(harness.run_status().ok());

  EXPECT_EQ(service.TotalRequests(), reference.TotalRequests());
  EXPECT_EQ(service.TotalBreakdown(), reference.TotalBreakdown());
  EXPECT_EQ(SchemeCrcOf(service), SchemeCrcOf(reference));
}

TEST(NetServerTest, OverloadShedsWithKOverloadedNeverQueues) {
  ObjectService service = MakeService();
  ServerOptions options;
  // A tiny admission budget and a long batching window: everything past
  // the budget must shed immediately instead of queueing behind it.
  options.max_batch_items = 4;
  options.max_inflight_per_connection = 8;
  options.max_inflight_global = 8;
  // A window that never fills (4096 > the budget) and a delay far past the
  // send burst: nothing is served while the burst lands, so admission
  // counts are exact, not racy.
  options.batch_max_events = 4096;
  options.batch_max_delay_us = 100000;  // 100ms
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  ASSERT_TRUE(client.Register(1, kSchemeMask, 1).ok());

  constexpr int kSent = 64;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client.SendServe(false, 1, 0).ok());
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < kSent; ++i) {
    util::StatusOr<Client::Reply> reply = client.WaitReply(10000);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(reply->status.code(), util::StatusCode::kOverloaded)
          << reply->status.ToString();
      ASSERT_TRUE(util::IsTransientRejection(reply->status));
      ++overloaded;
    }
  }
  harness.Shutdown();
  // Exactly the budget was admitted (all sends land well inside the 100ms
  // window, so no slot freed up in between); the rest shed.
  EXPECT_EQ(ok, 8);
  EXPECT_EQ(overloaded, kSent - 8);
  const ServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.admitted_events, 8u);
  EXPECT_EQ(stats.shed_overloaded, static_cast<uint64_t>(kSent - 8));
  EXPECT_EQ(service.TotalRequests(), 8);
}

TEST(NetServerTest, DeadlineExpiresInQueueWithKTimeout) {
  ObjectService service = MakeService();
  ServerOptions options;
  options.batch_max_events = 4096;
  options.batch_max_delay_us = 300000;  // 300ms — far past the deadline
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  ASSERT_TRUE(client.Register(1, kSchemeMask, 1).ok());

  const auto start = std::chrono::steady_clock::now();
  util::StatusOr<double> result = client.Read(1, 0, /*deadline_ms=*/5);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(result.status().code(), util::StatusCode::kTimeout)
      << result.status().ToString();
  // The reply must come from the deadline sweep, not the batch window.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            250);
  harness.Shutdown();
  EXPECT_EQ(harness.server().Stats().shed_timeout, 1u);
  EXPECT_EQ(service.TotalRequests(), 0);
}

TEST(NetServerTest, SlowClientIsEvictedAtWriteBufferCap) {
  ObjectService service = MakeService();
  ServerOptions options;
  options.max_frame_bytes = 4096;
  options.max_write_buffer_bytes = 8192;
  // Tiny kernel send buffer: replies back up into the userspace buffer
  // after a few KB instead of a few MB, so eviction triggers quickly even
  // under TSan's slowdown.
  options.socket_send_buffer_bytes = 4096;
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  // A bounded burst, never read: ~84 KB of replies dwarf the 4 KB kernel
  // send buffer plus the 8 KB cap, so the flush path must evict us. The
  // burst is bounded (not a race-until-evicted loop) because queueing
  // megabytes against a stalled peer drives loopback TCP into
  // retransmission backoff under sanitizer slowdowns, which reads as a
  // hang.
  for (int i = 0; i < 3000; ++i) {
    if (!client.SendServe(false, 1, 0).ok()) break;  // send path saw the RST
  }
  bool evicted = false;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!evicted && std::chrono::steady_clock::now() < give_up) {
    evicted = harness.server().Stats().connections_evicted > 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(evicted);

  // A well-behaved connection still serves.
  Client healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_TRUE(healthy.Ping().ok());
}

TEST(NetServerTest, IdleConnectionsAreClosed) {
  ObjectService service = MakeService();
  ServerOptions options;
  options.idle_timeout_ms = 50;
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  ASSERT_TRUE(client.Ping().ok());
  // Go quiet past the timeout: the server hangs up.
  util::StatusOr<Client::Reply> reply = client.WaitReply(5000);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), util::StatusCode::kUnavailable);
  harness.Shutdown();
  EXPECT_GE(harness.server().Stats().connections_idle_closed, 1u);
}

TEST(NetServerTest, GracefulDrainAnswersEverythingAdmitted) {
  ObjectService service = MakeService();
  ServerOptions options;
  options.batch_max_delay_us = 50000;  // drain must not wait for the window
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  ASSERT_TRUE(client.Register(1, kSchemeMask, 1).ok());
  constexpr int kSent = 32;
  for (int i = 0; i < kSent; ++i) {
    ASSERT_TRUE(client.SendServe(i % 2 == 0, 1,
                                 static_cast<uint32_t>(i % kProcessors))
                    .ok());
  }
  // Wait for every request to be admitted (drain stops reading sockets, so
  // anything still in flight on the wire would be dropped — correctly).
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.server().Stats().admitted_events <
             static_cast<uint64_t>(kSent) &&
         std::chrono::steady_clock::now() < admit_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(harness.server().Stats().admitted_events,
            static_cast<uint64_t>(kSent));
  harness.Shutdown();  // RequestDrain + join: flush-then-exit
  EXPECT_TRUE(harness.run_status().ok());

  int answered = 0;
  while (answered < kSent) {
    util::StatusOr<Client::Reply> reply = client.WaitReply(2000);
    if (!reply.ok()) break;  // EOF after the last flushed reply
    EXPECT_TRUE(reply->status.ok()) << reply->status.ToString();
    ++answered;
  }
  // Every admitted request was answered before the server exited.
  EXPECT_EQ(answered, kSent);
  EXPECT_EQ(service.TotalRequests(), kSent);
  // And new connections are refused after the drain.
  Client late;
  const util::Status connect_status =
      late.Connect("127.0.0.1", harness.port());
  EXPECT_TRUE(!connect_status.ok() || !late.Ping().ok());
}

// The disconnect-storm / malformed-input sweep. Under TSan this is the
// CI chaos gate: every profile against a live server with real traffic,
// zero crashes, zero hangs, liveness probe green after each storm.
TEST(NetServerTest, SurvivesEveryChaosProfile) {
  ObjectService service = MakeService();
  ServerOptions options;
  options.idle_timeout_ms = 2000;
  ServerHarness harness(&service, options);
  ASSERT_TRUE(harness.start_status().ok());

  Client admin;
  ASSERT_TRUE(admin.Connect("127.0.0.1", harness.port()).ok());
  constexpr int64_t kObjects = 4;
  for (int64_t id = 0; id < kObjects; ++id) {
    ASSERT_TRUE(admin.Register(id, kSchemeMask, 1).ok());
  }

  ChaosOptions chaos;
  chaos.port = harness.port();
  chaos.iterations = 24;
  chaos.object_count = kObjects;
  chaos.num_processors = kProcessors;
  for (ChaosProfile profile : AllChaosProfiles()) {
    chaos.seed = 0x9E3779B97F4A7C15ull ^ static_cast<uint64_t>(profile);
    const ChaosReport report = RunChaos(profile, chaos);
    EXPECT_TRUE(report.server_alive_after)
        << "server down after " << ChaosProfileName(profile);
    EXPECT_GT(report.connections_established, 0)
        << ChaosProfileName(profile);
    if (profile == ChaosProfile::kByteDribble) {
      // Dribbled-but-valid frames must actually serve.
      EXPECT_GT(report.ok_replies_seen, 0);
    }
    if (profile == ChaosProfile::kCorruptFrame ||
        profile == ChaosProfile::kWrongVersion ||
        profile == ChaosProfile::kOversizedFrame) {
      // Strict parse-and-reject: the server said so before hanging up.
      EXPECT_GT(report.error_replies_seen, 0) << ChaosProfileName(profile);
    }
  }

  // The engine stayed coherent under the storm: well-formed traffic still
  // round-trips on a FRESH connection (the idle sweep correctly closed the
  // admin connection during the storm — that is the feature working).
  Client probe;
  ASSERT_TRUE(probe.Connect("127.0.0.1", harness.port()).ok());
  EXPECT_TRUE(probe.Ping().ok());
  util::StatusOr<double> cost = probe.Read(0, 0);
  EXPECT_TRUE(cost.ok()) << cost.status().ToString();
  harness.Shutdown();
  EXPECT_TRUE(harness.run_status().ok());
  EXPECT_GT(harness.server().Stats().protocol_errors, 0u);
}

TEST(NetServerTest, ServerOptionsValidate) {
  ServerOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.max_batch_items = options.batch_max_events + 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_write_buffer_bytes = options.max_frame_bytes - 1;
  EXPECT_FALSE(options.Validate().ok());
  options = {};
  options.max_inflight_per_connection = options.max_batch_items - 1;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace objalloc::net
