// The simulator's multi-object mode: per-object protocol isolation, global
// crash/recovery, the failure-free count-for-count cross-check against the
// analytic service layer, and the streaming entry point.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/object_service.h"
#include "objalloc/sim/multi_object_sim.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::sim {
namespace {

workload::MultiObjectTrace SmallTrace(size_t length = 400,
                                      uint64_t seed = 31) {
  workload::MultiObjectOptions options;
  options.num_processors = 6;
  options.num_objects = 8;
  options.length = length;
  return workload::GenerateMultiObjectTrace(options, seed);
}

MultiObjectSimOptions SimOptions(int num_objects = 8) {
  MultiObjectSimOptions options;
  options.base.protocol = ProtocolKind::kDynamic;
  options.base.num_processors = 6;
  options.base.initial_scheme = util::ProcessorSet({0, 1});
  options.num_objects = num_objects;
  return options;
}

TEST(MultiObjectSimTest, OptionsValidation) {
  MultiObjectSimOptions options = SimOptions();
  EXPECT_TRUE(options.Validate().ok());
  options.num_objects = 0;
  EXPECT_FALSE(options.Validate().ok());
  options = SimOptions();
  options.base.durable_dir = "/tmp/somewhere";
  EXPECT_FALSE(options.Validate().ok());
}

TEST(MultiObjectSimTest, FailureFreeTrafficMatchesAnalyticServiceLayer) {
  const workload::MultiObjectTrace trace = SmallTrace();
  MultiObjectSimulator sim(SimOptions());
  auto report = sim.RunTrace(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->served, static_cast<int64_t>(trace.events.size()));
  EXPECT_EQ(report->unavailable, 0);
  EXPECT_EQ(report->stale_reads, 0);

  // The analytic sharded service must account the same traffic, message for
  // message and I/O for I/O (the multi-object extension of sim_crosscheck).
  const model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  core::ObjectService service(trace.num_processors, sc);
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(service.AddObject(id, config).ok());
  }
  auto batch = service.ServeBatch(trace.events);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(report->metrics.ToBreakdown(), batch->breakdown);
}

TEST(MultiObjectSimTest, RunSourceMatchesRunTrace) {
  const workload::MultiObjectTrace trace = SmallTrace(300, 7);
  MultiObjectSimulator by_trace(SimOptions());
  auto want = by_trace.RunTrace(trace);
  ASSERT_TRUE(want.ok());

  MultiObjectSimulator by_source(SimOptions());
  workload::TraceEventSource source(trace);
  auto got = by_source.RunSource(source);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->served, want->served);
  EXPECT_EQ(got->stale_reads, want->stale_reads);
  EXPECT_EQ(got->metrics.ToBreakdown(), want->metrics.ToBreakdown());
  for (int64_t object = 0; object < 8; ++object) {
    EXPECT_EQ(by_source.object_sim(object).latest_version(),
              by_trace.object_sim(object).latest_version())
        << "object " << object;
  }
}

TEST(MultiObjectSimTest, CrashAffectsEveryObjectHostedAtTheProcessor) {
  MultiObjectSimulator sim(SimOptions(3));
  // Writes from processor 2 against every object, then crash 2.
  for (int64_t object = 0; object < 3; ++object) {
    EXPECT_TRUE(sim.Submit(object, model::Request::Write(2)).ok);
  }
  sim.Crash(2);
  EXPECT_TRUE(sim.IsCrashed(2));
  for (int64_t object = 0; object < 3; ++object) {
    EXPECT_FALSE(sim.Submit(object, model::Request::Read(2)).ok)
        << "crashed issuer must be unavailable for object " << object;
  }
  sim.Recover(2);
  EXPECT_FALSE(sim.IsCrashed(2));
  for (int64_t object = 0; object < 3; ++object) {
    EXPECT_TRUE(sim.Submit(object, model::Request::Read(2)).ok);
  }
}

TEST(MultiObjectSimTest, FailurePlanInjectsAtGlobalPositions) {
  const workload::MultiObjectTrace trace = SmallTrace(100, 99);
  FailurePlan plan;
  plan.events.push_back(FailureEvent::Crash(10, 3));
  plan.events.push_back(FailureEvent::Recover(60, 3));
  MultiObjectSimulator sim(SimOptions());
  auto report = sim.RunTrace(trace, plan);
  ASSERT_TRUE(report.ok());
  // DA with quorum failover keeps serving requests from live processors;
  // only requests issued *by* the crashed processor go unavailable.
  int64_t from_crashed = 0;
  for (size_t k = 10; k < 60; ++k) {
    if (trace.events[k].request.processor == 3) ++from_crashed;
  }
  EXPECT_EQ(report->unavailable, from_crashed);
  EXPECT_EQ(report->served + report->unavailable,
            static_cast<int64_t>(trace.events.size()));
  EXPECT_FALSE(sim.IsCrashed(3)) << "recovered by the plan";
}

TEST(MultiObjectSimTest, RejectsMismatchedTraceAndBadPlan) {
  MultiObjectSimulator sim(SimOptions());
  workload::MultiObjectTrace wrong = SmallTrace();
  wrong.num_processors = 5;
  EXPECT_FALSE(sim.RunTrace(wrong).ok());

  const workload::MultiObjectTrace trace = SmallTrace();
  FailurePlan bad;
  bad.events.push_back(FailureEvent::Crash(0, 63));  // out of range
  EXPECT_FALSE(sim.RunTrace(trace, bad).ok());
}

}  // namespace
}  // namespace objalloc::sim
