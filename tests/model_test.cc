#include <gtest/gtest.h>

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/legality.h"
#include "objalloc/model/request.h"
#include "objalloc/model/schedule.h"

namespace objalloc::model {
namespace {

using util::ProcessorSet;

// ------------------------------------------------------------- CostModel

TEST(CostModelTest, Factories) {
  CostModel sc = CostModel::StationaryComputing(0.1, 0.5);
  EXPECT_EQ(sc.io, 1.0);
  EXPECT_FALSE(sc.is_mobile());
  CostModel mc = CostModel::MobileComputing(0.1, 0.5);
  EXPECT_EQ(mc.io, 0.0);
  EXPECT_TRUE(mc.is_mobile());
}

TEST(CostModelTest, ValidationRejectsControlAboveData) {
  EXPECT_FALSE(CostModel::StationaryComputing(0.6, 0.5).Validate().ok());
  EXPECT_TRUE(CostModel::StationaryComputing(0.5, 0.5).Validate().ok());
}

TEST(CostModelTest, ValidationRejectsNegative) {
  EXPECT_FALSE((CostModel{-1, 0, 0}).Validate().ok());
  EXPECT_FALSE((CostModel{1, -0.1, 0}).Validate().ok());
  EXPECT_FALSE((CostModel{1, 0, -0.1}).Validate().ok());
}

// -------------------------------------------------------------- Schedule

TEST(ScheduleTest, ParseRoundTrip) {
  auto parsed = Schedule::Parse(5, "w2 r4 w3 r1 r2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 5u);
  EXPECT_EQ(parsed->ToString(), "w2 r4 w3 r1 r2");
  EXPECT_EQ((*parsed)[0], Request::Write(2));
  EXPECT_EQ((*parsed)[1], Request::Read(4));
}

TEST(ScheduleTest, ParseRejectsBadToken) {
  EXPECT_FALSE(Schedule::Parse(5, "x2").ok());
  EXPECT_FALSE(Schedule::Parse(5, "r").ok());
  EXPECT_FALSE(Schedule::Parse(5, "rr1").ok());
}

TEST(ScheduleTest, ParseRejectsOutOfRangeProcessor) {
  EXPECT_FALSE(Schedule::Parse(3, "r3").ok());
  EXPECT_TRUE(Schedule::Parse(4, "r3").ok());
}

TEST(ScheduleTest, Counts) {
  auto schedule = Schedule::Parse(4, "r1 r2 w0 r3 w1").value();
  EXPECT_EQ(schedule.CountReads(), 3u);
  EXPECT_EQ(schedule.CountWrites(), 2u);
}

// --------------------------------------------------- AllocationSchedule

TEST(AllocationScheduleTest, SchemeEvolution) {
  // The paper's example: tau'_0 = w2{2,3}, r4{1,2}, w3{2,3},
  // r1{1,2} as a saving-read, r2{2}; initial scheme {3,4}.
  AllocationSchedule tau(5, ProcessorSet{3, 4});
  tau.Append(Request::Write(2), ProcessorSet{2, 3});
  tau.Append(Request::Read(4), ProcessorSet{1, 2}, /*saving=*/false);
  tau.Append(Request::Write(3), ProcessorSet{2, 3});
  tau.Append(Request::Read(1), ProcessorSet{1, 2}, /*saving=*/true);
  tau.Append(Request::Read(2), ProcessorSet{2});

  EXPECT_EQ(tau.SchemeAt(0), (ProcessorSet{3, 4}));
  EXPECT_EQ(tau.SchemeAt(1), (ProcessorSet{2, 3}));
  EXPECT_EQ(tau.SchemeAt(2), (ProcessorSet{2, 3}));
  EXPECT_EQ(tau.SchemeAt(3), (ProcessorSet{2, 3}));
  EXPECT_EQ(tau.SchemeAt(4), (ProcessorSet{1, 2, 3}));  // after saving-read
  EXPECT_EQ(tau.FinalScheme(), (ProcessorSet{1, 2, 3}));
}

TEST(AllocationScheduleTest, ToScheduleDropsDecorations) {
  AllocationSchedule tau(3, ProcessorSet{0});
  tau.Append(Request::Read(1), ProcessorSet{0}, /*saving=*/true);
  tau.Append(Request::Write(2), ProcessorSet{1, 2});
  Schedule schedule = tau.ToSchedule();
  EXPECT_EQ(schedule.ToString(), "r1 w2");
}

TEST(AllocationScheduleTest, ToStringMarksSavingReads) {
  AllocationSchedule tau(3, ProcessorSet{0});
  tau.Append(Request::Read(1), ProcessorSet{0}, /*saving=*/true);
  EXPECT_EQ(tau.ToString(), "I={0} : R1{0}");
}

// --------------------------------------------------------------- Legality

TEST(LegalityTest, LegalSchedulePasses) {
  AllocationSchedule tau(5, ProcessorSet{3, 4});
  tau.Append(Request::Write(2), ProcessorSet{2, 3});
  tau.Append(Request::Read(4), ProcessorSet{1, 2});  // {1,2} meets {2,3}
  EXPECT_TRUE(CheckLegal(tau).ok());
}

TEST(LegalityTest, ReadMissingSchemeIsIllegal) {
  // The paper: tau'_0 becomes illegal if the last read r2's execution set is
  // changed from {2} to {4}.
  AllocationSchedule tau(5, ProcessorSet{3, 4});
  tau.Append(Request::Write(2), ProcessorSet{2, 3});
  tau.Append(Request::Read(2), ProcessorSet{4});  // 4 not in {2,3}
  EXPECT_FALSE(CheckLegal(tau).ok());
}

TEST(LegalityTest, EmptyExecutionSetIsIllegal) {
  AllocationSchedule tau(3, ProcessorSet{0});
  tau.Append(Request::Read(1), ProcessorSet{});
  EXPECT_FALSE(CheckLegal(tau).ok());
}

TEST(LegalityTest, TAvailabilityChecksEveryPosition) {
  AllocationSchedule tau(4, ProcessorSet{0, 1});
  tau.Append(Request::Write(2), ProcessorSet{2});  // shrinks to one copy
  EXPECT_TRUE(CheckTAvailable(tau, 1).ok());
  EXPECT_FALSE(CheckTAvailable(tau, 2).ok());
}

TEST(LegalityTest, SavingReadsOnlyGrowAvailability) {
  AllocationSchedule tau(4, ProcessorSet{0, 1});
  tau.Append(Request::Read(2), ProcessorSet{0}, /*saving=*/true);
  tau.Append(Request::Write(3), ProcessorSet{3, 0});
  EXPECT_TRUE(CheckLegalAndTAvailable(tau, 2).ok());
}

// ------------------------------------------------- Cost: SC (paper §3.2)

TEST(CostScTest, LocalReadIsOneIo) {
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{1}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, read, ProcessorSet{1, 2}), 1.0);
}

TEST(CostScTest, ReaderInsideExecutionSet) {
  // i in X: (|X|-1)cc + |X| + (|X|-1)cd with X = {1,2}, i = 1.
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{1, 2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, read, ProcessorSet{1, 2}),
                   0.25 + 2 + 0.75);
}

TEST(CostScTest, ReaderOutsideExecutionSet) {
  // i not in X: |X| * (cc + 1 + cd) with X = {2,3}, i = 1.
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{2, 3}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, read, ProcessorSet{2, 3}),
                   2 * (0.25 + 1 + 0.75));
}

TEST(CostScTest, SavingReadAddsOneIo) {
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest plain{Request::Read(1), ProcessorSet{2}, false};
  AllocatedRequest saving{Request::Read(1), ProcessorSet{2}, true};
  ProcessorSet scheme{2, 3};
  EXPECT_DOUBLE_EQ(RequestCost(sc, saving, scheme),
                   RequestCost(sc, plain, scheme) + 1.0);
}

TEST(CostScTest, WriterInsideExecutionSet) {
  // i in X: |Y \ X| cc + (|X|-1) cd + |X|; Y = {3,4}, X = {1,2}, i = 1.
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest write{Request::Write(1), ProcessorSet{1, 2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, write, ProcessorSet{3, 4}),
                   2 * 0.25 + 1 * 0.75 + 2);
}

TEST(CostScTest, WriterOutsideExecutionSetSkipsOwnInvalidation) {
  // i not in X: |Y \ X \ {i}| cc + |X| (cd + 1); Y = {1,3}, X = {2}, i = 1.
  // The writer's own stale copy needs no invalidation message.
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest write{Request::Write(1), ProcessorSet{2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, write, ProcessorSet{1, 3}),
                   1 * 0.25 + 1 * (0.75 + 1));
}

TEST(CostScTest, WriteToUnchangedSchemeHasNoInvalidations) {
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocatedRequest write{Request::Write(1), ProcessorSet{1, 2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(sc, write, ProcessorSet{1, 2}), 0.75 + 2);
}

// ------------------------------------------------- Cost: MC (paper §3.3)

TEST(CostMcTest, LocalReadIsFree) {
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{1}, false};
  EXPECT_DOUBLE_EQ(RequestCost(mc, read, ProcessorSet{1, 2}), 0.0);
}

TEST(CostMcTest, ReaderInsideExecutionSet) {
  // (|X|-1)(cc + cd).
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{1, 2, 3}, false};
  EXPECT_DOUBLE_EQ(RequestCost(mc, read, ProcessorSet{1, 2, 3}), 2 * 1.0);
}

TEST(CostMcTest, ReaderOutsideExecutionSet) {
  // |X| (cc + cd).
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  AllocatedRequest read{Request::Read(1), ProcessorSet{2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(mc, read, ProcessorSet{2}), 1.0);
}

TEST(CostMcTest, SavingReadCostsTheSameAsPlain) {
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  AllocatedRequest plain{Request::Read(1), ProcessorSet{2}, false};
  AllocatedRequest saving{Request::Read(1), ProcessorSet{2}, true};
  EXPECT_DOUBLE_EQ(RequestCost(mc, plain, ProcessorSet{2, 3}),
                   RequestCost(mc, saving, ProcessorSet{2, 3}));
}

TEST(CostMcTest, WriteCosts) {
  CostModel mc = CostModel::MobileComputing(0.25, 0.75);
  // i in X: |Y\X| cc + (|X|-1) cd.
  AllocatedRequest inside{Request::Write(1), ProcessorSet{1, 2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(mc, inside, ProcessorSet{3, 4}),
                   2 * 0.25 + 0.75);
  // i not in X: |Y\X\{i}| cc + |X| cd.
  AllocatedRequest outside{Request::Write(1), ProcessorSet{2}, false};
  EXPECT_DOUBLE_EQ(RequestCost(mc, outside, ProcessorSet{1, 3}),
                   0.25 + 0.75);
}

// -------------------------------------------------------- Whole schedules

TEST(ScheduleCostTest, BreakdownMatchesCost) {
  CostModel sc = CostModel::StationaryComputing(0.25, 0.75);
  AllocationSchedule tau(5, ProcessorSet{3, 4});
  tau.Append(Request::Write(2), ProcessorSet{2, 3});
  tau.Append(Request::Read(4), ProcessorSet{1, 2}, false);
  tau.Append(Request::Write(3), ProcessorSet{2, 3});
  tau.Append(Request::Read(1), ProcessorSet{1, 2}, true);
  tau.Append(Request::Read(2), ProcessorSet{2});
  CostBreakdown breakdown = ScheduleBreakdown(tau);
  EXPECT_DOUBLE_EQ(breakdown.Cost(sc), ScheduleCost(sc, tau));
  EXPECT_GT(breakdown.io_ops, 0);
}

TEST(ScheduleCostTest, IntroExampleDynamicBeatsStatic) {
  // §1.3: for r1 r1 r2 w2 r2 r2 r2 with initial scheme {1}, switching the
  // scheme to {2} at the write beats keeping it at {1}.
  CostModel sc = CostModel::StationaryComputing(1.0, 1.0);

  AllocationSchedule fixed(3, ProcessorSet{1});
  fixed.Append(Request::Read(1), ProcessorSet{1});
  fixed.Append(Request::Read(1), ProcessorSet{1});
  fixed.Append(Request::Read(2), ProcessorSet{1});
  fixed.Append(Request::Write(2), ProcessorSet{1});
  fixed.Append(Request::Read(2), ProcessorSet{1});
  fixed.Append(Request::Read(2), ProcessorSet{1});
  fixed.Append(Request::Read(2), ProcessorSet{1});

  AllocationSchedule dynamic(3, ProcessorSet{1});
  dynamic.Append(Request::Read(1), ProcessorSet{1});
  dynamic.Append(Request::Read(1), ProcessorSet{1});
  dynamic.Append(Request::Read(2), ProcessorSet{1});
  dynamic.Append(Request::Write(2), ProcessorSet{2});  // invalidates 1
  dynamic.Append(Request::Read(2), ProcessorSet{2});
  dynamic.Append(Request::Read(2), ProcessorSet{2});
  dynamic.Append(Request::Read(2), ProcessorSet{2});

  ASSERT_TRUE(CheckLegalAndTAvailable(fixed, 1).ok());
  ASSERT_TRUE(CheckLegalAndTAvailable(dynamic, 1).ok());
  EXPECT_LT(ScheduleCost(sc, dynamic), ScheduleCost(sc, fixed));
}

TEST(CostBreakdownTest, Accumulation) {
  CostBreakdown a{1, 2, 3};
  CostBreakdown b{10, 20, 30};
  a += b;
  EXPECT_EQ(a, (CostBreakdown{11, 22, 33}));
  EXPECT_EQ(a.ToString(), "{ctrl=11, data=22, io=33}");
}

}  // namespace
}  // namespace objalloc::model
