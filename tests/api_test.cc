// Public-API smoke coverage: the umbrella header compiles and the small
// surface pieces the other suites reach only indirectly behave as
// documented (factories, string renderings, prefix-monotonicity of OPT).

#include <gtest/gtest.h>

#include "objalloc/objalloc.h"

namespace objalloc {
namespace {

TEST(ApiTest, AlgorithmFactoryProducesAllKinds) {
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  for (auto kind : {core::AlgorithmKind::kStatic,
                    core::AlgorithmKind::kDynamic,
                    core::AlgorithmKind::kAdaptive}) {
    auto algorithm = core::CreateAlgorithm(kind, sc);
    ASSERT_NE(algorithm, nullptr);
    EXPECT_EQ(algorithm->name(),
              std::string(core::AlgorithmKindToString(kind)) == "SA"
                  ? "SA"
                  : algorithm->name());
    algorithm->Reset(5, model::ProcessorSet{0, 1});
    core::Decision decision = algorithm->Step(model::Request::Read(0));
    EXPECT_FALSE(decision.execution_set.Empty());
  }
}

TEST(ApiTest, AlgorithmKindNames) {
  EXPECT_STREQ(core::AlgorithmKindToString(core::AlgorithmKind::kStatic),
               "SA");
  EXPECT_STREQ(core::AlgorithmKindToString(core::AlgorithmKind::kDynamic),
               "DA");
  EXPECT_STREQ(core::AlgorithmKindToString(core::AlgorithmKind::kAdaptive),
               "Adaptive");
}

TEST(ApiTest, StringRenderings) {
  EXPECT_EQ(model::Request::Read(3).ToString(), "r3");
  EXPECT_EQ(model::Request::Write(11).ToString(), "w11");
  EXPECT_EQ(model::CostModel::MobileComputing(0.5, 1).ToString(),
            "MC{cio=0, cc=0.5, cd=1}");
  sim::Message msg{sim::MessageType::kInvalidate, 2, 5, 7, 0, 2, 0.0};
  EXPECT_EQ(msg.ToString(), "INVALIDATE 2->5 v=7 origin=2");
  sim::SimMetrics metrics;
  metrics.control_messages = 3;
  EXPECT_NE(metrics.ToString().find("ctrl=3"), std::string::npos);
  cc::Transaction txn{7, 2, {cc::Operation::Read(1), cc::Operation::Write(2)}};
  EXPECT_EQ(txn.ToString(), "T7@2[r1 w2]");
}

TEST(ApiTest, RegionNamesAndSymbols) {
  using analysis::Region;
  EXPECT_STREQ(analysis::RegionToString(Region::kSaSuperior), "SA-superior");
  EXPECT_EQ(analysis::RegionSymbol(Region::kDaSuperior), 'D');
  EXPECT_EQ(analysis::RegionSymbol(Region::kCannotBeTrue), 'x');
}

TEST(ApiTest, OptIsMonotoneInThePrefix) {
  // Request costs are non-negative, so the optimal cost of a prefix never
  // exceeds the optimal cost of the full schedule.
  workload::UniformWorkload uniform(0.7);
  model::CostModel sc = model::CostModel::StationaryComputing(0.3, 0.8);
  model::Schedule schedule = uniform.Generate(6, 60, 13);
  model::ProcessorSet initial{0, 1};
  double previous = 0;
  for (size_t length : {15u, 30u, 45u, 60u}) {
    model::Schedule prefix(schedule.num_processors());
    for (size_t k = 0; k < length; ++k) prefix.Append(schedule[k]);
    double opt = opt::ExactOptCost(sc, prefix, initial);
    EXPECT_GE(opt, previous);
    previous = opt;
  }
}

TEST(ApiTest, MessageTypeClassification) {
  EXPECT_TRUE(sim::IsDataMessage(sim::MessageType::kObjectReply));
  EXPECT_TRUE(sim::IsDataMessage(sim::MessageType::kObjectPropagate));
  EXPECT_FALSE(sim::IsDataMessage(sim::MessageType::kReadRequest));
  EXPECT_FALSE(sim::IsDataMessage(sim::MessageType::kInvalidate));
  EXPECT_FALSE(sim::IsDataMessage(sim::MessageType::kVersionQuery));
  EXPECT_FALSE(sim::IsDataMessage(sim::MessageType::kModeSwitch));
}

TEST(ApiTest, EndToEndThroughTheUmbrellaHeader) {
  // The single-include path exercises one object end to end.
  model::CostModel mc = model::CostModel::MobileComputing(0.5, 1.0);
  auto schedule = model::Schedule::Parse(5, "r3 r3 w1 r3").value();
  core::DynamicAllocation da;
  core::RunResult run = core::RunWithCost(da, mc, schedule, {0, 1});
  double opt = opt::ExactOptCost(mc, schedule, {0, 1});
  EXPECT_GE(run.cost, opt);
  EXPECT_LE(run.cost, analysis::DaCompetitiveFactor(mc) * opt + 1e-9);
}

}  // namespace
}  // namespace objalloc
