// Concurrency stress for the shard-owned worker layer, written to be run
// under ThreadSanitizer (CI's tsan job): the SPSC ring under real
// cross-thread traffic, executor submit/wait/shutdown races, and the
// service-level pipeline (SubmitBatch/WaitBatch) against the synchronous
// path. Functional determinism of the executor path is covered by
// object_service_test; this file exists to put the synchronization itself
// under load.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "objalloc/core/object_service.h"
#include "objalloc/core/shard_executor.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/spsc_queue.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {
namespace {

using util::ScopedThreads;
using util::SpscQueue;
using workload::MultiObjectEvent;
using workload::MultiObjectTrace;

// ----------------------------------------------------------- SpscQueue

// One producer, one consumer, a deliberately tiny ring: every item crosses
// the full/empty boundary many times, so both cache-refresh paths and the
// release/acquire pairs are exercised continuously.
TEST(SpscQueueStressTest, CrossThreadFifoUnderBackpressure) {
  constexpr uint64_t kItems = 200000;
  SpscQueue<uint64_t> queue(4);
  std::thread producer([&queue] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!queue.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  while (expected < kItems) {
    uint64_t value = 0;
    if (queue.TryPop(&value)) {
      ASSERT_EQ(value, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.EmptyApprox());
}

// Many disjoint producer/consumer pairs, one ring each — the executor's
// actual topology (every shard queue has exactly one producer, the
// submitter, and one consumer, the owning worker).
TEST(SpscQueueStressTest, ManyPairsStayIndependent) {
  constexpr int kPairs = 8;
  constexpr uint64_t kItems = 50000;
  std::vector<std::unique_ptr<SpscQueue<uint64_t>>> queues;
  for (int p = 0; p < kPairs; ++p) {
    queues.push_back(std::make_unique<SpscQueue<uint64_t>>(2));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kPairs; ++p) {
    SpscQueue<uint64_t>* queue = queues[p].get();
    // Tag items with the pair id: a cross-queue leak would surface as a
    // mismatched tag, not just a reordering.
    const uint64_t tag = static_cast<uint64_t>(p) << 32;
    threads.emplace_back([queue, tag] {
      for (uint64_t i = 0; i < kItems; ++i) {
        while (!queue->TryPush(tag | i)) std::this_thread::yield();
      }
    });
    threads.emplace_back([queue, tag, &failures] {
      for (uint64_t i = 0; i < kItems; ++i) {
        uint64_t value = 0;
        while (!queue->TryPop(&value)) std::this_thread::yield();
        if (value != (tag | i)) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ----------------------------------------------------------- ShardExecutor

ObjectConfig TestConfig() {
  ObjectConfig config;
  config.initial_scheme = ProcessorSet{0, 1};
  config.algorithm = AlgorithmKind::kDynamic;
  return config;
}

// Builds shards with `per_shard` objects each, all slots registered.
std::vector<ObjectShard> MakeShards(size_t num_shards, int per_shard) {
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  std::vector<ObjectShard> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    ObjectShard shard(8, sc);
    for (int i = 0; i < per_shard; ++i) {
      EXPECT_TRUE(
          shard.AddObject(static_cast<ObjectId>(s * 1000 + i), TestConfig())
              .ok());
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

// Deterministic request stream without an RNG: cycles kinds & processors.
model::Request NthRequest(uint64_t n) {
  return n % 3 == 0 ? model::Request::Write(static_cast<int>(n % 8))
                    : model::Request::Read(static_cast<int>(n % 8));
}

// Drives the executor directly, pipelining `depth` contexts back to back
// for many rounds, and checks every cost against an identical serial run.
// Workers keep shard state across batches, so any lost task, duplicated
// task, or reordering shows up as a cost divergence downstream.
TEST(ShardExecutorStressTest, PipelinedRoundsMatchSerialServe) {
  constexpr size_t kShards = 8;
  constexpr int kPerShard = 4;
  constexpr int kRounds = 400;
  constexpr uint32_t kOpsPerShard = 3;

  std::vector<ObjectShard> serial = MakeShards(kShards, kPerShard);
  std::vector<ObjectShard> shards = MakeShards(kShards, kPerShard);
  ShardExecutor executor(shards.data(), shards.size(), 4);
  ASSERT_GE(executor.depth(), size_t{2});

  const uint32_t batch_events =
      static_cast<uint32_t>(kShards) * kOpsPerShard;
  std::vector<std::vector<double>> costs(executor.depth());
  std::vector<std::vector<double>> expected(executor.depth());
  auto fill = [&](BatchContext& context, std::vector<double>* out,
                  int round) {
    out->assign(batch_events, 0.0);
    context.costs = out->data();
    uint32_t index = 0;
    for (size_t s = 0; s < kShards; ++s) {
      for (uint32_t k = 0; k < kOpsPerShard; ++k) {
        const uint64_t n = static_cast<uint64_t>(round) * batch_events + index;
        context.ops[s].push_back(
            ShardOp{index, (index + static_cast<uint32_t>(round)) % kPerShard,
                    NthRequest(n)});
        ++index;
      }
    }
  };

  for (int round = 0; round < kRounds; ++round) {
    const uint32_t slot = executor.Acquire();
    fill(executor.context(slot), &costs[slot], round);

    // Serial reference for the same ops, against the twin shard set.
    expected[slot].assign(batch_events, 0.0);
    for (size_t s = 0; s < kShards; ++s) {
      model::CostBreakdown delta;
      for (const ShardOp& op : executor.context(slot).ops[s]) {
        expected[slot][op.index] =
            serial[s].ServeSlot(op.slot, op.request, &delta);
      }
    }
    executor.Submit(slot);
    // No Wait here: up to `depth` rounds ride the pipeline concurrently;
    // Acquire blocks on the oldest context when the ring is full.
  }
  executor.DrainAll();
  for (size_t c = 0; c < executor.depth(); ++c) {
    EXPECT_EQ(costs[c], expected[c]) << "context " << c;
  }
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(shards[s].TotalBreakdown(), serial[s].TotalBreakdown())
        << "shard " << s;
    EXPECT_EQ(shards[s].TotalRequests(), serial[s].TotalRequests())
        << "shard " << s;
  }
}

// Construction/destruction races: executors torn down idle, and torn down
// with a just-submitted batch still on the rings (the destructor must
// drain, then stop, then join — never strand a task or a worker).
TEST(ShardExecutorStressTest, ShutdownRacesSubmittedWork) {
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<ObjectShard> shards = MakeShards(4, 2);
    std::vector<double> costs(8, 0.0);
    ShardExecutor executor(shards.data(), shards.size(), 4);
    const uint32_t slot = executor.Acquire();
    BatchContext& context = executor.context(slot);
    context.costs = costs.data();
    uint32_t index = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      context.ops[s].push_back(ShardOp{index, index % 2, NthRequest(index)});
      ++index;
      context.ops[s].push_back(ShardOp{index, index % 2, NthRequest(index)});
      ++index;
    }
    executor.Submit(slot);
    // Destructor runs with the batch possibly still in flight.
  }
  // Idle teardown: never submitted anything.
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<ObjectShard> shards = MakeShards(4, 2);
    ShardExecutor idle(shards.data(), shards.size(), 3);
  }
}

// ----------------------------------------------------------- Service pipeline

// The full stack under threads: pipelined SubmitBatch/WaitBatch against the
// synchronous ServeBatch path over the same trace must agree on every
// aggregate. Small batches maximize handoff frequency (the racy part).
TEST(ServicePipelineStressTest, PipelinedEqualsSynchronous) {
  workload::MultiObjectOptions options;
  options.num_processors = 8;
  options.num_objects = 64;
  options.length = 20000;
  const MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, 77);
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  constexpr size_t kBatch = 64;

  ScopedThreads threads(4);
  ServiceOptions service_options;
  service_options.num_shards = 16;

  ObjectService sync_service(trace.num_processors, sc, service_options);
  ObjectService pipe_service(trace.num_processors, sc, service_options);
  for (int id = 0; id < trace.num_objects; ++id) {
    ASSERT_TRUE(sync_service.AddObject(id, TestConfig()).ok());
    ASSERT_TRUE(pipe_service.AddObject(id, TestConfig()).ok());
  }

  std::span<const MultiObjectEvent> all(trace.events);
  BatchResult results[2];
  BatchTicket tickets[2];
  int cur = 0;
  double sync_cost = 0;
  double pipe_cost = 0;
  for (size_t pos = 0; pos < all.size(); pos += kBatch) {
    auto span = all.subspan(pos, std::min(kBatch, all.size() - pos));
    auto sync_batch = sync_service.ServeBatch(span);
    ASSERT_TRUE(sync_batch.ok());
    sync_cost += sync_batch->cost;

    if (!tickets[cur].completed) {
      ASSERT_TRUE(pipe_service.WaitBatch(&tickets[cur]).ok());
      pipe_cost += results[cur].cost;
    }
    ASSERT_TRUE(
        pipe_service.SubmitBatch(span, &results[cur], &tickets[cur]).ok());
    if (tickets[cur].completed) {
      pipe_cost += results[cur].cost;
    } else {
      cur ^= 1;
    }
  }
  for (int i = 0; i < 2; ++i) {
    if (!tickets[i].completed) {
      ASSERT_TRUE(pipe_service.WaitBatch(&tickets[i]).ok());
      pipe_cost += results[i].cost;
    }
  }

  EXPECT_EQ(pipe_service.TotalBreakdown(), sync_service.TotalBreakdown());
  EXPECT_EQ(pipe_service.TotalRequests(), sync_service.TotalRequests());
  EXPECT_DOUBLE_EQ(pipe_cost, sync_cost);
  for (int id = 0; id < trace.num_objects; ++id) {
    EXPECT_EQ(pipe_service.StatsFor(id)->scheme.mask(),
              sync_service.StatsFor(id)->scheme.mask())
        << "object " << id;
  }

  // Waiting an already-completed (stale) ticket is a harmless no-op.
  BatchTicket stale = tickets[0];
  EXPECT_TRUE(pipe_service.WaitBatch(&stale).ok());
  EXPECT_TRUE(pipe_service.DrainBatches().ok());
}

}  // namespace
}  // namespace objalloc::core
