// Transactional store: the full pipeline the paper's model sits inside.
// Client transactions (read-modify-write mixes over many objects) are
// serialized by strict two-phase locking — the "concurrency-control
// mechanism" §3.1 assumes — and the resulting per-object request schedules
// are admitted as one batch to the sharded ObjectService, which executes
// them under static vs dynamic allocation with the offline optimum as the
// yardstick for the hottest object.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "objalloc/cc/serializer.h"
#include "objalloc/core/object_service.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/rng.h"

int main() {
  using namespace objalloc;

  const int kSites = 8;
  const int kObjects = 20;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  // A batch of order-entry style transactions: read a few reference
  // objects, update one or two. Popular objects are shared across sites.
  util::Rng rng(42);
  std::vector<cc::Transaction> transactions;
  for (cc::TransactionId id = 1; id <= 400; ++id) {
    cc::Transaction txn;
    txn.id = id;
    txn.processor = static_cast<model::ProcessorId>(rng.NextBounded(kSites));
    util::ZipfSampler popularity(kObjects, 0.9);
    size_t reads = 1 + rng.NextBounded(3);
    for (size_t k = 0; k < reads; ++k) {
      txn.operations.push_back(
          cc::Operation::Read(static_cast<int64_t>(popularity.Sample(rng))));
    }
    txn.operations.push_back(
        cc::Operation::Write(static_cast<int64_t>(popularity.Sample(rng))));
    transactions.push_back(std::move(txn));
  }

  cc::Serializer serializer(kSites);
  cc::SerializerResult serialized = serializer.Run(transactions, 7);
  std::printf("serialized %zu transactions (%lld deadlock aborts/retries) "
              "into %zu object schedules\n\n",
              serialized.committed,
              static_cast<long long>(serialized.deadlock_aborts),
              serialized.schedules.size());

  // Flatten the per-object schedules into one multi-object batch. Only the
  // per-object order matters to the allocation layer (objects are
  // independent), so concatenation is as good as any interleaving.
  std::vector<workload::MultiObjectEvent> events;
  for (const auto& [object, schedule] : serialized.schedules) {
    for (const auto& request : schedule.requests()) {
      events.push_back(workload::MultiObjectEvent{object, request});
    }
  }

  auto run = [&](core::AlgorithmKind kind) {
    core::ServiceOptions options;
    options.num_shards = 4;
    core::ObjectService service(kSites, sc, options);
    core::ObjectConfig config;
    config.initial_scheme = model::ProcessorSet{0, 1};
    config.algorithm = kind;
    for (const auto& [object, schedule] : serialized.schedules) {
      OBJALLOC_CHECK(service.AddObject(object, config).ok());
    }
    auto batch = service.ServeBatch(events);
    OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
    return batch->cost;
  };

  double sa_cost = run(core::AlgorithmKind::kStatic);
  double da_cost = run(core::AlgorithmKind::kDynamic);
  std::printf("%-24s %12s\n", "allocation policy", "total cost");
  std::printf("%-24s %12.1f\n", "SA (read-one-write-all)", sa_cost);
  std::printf("%-24s %12.1f\n", "DA (dynamic)", da_cost);

  // Yardstick for the hottest object.
  const auto hottest = std::max_element(
      serialized.schedules.begin(), serialized.schedules.end(),
      [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  double opt = opt::ExactOptCost(sc, hottest->second,
                                 model::ProcessorSet{0, 1});
  std::printf("\nhottest object %lld: %zu requests, OPT cost %.1f\n",
              static_cast<long long>(hottest->first),
              hottest->second.size(), opt);
  return 0;
}
