// Trace replay tool: run any algorithm over a schedule trace file and print
// the cost report — the command-line face of the library.
//
//   trace_replay <trace-file> [--algorithm sa|da|counter|quorum|adaptive]
//                [--cc 0.25] [--cd 1.0] [--mobile] [--t 2] [--opt]
//
// With --opt (small systems only) the exact offline optimum and the
// resulting competitive ratio are printed as well. Without a trace file, a
// demo trace is generated and its path printed, so the quickstart works out
// of the box.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/counter_replication.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/quorum_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/workload/trace_io.h"
#include "objalloc/workload/uniform.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace objalloc;

  std::string path;
  std::string algorithm_name = "da";
  double cc = 0.25, cd = 1.0;
  bool mobile = false, run_opt = false;
  int t = 2;

  for (int arg = 1; arg < argc; ++arg) {
    std::string flag = argv[arg];
    auto next_value = [&]() -> const char* {
      return arg + 1 < argc ? argv[++arg] : nullptr;
    };
    if (flag == "--algorithm") {
      const char* value = next_value();
      if (value == nullptr) return Fail("--algorithm needs a value");
      algorithm_name = value;
    } else if (flag == "--cc") {
      const char* value = next_value();
      if (value == nullptr) return Fail("--cc needs a value");
      cc = std::atof(value);
    } else if (flag == "--cd") {
      const char* value = next_value();
      if (value == nullptr) return Fail("--cd needs a value");
      cd = std::atof(value);
    } else if (flag == "--t") {
      const char* value = next_value();
      if (value == nullptr) return Fail("--t needs a value");
      t = std::atoi(value);
    } else if (flag == "--mobile") {
      mobile = true;
    } else if (flag == "--opt") {
      run_opt = true;
    } else if (flag.rfind("--", 0) == 0) {
      return Fail("unknown flag " + flag);
    } else {
      path = flag;
    }
  }

  if (path.empty()) {
    // Demo mode: generate and replay a sample trace.
    path = "/tmp/objalloc_demo_trace.txt";
    workload::UniformWorkload uniform(0.75);
    util::Status status =
        workload::WriteTraceFile(uniform.Generate(8, 300, 1), path);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("(no trace given: wrote a demo trace to %s)\n\n",
                path.c_str());
  }

  auto trace = workload::ReadTraceFile(path);
  if (!trace.ok()) return Fail(trace.status().ToString());
  const model::Schedule& schedule = *trace;
  if (t < 1 || t > schedule.num_processors()) return Fail("bad t");

  model::CostModel cost_model = mobile
                                    ? model::CostModel::MobileComputing(cc, cd)
                                    : model::CostModel::StationaryComputing(
                                          cc, cd);
  util::Status valid = cost_model.Validate();
  if (!valid.ok()) return Fail(valid.ToString());

  std::unique_ptr<core::DomAlgorithm> algorithm;
  if (algorithm_name == "sa") {
    algorithm = std::make_unique<core::StaticAllocation>();
  } else if (algorithm_name == "da") {
    algorithm = std::make_unique<core::DynamicAllocation>();
  } else if (algorithm_name == "counter") {
    algorithm = std::make_unique<core::CounterReplication>(
        core::CounterReplicationOptions{});
  } else if (algorithm_name == "quorum") {
    algorithm = std::make_unique<core::QuorumAllocation>(
        core::QuorumAllocationOptions{});
  } else if (algorithm_name == "adaptive") {
    algorithm = std::make_unique<core::AdaptiveAllocation>(
        cost_model, core::AdaptiveOptions{});
  } else {
    return Fail("unknown algorithm " + algorithm_name);
  }

  model::ProcessorSet initial = model::ProcessorSet::FirstN(t);
  core::RunResult result =
      core::RunWithCost(*algorithm, cost_model, schedule, initial);

  std::printf("trace      : %s\n", path.c_str());
  std::printf("requests   : %zu (%zu reads, %zu writes) over %d processors\n",
              schedule.size(), schedule.CountReads(), schedule.CountWrites(),
              schedule.num_processors());
  std::printf("cost model : %s\n", cost_model.ToString().c_str());
  std::printf("algorithm  : %s (t = %d)\n\n", algorithm->name().c_str(), t);
  std::printf("total cost : %.3f\n", result.cost);
  std::printf("breakdown  : %s\n", result.breakdown.ToString().c_str());
  std::printf("final scheme: %s\n",
              result.allocation.FinalScheme().ToString().c_str());

  if (run_opt) {
    if (schedule.num_processors() > opt::kMaxExactOptProcessors) {
      return Fail("--opt is limited to small systems (exact DP)");
    }
    double opt_cost = opt::ExactOptCost(cost_model, schedule, initial);
    std::printf("OPT cost   : %.3f\n", opt_cost);
    if (opt_cost > 0) {
      std::printf("ratio      : %.4f\n", result.cost / opt_cost);
    }
  }
  return 0;
}
