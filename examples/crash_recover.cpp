// Crash & recover quickstart (DESIGN.md §10): a serve-or-recover binary
// built to be killed.
//
//   crash_recover --dir=/tmp/state --events=100000 [--kill_at=37000]
//                 [--interval=20000] [--delta] [--fsck]
//                 [--expect_control=N --expect_data=N --expect_io=N
//                  --expect_crc=N]
//
// --fsck scrubs the directory instead of serving: every file is walked
// record by record against its CRCs and a read-only recovery is dry-run.
// Exit 0 = clean, 1 = unrecoverable, 2 = recoverable with warnings (torn
// tail, snapshot fallback, quarantined generations, stray files).
//
// --delta turns on delta checkpointing (chains of dirty-page snapshots
// between full ones, DESIGN.md §13); recovery then restores the newest
// full snapshot plus its delta chain before replaying the WAL tail.
//
// On a fresh directory it registers 512 objects, arms durability, and
// serves a deterministic trace; on a directory holding durable state it
// *recovers* — prints the fsck-style report — and resumes serving exactly
// where the log left off (the replayed request count names the position in
// the deterministic trace). --kill_at=K dies via SIGKILL mid-stream after
// K total events, simulating a hard crash; run again to pick up the tail.
// When the full trace completes, the final fingerprint is printed and
// checked against the --expect_* goldens (the same values CI pins the
// plain engine to — recovery must land on the identical state).
//
// CI drives this in a loop: kill at random points, recover, repeat, then
// finish and compare the fingerprint. See .github/workflows/ci.yml.
//
// SIGKILL is the crash; SIGTERM is the *graceful* path — the same
// net::DrainSignal latch the TCP server uses (DESIGN.md §15). On SIGTERM
// the serve loop finishes its batch, syncs durable state, and exits 0, so
// the next run recovers with a clean tail instead of a torn one.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>

#include "objalloc/core/object_service.h"
#include "objalloc/net/signal_drain.h"
#include "objalloc/util/crc32.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  size_t events = 100000;
  long long kill_at = -1;
  size_t interval = 20000;
  size_t batch = 256;
  bool fsck = false;
  bool delta = false;
  long long expect_control = -1, expect_data = -1, expect_io = -1,
            expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = static_cast<std::decay_t<decltype(*out)>>(
          std::atoll(arg.substr(n).c_str()));
      return true;
    };
    if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (arg == "--fsck") {
      fsck = true;
    } else if (arg == "--delta") {
      delta = true;
    } else if (int_flag("--events=", &events) ||
               int_flag("--kill_at=", &kill_at) ||
               int_flag("--interval=", &interval) ||
               int_flag("--batch=", &batch) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      return Fail("unknown argument: " + arg);
    }
  }
  if (dir.empty()) return Fail("--dir=<durability directory> is required");

  if (fsck) {
    // Deep scrub: per-file CRC-walk verdicts + a read-only recovery dry
    // run. Exit codes are script-friendly:
    //   0  clean — every file verified, recovery needs no fallback
    //   1  unrecoverable — Recover would fail on this directory
    //   2  recoverable with warnings — torn tail, fallback, quarantined or
    //      stray files; data is safe but something chewed the directory
    core::ScrubReport report;
    util::Status status = core::ObjectService::Scrub(dir, &report);
    std::printf("%s\n", report.ToString().c_str());
    if (!report.recoverable) {
      std::fprintf(stderr, "fsck: %s\n", status.ToString().c_str());
      return 1;
    }
    return report.clean ? 0 : 2;
  }

  // The same deterministic trace as bench/service_scaling, so the final
  // fingerprint matches the committed perf-smoke goldens.
  const int objects = 512, processors = 16;
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, 0x5eed5ca1e);

  core::DurabilityOptions durability;
  durability.checkpoint_interval_events = interval;
  if (delta) durability.delta_chain_limit = 4;

  core::RecoveryReport report;
  auto recovered = core::ObjectService::Recover(dir, durability, &report);
  size_t position = 0;
  core::ObjectService service(processors,
                              model::CostModel::StationaryComputing(0.25, 1.0));
  if (recovered.ok()) {
    service = std::move(*recovered);
    // Plain serving: one request per event, so the lifetime request count
    // IS the position in the deterministic trace.
    position = static_cast<size_t>(service.TotalRequests());
    std::printf("recovered at event %zu/%zu\n%s\n", position, events,
                report.ToString().c_str());
  } else if (recovered.status().code() == util::StatusCode::kNotFound) {
    service.ReserveObjects(static_cast<size_t>(objects));
    for (int id = 0; id < objects; ++id) {
      util::Status status = service.AddObject(id, ServiceConfig());
      if (!status.ok()) return Fail(status.ToString());
    }
    util::Status status = service.EnableDurability(dir, durability);
    if (!status.ok()) return Fail(status.ToString());
    std::printf("fresh start: %d objects registered, durability on %s\n",
                objects, dir.c_str());
  } else {
    return Fail("recovery failed: " + recovered.status().ToString());
  }

  net::DrainSignal::Install(SIGTERM);
  const std::span<const workload::MultiObjectEvent> all(trace.events);
  while (position < all.size()) {
    if (net::DrainSignal::Requested()) {
      util::Status synced = service.SyncDurable();
      if (!synced.ok()) return Fail(synced.ToString());
      std::printf("drained at event %zu/%zu: durable state synced, "
                  "exiting cleanly\n",
                  position, events);
      return 0;
    }
    if (kill_at >= 0 && position >= static_cast<size_t>(kill_at)) {
      std::printf("simulating crash at event %zu\n", position);
      std::fflush(stdout);
      raise(SIGKILL);  // no destructors, no syncs — a real crash
    }
    const size_t n = std::min(batch, all.size() - position);
    auto result = service.ServeBatch(all.subspan(position, n));
    if (!result.ok()) return Fail(result.status().ToString());
    position += n;
  }

  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  const model::CostBreakdown total = service.TotalBreakdown();
  std::printf("complete: %zu events  control=%lld data=%lld io=%lld "
              "scheme_crc=%u\n",
              events, static_cast<long long>(total.control_messages),
              static_cast<long long>(total.data_messages),
              static_cast<long long>(total.io_ops), crc);
  auto check = [&](const char* name, long long expect, long long got) {
    if (expect >= 0 && expect != got) {
      std::fprintf(stderr, "GOLDEN MISMATCH: %s expected %lld, got %lld\n",
                   name, expect, got);
      std::exit(1);
    }
  };
  check("control", expect_control, total.control_messages);
  check("data", expect_data, total.data_messages);
  check("io", expect_io, total.io_ops);
  check("scheme_crc", expect_crc, static_cast<long long>(crc));
  return 0;
}
