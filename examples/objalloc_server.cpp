// Serving over TCP quickstart (DESIGN.md §15): an ObjectService behind the
// net::Server front-end, run as a daemon you can talk to with net::Client
// (or kill with SIGTERM and watch drain cleanly — exit 0, every admitted
// request answered).
//
//   objalloc_server --port=7421 [--processors=16] [--objects=512]
//                   [--shards=4] [--dir=/tmp/state]
//                   [--max_inflight=16384] [--deadline_ms=0]
//
// With --objects=N the object space [0, N) is pre-registered on processors
// {0, 1} under the dynamic allocation algorithm, so clients can serve
// immediately; either way clients may register more over the wire. With
// --dir the engine arms durability there first (recovering whatever a
// previous run left), and the SIGTERM drain syncs the WAL before exit —
// the same latch examples/crash_recover polls.
//
// Overload behavior is the tentpole, not an afterthought: admission
// budgets shed excess with kOverloaded, engine backpressure (shard-queue
// depth, WAL backlog) sheds before queues grow unbounded, and per-request
// deadlines expire waiting work with kTimeout. Nothing is ever dropped
// silently.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "objalloc/core/object_service.h"
#include "objalloc/net/server.h"
#include "objalloc/util/logging.h"

namespace {

using namespace objalloc;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 0;
  int processors = 16;
  int64_t objects = 0;
  int shards = 4;
  std::string dir;
  size_t max_inflight = 16384;
  uint32_t deadline_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      *out = static_cast<std::decay_t<decltype(*out)>>(
          std::atoll(arg.substr(n).c_str()));
      return true;
    };
    if (arg.rfind("--dir=", 0) == 0) {
      dir = arg.substr(6);
    } else if (int_flag("--port=", &port) ||
               int_flag("--processors=", &processors) ||
               int_flag("--objects=", &objects) ||
               int_flag("--shards=", &shards) ||
               int_flag("--max_inflight=", &max_inflight) ||
               int_flag("--deadline_ms=", &deadline_ms)) {
    } else {
      return Fail("unknown argument: " + arg);
    }
  }

  core::ServiceOptions service_options;
  service_options.num_shards = static_cast<size_t>(shards);
  core::ObjectService service(processors,
                              model::CostModel::StationaryComputing(0.25, 1.0),
                              service_options);
  if (objects > 0) {
    core::ObjectConfig config;
    config.initial_scheme = model::ProcessorSet{0, 1};
    config.algorithm = core::AlgorithmKind::kDynamic;
    service.ReserveObjects(static_cast<size_t>(objects));
    for (int64_t id = 0; id < objects; ++id) {
      util::Status status = service.AddObject(id, config);
      if (!status.ok()) return Fail(status.ToString());
    }
  }
  if (!dir.empty()) {
    core::DurabilityOptions durability;
    util::Status status = service.EnableDurability(dir, durability);
    if (!status.ok()) return Fail(status.ToString());
  }

  net::ServerOptions options;
  options.port = port;
  options.max_inflight_global = max_inflight;
  options.default_deadline_ms = deadline_ms;
  options.idle_timeout_ms = 60000;
  options.drain_on_sigterm = true;
  net::Server server(&service, options);
  util::Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::printf("objalloc_server: %d processors, %lld objects, listening on "
              "port %u (SIGTERM drains)\n",
              processors, static_cast<long long>(objects),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Blocks until SIGTERM (or RequestDrain): stop accepting, answer every
  // admitted request, sync durable state, then return.
  server.Run();

  const net::ServerStats stats = server.Stats();
  std::printf("drained: %llu admitted, %llu shed overloaded, %llu timed "
              "out, %llu protocol errors\n",
              static_cast<unsigned long long>(stats.admitted_events),
              static_cast<unsigned long long>(stats.shed_overloaded),
              static_cast<unsigned long long>(stats.shed_timeout),
              static_cast<unsigned long long>(stats.protocol_errors));
  return 0;
}
