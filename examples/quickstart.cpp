// Quickstart: the library in one file.
//
//  1. Pick a cost model (stationary or mobile computing).
//  2. Describe a schedule of read/write requests.
//  3. Run the static (SA) and dynamic (DA) allocation algorithms.
//  4. Compare against the optimal offline allocation (OPT).
//
// Reproduces the paper's §1.3 motivating example along the way.

#include <cstdio>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"
#include "objalloc/opt/exact_opt.h"

int main() {
  using namespace objalloc;

  // Stationary computing: I/O is the unit cost; a control message costs
  // 0.5 and a data (object transfer) message costs 1.5 units.
  model::CostModel cost_model = model::CostModel::StationaryComputing(0.5, 1.5);

  // A system of 5 processors; the object initially lives at {0, 1}
  // (so the availability threshold is t = 2).
  const int kProcessors = 5;
  const model::ProcessorSet kInitialScheme{0, 1};

  // The paper's §1.3 example, embedded in the larger system: processor 1
  // reads twice, then processor 2 reads, writes, and reads three times.
  model::Schedule schedule =
      model::Schedule::Parse(kProcessors, "r1 r1 r2 w2 r2 r2 r2").value();

  std::printf("cost model : %s\n", cost_model.ToString().c_str());
  std::printf("schedule   : %s\n", schedule.ToString().c_str());
  std::printf("initial    : %s (t = %d)\n\n", kInitialScheme.ToString().c_str(),
              kInitialScheme.Size());

  // Run the two online algorithms.
  core::StaticAllocation sa;
  core::DynamicAllocation da;
  core::RunResult sa_run =
      core::RunWithCost(sa, cost_model, schedule, kInitialScheme);
  core::RunResult da_run =
      core::RunWithCost(da, cost_model, schedule, kInitialScheme);

  // And the offline optimum, with the allocation schedule it chose.
  double opt_cost = opt::ExactOptCost(cost_model, schedule, kInitialScheme);
  model::AllocationSchedule opt_schedule =
      opt::ExactOptSchedule(cost_model, schedule, kInitialScheme);

  std::printf("SA  cost %7.3f   %s\n", sa_run.cost,
              sa_run.breakdown.ToString().c_str());
  std::printf("DA  cost %7.3f   %s\n", da_run.cost,
              da_run.breakdown.ToString().c_str());
  std::printf("OPT cost %7.3f   (offline yardstick)\n\n", opt_cost);

  std::printf("DA allocation : %s\n", da_run.allocation.ToString().c_str());
  std::printf("OPT allocation: %s\n\n", opt_schedule.ToString().c_str());

  std::printf("competitive ratios: SA %.3f, DA %.3f\n",
              sa_run.cost / opt_cost, da_run.cost / opt_cost);
  std::printf(
      "(dynamic allocation wins here: after w2, processor 2's reads are "
      "local)\n");
  return 0;
}
