// Directory service: thousands of user-location records (the paper's §1.1
// mobile-communication motivation, "an identification will be associated
// with a user, rather than with a physical location"), each an independent
// replicated object served through the sharded, batched ObjectService.
// Heavily called users are read from everywhere; their location objects
// benefit from dynamic allocation, while write-churned records do not
// suffer under it.
//
// The event stream is never materialized: a GeneratorEventSource feeds
// ServeStream, so the same program shape handles a 20k-event demo and an
// unbounded production feed in the same bounded memory.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/workload/event_source.h"

int main() {
  using namespace objalloc;

  const int kCells = 12;     // base stations / location servers
  const int kUsers = 200;    // tracked users = objects
  const size_t kEvents = 20000;
  model::CostModel mc = model::CostModel::MobileComputing(0.5, 1.0);

  workload::MultiObjectOptions options;
  options.num_processors = kCells;
  options.num_objects = kUsers;
  options.length = kEvents;
  options.popularity_skew = 1.0;      // a few celebrities get most calls
  options.min_read_fraction = 0.55;   // movers: mostly location updates
  options.max_read_fraction = 0.98;   // celebrities: mostly lookups

  auto run = [&](core::AlgorithmKind kind) {
    core::ServiceOptions service_options;
    service_options.num_shards = 8;
    core::ObjectService service(kCells, mc, service_options);
    service.ReserveObjects(kUsers);
    core::ObjectConfig config;
    config.initial_scheme = model::ProcessorSet{0, 1};  // two home servers
    config.algorithm = kind;
    for (int user = 0; user < kUsers; ++user) {
      auto status = service.AddObject(user, config);
      OBJALLOC_CHECK(status.ok()) << status.ToString();
    }
    workload::GeneratorEventSource source(options, /*seed=*/20260704);
    auto result = service.ServeStream(source, /*batch_size=*/1024);
    OBJALLOC_CHECK(result.ok()) << result.status().ToString();
    return service;
  };

  core::ObjectService sa = run(core::AlgorithmKind::kStatic);
  core::ObjectService da = run(core::AlgorithmKind::kDynamic);

  std::printf("Location directory, %d cells, %d users, %zu events (%s)\n",
              kCells, kUsers, kEvents, mc.ToString().c_str());
  std::printf("served via ObjectService, %d shards, streaming batches of "
              "1024\n\n",
              da.num_shards());
  std::printf("%-28s %14s %14s\n", "policy", "wireless msgs",
              "total tariff");
  auto sa_traffic = sa.TotalBreakdown();
  auto da_traffic = da.TotalBreakdown();
  std::printf("%-28s %14lld %14.1f\n", "SA (fixed home servers)",
              static_cast<long long>(sa_traffic.control_messages +
                                     sa_traffic.data_messages),
              sa.TotalCost());
  std::printf("%-28s %14lld %14.1f\n", "DA (caching + invalidation)",
              static_cast<long long>(da_traffic.control_messages +
                                     da_traffic.data_messages),
              da.TotalCost());

  // Which users gained the most from dynamic allocation?
  std::vector<std::pair<double, int>> gains;
  for (int user = 0; user < kUsers; ++user) {
    auto sa_stats = sa.StatsFor(user);
    auto da_stats = da.StatsFor(user);
    if (sa_stats->requests == 0) continue;
    gains.push_back({sa_stats->breakdown.Cost(mc) -
                         da_stats->breakdown.Cost(mc),
                     user});
  }
  std::sort(gains.rbegin(), gains.rend());
  std::printf("\nbiggest per-user tariff savings from DA:\n");
  for (size_t k = 0; k < 5 && k < gains.size(); ++k) {
    auto stats = da.StatsFor(gains[k].second);
    std::printf("  user %3d: saved %7.1f over %lld requests (replicas now at "
                "%s)\n",
                gains[k].second, gains[k].first,
                static_cast<long long>(stats->requests),
                stats->scheme.ToString().c_str());
  }
  std::printf("\nDA wins on lookup-heavy celebrity records and ties on "
              "update-heavy movers\n(Figure 2: in mobile computing DA is "
              "never the wrong choice).\n");
  return 0;
}
