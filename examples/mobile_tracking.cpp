// Mobile computing scenario (the paper's motivating application, §1.1 and
// §2): the replicated object is a mobile user's *location record*. The
// user's handset updates it as the user moves (writes); calls to the user
// trigger location lookups from other cells (reads). Under wireless
// charging the I/O cost is irrelevant — only messages cost money — which is
// the MC cost model (cio = 0).
//
// The paper's natural choice: t = 2 with F = {base station}, so every
// movement update is written locally on the handset and propagated to the
// base station, which invalidates the cached copies at the other cells.
//
// The run shows Figure 2's conclusion: SA's cost ratio against OPT grows
// with the call volume, while DA stays within its (2 + 3cc/cd) factor.

#include <cstdio>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/model/schedule.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/rng.h"

namespace {

// One day of traffic: the handset (processor `kHandset`) occasionally
// moves; calls arrive via random cells that must read the latest location.
objalloc::model::Schedule MakeDay(int processors, int handset, size_t events,
                                  double move_probability, uint64_t seed) {
  objalloc::util::Rng rng(seed);
  objalloc::model::Schedule schedule(processors);
  for (size_t i = 0; i < events; ++i) {
    if (rng.NextBernoulli(move_probability)) {
      schedule.AppendWrite(handset);  // the user moved
    } else {
      // An incoming call: some cell looks the user up.
      auto cell = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(processors)));
      schedule.AppendRead(cell);
    }
  }
  return schedule;
}

}  // namespace

int main() {
  using namespace objalloc;

  // Processor 0: base station (the core set F). Processor 1: the handset.
  // Processors 2..7: other cells that receive calls for the user.
  const int kProcessors = 8;
  const int kHandset = 1;
  const model::ProcessorSet kInitial{0, 1};  // F = {0}, p = 1

  // Wireless tariffs: a control message costs 1 unit, a location record
  // transfer 2 units; disk I/O is free on-device (MC model).
  model::CostModel mc = model::CostModel::MobileComputing(1.0, 2.0);

  std::printf("Mobile location tracking (MC model, %s)\n",
              mc.ToString().c_str());
  std::printf("base station = processor 0 (F), handset = processor %d (p)\n\n",
              kHandset);
  std::printf("%-10s %-10s %-10s %-10s %-8s %-8s\n", "calls/day", "SA-cost",
              "DA-cost", "OPT-cost", "SA/OPT", "DA/OPT");

  for (size_t events : {50u, 100u, 200u, 400u}) {
    model::Schedule day =
        MakeDay(kProcessors, kHandset, events, /*move_probability=*/0.15,
                /*seed=*/events);
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    double sa_cost = core::RunWithCost(sa, mc, day, kInitial).cost;
    double da_cost = core::RunWithCost(da, mc, day, kInitial).cost;
    double opt_cost = opt::ExactOptCost(mc, day, kInitial);
    std::printf("%-10zu %-10.1f %-10.1f %-10.1f %-8.3f %-8.3f\n", events,
                sa_cost, da_cost, opt_cost, sa_cost / opt_cost,
                da_cost / opt_cost);
  }

  std::printf(
      "\nDA caches the location at calling cells and invalidates them on "
      "movement;\nSA re-fetches on every call. In mobile computing DA is "
      "strictly superior\n(Figure 2): its ratio stays bounded while SA's "
      "grows with call volume.\n");
  return 0;
}
