// Electronic publishing scenario (§1.1): a document co-authored and read
// from many sites, under the stationary-computing cost model. The editorial
// "hot set" shifts over time (different chapters, different teams), which is
// exactly the *regular* pattern of §5.1 where a convergent (adaptive)
// allocator can track the optimum — while DA keeps its worst-case guarantee
// and SA pays remote costs for every reader outside its fixed scheme.

#include <cstdio>

#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/uniform.h"

int main() {
  using namespace objalloc;

  const int kSites = 16;  // too many for the exact OPT: use the brackets
  const model::ProcessorSet kInitial{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.2, 1.0);

  std::printf("Electronic publishing (SC model, %s), %d sites\n\n",
              sc.ToString().c_str(), kSites);

  struct Scenario {
    const char* name;
    model::Schedule schedule;
  };
  workload::RegimeWorkload editorial(/*regime_length=*/250, /*hot_set_size=*/3,
                                     /*read_ratio=*/0.85);
  workload::UniformWorkload chaotic(/*read_ratio=*/0.85);
  Scenario scenarios[] = {
      {"editorial shifts (regular)", editorial.Generate(kSites, 1000, 7)},
      {"world-wide chaos (irregular)", chaotic.Generate(kSites, 1000, 7)},
  };

  for (const Scenario& scenario : scenarios) {
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    core::AdaptiveAllocation adaptive(sc, core::AdaptiveOptions{});

    double sa_cost =
        core::RunWithCost(sa, sc, scenario.schedule, kInitial).cost;
    double da_cost =
        core::RunWithCost(da, sc, scenario.schedule, kInitial).cost;
    double adaptive_cost =
        core::RunWithCost(adaptive, sc, scenario.schedule, kInitial).cost;
    // OPT is intractable at 16 sites; bracket it.
    double lower = opt::RelaxationLowerBound(sc, scenario.schedule, kInitial);
    double upper = opt::IntervalOptCost(sc, scenario.schedule, kInitial);

    std::printf("workload: %s\n", scenario.name);
    std::printf("  SA        %9.1f\n", sa_cost);
    std::printf("  DA        %9.1f\n", da_cost);
    std::printf("  Adaptive  %9.1f   (convergent extension, cf. §5.1)\n",
                adaptive_cost);
    std::printf("  OPT in    [%7.1f, %7.1f]   (relaxation / interval bounds)\n\n",
                lower, upper);
  }

  std::printf(
      "On the regular editorial pattern the adaptive allocator converges to\n"
      "each regime's hot set; on chaotic traffic DA's competitive guarantee\n"
      "is what protects you (§5.1: neither dominates the other).\n");
  return 0;
}
