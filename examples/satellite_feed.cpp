// Satellite image feed (§6.2): a satellite transmits one image per minute;
// each image is received at some earth station and must be stored at >= t
// stations for reliability; stations read the *latest* image at arbitrary
// times. SA = a fixed set of t permanent standing orders; DA = t-1 permanent
// standing orders plus temporary standing orders that are cancelled when the
// next image arrives.
//
// The example also demonstrates the paper's equivalence claim: the feed
// managers' accumulated costs coincide exactly with the SA/DA DOM algorithms
// run on the corresponding read/write schedule.

#include <cstdio>

#include "objalloc/appendonly/feed.h"
#include "objalloc/appendonly/feed_manager.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/rng.h"

int main() {
  using namespace objalloc;

  const int kStations = 10;
  const appendonly::ProcessorSet kOrders{0, 1};  // t = 2
  model::CostModel sc = model::CostModel::StationaryComputing(0.3, 1.2);

  // A few hours of operation: images arrive steadily; analysts at varying
  // stations pull the latest image in bursts.
  util::Rng rng(2026);
  appendonly::FeedSchedule feed(kStations);
  for (int minute = 0; minute < 300; ++minute) {
    // The downlink rotates among three receiver stations.
    feed.AppendGenerate(static_cast<int>(minute % 3));
    // Between images, analysts fetch the latest picture.
    int pulls = static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < pulls; ++k) {
      feed.AppendRead(static_cast<int>(rng.NextBounded(kStations)));
    }
  }

  appendonly::StaticFeedManager sa_feed(kOrders);
  appendonly::DynamicFeedManager da_feed(kOrders);
  model::CostBreakdown sa_traffic = sa_feed.Run(feed);
  model::CostBreakdown da_traffic = da_feed.Run(feed);

  std::printf("Satellite feed, %zu events (images + reads), t = %d\n\n",
              feed.size(), kOrders.Size());
  std::printf("%-22s %10s %10s %10s %12s\n", "policy", "ctrl-msgs",
              "data-msgs", "disk-I/O", "total cost");
  std::printf("%-22s %10lld %10lld %10lld %12.1f\n", "SA (fixed orders)",
              static_cast<long long>(sa_traffic.control_messages),
              static_cast<long long>(sa_traffic.data_messages),
              static_cast<long long>(sa_traffic.io_ops), sa_traffic.Cost(sc));
  std::printf("%-22s %10lld %10lld %10lld %12.1f\n", "DA (temp. orders)",
              static_cast<long long>(da_traffic.control_messages),
              static_cast<long long>(da_traffic.data_messages),
              static_cast<long long>(da_traffic.io_ops), da_traffic.Cost(sc));

  // The §6.2 equivalence, checked live: run the DOM algorithms on the
  // mapped schedule (generate -> write, read-latest -> read).
  model::Schedule mapped = feed.ToObjectSchedule();
  core::StaticAllocation sa;
  core::DynamicAllocation da;
  auto sa_dom = core::RunWithCost(sa, sc, mapped, kOrders).breakdown;
  auto da_dom = core::RunWithCost(da, sc, mapped, kOrders).breakdown;
  std::printf("\nequivalence with the DOM algorithms (§6.2): SA %s, DA %s\n",
              sa_dom == sa_traffic ? "EXACT" : "MISMATCH",
              da_dom == da_traffic ? "EXACT" : "MISMATCH");
  return 0;
}
