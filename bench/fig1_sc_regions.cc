// Experiment E1 — Figure 1 (stationary computing): the regions of the
// (cd, cc) plane where static (SA) or dynamic (DA) allocation is superior.
//
// The paper derives the regions analytically: DA superior for cd > 1
// (Theorems 1+3), SA superior for cc + cd < 0.5 (Theorem 1 + Prop. 2), the
// rest unknown (the gap between DA's upper and lower bounds). This harness
// prints the analytic map, then *measures* worst-case ratios against the
// exact offline OPT over an adversarial ensemble at every grid point and
// prints the empirical winner map plus the full per-point table.

#include <iostream>

#include "objalloc/analysis/region_map.h"
#include "objalloc/analysis/report.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  RegionSweepOptions options = RegionSweepOptions::PaperGrid(/*mobile=*/false);
  options.ratio.num_processors = 7;
  options.ratio.schedule_length = 140;
  options.ratio.seeds_per_generator = 3;

  PrintExperimentHeader(std::cout, "E1 / Figure 1",
                        "SA vs DA superiority regions, stationary computing");
  std::cout << "grid: " << options.cd_values.size() << " cd values x "
            << options.cc_values.size() << " cc values; n="
            << options.ratio.num_processors
            << " t=" << options.ratio.t
            << " len=" << options.ratio.schedule_length
            << " seeds/gen=" << options.ratio.seeds_per_generator
            << " base_seed=0x" << std::hex << options.ratio.base_seed
            << std::dec << "\n\n";

  std::cout << "Analytic regions (the paper's Figure 1):\n"
            << RenderAnalyticMap(options) << "\n";

  auto points = SweepRegions(options);

  std::cout << "Empirical winner (worst measured ratio vs exact OPT):\n"
            << RenderEmpiricalMap(options, points) << "\n";

  util::Table table = RegionTable(points);
  table.WriteAligned(std::cout);

  int decided = 0, consistent = 0;
  for (const RegionPoint& p : points) {
    if (p.analytic == Region::kSaSuperior ||
        p.analytic == Region::kDaSuperior) {
      ++decided;
      consistent += p.analytic == p.empirical ? 1 : 0;
    }
  }
  std::cout << "\n";
  PrintPaperVsMeasured(
      std::cout,
      "cd>1 => DA superior; cc+cd<0.5 => SA superior (Figure 1)",
      std::to_string(consistent) + "/" + std::to_string(decided) +
          " analytically decided grid points match the measured winner",
      consistent == decided);
  return consistent == decided ? 0 : 1;
}
