// Throughput scaling of the sharded, batched ObjectService: events/sec over
// a multi-object trace at a sweep of shard counts x thread counts, plus the
// serial ObjectManager baseline. Results are written as a machine-readable
// JSON artifact (BENCH_service_scaling.json) so the repo's perf trajectory
// accumulates across PRs.
//
// Usage: service_scaling [--out=BENCH_service_scaling.json]
//                        [--events=1000000] [--objects=512] [--processors=16]
//                        [--shards=1,4,16,64] [--threads=1,2,4,8]
//                        [--batch=8192] [--repeats=2]
//                        [--expect_control=N] [--expect_data=N]
//                        [--expect_io=N] [--expect_crc=N]
//                        [--require_speedup=SHARDS,THREADS,MIN_X10]
//
// Each configuration is measured three ways: the id-addressed batch path
// (admission hashes every event's ObjectId), the handle-addressed hot path
// (ObjectHandles resolved once up front, served forever) — the
// devirtualized serving engine's two entry points (DESIGN.md §8) — and the
// pipelined SubmitBatch/WaitBatch path, where batch n+1 is admitted while
// batch n is still on the shard workers (DESIGN.md §11). Each row also
// reports the service's measured footprint (MemoryUsageBytes / objects)
// and the process's high-water RSS so far (DESIGN.md §12).
//
// Speedup honesty: a thread count the hardware cannot actually run in
// parallel (threads > nproc, or a 1-core host altogether) produces
// time-slicing noise, not a measurement. Such rows are emitted with
// "speedup_valid": false and a null speedup, each row records the nproc it
// really had, and a 1-core host prints a loud warning. --require_speedup
// (CI's multi-core gate; MIN_X10 is the threshold ×10, e.g. 15 = 1.5x)
// fails the run when the named config's measured speedup is below the
// floor — or when that config could not be validly measured at all.
//
// Determinism is asserted, not assumed: every (shards, threads) config and
// both entry paths must reproduce byte-identical cost breakdowns and final
// allocation schemes — checked via exact integer counts and a CRC32 over
// the sorted per-object (id, scheme) table — or the bench aborts. The
// --expect_* flags additionally pin the fingerprint to committed golden
// values and exit non-zero on any mismatch (the CI perf-smoke gate).

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_manager.h"
#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

// Exact summary of a run: integer traffic counts and the final scheme of
// every object. Two runs are byte-identical iff their fingerprints match.
struct Fingerprint {
  model::CostBreakdown breakdown;
  int64_t requests = 0;
  uint32_t scheme_crc = 0;

  bool operator==(const Fingerprint& other) const {
    return breakdown == other.breakdown && requests == other.requests &&
           scheme_crc == other.scheme_crc;
  }
};

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

uint32_t SchemeCrc(const core::ObjectService& service) {
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  return crc;
}

// High-water RSS of this process so far (ru_maxrss is KiB on Linux).
// Monotonic across the run: a row reports the peak up to its completion.
size_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

std::vector<int> ParseIntList(const std::string& arg, const char* flag) {
  std::vector<int> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    int value = 0;
    try {
      size_t used = 0;
      value = std::stoi(token, &used);
      if (used != token.size()) value = 0;
    } catch (const std::exception&) {
      value = 0;
    }
    if (value <= 0) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(value);
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

struct Measurement {
  int shards = 0;
  int threads = 0;
  int nproc = 0;  // cores this row could actually use: min(threads, hw)
  double seconds = 0;
  double events_per_sec = 0;
  double handle_events_per_sec = 0;
  double pipelined_events_per_sec = 0;
  // Queue occupancy while pipelining, sampled with the O(1) lock-free
  // ObjectService::Load() probe after every SubmitBatch — the same signal
  // the net::Server backpressure gate sheds on.
  uint64_t queue_ops_peak = 0;
  double queue_ops_mean = 0;
  double speedup_vs_1thread = 0;
  bool speedup_valid = false;
  size_t memory_bytes = 0;     // ObjectService::MemoryUsageBytes() post-run
  double bytes_per_object = 0;
  size_t peak_rss_bytes = 0;   // process high-water RSS after this row
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service_scaling.json";
  size_t events = 1000000;
  int objects = 512;
  int processors = 16;
  std::vector<int> shard_counts = {1, 4, 16, 64};
  std::vector<int> thread_counts = {1, 2, 4, 8};
  size_t batch_size = 8192;
  int repeats = 2;
  // Golden fingerprint values; -1 = unchecked.
  long long expect_control = -1;
  long long expect_data = -1;
  long long expect_io = -1;
  long long expect_crc = -1;
  // Scaling gate: require speedup_vs_1thread >= min at (shards, threads).
  int require_shards = 0;
  int require_threads = 0;
  double require_min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (int_flag("--events=", &events) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--repeats=", &repeats) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else if (arg.rfind("--shards=", 0) == 0) {
      shard_counts = ParseIntList(arg.substr(9), "--shards=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = ParseIntList(arg.substr(10), "--threads=");
    } else if (arg.rfind("--require_speedup=", 0) == 0) {
      std::vector<int> gate =
          ParseIntList(arg.substr(18), "--require_speedup=");
      if (gate.size() != 3) {
        std::fprintf(stderr,
                     "--require_speedup wants SHARDS,THREADS,MIN_X10\n");
        return 1;
      }
      require_shards = gate[0];
      require_threads = gate[1];
      require_min_speedup = static_cast<double>(gate[2]) / 10.0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  // Speedup rows are only meaningful up to the parallelism the hardware
  // actually has — not the thread override in OBJALLOC_THREADS.
  const int hw = util::HardwareConcurrency();
  if (hw <= 1) {
    std::fprintf(stderr,
                 "WARNING: hardware_concurrency=1 — every multi-thread row "
                 "is time-slicing noise, not a scaling measurement; all "
                 "rows will carry \"speedup_valid\": false\n");
  }

  const uint64_t kSeed = 0x5eed5ca1e;
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  std::printf("generating %zu events over %d objects, %d processors "
              "(seed %llu)...\n",
              events, objects, processors,
              static_cast<unsigned long long>(kSeed));
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, kSeed);

  // Serial baseline: the pre-refactor path, one ObjectManager::Serve call
  // per event.
  double baseline_eps = 0;
  {
    double best = 0;
    for (int r = 0; r < repeats; ++r) {
      core::ObjectManager manager(processors,
                                  model::CostModel::StationaryComputing(
                                      0.25, 1.0));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(manager.AddObject(id, ServiceConfig()).ok());
      }
      auto start = std::chrono::steady_clock::now();
      for (const auto& event : trace.events) {
        OBJALLOC_CHECK(manager.Serve(event.object, event.request).ok());
      }
      auto stop = std::chrono::steady_clock::now();
      double seconds = std::chrono::duration<double>(stop - start).count();
      if (r == 0 || seconds < best) best = seconds;
    }
    baseline_eps = static_cast<double>(events) / best;
    std::printf("%-28s %10.0f events/sec\n", "ObjectManager (serial)",
                baseline_eps);
  }

  bool have_reference = false;
  Fingerprint reference;
  std::vector<Measurement> measurements;
  for (int shards : shard_counts) {
    double one_thread_seconds = 0;
    for (int threads : thread_counts) {
      util::ScopedThreads scope(threads);
      double best = 0;
      Fingerprint fingerprint;
      size_t memory_bytes = 0;
      for (int r = 0; r < repeats; ++r) {
        core::ServiceOptions service_options;
        service_options.num_shards = shards;
        core::ObjectService service(
            processors, model::CostModel::StationaryComputing(0.25, 1.0),
            service_options);
        service.ReserveObjects(static_cast<size_t>(objects));
        for (int id = 0; id < objects; ++id) {
          OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
        }
        auto start = std::chrono::steady_clock::now();
        std::span<const workload::MultiObjectEvent> all(trace.events);
        for (size_t pos = 0; pos < all.size(); pos += batch_size) {
          auto batch = service.ServeBatch(
              all.subspan(pos, std::min(batch_size, all.size() - pos)));
          OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
        }
        auto stop = std::chrono::steady_clock::now();
        double seconds = std::chrono::duration<double>(stop - start).count();
        if (r == 0 || seconds < best) best = seconds;
        fingerprint.breakdown = service.TotalBreakdown();
        fingerprint.requests = service.TotalRequests();
        fingerprint.scheme_crc = SchemeCrc(service);
        memory_bytes = service.MemoryUsageBytes();
      }
      if (!have_reference) {
        reference = fingerprint;
        have_reference = true;
      }
      OBJALLOC_CHECK(fingerprint == reference)
          << "shards=" << shards << " threads=" << threads
          << " diverged from the reference run: results must be "
             "byte-identical across every configuration";

      // Handle-addressed hot path: resolve every event's route once up
      // front (outside the timer — resolve once, serve forever), then
      // drain the same trace through the zero-hash batch entry with one
      // recycled BatchResult.
      double handle_best = 0;
      Fingerprint handle_fingerprint;
      for (int r = 0; r < repeats; ++r) {
        core::ServiceOptions service_options;
        service_options.num_shards = shards;
        core::ObjectService service(
            processors, model::CostModel::StationaryComputing(0.25, 1.0),
            service_options);
        service.ReserveObjects(static_cast<size_t>(objects));
        for (int id = 0; id < objects; ++id) {
          OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
        }
        std::vector<core::ObjectHandle> handles(objects);
        for (int id = 0; id < objects; ++id) {
          handles[id] = *service.Resolve(id);
        }
        std::vector<core::HandleEvent> handle_events;
        handle_events.reserve(trace.events.size());
        for (const auto& event : trace.events) {
          handle_events.push_back(
              core::HandleEvent{handles[event.object], event.request});
        }
        core::BatchResult batch;
        auto start = std::chrono::steady_clock::now();
        std::span<const core::HandleEvent> all(handle_events);
        for (size_t pos = 0; pos < all.size(); pos += batch_size) {
          util::Status status = service.ServeBatchInto(
              all.subspan(pos, std::min(batch_size, all.size() - pos)),
              &batch);
          OBJALLOC_CHECK(status.ok()) << status.ToString();
        }
        auto stop = std::chrono::steady_clock::now();
        double seconds = std::chrono::duration<double>(stop - start).count();
        if (r == 0 || seconds < handle_best) handle_best = seconds;
        handle_fingerprint.breakdown = service.TotalBreakdown();
        handle_fingerprint.requests = service.TotalRequests();
        handle_fingerprint.scheme_crc = SchemeCrc(service);
      }
      OBJALLOC_CHECK(handle_fingerprint == reference)
          << "shards=" << shards << " threads=" << threads
          << " handle path diverged from the id path: the two entry "
             "points must be byte-identical";

      // Pipelined path: SubmitBatch admits + logs batch n+1 while batch n
      // is still on the shard workers; WaitBatch double-buffers the
      // results. Same trace, same fingerprint requirement.
      double pipelined_best = 0;
      Fingerprint pipelined_fingerprint;
      uint64_t queue_ops_peak = 0;
      uint64_t queue_ops_sum = 0;
      uint64_t queue_samples = 0;
      for (int r = 0; r < repeats; ++r) {
        core::ServiceOptions service_options;
        service_options.num_shards = shards;
        core::ObjectService service(
            processors, model::CostModel::StationaryComputing(0.25, 1.0),
            service_options);
        service.ReserveObjects(static_cast<size_t>(objects));
        for (int id = 0; id < objects; ++id) {
          OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
        }
        core::BatchResult results[2];
        core::BatchTicket tickets[2];
        int cur = 0;
        auto start = std::chrono::steady_clock::now();
        std::span<const workload::MultiObjectEvent> all(trace.events);
        for (size_t pos = 0; pos < all.size(); pos += batch_size) {
          if (!tickets[cur].completed) {
            util::Status status = service.WaitBatch(&tickets[cur]);
            OBJALLOC_CHECK(status.ok()) << status.ToString();
          }
          util::Status status = service.SubmitBatch(
              all.subspan(pos, std::min(batch_size, all.size() - pos)),
              &results[cur], &tickets[cur]);
          OBJALLOC_CHECK(status.ok()) << status.ToString();
          const core::ServiceLoad load = service.Load();
          queue_ops_peak = std::max(queue_ops_peak, load.executor_queued_ops);
          queue_ops_sum += load.executor_queued_ops;
          ++queue_samples;
          if (!tickets[cur].completed) cur ^= 1;
        }
        util::Status drained = service.DrainBatches();
        OBJALLOC_CHECK(drained.ok()) << drained.ToString();
        auto stop = std::chrono::steady_clock::now();
        double seconds = std::chrono::duration<double>(stop - start).count();
        if (r == 0 || seconds < pipelined_best) pipelined_best = seconds;
        pipelined_fingerprint.breakdown = service.TotalBreakdown();
        pipelined_fingerprint.requests = service.TotalRequests();
        pipelined_fingerprint.scheme_crc = SchemeCrc(service);
      }
      OBJALLOC_CHECK(pipelined_fingerprint == reference)
          << "shards=" << shards << " threads=" << threads
          << " pipelined path diverged from the synchronous path: "
             "cross-batch pipelining must not change results";

      if (threads == thread_counts.front()) one_thread_seconds = best;
      Measurement m;
      m.shards = shards;
      m.threads = threads;
      m.nproc = std::min(threads, hw);
      m.seconds = best;
      m.events_per_sec = static_cast<double>(events) / best;
      m.handle_events_per_sec = static_cast<double>(events) / handle_best;
      m.pipelined_events_per_sec =
          static_cast<double>(events) / pipelined_best;
      m.queue_ops_peak = queue_ops_peak;
      m.queue_ops_mean =
          queue_samples == 0 ? 0
                             : static_cast<double>(queue_ops_sum) /
                                   static_cast<double>(queue_samples);
      m.speedup_vs_1thread = best > 0 ? one_thread_seconds / best : 0;
      m.speedup_valid = hw > 1 && threads <= hw;
      m.memory_bytes = memory_bytes;
      m.bytes_per_object =
          static_cast<double>(memory_bytes) / static_cast<double>(objects);
      m.peak_rss_bytes = PeakRssBytes();
      measurements.push_back(m);
      std::printf("shards=%-4d threads=%-3d (nproc %d) %8.3fs "
                  "%12.0f events/sec  (handles %12.0f, pipelined %12.0f, "
                  "queue peak/mean %llu/%.0f ops)  "
                  "%7.1f B/obj  rss %zu MB  ",
                  m.shards, m.threads, m.nproc, m.seconds, m.events_per_sec,
                  m.handle_events_per_sec, m.pipelined_events_per_sec,
                  static_cast<unsigned long long>(m.queue_ops_peak),
                  m.queue_ops_mean, m.bytes_per_object,
                  m.peak_rss_bytes >> 20);
      if (m.speedup_valid) {
        std::printf("speedup %.2fx\n", m.speedup_vs_1thread);
      } else {
        std::printf("speedup n/a (nproc %d)\n", m.nproc);
      }
    }
  }
  std::printf("determinism: all %zu configs x {id, handle, pipelined} paths "
              "byte-identical (breakdown %lld/%lld/%lld, scheme crc %08x)\n",
              measurements.size(),
              static_cast<long long>(reference.breakdown.control_messages),
              static_cast<long long>(reference.breakdown.data_messages),
              static_cast<long long>(reference.breakdown.io_ops),
              reference.scheme_crc);

  // Golden-fingerprint gate (CI perf-smoke): any drift from the committed
  // values is a correctness regression, not a perf question.
  bool golden_ok = true;
  auto check_golden = [&](const char* name, long long expected,
                          long long actual) {
    if (expected < 0) return;
    if (expected != actual) {
      std::fprintf(stderr,
                   "golden fingerprint mismatch: %s expected %lld got %lld\n",
                   name, expected, actual);
      golden_ok = false;
    }
  };
  check_golden("control", expect_control,
               reference.breakdown.control_messages);
  check_golden("data", expect_data, reference.breakdown.data_messages);
  check_golden("io", expect_io, reference.breakdown.io_ops);
  check_golden("scheme_crc", expect_crc,
               static_cast<long long>(reference.scheme_crc));
  if (!golden_ok) return 1;
  if (expect_control >= 0 || expect_data >= 0 || expect_io >= 0 ||
      expect_crc >= 0) {
    std::printf("golden fingerprint matches expected values\n");
  }

  // Scaling gate (CI scaling-smoke): the named config must have a *valid*
  // speedup measurement at or above the floor. An invalid row (1-core
  // host, or threads oversubscribing nproc) fails the gate rather than
  // passing vacuously.
  if (require_shards > 0) {
    bool gate_found = false;
    for (const Measurement& m : measurements) {
      if (m.shards != require_shards || m.threads != require_threads) {
        continue;
      }
      gate_found = true;
      if (!m.speedup_valid) {
        std::fprintf(stderr,
                     "scaling gate: shards=%d threads=%d has no valid "
                     "speedup measurement (nproc=%d)\n",
                     m.shards, m.threads, m.nproc);
        return 1;
      }
      if (m.speedup_vs_1thread < require_min_speedup) {
        std::fprintf(stderr,
                     "scaling gate: shards=%d threads=%d speedup %.2fx "
                     "below required %.2fx\n",
                     m.shards, m.threads, m.speedup_vs_1thread,
                     require_min_speedup);
        return 1;
      }
      std::printf("scaling gate: shards=%d threads=%d speedup %.2fx >= "
                  "%.2fx\n",
                  m.shards, m.threads, m.speedup_vs_1thread,
                  require_min_speedup);
    }
    if (!gate_found) {
      std::fprintf(stderr,
                   "scaling gate: config shards=%d threads=%d was not in "
                   "the sweep\n",
                   require_shards, require_threads);
      return 1;
    }
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"benchmark\": \"service_scaling\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"objects\": " << objects << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"baseline_manager_events_per_sec\": " << baseline_eps << ",\n";
  out << "  \"fingerprint\": {\"control\": "
      << reference.breakdown.control_messages
      << ", \"data\": " << reference.breakdown.data_messages
      << ", \"io\": " << reference.breakdown.io_ops
      << ", \"scheme_crc\": " << reference.scheme_crc << "},\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    out << "    {\"shards\": " << m.shards << ", \"threads\": " << m.threads
        << ", \"nproc\": " << m.nproc << ", \"seconds\": " << m.seconds
        << ", \"events_per_sec\": " << m.events_per_sec
        << ", \"handle_events_per_sec\": " << m.handle_events_per_sec
        << ", \"pipelined_events_per_sec\": " << m.pipelined_events_per_sec
        << ", \"queue_ops_peak\": " << m.queue_ops_peak
        << ", \"queue_ops_mean\": " << m.queue_ops_mean
        << ", \"memory_bytes\": " << m.memory_bytes
        << ", \"bytes_per_object\": " << m.bytes_per_object
        << ", \"peak_rss_bytes\": " << m.peak_rss_bytes
        << ", \"speedup_valid\": " << (m.speedup_valid ? "true" : "false")
        << ", \"speedup_vs_1thread\": ";
    if (m.speedup_valid) {
      out << m.speedup_vs_1thread;
    } else {
      out << "null";
    }
    out << "}" << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
