// Networked serving under load: drives the net::Server over loopback TCP
// with pipelined connections and reports latency percentiles, shed rate,
// and goodput at a sweep of offered loads (DESIGN.md §15), written as a
// machine-readable JSON artifact (BENCH_net_serving.json).
//
// Usage: net_serving [--out=BENCH_net_serving.json]
//                    [--connections=4] [--objects=256] [--processors=8]
//                    [--events=4000] [--window=64] [--seed=42]
//                    [--levels=0.5,1,2] [--max_inflight=1024]
//                    [--max_p99_ms=2000] [--sweep=1]
//                    [--expect_requests=N] [--expect_control=N]
//                    [--expect_data=N] [--expect_io=N] [--expect_crc=N]
//
// Three claims, all fatal when violated:
//
//  1. No silent drops: every request sent gets exactly one reply — a cost,
//     or an honest transient rejection (kOverloaded / kTimeout /
//     kUnavailable). A missing reply is a hang and the bench aborts.
//  2. Overload degrades, never collapses: at 2x the measured saturation
//     throughput the server sheds with kOverloaded while the p99 latency
//     of *admitted* requests stays bounded (the admission budget caps the
//     queue, so waiting time can't grow without bound).
//  3. The wire adds no semantics: replaying exactly the admitted events
//     through an in-process ObjectService reproduces the served engine
//     fingerprint bit-for-bit (request counts, cost breakdown, and the
//     CRC32 of the per-object scheme table). Each connection owns a
//     disjoint object range, so per-object event order equals per-
//     connection send order and the fingerprint is interleaving-proof.
//
// With --sweep=0 only the closed-loop saturation phase runs; its window
// fits under the admission budget so nothing is shed, every event is
// admitted, and the fingerprint becomes a pure function of the seed — the
// --expect_* flags pin it as a committed golden (the CI net-smoke gate).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/net/client.h"
#include "objalloc/net/server.h"
#include "objalloc/net/wire.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/rng.h"
#include "objalloc/util/stats.h"
#include "objalloc/util/status.h"

namespace {

using namespace objalloc;
using Clock = std::chrono::steady_clock;

constexpr uint64_t kSchemeMask = 0b11;  // processors {0, 1}
constexpr uint8_t kAlgorithm = static_cast<uint8_t>(core::AlgorithmKind::kDynamic);

struct Event {
  int64_t object = 0;
  uint32_t processor = 0;
  bool is_write = false;
};

// One loadgen connection: a persistent client, its private event stream,
// and the record of what the server admitted (per-connection request ids
// are sequential from 1, so `events[id - 1]` is the event behind any id).
struct Conn {
  net::Client client;
  util::Rng rng{1};
  int64_t first_object = 0;
  int64_t object_count = 1;
  std::vector<Event> events;     // indexed by request_id - 1
  std::vector<bool> admitted;    // parallel to events
  // Per-phase scratch, reset by the driver.
  std::vector<Clock::time_point> send_time;  // parallel to events
  uint64_t sent = 0;
  uint64_t got = 0;
  uint64_t ok = 0;
  uint64_t shed_overloaded = 0;
  uint64_t shed_other = 0;  // kTimeout / kUnavailable
  std::vector<double> latencies_ms;
};

Event NextEvent(Conn* conn, int processors) {
  Event event;
  event.object =
      conn->first_object +
      static_cast<int64_t>(conn->rng.NextBounded(
          static_cast<uint64_t>(conn->object_count)));
  event.processor =
      static_cast<uint32_t>(conn->rng.NextBounded(
          static_cast<uint64_t>(processors)));
  event.is_write = conn->rng.NextDouble() < 0.3;
  return event;
}

uint64_t SendOne(Conn* conn, int processors) {
  const Event event = NextEvent(conn, processors);
  util::StatusOr<uint64_t> id = conn->client.SendServe(
      event.is_write, event.object, event.processor, /*deadline_ms=*/0);
  OBJALLOC_CHECK(id.ok()) << "send failed: " << id.status().ToString();
  OBJALLOC_CHECK_EQ(*id, conn->events.size() + 1)
      << "request ids must stay sequential for replay bookkeeping";
  conn->events.push_back(event);
  conn->admitted.push_back(false);
  conn->send_time.push_back(Clock::now());
  ++conn->sent;
  return *id;
}

void Record(Conn* conn, const net::Client::Reply& reply) {
  OBJALLOC_CHECK(reply.request_id >= 1 &&
                 reply.request_id <= conn->events.size())
      << "reply for a request never sent: id=" << reply.request_id;
  ++conn->got;
  if (reply.status.ok()) {
    ++conn->ok;
    conn->admitted[reply.request_id - 1] = true;
    const double ms =
        std::chrono::duration<double, std::milli>(
            Clock::now() - conn->send_time[reply.request_id - 1])
            .count();
    conn->latencies_ms.push_back(ms);
    return;
  }
  OBJALLOC_CHECK(util::IsTransientRejection(reply.status))
      << "server replied with a non-transient error to well-formed "
         "traffic: "
      << reply.status.ToString();
  if (reply.status.code() == util::StatusCode::kOverloaded) {
    ++conn->shed_overloaded;
  } else {
    ++conn->shed_other;
  }
}

// Drains every reply currently waiting (or arriving within `timeout_ms`).
// Returns false only when the poll timed out with nothing to read.
bool DrainReplies(Conn* conn, int timeout_ms) {
  bool drained_any = false;
  while (conn->got < conn->sent) {
    util::StatusOr<net::Client::Reply> reply =
        conn->client.WaitReply(timeout_ms);
    if (!reply.ok()) {
      OBJALLOC_CHECK(reply.status().code() == util::StatusCode::kTimeout)
          << "transport failure mid-run: " << reply.status().ToString();
      return drained_any;
    }
    Record(conn, *reply);
    drained_any = true;
    timeout_ms = 0;  // opportunistic after the first
  }
  return drained_any;
}

void AwaitAll(Conn* conn) {
  // Every request gets a reply; 10s of silence means the server hung,
  // which is precisely what this bench exists to rule out.
  while (conn->got < conn->sent) {
    util::StatusOr<net::Client::Reply> reply = conn->client.WaitReply(10000);
    OBJALLOC_CHECK(reply.ok())
        << "no reply within 10s with " << (conn->sent - conn->got)
        << " outstanding — server hung or dropped requests: "
        << reply.status().ToString();
    Record(conn, *reply);
  }
}

void ResetPhase(Conn* conn) {
  conn->sent = 0;
  conn->got = 0;
  conn->ok = 0;
  conn->shed_overloaded = 0;
  conn->shed_other = 0;
  conn->latencies_ms.clear();
}

// Closed loop: keep `window` requests in flight until `count` were sent,
// then drain. With window * connections below the admission budget this
// phase never sheds — the measured goodput is the saturation throughput.
void RunClosedLoop(Conn* conn, uint64_t count, size_t window,
                   int processors) {
  for (uint64_t i = 0; i < count; ++i) {
    while (conn->sent - conn->got >= window) {
      util::StatusOr<net::Client::Reply> reply = conn->client.WaitReply(10000);
      OBJALLOC_CHECK(reply.ok())
          << "closed loop stalled: " << reply.status().ToString();
      Record(conn, *reply);
    }
    SendOne(conn, processors);
    DrainReplies(conn, 0);
  }
  AwaitAll(conn);
}

// Open(ish) loop: sends paced at `interval` regardless of replies, so the
// offered load is what we say it is even when the server sheds. A high
// outstanding cap keeps client memory bounded without re-coupling the
// loop to the service rate.
void RunPaced(Conn* conn, uint64_t count, Clock::duration interval,
              int processors) {
  constexpr uint64_t kOutstandingCap = 8192;
  Clock::time_point next_send = Clock::now();
  for (uint64_t i = 0; i < count; ++i) {
    while (true) {
      const auto now = Clock::now();
      if (now >= next_send && conn->sent - conn->got < kOutstandingCap) break;
      const auto wait = next_send - now;
      const int wait_ms = static_cast<int>(std::max<int64_t>(
          0, std::chrono::duration_cast<std::chrono::milliseconds>(wait)
                 .count()));
      DrainReplies(conn, wait_ms);
    }
    SendOne(conn, processors);
    next_send += interval;
    DrainReplies(conn, 0);
  }
  AwaitAll(conn);
}

std::vector<double> ParseDoubleList(const std::string& arg,
                                    const char* flag) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    double value = 0;
    try {
      size_t used = 0;
      value = std::stod(token, &used);
      if (used != token.size()) value = 0;
    } catch (const std::exception&) {
      value = 0;
    }
    if (value <= 0) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(value);
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

struct LevelResult {
  double multiplier = 0;
  double offered_eps = 0;
  double goodput_eps = 0;
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t shed_overloaded = 0;
  uint64_t shed_other = 0;
  double shed_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;
};

LevelResult Summarize(std::vector<Conn>& conns, double seconds) {
  LevelResult level;
  util::PercentileTracker tracker;
  for (Conn& conn : conns) {
    level.sent += conn.sent;
    level.ok += conn.ok;
    level.shed_overloaded += conn.shed_overloaded;
    level.shed_other += conn.shed_other;
    for (const double ms : conn.latencies_ms) {
      tracker.Add(ms);
      level.max_ms = std::max(level.max_ms, ms);
    }
  }
  level.goodput_eps = static_cast<double>(level.ok) / seconds;
  level.shed_rate =
      level.sent == 0
          ? 0
          : static_cast<double>(level.shed_overloaded + level.shed_other) /
                static_cast<double>(level.sent);
  if (level.ok > 0) {
    level.p50_ms = tracker.Percentile(0.5);
    level.p99_ms = tracker.Percentile(0.99);
    level.p999_ms = tracker.Percentile(0.999);
  }
  return level;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_net_serving.json";
  int connections = 4;
  int64_t objects = 256;
  int processors = 8;
  uint64_t events = 4000;  // per connection, per phase
  size_t window = 64;
  uint64_t seed = 42;
  std::vector<double> levels = {0.5, 1, 2};
  size_t max_inflight = 1024;
  double max_p99_ms = 2000;
  int sweep = 1;
  long long expect_requests = -1;
  long long expect_control = -1;
  long long expect_data = -1;
  long long expect_io = -1;
  long long expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--levels=", 0) == 0) {
      levels = ParseDoubleList(arg.substr(9), "--levels=");
    } else if (arg.rfind("--max_p99_ms=", 0) == 0) {
      max_p99_ms = std::atof(arg.substr(13).c_str());
    } else if (arg == "--sweep=0") {
      sweep = 0;
    } else if (arg == "--sweep=1") {
      sweep = 1;
    } else if (int_flag("--connections=", &connections) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--events=", &events) ||
               int_flag("--window=", &window) ||
               int_flag("--seed=", &seed) ||
               int_flag("--max_inflight=", &max_inflight) ||
               int_flag("--expect_requests=", &expect_requests) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }
  OBJALLOC_CHECK(window * static_cast<size_t>(connections) < max_inflight)
      << "window * connections must sit below the admission budget, or the "
         "saturation phase sheds and the golden fingerprint stops being "
         "deterministic";
  OBJALLOC_CHECK(objects >= connections);

  // ---- The server under test, in-process but reached only via TCP.
  const model::CostModel cost_model =
      model::CostModel::StationaryComputing(0.25, 1.0);
  core::ServiceOptions service_options;
  service_options.num_shards = 4;
  core::ObjectService service(processors, cost_model, service_options);
  net::ServerOptions server_options;
  server_options.max_inflight_global = max_inflight;
  server_options.max_inflight_per_connection = max_inflight;
  server_options.max_batch_items = max_inflight;
  server_options.batch_max_events = max_inflight;
  server_options.batch_max_delay_us = 200;
  net::Server server(&service, server_options);
  OBJALLOC_CHECK(server.Start().ok());
  std::thread server_thread([&server] { server.Run(); });
  const uint16_t port = server.port();

  // ---- Register the object space over the wire, disjoint per connection.
  const int64_t per_conn = objects / connections;
  {
    net::Client admin;
    OBJALLOC_CHECK(admin.Connect("127.0.0.1", port).ok());
    for (int64_t id = 0; id < per_conn * connections; ++id) {
      OBJALLOC_CHECK(admin.Register(id, kSchemeMask, kAlgorithm).ok());
    }
  }

  std::vector<Conn> conns(static_cast<size_t>(connections));
  for (int c = 0; c < connections; ++c) {
    Conn& conn = conns[static_cast<size_t>(c)];
    conn.rng = util::Rng(seed * 1000003 + static_cast<uint64_t>(c));
    conn.first_object = per_conn * c;
    conn.object_count = per_conn;
    OBJALLOC_CHECK(conn.client.Connect("127.0.0.1", port).ok());
  }

  // ---- Phase 1: closed-loop saturation. Defines "100% load".
  std::printf("saturation: %d connections x %llu events, window %zu...\n",
              connections, static_cast<unsigned long long>(events), window);
  auto start = Clock::now();
  {
    std::vector<std::thread> threads;
    for (Conn& conn : conns) {
      threads.emplace_back([&conn, events, window, processors] {
        RunClosedLoop(&conn, events, window, processors);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double saturation_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  LevelResult saturation = Summarize(conns, saturation_seconds);
  OBJALLOC_CHECK_EQ(saturation.ok, saturation.sent)
      << "saturation phase shed despite the window fitting under the "
         "admission budget";
  const double saturation_eps = saturation.goodput_eps;
  std::printf("saturation: %.0f events/sec  p50/p99/p999 = "
              "%.2f/%.2f/%.2f ms\n",
              saturation_eps, saturation.p50_ms, saturation.p99_ms,
              saturation.p999_ms);

  // ---- Phase 2: offered-load sweep at multiples of saturation.
  std::vector<LevelResult> results;
  if (sweep != 0) {
    for (const double multiplier : levels) {
      const double offered_eps = multiplier * saturation_eps;
      const double per_conn_eps = offered_eps / connections;
      const auto interval = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / per_conn_eps));
      for (Conn& conn : conns) ResetPhase(&conn);
      start = Clock::now();
      std::vector<std::thread> threads;
      for (Conn& conn : conns) {
        threads.emplace_back([&conn, events, interval, processors] {
          RunPaced(&conn, events, interval, processors);
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      LevelResult level = Summarize(conns, seconds);
      level.multiplier = multiplier;
      level.offered_eps = offered_eps;
      results.push_back(level);
      std::printf(
          "offered %.2fx (%9.0f eps): goodput %9.0f eps  shed %5.1f%% "
          "(%llu overloaded, %llu other)  p50/p99/p999 = %.2f/%.2f/%.2f ms\n",
          multiplier, offered_eps, level.goodput_eps, 100 * level.shed_rate,
          static_cast<unsigned long long>(level.shed_overloaded),
          static_cast<unsigned long long>(level.shed_other),
          level.p50_ms, level.p99_ms, level.p999_ms);
      // Claim 2: overload degrades, never collapses. The p99 of admitted
      // requests stays bounded because the admission budget caps the
      // queue; shedding (not queueing) absorbs the excess.
      OBJALLOC_CHECK(level.ok == 0 || level.p99_ms <= max_p99_ms)
          << "p99 of admitted requests exceeded --max_p99_ms at "
          << multiplier << "x offered load: " << level.p99_ms << " ms";
      if (multiplier >= 2) {
        OBJALLOC_CHECK(level.shed_overloaded > 0)
            << "2x saturation produced no kOverloaded sheds — the "
               "admission budget never engaged";
      }
    }
  }

  // ---- Phase 3: fingerprint parity. Replay exactly the admitted events
  // through a fresh in-process service and compare engine fingerprints.
  net::WireStats wire_stats;
  {
    net::Client admin;
    OBJALLOC_CHECK(admin.Connect("127.0.0.1", port).ok());
    util::StatusOr<net::WireStats> got = admin.QueryStats();
    OBJALLOC_CHECK(got.ok()) << got.status().ToString();
    wire_stats = *got;
  }
  OBJALLOC_CHECK_EQ(wire_stats.protocol_errors, 0u)
      << "well-formed traffic tripped the protocol-error path";

  uint64_t total_admitted = 0;
  core::ObjectService replay(processors, cost_model, service_options);
  {
    core::ObjectConfig config;
    config.initial_scheme = model::ProcessorSet(kSchemeMask);
    config.algorithm = static_cast<core::AlgorithmKind>(kAlgorithm);
    for (int64_t id = 0; id < per_conn * connections; ++id) {
      OBJALLOC_CHECK(replay.AddObject(id, config).ok());
    }
    std::vector<workload::MultiObjectEvent> admitted;
    for (const Conn& conn : conns) {
      admitted.clear();
      for (size_t i = 0; i < conn.events.size(); ++i) {
        if (!conn.admitted[i]) continue;
        workload::MultiObjectEvent event;
        event.object = conn.events[i].object;
        const auto processor =
            static_cast<model::ProcessorId>(conn.events[i].processor);
        event.request = conn.events[i].is_write
                            ? model::Request::Write(processor)
                            : model::Request::Read(processor);
        admitted.push_back(event);
      }
      total_admitted += admitted.size();
      if (!admitted.empty()) {
        auto batch = replay.ServeBatch(
            std::span<const workload::MultiObjectEvent>(admitted));
        OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
      }
    }
  }
  uint32_t replay_crc = 0;
  for (core::ObjectId id : replay.SortedObjectIds()) {
    const uint64_t mask = replay.StatsFor(id)->scheme.mask();
    replay_crc = util::Crc32(&id, sizeof(id), replay_crc);
    replay_crc = util::Crc32(&mask, sizeof(mask), replay_crc);
  }
  const model::CostBreakdown replay_breakdown = replay.TotalBreakdown();
  OBJALLOC_CHECK_EQ(wire_stats.admitted_events, total_admitted)
      << "server admitted counter disagrees with client-side ok replies";
  OBJALLOC_CHECK_EQ(wire_stats.total_requests, replay.TotalRequests())
      << "engine request count diverged from the in-process replay";
  OBJALLOC_CHECK(wire_stats.control_messages ==
                     replay_breakdown.control_messages &&
                 wire_stats.data_messages == replay_breakdown.data_messages &&
                 wire_stats.io_ops == replay_breakdown.io_ops)
      << "cost breakdown diverged from the in-process replay: the wire "
         "must add no semantics";
  OBJALLOC_CHECK_EQ(wire_stats.scheme_crc, replay_crc)
      << "scheme table diverged from the in-process replay";
  std::printf("fingerprint parity: %llu admitted events replayed "
              "in-process, bit-identical (requests=%lld control=%lld "
              "data=%lld io=%lld scheme_crc=%u)\n",
              static_cast<unsigned long long>(total_admitted),
              static_cast<long long>(wire_stats.total_requests),
              static_cast<long long>(wire_stats.control_messages),
              static_cast<long long>(wire_stats.data_messages),
              static_cast<long long>(wire_stats.io_ops),
              wire_stats.scheme_crc);

  // ---- Golden-fingerprint gate (CI net-smoke, --sweep=0 runs only).
  bool golden_ok = true;
  auto check_golden = [&](const char* name, long long expected,
                          long long actual) {
    if (expected < 0) return;
    if (expected != actual) {
      std::fprintf(stderr,
                   "golden fingerprint mismatch: %s expected %lld got %lld\n",
                   name, expected, actual);
      golden_ok = false;
    }
  };
  if (expect_requests >= 0 || expect_control >= 0 || expect_data >= 0 ||
      expect_io >= 0 || expect_crc >= 0) {
    OBJALLOC_CHECK(sweep == 0)
        << "--expect_* goldens require --sweep=0: overload sheds are "
           "timing-dependent, so the admitted set is only deterministic "
           "when nothing sheds";
    check_golden("requests", expect_requests, wire_stats.total_requests);
    check_golden("control", expect_control, wire_stats.control_messages);
    check_golden("data", expect_data, wire_stats.data_messages);
    check_golden("io", expect_io, wire_stats.io_ops);
    check_golden("scheme_crc", expect_crc,
                 static_cast<long long>(wire_stats.scheme_crc));
    if (!golden_ok) {
      server.RequestDrain();
      server_thread.join();
      return 1;
    }
    std::printf("golden fingerprint matches expected values\n");
  }

  // ---- Graceful drain: the server must answer everything and exit clean.
  for (Conn& conn : conns) conn.client.Close();
  server.RequestDrain();
  server_thread.join();

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"benchmark\": \"net_serving\",\n";
  out << "  \"connections\": " << connections << ",\n";
  out << "  \"objects\": " << per_conn * connections << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"events_per_connection\": " << events << ",\n";
  out << "  \"window\": " << window << ",\n";
  out << "  \"seed\": " << seed << ",\n";
  out << "  \"max_inflight\": " << max_inflight << ",\n";
  out << "  \"saturation_events_per_sec\": " << saturation_eps << ",\n";
  out << "  \"saturation_p50_ms\": " << saturation.p50_ms << ",\n";
  out << "  \"saturation_p99_ms\": " << saturation.p99_ms << ",\n";
  out << "  \"saturation_p999_ms\": " << saturation.p999_ms << ",\n";
  out << "  \"levels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const LevelResult& r = results[i];
    out << "    {\"offered_multiplier\": " << r.multiplier
        << ", \"offered_events_per_sec\": " << r.offered_eps
        << ", \"goodput_events_per_sec\": " << r.goodput_eps
        << ", \"sent\": " << r.sent << ", \"ok\": " << r.ok
        << ", \"shed_overloaded\": " << r.shed_overloaded
        << ", \"shed_other\": " << r.shed_other
        << ", \"shed_rate\": " << r.shed_rate
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
        << ", \"p999_ms\": " << r.p999_ms << ", \"max_ms\": " << r.max_ms
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"fingerprint\": {\"requests\": " << wire_stats.total_requests
      << ", \"control\": " << wire_stats.control_messages
      << ", \"data\": " << wire_stats.data_messages
      << ", \"io\": " << wire_stats.io_ops
      << ", \"scheme_crc\": " << wire_stats.scheme_crc
      << ", \"admitted\": " << total_admitted
      << ", \"parity\": \"bit-identical\"}\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
