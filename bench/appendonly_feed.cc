// Experiment E9 — the §6.2 append-only model (satellite feed with standing
// orders). Sweeps the read rate between images and reports SA-feed vs
// DA-feed costs, plus the live check that each feed manager's accounting is
// identical to the corresponding DOM algorithm's on the mapped schedule.

#include <iostream>

#include "objalloc/analysis/report.h"
#include "objalloc/appendonly/feed.h"
#include "objalloc/appendonly/feed_manager.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/rng.h"

namespace {

objalloc::appendonly::FeedSchedule MakeFeed(int stations, int images,
                                            double reads_per_image,
                                            uint64_t seed) {
  objalloc::util::Rng rng(seed);
  objalloc::appendonly::FeedSchedule feed(stations);
  for (int image = 0; image < images; ++image) {
    feed.AppendGenerate(static_cast<int>(
        rng.NextBounded(static_cast<uint64_t>(stations))));
    int pulls = static_cast<int>(reads_per_image);
    if (rng.NextDouble() < reads_per_image - pulls) ++pulls;
    for (int k = 0; k < pulls; ++k) {
      feed.AppendRead(static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(stations))));
    }
  }
  return feed;
}

}  // namespace

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  const int kStations = 12;
  const appendonly::ProcessorSet kOrders{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.3, 1.2);

  PrintExperimentHeader(std::cout, "E9",
                        "Append-only satellite feed (§6.2): standing-order "
                        "policies vs read rate (12 stations, t=2, 200 "
                        "images)");

  util::Table table({"reads_per_image", "SA_feed_cost", "DA_feed_cost",
                     "winner", "SA==SA_DOM", "DA==DA_DOM"});
  bool equivalence = true;
  for (double rate : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    appendonly::FeedSchedule feed = MakeFeed(kStations, 200, rate, 42);
    appendonly::StaticFeedManager sa_feed(kOrders);
    appendonly::DynamicFeedManager da_feed(kOrders);
    model::CostBreakdown sa_traffic = sa_feed.Run(feed);
    model::CostBreakdown da_traffic = da_feed.Run(feed);

    model::Schedule mapped = feed.ToObjectSchedule();
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    bool sa_eq =
        core::RunWithCost(sa, sc, mapped, kOrders).breakdown == sa_traffic;
    bool da_eq =
        core::RunWithCost(da, sc, mapped, kOrders).breakdown == da_traffic;
    equivalence = equivalence && sa_eq && da_eq;

    table.AddRow()
        .Cell(rate, 1)
        .Cell(sa_traffic.Cost(sc), 1)
        .Cell(da_traffic.Cost(sc), 1)
        .Cell(sa_traffic.Cost(sc) <= da_traffic.Cost(sc) ? "SA" : "DA")
        .Cell(sa_eq ? "EXACT" : "MISMATCH")
        .Cell(da_eq ? "EXACT" : "MISMATCH");
  }
  table.WriteAligned(std::cout);
  std::cout << "\n(low read rates favor SA's fixed orders — every image is "
               "pushed to t stations regardless; higher read rates favor "
               "DA's temporary orders, which turn repeat readers local)\n\n";

  PrintPaperVsMeasured(std::cout,
                       "the allocation results apply verbatim to the "
                       "append-only model (§6.2)",
                       equivalence
                           ? "feed-manager accounting identical to the DOM "
                             "algorithms at every read rate"
                           : "equivalence broken",
                       equivalence);
  return equivalence ? 0 : 1;
}
