// Experiment E16 (extension) — probing Figure 1's "Unknown" band. The band
// exists because DA's lower bound (1.5, Prop. 2) and its upper bound
// (2 + 2cc, Theorem 2) do not meet; "the gap ... is the subject of future
// research" (§6.1). A randomized adversarial schedule search maximizes
// DA/OPT at points inside the band: every schedule found certifies a lower
// bound on DA's competitive factor there (the ratio is measured against
// the exact offline OPT), squeezing the gap from below.

#include <iostream>

#include "objalloc/analysis/adversarial_search.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/util/csv.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  std::cout << "\n==== E16: adversarial search inside Figure 1's unknown "
               "band (n=6, t=2) ====\n\n";

  SearchOptions options;
  options.num_processors = 6;
  options.t = 2;
  options.schedule_length = 48;
  options.max_length = 96;
  options.iterations = 300;
  options.restarts = 3;

  util::Table table({"cc", "cd", "region", "DA_lower(paper)",
                     "DA_found(search)", "DA_upper(paper)", "gap_closed"});
  bool sound = true;
  for (auto [cc, cd] : {std::pair{0.1, 0.4}, {0.25, 0.3}, {0.2, 0.6},
                        {0.1, 0.8}, {0.4, 0.6}, {0.3, 0.9}}) {
    model::CostModel cm = model::CostModel::StationaryComputing(cc, cd);
    core::DynamicAllocation da;
    options.seed = static_cast<uint64_t>(cc * 1000 + cd * 10);
    SearchResult found = FindAdversarialSchedule(da, cm, options);
    double upper = DaCompetitiveFactor(cm);
    sound = sound && found.best_ratio <= upper + 1e-6 &&
            found.best_ratio >= 1.0;
    double gap = upper - kDaLowerBound;
    double closed = (found.best_ratio - kDaLowerBound) / gap;
    table.AddRow()
        .Cell(cc, 2)
        .Cell(cd, 2)
        .Cell(RegionToString(ClassifyStationary(cc, cd)))
        .Cell(kDaLowerBound, 3)
        .Cell(found.best_ratio, 3)
        .Cell(upper, 3)
        .Cell(closed > 0 ? util::FormatDouble(100 * closed, 0) + "%"
                         : "0%");
  }
  table.WriteAligned(std::cout);

  std::cout << "\n  paper:    the competitiveness of DA between 1.5 and "
               "2+2cc is open (§6.1)\n";
  std::cout << "  measured: the searched schedules certify tighter lower "
               "bounds inside the band, never crossing the analytic upper "
               "bound\n";
  std::cout << "  verdict:  " << (sound ? "CONSISTENT" : "INCONSISTENT")
            << "\n";
  return sound ? 0 : 1;
}
