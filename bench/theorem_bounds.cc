// Experiment E3 — the paper's competitive-factor results as a table:
//
//   Theorem 1  SA is (1+cc+cd)-competitive in SC (tight, Proposition 1)
//   Theorem 2  DA is (2+2cc)-competitive in SC
//   Theorem 3  DA is (2+cc)-competitive in SC when cd > 1
//   Theorem 4  DA is (2+3cc/cd)-competitive in MC (at most 5)
//   Prop. 2    DA is not alpha-competitive for alpha < 1.5
//   Prop. 3    SA is not competitive in MC
//
// For each (model, cc, cd): the analytic factor, the worst measured ratio
// against the exact offline OPT over the adversarial ensemble, and the mean
// ratio over the same ensemble. Lower-bound rows show the nemesis-driven
// ratio series converging to the analytic constants.

#include <cmath>
#include <iostream>

#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/report.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/adversary.h"
#include "objalloc/workload/ensemble.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  RatioOptions options;
  options.num_processors = 7;
  options.t = 2;
  options.schedule_length = 140;
  options.seeds_per_generator = 3;

  const std::pair<double, double> grid[] = {
      {0.0, 0.0}, {0.1, 0.2},  {0.25, 0.25}, {0.1, 0.6}, {0.5, 0.5},
      {0.5, 1.0}, {0.0, 1.5},  {0.5, 2.0},   {1.0, 2.0},
  };

  bool all_ok = true;

  PrintExperimentHeader(std::cout, "E3a",
                        "Upper bounds: worst measured ratio vs analytic "
                        "factor (exact OPT yardstick)");
  util::Table table({"model", "algorithm", "cc", "cd", "analytic_factor",
                     "worst_ratio", "mean_ratio", "worst_generator",
                     "within_bound"});
  auto generators = workload::WorstCaseEnsemble(options.t);
  for (bool mobile : {false, true}) {
    for (auto [cc, cd] : grid) {
      if (mobile && cd == 0) continue;
      model::CostModel cost_model =
          mobile ? model::CostModel::MobileComputing(cc, cd)
                 : model::CostModel::StationaryComputing(cc, cd);
      for (int alg = 0; alg < 2; ++alg) {
        if (alg == 0 && mobile) continue;  // SA has no MC bound (Prop. 3)
        core::StaticAllocation sa;
        core::DynamicAllocation da;
        core::DomAlgorithm& algorithm =
            alg == 0 ? static_cast<core::DomAlgorithm&>(sa)
                     : static_cast<core::DomAlgorithm&>(da);
        double bound = alg == 0 ? SaCompetitiveFactor(cost_model).value()
                                : DaCompetitiveFactor(cost_model);
        RatioSummary summary = MeasureCompetitiveRatio(algorithm, cost_model,
                                                       generators, options);
        bool within = summary.worst.ratio <= bound + 0.05;
        all_ok = all_ok && within;
        table.AddRow()
            .Cell(mobile ? "MC" : "SC")
            .Cell(algorithm.name())
            .Cell(cc, 2)
            .Cell(cd, 2)
            .Cell(bound, 3)
            .Cell(summary.worst.ratio, 3)
            .Cell(summary.mean_ratio, 3)
            .Cell(summary.worst.generator)
            .Cell(within ? "yes" : "NO");
      }
    }
  }
  table.WriteAligned(std::cout);

  PrintExperimentHeader(std::cout, "E3b",
                        "Proposition 1: SA nemesis ratio converging to the "
                        "tight factor 1+cc+cd (SC, cc=0.5 cd=1.0)");
  {
    model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
    workload::SaNemesis nemesis(options.t);
    util::Table series({"schedule_length", "SA/OPT", "analytic_limit"});
    core::StaticAllocation sa;
    double last = 0;
    for (size_t length : {20u, 40u, 80u, 160u, 320u, 640u}) {
      model::Schedule schedule =
          nemesis.Generate(options.num_processors, length, 1);
      last = RatioOnSchedule(sa, sc, schedule,
                             model::ProcessorSet::FirstN(options.t));
      series.AddRow().Cell(static_cast<int64_t>(length)).Cell(last, 4).Cell(
          SaCompetitiveFactor(sc).value(), 4);
    }
    series.WriteAligned(std::cout);
    bool tight = last > SaCompetitiveFactor(sc).value() - 0.02;
    all_ok = all_ok && tight;
    PrintPaperVsMeasured(std::cout, "SA's factor 1+cc+cd is tight (Prop. 1)",
                         "nemesis ratio " + util::FormatDouble(last, 4) +
                             " vs limit " +
                             util::FormatDouble(
                                 SaCompetitiveFactor(sc).value(), 4),
                         tight);
  }

  PrintExperimentHeader(std::cout, "E3c",
                        "Proposition 2: DA ratio >= 1.5 in the region where "
                        "the paper declares SA superior (cc+cd < 0.5)");
  {
    util::Table series({"cc", "cd", "DA/OPT_on_nemesis", ">=1.5"});
    bool prop2 = true;
    for (auto [cc, cd] :
         {std::pair{0.0, 0.0}, {0.05, 0.1}, {0.1, 0.2}, {0.2, 0.25}}) {
      model::CostModel sc = model::CostModel::StationaryComputing(cc, cd);
      workload::DaNemesis nemesis(options.t, 4);
      core::DynamicAllocation da;
      model::Schedule schedule =
          nemesis.Generate(options.num_processors, 240, 1);
      double ratio = RatioOnSchedule(da, sc, schedule,
                                     model::ProcessorSet::FirstN(options.t));
      prop2 = prop2 && ratio >= kDaLowerBound;
      series.AddRow().Cell(cc, 2).Cell(cd, 2).Cell(ratio, 4).Cell(
          ratio >= kDaLowerBound ? "yes" : "NO");
    }
    series.WriteAligned(std::cout);
    all_ok = all_ok && prop2;
    PrintPaperVsMeasured(std::cout, "DA is not alpha-competitive for a<1.5",
                         "join-churn nemesis exceeds 1.5 throughout the "
                         "SA-superior region",
                         prop2);
  }

  PrintExperimentHeader(std::cout, "E3d",
                        "Proposition 3: SA's MC ratio grows without bound "
                        "(cc=0.25 cd=1.0)");
  {
    model::CostModel mc = model::CostModel::MobileComputing(0.25, 1.0);
    workload::SaNemesis nemesis(options.t);
    core::StaticAllocation sa;
    util::Table series({"schedule_length", "SA/OPT"});
    double previous = 0, last = 0;
    bool growing = true;
    for (size_t length : {25u, 50u, 100u, 200u, 400u, 800u}) {
      model::Schedule schedule =
          nemesis.Generate(options.num_processors, length, 1);
      last = RatioOnSchedule(sa, mc, schedule,
                             model::ProcessorSet::FirstN(options.t));
      series.AddRow().Cell(static_cast<int64_t>(length)).Cell(last, 2);
      growing = growing && last > previous * 1.8;
      previous = last;
    }
    series.WriteAligned(std::cout);
    all_ok = all_ok && growing && last > 100;
    PrintPaperVsMeasured(
        std::cout, "SA is not competitive in MC (Prop. 3)",
        "ratio doubles with schedule length, reaching " +
            util::FormatDouble(last, 1) + " at length 800",
        growing && last > 100);
  }

  std::cout << "\noverall: " << (all_ok ? "ALL REPRODUCED" : "FAILURES")
            << "\n";
  return all_ok ? 0 : 1;
}
