// Experiment E4 — the paper's §2 remark that the competitive factors are
// "independent of the integer t which limits the minimum number of copies".
// Sweep t with the cost parameters fixed and report each algorithm's worst
// measured ratio: the rows should stay flat (and below the t-free analytic
// factor).

#include <iostream>

#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/report.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/ensemble.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  PrintExperimentHeader(std::cout, "E4",
                        "Competitive factors are independent of t (SC, "
                        "cc=0.25 cd=0.5; MC, cc=0.25 cd=1.0)");

  bool all_ok = true;
  for (bool mobile : {false, true}) {
    model::CostModel cost_model =
        mobile ? model::CostModel::MobileComputing(0.25, 1.0)
               : model::CostModel::StationaryComputing(0.25, 0.5);
    util::Table table({"model", "t", "SA_worst", "DA_worst",
                       "DA_analytic_factor", "DA_within"});
    for (int t = 2; t <= 5; ++t) {
      RatioOptions options;
      options.num_processors = 8;
      options.t = t;
      options.schedule_length = 120;
      options.seeds_per_generator = 3;
      auto generators = workload::WorstCaseEnsemble(t);

      core::StaticAllocation sa;
      core::DynamicAllocation da;
      RatioSummary sa_summary =
          MeasureCompetitiveRatio(sa, cost_model, generators, options);
      RatioSummary da_summary =
          MeasureCompetitiveRatio(da, cost_model, generators, options);
      double da_bound = DaCompetitiveFactor(cost_model);
      bool within = da_summary.worst.ratio <= da_bound + 0.05;
      all_ok = all_ok && within;
      table.AddRow()
          .Cell(mobile ? "MC" : "SC")
          .Cell(t)
          .Cell(sa_summary.worst.ratio, 3)
          .Cell(da_summary.worst.ratio, 3)
          .Cell(da_bound, 3)
          .Cell(within ? "yes" : "NO");
    }
    table.WriteAligned(std::cout);
    std::cout << "\n";
  }
  PrintPaperVsMeasured(std::cout,
                       "competitiveness factors independent of t (§2)",
                       "DA's worst ratio stays below its t-free analytic "
                       "factor for every t in 2..5",
                       all_ok);
  return all_ok ? 0 : 1;
}
