// Recovery-time benchmark for the durability layer (DESIGN.md §10).
//
// Three questions, one table:
//   1. What does durability cost while serving? (events/sec with the WAL
//      attached vs the plain engine — the zero-durability row, which must
//      also reproduce the committed golden fingerprint bit for bit.)
//   2. How fast does recovery replay? (replayed events/sec through the
//      deterministic serving engine.)
//   3. How does the checkpoint interval trade serving overhead against
//      recovery time? (Longer WAL tail => cheaper serving, slower recovery.)
//
// Every durable run and every recovery is asserted bit-identical to the
// plain run's fingerprint — a recovery that is fast but wrong fails the
// bench, not just the numbers.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/io.h"
#include "objalloc/util/logging.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

struct Fingerprint {
  model::CostBreakdown breakdown;
  int64_t requests = 0;
  uint32_t scheme_crc = 0;

  bool operator==(const Fingerprint& other) const {
    return breakdown == other.breakdown && requests == other.requests &&
           scheme_crc == other.scheme_crc;
  }
};

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

Fingerprint Capture(const core::ObjectService& service) {
  Fingerprint fingerprint;
  fingerprint.breakdown = service.TotalBreakdown();
  fingerprint.requests = service.TotalRequests();
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  fingerprint.scheme_crc = crc;
  return fingerprint;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

struct Row {
  size_t checkpoint_interval = 0;
  size_t group_commit_delay_us = 0;
  bool delta = false;  // delta checkpoints on (delta_chain_limit > 0)
  double serve_seconds = 0;
  double durable_events_per_sec = 0;
  double overhead_vs_plain = 0;  // serve time ratio, 1.0 = free
  uint64_t group_commits = 0;
  double commit_latency_p50_us = 0;
  double commit_latency_p99_us = 0;
  uint64_t checkpoints_taken = 0;
  uint64_t delta_checkpoints_applied = 0;
  uint64_t wal_tail_events = 0;
  uint64_t wal_tail_bytes = 0;
  double recover_seconds = 0;         // coalesced parallel replay (default)
  double serial_recover_seconds = 0;  // replay_batch_events = 0
  double replay_speedup = 0;          // serial / parallel recovery time
  double replay_events_per_sec = 0;   // valid only when wal_tail_events > 0
};

std::vector<size_t> ParseSizeList(const std::string& arg, const char* flag) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end != token.c_str() + token.size()) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(static_cast<size_t>(value));
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  std::string dir_root =
      (std::filesystem::temp_directory_path() / "objalloc_recovery_bench")
          .string();
  size_t events = 100000;
  int objects = 512;
  int processors = 16;
  size_t batch_size = 8192;
  int repeats = 2;
  // 0 = no auto-checkpoint: the WAL tail is the whole history.
  std::vector<size_t> intervals = {0, 25000, 100000};
  // Group-commit windows (µs) to sweep; 0 = sync every group immediately.
  std::vector<size_t> windows = {0, 500};
  size_t delta_chain = 4;  // delta_chain_limit for the delta-on rows
  // How sealed WAL bytes reach stable storage. "none" skips the sync
  // syscall entirely: it measures the pipeline's compute overhead (encode,
  // buffer handoff, log-thread writes) independent of the host's disk, and
  // is what the CI perf gate uses. Results with "none" are NOT a durability
  // claim.
  util::SyncMode sync_mode = util::SyncMode::kFsync;
  std::string sync_mode_name = "fsync";
  long long expect_control = -1, expect_data = -1, expect_io = -1,
            expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir_root = arg.substr(6);
    } else if (arg.rfind("--intervals=", 0) == 0) {
      intervals = ParseSizeList(arg.substr(12), "--intervals=");
    } else if (arg.rfind("--windows=", 0) == 0) {
      windows = ParseSizeList(arg.substr(10), "--windows=");
    } else if (arg.rfind("--sync_mode=", 0) == 0) {
      sync_mode_name = arg.substr(12);
      if (sync_mode_name == "fsync") {
        sync_mode = util::SyncMode::kFsync;
      } else if (sync_mode_name == "fdatasync") {
        sync_mode = util::SyncMode::kFdatasync;
      } else if (sync_mode_name == "none") {
        sync_mode = util::SyncMode::kNone;
      } else {
        std::fprintf(stderr, "bad --sync_mode (fsync|fdatasync|none): %s\n",
                     sync_mode_name.c_str());
        return 1;
      }
    } else if (int_flag("--delta_chain=", &delta_chain) ||
               int_flag("--events=", &events) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--repeats=", &repeats) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t kSeed = 0x5eed5ca1e;  // same trace as service_scaling
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  std::printf("generating %zu events over %d objects, %d processors...\n",
              events, objects, processors);
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, kSeed);
  const std::span<const workload::MultiObjectEvent> all(trace.events);
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  auto serve_all = [&](core::ObjectService& service) {
    for (size_t pos = 0; pos < all.size(); pos += batch_size) {
      const size_t n = std::min(batch_size, all.size() - pos);
      auto result = service.ServeBatch(all.subspan(pos, n));
      OBJALLOC_CHECK(result.ok()) << result.status().ToString();
    }
  };

  // --- Zero-durability row: the plain engine, golden-checked -----------
  Fingerprint plain;
  double plain_seconds = 0;
  {
    double best = 0;
    for (int r = 0; r < repeats; ++r) {
      core::ObjectService service(processors, sc);
      service.ReserveObjects(static_cast<size_t>(objects));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
      }
      auto start = std::chrono::steady_clock::now();
      serve_all(service);
      auto stop = std::chrono::steady_clock::now();
      const double seconds = Seconds(start, stop);
      if (r == 0 || seconds < best) best = seconds;
      plain = Capture(service);
    }
    plain_seconds = best;
    std::printf("%-32s %12.0f events/sec   fingerprint control=%lld "
                "data=%lld io=%lld crc=%u\n",
                "plain engine (durability off)",
                static_cast<double>(events) / best,
                static_cast<long long>(plain.breakdown.control_messages),
                static_cast<long long>(plain.breakdown.data_messages),
                static_cast<long long>(plain.breakdown.io_ops),
                plain.scheme_crc);
  }
  auto check_golden = [](const char* name, long long expect, long long got) {
    if (expect >= 0 && expect != got) {
      std::fprintf(stderr,
                   "GOLDEN MISMATCH: %s expected %lld, got %lld\n", name,
                   expect, got);
      std::exit(1);
    }
  };
  check_golden("control", expect_control,
               plain.breakdown.control_messages);
  check_golden("data", expect_data, plain.breakdown.data_messages);
  check_golden("io", expect_io, plain.breakdown.io_ops);
  check_golden("scheme_crc", expect_crc,
               static_cast<long long>(plain.scheme_crc));

  // --- Durable rows: serve with WAL attached, then recover -------------
  // Sweep checkpoint interval × group-commit window × delta on/off (delta
  // is meaningless without auto-checkpoints, so interval=0 skips it).
  std::vector<Row> rows;
  for (size_t interval : intervals) {
    for (size_t window : windows) {
      for (int use_delta = 0; use_delta <= (interval > 0 ? 1 : 0);
           ++use_delta) {
    const std::string dir = dir_root + "/interval_" +
                            std::to_string(interval) + "_w" +
                            std::to_string(window) + (use_delta ? "_d" : "");
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Row row;
    row.checkpoint_interval = interval;
    row.group_commit_delay_us = window;
    row.delta = use_delta != 0;
    core::DurabilityOptions durability;
    durability.checkpoint_interval_events = interval;
    durability.group_commit_delay_us = static_cast<uint32_t>(window);
    durability.delta_chain_limit = use_delta ? delta_chain : 0;
    durability.sync_mode = sync_mode;
    {
      core::ObjectService service(processors, sc);
      service.ReserveObjects(static_cast<size_t>(objects));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
      }
      OBJALLOC_CHECK(service.EnableDurability(dir, durability).ok());
      auto start = std::chrono::steady_clock::now();
      serve_all(service);
      OBJALLOC_CHECK(service.SyncDurable().ok());
      auto stop = std::chrono::steady_clock::now();
      row.serve_seconds = Seconds(start, stop);
      const core::WalCommitStats commit = service.DurableCommitStats();
      row.group_commits = commit.group_commits;
      row.commit_latency_p50_us = commit.commit_latency_p50_us;
      row.commit_latency_p99_us = commit.commit_latency_p99_us;
      const Fingerprint durable = Capture(service);
      OBJALLOC_CHECK(durable == plain)
          << "durable serving diverged from the plain engine";
      // The service dies here; the directory is the crash image.
    }
    row.durable_events_per_sec =
        static_cast<double>(events) / row.serve_seconds;
    row.overhead_vs_plain = row.serve_seconds / plain_seconds;

    // Recover twice per repeat: once with coalesced parallel replay (the
    // default) and once record-by-record (replay_batch_events = 0). Both
    // must land on the same golden fingerprint.
    double best_recover = 0, best_serial = 0;
    core::RecoveryReport report;
    core::DurabilityOptions serial = durability;
    serial.replay_batch_events = 0;
    for (int r = 0; r < repeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      auto recovered = core::ObjectService::Recover(dir, durability, &report);
      auto stop = std::chrono::steady_clock::now();
      OBJALLOC_CHECK(recovered.ok()) << recovered.status().ToString();
      const double seconds = Seconds(start, stop);
      if (r == 0 || seconds < best_recover) best_recover = seconds;
      const Fingerprint after = Capture(*recovered);
      OBJALLOC_CHECK(after == plain)
          << "recovery diverged from the plain engine";

      auto serial_start = std::chrono::steady_clock::now();
      auto serial_recovered = core::ObjectService::Recover(dir, serial);
      auto serial_stop = std::chrono::steady_clock::now();
      OBJALLOC_CHECK(serial_recovered.ok())
          << serial_recovered.status().ToString();
      const double serial_seconds = Seconds(serial_start, serial_stop);
      if (r == 0 || serial_seconds < best_serial) {
        best_serial = serial_seconds;
      }
      const Fingerprint serial_after = Capture(*serial_recovered);
      OBJALLOC_CHECK(serial_after == plain)
          << "serial replay diverged from the plain engine";
    }
    row.recover_seconds = best_recover;
    row.serial_recover_seconds = best_serial;
    row.replay_speedup = best_recover > 0 ? best_serial / best_recover : 0;
    row.checkpoints_taken = report.checkpoint_sequence - 1;
    row.delta_checkpoints_applied = report.delta_checkpoints_applied;
    row.wal_tail_events = report.events_replayed;
    auto wal_size = util::FileSize(
        dir + "/" + core::WalFileName(report.checkpoint_sequence));
    row.wal_tail_bytes = wal_size.ok() ? *wal_size : 0;
    // An empty tail has no replay rate (the old 0 here read as "infinitely
    // slow"); the JSON emits null and the table a dash.
    row.replay_events_per_sec =
        row.wal_tail_events == 0
            ? 0
            : static_cast<double>(row.wal_tail_events) / best_recover;
    rows.push_back(row);
    char replay_text[32];
    if (row.wal_tail_events == 0) {
      std::snprintf(replay_text, sizeof(replay_text), "%10s", "-");
    } else {
      std::snprintf(replay_text, sizeof(replay_text), "%10.0f",
                    row.replay_events_per_sec);
    }
    std::printf("interval=%-8zu window=%-4zuus delta=%d  serve %6.3fs "
                "(%5.2fx plain)  commit p50/p99 %6.0f/%6.0fus  "
                "tail %7llu events  recover %7.4fs (serial %7.4fs, %4.2fx)  "
                "replay %s events/sec\n",
                interval, window, use_delta, row.serve_seconds,
                row.overhead_vs_plain, row.commit_latency_p50_us,
                row.commit_latency_p99_us,
                static_cast<unsigned long long>(row.wal_tail_events),
                row.recover_seconds, row.serial_recover_seconds,
                row.replay_speedup, replay_text);
    std::filesystem::remove_all(dir);
      }
    }
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot open " << out_path;
  out << "{\n";
  out << "  \"benchmark\": \"recovery_time\",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"objects\": " << objects << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"sync_mode\": \"" << sync_mode_name << "\",\n";
  out << "  \"plain_events_per_sec\": "
      << static_cast<double>(events) / plain_seconds << ",\n";
  // Best durable throughput across the sweep relative to the plain engine
  // (1.0 = durability is free); the CI perf gate reads the per-row
  // overhead_vs_plain values.
  double best_overhead = 0;
  for (const Row& row : rows) {
    if (best_overhead == 0 || row.overhead_vs_plain < best_overhead) {
      best_overhead = row.overhead_vs_plain;
    }
  }
  out << "  \"durable_over_plain\": " << best_overhead << ",\n";
  out << "  \"fingerprint\": {\"control\": "
      << plain.breakdown.control_messages
      << ", \"data\": " << plain.breakdown.data_messages
      << ", \"io\": " << plain.breakdown.io_ops
      << ", \"scheme_crc\": " << plain.scheme_crc << "},\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"checkpoint_interval\": " << row.checkpoint_interval
        << ", \"group_commit_delay_us\": " << row.group_commit_delay_us
        << ", \"delta\": " << (row.delta ? "true" : "false")
        << ", \"serve_seconds\": " << row.serve_seconds
        << ", \"durable_events_per_sec\": " << row.durable_events_per_sec
        << ", \"overhead_vs_plain\": " << row.overhead_vs_plain
        << ", \"group_commits\": " << row.group_commits
        << ", \"commit_latency_p50_us\": " << row.commit_latency_p50_us
        << ", \"commit_latency_p99_us\": " << row.commit_latency_p99_us
        << ", \"checkpoints_taken\": " << row.checkpoints_taken
        << ", \"delta_checkpoints_applied\": "
        << row.delta_checkpoints_applied
        << ", \"wal_tail_events\": " << row.wal_tail_events
        << ", \"wal_tail_bytes\": " << row.wal_tail_bytes
        << ", \"recover_seconds\": " << row.recover_seconds
        << ", \"serial_recover_seconds\": " << row.serial_recover_seconds
        << ", \"replay_speedup\": " << row.replay_speedup
        << ", \"replay_events_per_sec\": ";
    if (row.wal_tail_events == 0) {
      out << "null";
    } else {
      out << row.replay_events_per_sec;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
