// Recovery-time benchmark for the durability layer (DESIGN.md §10).
//
// Three questions, one table:
//   1. What does durability cost while serving? (events/sec with the WAL
//      attached vs the plain engine — the zero-durability row, which must
//      also reproduce the committed golden fingerprint bit for bit.)
//   2. How fast does recovery replay? (replayed events/sec through the
//      deterministic serving engine.)
//   3. How does the checkpoint interval trade serving overhead against
//      recovery time? (Longer WAL tail => cheaper serving, slower recovery.)
//
// Every durable run and every recovery is asserted bit-identical to the
// plain run's fingerprint — a recovery that is fast but wrong fails the
// bench, not just the numbers.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/io.h"
#include "objalloc/util/logging.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

struct Fingerprint {
  model::CostBreakdown breakdown;
  int64_t requests = 0;
  uint32_t scheme_crc = 0;

  bool operator==(const Fingerprint& other) const {
    return breakdown == other.breakdown && requests == other.requests &&
           scheme_crc == other.scheme_crc;
  }
};

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

Fingerprint Capture(const core::ObjectService& service) {
  Fingerprint fingerprint;
  fingerprint.breakdown = service.TotalBreakdown();
  fingerprint.requests = service.TotalRequests();
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  fingerprint.scheme_crc = crc;
  return fingerprint;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

struct Row {
  size_t checkpoint_interval = 0;
  double serve_seconds = 0;
  double durable_events_per_sec = 0;
  double overhead_vs_plain = 0;  // serve time ratio, 1.0 = free
  uint64_t checkpoints_taken = 0;
  uint64_t wal_tail_events = 0;
  uint64_t wal_tail_bytes = 0;
  double recover_seconds = 0;
  double replay_events_per_sec = 0;
};

std::vector<size_t> ParseSizeList(const std::string& arg, const char* flag) {
  std::vector<size_t> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    char* end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (token.empty() || end != token.c_str() + token.size()) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(static_cast<size_t>(value));
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_recovery.json";
  std::string dir_root =
      (std::filesystem::temp_directory_path() / "objalloc_recovery_bench")
          .string();
  size_t events = 100000;
  int objects = 512;
  int processors = 16;
  size_t batch_size = 8192;
  int repeats = 2;
  // 0 = no auto-checkpoint: the WAL tail is the whole history.
  std::vector<size_t> intervals = {0, 25000, 100000};
  long long expect_control = -1, expect_data = -1, expect_io = -1,
            expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir_root = arg.substr(6);
    } else if (arg.rfind("--intervals=", 0) == 0) {
      intervals = ParseSizeList(arg.substr(12), "--intervals=");
    } else if (int_flag("--events=", &events) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--repeats=", &repeats) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t kSeed = 0x5eed5ca1e;  // same trace as service_scaling
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  std::printf("generating %zu events over %d objects, %d processors...\n",
              events, objects, processors);
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, kSeed);
  const std::span<const workload::MultiObjectEvent> all(trace.events);
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  auto serve_all = [&](core::ObjectService& service) {
    for (size_t pos = 0; pos < all.size(); pos += batch_size) {
      const size_t n = std::min(batch_size, all.size() - pos);
      auto result = service.ServeBatch(all.subspan(pos, n));
      OBJALLOC_CHECK(result.ok()) << result.status().ToString();
    }
  };

  // --- Zero-durability row: the plain engine, golden-checked -----------
  Fingerprint plain;
  double plain_seconds = 0;
  {
    double best = 0;
    for (int r = 0; r < repeats; ++r) {
      core::ObjectService service(processors, sc);
      service.ReserveObjects(static_cast<size_t>(objects));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
      }
      auto start = std::chrono::steady_clock::now();
      serve_all(service);
      auto stop = std::chrono::steady_clock::now();
      const double seconds = Seconds(start, stop);
      if (r == 0 || seconds < best) best = seconds;
      plain = Capture(service);
    }
    plain_seconds = best;
    std::printf("%-32s %12.0f events/sec   fingerprint control=%lld "
                "data=%lld io=%lld crc=%u\n",
                "plain engine (durability off)",
                static_cast<double>(events) / best,
                static_cast<long long>(plain.breakdown.control_messages),
                static_cast<long long>(plain.breakdown.data_messages),
                static_cast<long long>(plain.breakdown.io_ops),
                plain.scheme_crc);
  }
  auto check_golden = [](const char* name, long long expect, long long got) {
    if (expect >= 0 && expect != got) {
      std::fprintf(stderr,
                   "GOLDEN MISMATCH: %s expected %lld, got %lld\n", name,
                   expect, got);
      std::exit(1);
    }
  };
  check_golden("control", expect_control,
               plain.breakdown.control_messages);
  check_golden("data", expect_data, plain.breakdown.data_messages);
  check_golden("io", expect_io, plain.breakdown.io_ops);
  check_golden("scheme_crc", expect_crc,
               static_cast<long long>(plain.scheme_crc));

  // --- Durable rows: serve with WAL attached, then recover -------------
  std::vector<Row> rows;
  for (size_t interval : intervals) {
    const std::string dir =
        dir_root + "/interval_" + std::to_string(interval);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    Row row;
    row.checkpoint_interval = interval;
    core::DurabilityOptions durability;
    durability.checkpoint_interval_events = interval;
    {
      core::ObjectService service(processors, sc);
      service.ReserveObjects(static_cast<size_t>(objects));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
      }
      OBJALLOC_CHECK(service.EnableDurability(dir, durability).ok());
      auto start = std::chrono::steady_clock::now();
      serve_all(service);
      OBJALLOC_CHECK(service.SyncDurable().ok());
      auto stop = std::chrono::steady_clock::now();
      row.serve_seconds = Seconds(start, stop);
      const Fingerprint durable = Capture(service);
      OBJALLOC_CHECK(durable == plain)
          << "durable serving diverged from the plain engine";
      // The service dies here; the directory is the crash image.
    }
    row.durable_events_per_sec =
        static_cast<double>(events) / row.serve_seconds;
    row.overhead_vs_plain = row.serve_seconds / plain_seconds;

    double best_recover = 0;
    core::RecoveryReport report;
    for (int r = 0; r < repeats; ++r) {
      auto start = std::chrono::steady_clock::now();
      auto recovered = core::ObjectService::Recover(dir, durability, &report);
      auto stop = std::chrono::steady_clock::now();
      OBJALLOC_CHECK(recovered.ok()) << recovered.status().ToString();
      const double seconds = Seconds(start, stop);
      if (r == 0 || seconds < best_recover) best_recover = seconds;
      const Fingerprint after = Capture(*recovered);
      OBJALLOC_CHECK(after == plain)
          << "recovery diverged from the plain engine";
    }
    row.recover_seconds = best_recover;
    row.checkpoints_taken = report.checkpoint_sequence - 1;
    row.wal_tail_events = report.events_replayed;
    auto wal_size = util::FileSize(
        dir + "/" + core::WalFileName(report.checkpoint_sequence));
    row.wal_tail_bytes = wal_size.ok() ? *wal_size : 0;
    row.replay_events_per_sec =
        row.wal_tail_events == 0
            ? 0
            : static_cast<double>(row.wal_tail_events) / best_recover;
    rows.push_back(row);
    std::printf("interval=%-8zu serve %6.3fs (%5.2fx plain)  "
                "tail %7llu events %9llu bytes  recover %7.4fs  "
                "replay %10.0f events/sec\n",
                interval, row.serve_seconds, row.overhead_vs_plain,
                static_cast<unsigned long long>(row.wal_tail_events),
                static_cast<unsigned long long>(row.wal_tail_bytes),
                row.recover_seconds, row.replay_events_per_sec);
    std::filesystem::remove_all(dir);
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot open " << out_path;
  out << "{\n";
  out << "  \"benchmark\": \"recovery_time\",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"objects\": " << objects << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"plain_events_per_sec\": "
      << static_cast<double>(events) / plain_seconds << ",\n";
  out << "  \"fingerprint\": {\"control\": "
      << plain.breakdown.control_messages
      << ", \"data\": " << plain.breakdown.data_messages
      << ", \"io\": " << plain.breakdown.io_ops
      << ", \"scheme_crc\": " << plain.scheme_crc << "},\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"checkpoint_interval\": " << row.checkpoint_interval
        << ", \"serve_seconds\": " << row.serve_seconds
        << ", \"durable_events_per_sec\": " << row.durable_events_per_sec
        << ", \"overhead_vs_plain\": " << row.overhead_vs_plain
        << ", \"checkpoints_taken\": " << row.checkpoints_taken
        << ", \"wal_tail_events\": " << row.wal_tail_events
        << ", \"wal_tail_bytes\": " << row.wal_tail_bytes
        << ", \"recover_seconds\": " << row.recover_seconds
        << ", \"replay_events_per_sec\": " << row.replay_events_per_sec
        << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
