// Memory-footprint scaling of the storage engine: bytes/object, build and
// serve throughput, and checkpoint/recovery time at object counts from
// hundreds to millions. The companion to service_scaling — that bench asks
// how fast the engine serves; this one asks how much engine there is per
// object, and whether it stays flat as the population grows by four orders
// of magnitude.
//
// Usage: footprint_scaling [--out=BENCH_footprint_scaling.json]
//                          [--objects=512,100000,1000000] [--events=1000000]
//                          [--processors=16] [--shards=16] [--batch=8192]
//                          [--max_bytes_per_object=N]
//                          [--grid_events=100000]
//                          [--expect_control=N] [--expect_data=N]
//                          [--expect_io=N] [--expect_crc=N]
//
// Per object-count row: register the population (Zipf workload
// personalities pick each object's kind and initial scheme), read
// ObjectService::MemoryUsageBytes() — the page-level accounting walk, not
// an RSS guess — serve a Zipf event stream, then stream a checkpoint to
// disk and recover from it, timing both directions. 10^7 objects is
// opt-in via --objects; the default sweep tops out at 10^6.
//
// --max_bytes_per_object is the CI footprint gate: rows with >= 10^6
// objects (where per-object cost dominates fixed overhead and slab-page
// slack) must fit the budget or the bench exits non-zero.
//
// Determinism rides along: before the sweep, a shards {1,4,16} x threads
// {1,2,hw} grid serves the same 512-object Zipf trace and every config
// must produce byte-identical breakdowns and scheme CRCs; the --expect_*
// flags pin that fingerprint to committed golden values, extending the
// bit-identity gate to the Zipf generator and the slab storage layer.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/zipf_objects.h"

namespace {

using namespace objalloc;

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

// Peak RSS of the process so far, in bytes (ru_maxrss is KiB on Linux).
// Monotone across rows — meaningful as "the sweep up to here fit in X".
size_t PeakRssBytes() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

// Registration config from the object's workload personality: read-mostly
// objects get the static allocator, the rest the dynamic one — both
// inlined kinds — and every object starts allocated at its own hot set.
core::ObjectConfig ConfigFor(
    const workload::ZipfObjectGenerator::Personality& personality) {
  core::ObjectConfig config;
  config.initial_scheme = personality.HomeSet();
  config.algorithm = personality.read_fraction >= 0.85
                         ? core::AlgorithmKind::kStatic
                         : core::AlgorithmKind::kDynamic;
  return config;
}

uint32_t SchemeCrc(const core::ObjectService& service) {
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  return crc;
}

std::vector<long long> ParseCountList(const std::string& arg,
                                      const char* flag) {
  std::vector<long long> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    long long value = 0;
    try {
      size_t used = 0;
      value = std::stoll(token, &used);
      if (used != token.size()) value = 0;
    } catch (const std::exception&) {
      value = 0;
    }
    if (value <= 0) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(value);
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

struct Row {
  long long objects = 0;
  double register_per_sec = 0;
  size_t memory_bytes = 0;
  double bytes_per_object = 0;
  double events_per_sec = 0;
  double checkpoint_seconds = 0;
  size_t checkpoint_bytes = 0;
  double recover_seconds = 0;
  size_t peak_rss_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_footprint_scaling.json";
  std::vector<long long> object_counts = {512, 100000, 1000000};
  size_t events = 1000000;
  int processors = 16;
  int shards = 16;
  size_t batch_size = 8192;
  long long max_bytes_per_object = 0;  // 0 = no gate
  size_t grid_events = 100000;
  long long expect_control = -1;
  long long expect_data = -1;
  long long expect_io = -1;
  long long expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--objects=", 0) == 0) {
      object_counts = ParseCountList(arg.substr(10), "--objects=");
    } else if (int_flag("--events=", &events) ||
               int_flag("--processors=", &processors) ||
               int_flag("--shards=", &shards) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--max_bytes_per_object=", &max_bytes_per_object) ||
               int_flag("--grid_events=", &grid_events) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t kSeed = 0xf007f00d;
  const int hw = util::HardwareConcurrency();
  const model::CostModel cost_model =
      model::CostModel::StationaryComputing(0.25, 1.0);

  // --- Determinism grid -------------------------------------------------
  // Small population, full shard x thread sweep: every configuration must
  // reproduce one fingerprint, and the goldens pin it across PRs.
  struct Fingerprint {
    model::CostBreakdown breakdown;
    int64_t requests = 0;
    uint32_t scheme_crc = 0;
    bool operator==(const Fingerprint& other) const {
      return breakdown == other.breakdown && requests == other.requests &&
             scheme_crc == other.scheme_crc;
    }
  };
  Fingerprint reference;
  {
    const long long grid_objects = 512;
    workload::ZipfObjectOptions options;
    options.num_processors = processors;
    options.num_objects = grid_objects;
    options.length = grid_events;
    workload::ZipfObjectGenerator generator(options, kSeed);
    std::vector<workload::MultiObjectEvent> trace;
    trace.reserve(grid_events);
    for (size_t k = 0; k < grid_events; ++k) trace.push_back(generator.Next());

    bool have_reference = false;
    const int grid_shards[] = {1, 4, 16};
    const int grid_threads[] = {1, 2, hw > 2 ? hw : 2};
    for (int grid_shard : grid_shards) {
      for (int threads : grid_threads) {
        util::ScopedThreads scope(threads);
        core::ServiceOptions service_options;
        service_options.num_shards = grid_shard;
        core::ObjectService service(processors, cost_model, service_options);
        service.ReserveObjects(static_cast<size_t>(grid_objects));
        for (long long id = 0; id < grid_objects; ++id) {
          OBJALLOC_CHECK(
              service.AddObject(id, ConfigFor(generator.PersonalityFor(id)))
                  .ok());
        }
        std::span<const workload::MultiObjectEvent> all(trace);
        for (size_t pos = 0; pos < all.size(); pos += batch_size) {
          auto batch = service.ServeBatch(
              all.subspan(pos, std::min(batch_size, all.size() - pos)));
          OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
        }
        Fingerprint fingerprint;
        fingerprint.breakdown = service.TotalBreakdown();
        fingerprint.requests = service.TotalRequests();
        fingerprint.scheme_crc = SchemeCrc(service);
        if (!have_reference) {
          reference = fingerprint;
          have_reference = true;
        }
        OBJALLOC_CHECK(fingerprint == reference)
            << "shards=" << grid_shard << " threads=" << threads
            << " diverged from the reference run: results must be "
               "byte-identical across every configuration";
      }
    }
    std::printf("determinism: 9 configs byte-identical over %lld objects "
                "(breakdown %lld/%lld/%lld, scheme crc %08x)\n",
                grid_objects,
                static_cast<long long>(reference.breakdown.control_messages),
                static_cast<long long>(reference.breakdown.data_messages),
                static_cast<long long>(reference.breakdown.io_ops),
                reference.scheme_crc);
  }

  bool golden_ok = true;
  auto check_golden = [&](const char* name, long long expected,
                          long long actual) {
    if (expected < 0) return;
    if (expected != actual) {
      std::fprintf(stderr,
                   "golden fingerprint mismatch: %s expected %lld got %lld\n",
                   name, expected, actual);
      golden_ok = false;
    }
  };
  check_golden("control", expect_control,
               reference.breakdown.control_messages);
  check_golden("data", expect_data, reference.breakdown.data_messages);
  check_golden("io", expect_io, reference.breakdown.io_ops);
  check_golden("scheme_crc", expect_crc,
               static_cast<long long>(reference.scheme_crc));
  if (!golden_ok) return 1;
  if (expect_control >= 0 || expect_data >= 0 || expect_io >= 0 ||
      expect_crc >= 0) {
    std::printf("golden fingerprint matches expected values\n");
  }

  // --- Footprint sweep --------------------------------------------------
  const std::string durable_dir =
      (std::filesystem::temp_directory_path() / "objalloc_footprint_bench")
          .string();
  std::vector<Row> rows;
  bool budget_ok = true;
  for (long long objects : object_counts) {
    workload::ZipfObjectOptions options;
    options.num_processors = processors;
    options.num_objects = objects;
    options.length = events;
    workload::ZipfObjectGenerator generator(options, kSeed);

    core::ServiceOptions service_options;
    service_options.num_shards = shards;
    core::ObjectService service(processors, cost_model, service_options);
    service.ReserveObjects(static_cast<size_t>(objects));
    auto start = std::chrono::steady_clock::now();
    for (long long id = 0; id < objects; ++id) {
      OBJALLOC_CHECK(
          service.AddObject(id, ConfigFor(generator.PersonalityFor(id))).ok());
    }
    auto stop = std::chrono::steady_clock::now();

    Row row;
    row.objects = objects;
    row.register_per_sec =
        static_cast<double>(objects) / Seconds(start, stop);
    row.memory_bytes = service.MemoryUsageBytes();
    row.bytes_per_object =
        static_cast<double>(row.memory_bytes) / static_cast<double>(objects);

    workload::ZipfEventSource source(options, kSeed + 1);
    start = std::chrono::steady_clock::now();
    auto served = service.ServeStream(source, batch_size);
    stop = std::chrono::steady_clock::now();
    OBJALLOC_CHECK(served.ok()) << served.status().ToString();
    row.events_per_sec = static_cast<double>(events) / Seconds(start, stop);

    // Checkpoint the served state (EnableDurability streams the
    // generation-1 snapshot page by page), then recover from it — the
    // restore path is the same streaming reader plus the route rebuild.
    std::filesystem::remove_all(durable_dir);
    std::filesystem::create_directories(durable_dir);
    start = std::chrono::steady_clock::now();
    util::Status durable = service.EnableDurability(durable_dir);
    stop = std::chrono::steady_clock::now();
    OBJALLOC_CHECK(durable.ok()) << durable.ToString();
    row.checkpoint_seconds = Seconds(start, stop);
    row.checkpoint_bytes = static_cast<size_t>(std::filesystem::file_size(
        std::filesystem::path(durable_dir) / "checkpoint-1.ckpt"));
    OBJALLOC_CHECK(service.DisableDurability().ok());
    const uint32_t before_crc = SchemeCrc(service);

    start = std::chrono::steady_clock::now();
    auto recovered = core::ObjectService::Recover(durable_dir);
    stop = std::chrono::steady_clock::now();
    OBJALLOC_CHECK(recovered.ok()) << recovered.status().ToString();
    row.recover_seconds = Seconds(start, stop);
    OBJALLOC_CHECK_EQ(recovered->object_count(),
                      static_cast<size_t>(objects));
    OBJALLOC_CHECK_EQ(SchemeCrc(*recovered), before_crc)
        << "recovery changed the allocation state";
    std::filesystem::remove_all(durable_dir);

    row.peak_rss_bytes = PeakRssBytes();
    rows.push_back(row);
    std::printf("objects=%-9lld %8.1f B/obj  %10.0f reg/sec  "
                "%10.0f events/sec  ckpt %6.3fs (%zu MB)  recover %6.3fs  "
                "peak rss %zu MB\n",
                row.objects, row.bytes_per_object, row.register_per_sec,
                row.events_per_sec, row.checkpoint_seconds,
                row.checkpoint_bytes >> 20, row.recover_seconds,
                row.peak_rss_bytes >> 20);

    if (max_bytes_per_object > 0 && objects >= 1000000 &&
        row.bytes_per_object > static_cast<double>(max_bytes_per_object)) {
      std::fprintf(stderr,
                   "footprint gate: %lld objects cost %.1f bytes/object, "
                   "budget %lld\n",
                   objects, row.bytes_per_object, max_bytes_per_object);
      budget_ok = false;
    }
  }
  if (!budget_ok) return 1;
  if (max_bytes_per_object > 0) {
    std::printf("footprint gate: all rows within %lld bytes/object\n",
                max_bytes_per_object);
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"benchmark\": \"footprint_scaling\",\n";
  out << "  \"hardware_concurrency\": " << hw << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"shards\": " << shards << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"fingerprint\": {\"control\": "
      << reference.breakdown.control_messages
      << ", \"data\": " << reference.breakdown.data_messages
      << ", \"io\": " << reference.breakdown.io_ops
      << ", \"scheme_crc\": " << reference.scheme_crc << "},\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"objects\": " << r.objects
        << ", \"memory_bytes\": " << r.memory_bytes
        << ", \"bytes_per_object\": " << r.bytes_per_object
        << ", \"register_per_sec\": " << r.register_per_sec
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"checkpoint_seconds\": " << r.checkpoint_seconds
        << ", \"checkpoint_bytes\": " << r.checkpoint_bytes
        << ", \"recover_seconds\": " << r.recover_seconds
        << ", \"peak_rss_bytes\": " << r.peak_rss_bytes << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
