// Parallel scaling of the two heaviest compute paths: the exact-OPT DP
// (n = 16, schedule length 500) and a 32x32 (cd, cc) region-map grid.
// Each workload runs at a sweep of thread counts; results (and the speedup
// against threads = 1) are written as a machine-readable JSON artifact so
// the repo's perf trajectory accumulates across PRs.
//
// Usage: parallel_scaling [--out=BENCH_parallel_scaling.json]
//                         [--threads=1,2,4,8] [--repeats=3]
//
// Determinism is asserted, not assumed: every thread count must reproduce
// the threads=1 result bit-for-bit or the bench aborts.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "objalloc/analysis/region_map.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/uniform.h"

namespace {

using namespace objalloc;

double SecondsOfBestRun(int repeats, const std::function<double()>& run,
                        double* result_out) {
  double best = 0;
  double result = 0;
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    result = run();
    auto stop = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (r == 0 || seconds < best) best = seconds;
  }
  *result_out = result;
  return best;
}

struct Measurement {
  std::string name;
  int threads = 0;
  double seconds = 0;
  double speedup_vs_serial = 0;
};

double ExactOptWorkload() {
  workload::UniformWorkload uniform(0.7);
  model::Schedule schedule = uniform.Generate(16, 500, 0xbe9c);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  return opt::ExactOptCost(sc, schedule, model::ProcessorSet{0, 1});
}

double RegionGridWorkload() {
  analysis::RegionSweepOptions options;
  options.mobile = false;
  options.cd_values.clear();
  options.cc_values.clear();
  for (int k = 0; k < 32; ++k) {
    options.cd_values.push_back(0.05 + 1.95 * k / 31.0);
    options.cc_values.push_back(0.02 + 0.98 * k / 31.0);
  }
  options.ratio.num_processors = 6;
  options.ratio.schedule_length = 30;
  options.ratio.seeds_per_generator = 1;
  auto points = analysis::SweepRegions(options);
  double checksum = 0;
  for (const auto& point : points) {
    checksum += point.sa_mean_ratio + point.da_mean_ratio;
  }
  return checksum;
}

std::vector<int> ParseThreadList(const std::string& arg) {
  std::vector<int> threads;
  size_t pos = 0;
  while (pos < arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    int value = 0;
    try {
      size_t used = 0;
      value = std::stoi(token, &used);
      if (used != token.size()) value = 0;
    } catch (const std::exception&) {
      value = 0;
    }
    if (value <= 0) {
      std::fprintf(stderr, "bad thread count in --threads=: '%s'\n",
                   token.c_str());
      std::exit(1);
    }
    threads.push_back(value);
    pos = comma + 1;
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_parallel_scaling.json";
  std::vector<int> thread_counts = {1, 2, 4, 8};
  int repeats = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = ParseThreadList(arg.substr(10));
    } else if (arg.rfind("--repeats=", 0) == 0) {
      try {
        repeats = std::stoi(arg.substr(10));
      } catch (const std::exception&) {
        repeats = 0;
      }
      if (repeats <= 0) {
        std::fprintf(stderr, "bad value for --repeats=: '%s'\n",
                     arg.substr(10).c_str());
        return 1;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  struct Workload {
    const char* name;
    double (*run)();
  };
  const Workload workloads[] = {
      {"exact_opt_n16_L500", &ExactOptWorkload},
      {"region_map_32x32", &RegionGridWorkload},
  };

  std::vector<Measurement> measurements;
  for (const Workload& workload : workloads) {
    double serial_seconds = 0;
    double serial_result = 0;
    for (int threads : thread_counts) {
      util::ScopedThreads scope(threads);
      double result = 0;
      double seconds = SecondsOfBestRun(repeats, workload.run, &result);
      if (threads == thread_counts.front()) {
        serial_seconds = seconds;
        serial_result = result;
      }
      OBJALLOC_CHECK_EQ(result, serial_result)
          << workload.name << " not deterministic at threads=" << threads;
      Measurement m;
      m.name = workload.name;
      m.threads = threads;
      m.seconds = seconds;
      m.speedup_vs_serial = seconds > 0 ? serial_seconds / seconds : 0;
      measurements.push_back(m);
      std::printf("%-22s threads=%-3d %8.3fs  speedup %.2fx\n", m.name.c_str(),
                  m.threads, m.seconds, m.speedup_vs_serial);
    }
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"benchmark\": \"parallel_scaling\",\n";
  out << "  \"hardware_concurrency\": " << util::GlobalThreads() << ",\n";
  out << "  \"repeats\": " << repeats << ",\n  \"results\": [\n";
  for (size_t i = 0; i < measurements.size(); ++i) {
    const Measurement& m = measurements[i];
    out << "    {\"name\": \"" << m.name << "\", \"threads\": " << m.threads
        << ", \"seconds\": " << m.seconds << ", \"speedup_vs_serial\": "
        << m.speedup_vs_serial << "}" << (i + 1 < measurements.size() ? "," : "")
        << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
