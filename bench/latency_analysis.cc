// Experiment E14 (extension) — response time, the motivation the paper's
// introduction gives for minimizing communication and I/O (§1.1: load on
// the network -> contention -> response time). Virtual-time service-latency
// distributions per protocol and workload: medians and tails for reads and
// writes, on the same schedules the cost benches use.

#include <iostream>

#include "objalloc/sim/simulator.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/uniform.h"

int main() {
  using namespace objalloc;

  const int kProcessors = 9;
  const model::ProcessorSet kInitial{0, 1};
  sim::LatencyModel latency{1.0, 3.0, 5.0};  // control, data, io

  std::cout << "\n==== E14: service-latency distributions (n=9, t=2; "
               "latencies: ctrl=1 data=3 io=5) ====\n\n";

  struct WorkloadSpec {
    std::string label;
    model::Schedule schedule;
  };
  workload::UniformWorkload read_heavy(0.9);
  workload::HotspotWorkload hotspot(1.0, 0.75);
  WorkloadSpec specs[] = {
      {"uniform 90% reads", read_heavy.Generate(kProcessors, 800, 5)},
      {"hotspot 75% reads", hotspot.Generate(kProcessors, 800, 6)},
  };

  util::Table table({"workload", "protocol", "read_p50", "read_p99",
                     "write_p50", "write_p99"});
  double da_read_p50 = 0, sa_read_p50 = 0, quorum_read_p50 = 0;
  for (const WorkloadSpec& spec : specs) {
    for (auto kind : {sim::ProtocolKind::kStatic,
                      sim::ProtocolKind::kDynamic,
                      sim::ProtocolKind::kQuorum}) {
      sim::SimulatorOptions options;
      options.protocol = kind;
      options.num_processors = kProcessors;
      options.initial_scheme = kInitial;
      options.latency = latency;
      sim::Simulator simulator(options);
      auto report = simulator.RunSchedule(spec.schedule);
      const char* name = kind == sim::ProtocolKind::kStatic
                             ? "SA"
                             : kind == sim::ProtocolKind::kDynamic
                                   ? "DA"
                                   : "Quorum";
      table.AddRow()
          .Cell(spec.label)
          .Cell(name)
          .Cell(report.read_latency.Median(), 1)
          .Cell(report.read_latency.Percentile(0.99), 1)
          .Cell(report.write_latency.Median(), 1)
          .Cell(report.write_latency.Percentile(0.99), 1);
      if (spec.label.find("hotspot") != std::string::npos) {
        double median = report.read_latency.Median();
        if (kind == sim::ProtocolKind::kDynamic) da_read_p50 = median;
        if (kind == sim::ProtocolKind::kStatic) sa_read_p50 = median;
        if (kind == sim::ProtocolKind::kQuorum) quorum_read_p50 = median;
      }
    }
  }
  table.WriteAligned(std::cout);

  bool shape = da_read_p50 <= sa_read_p50 && sa_read_p50 < quorum_read_p50;
  std::cout << "\n  paper:    lower communication/I/O cost translates into "
               "lower response time (§1.1 motivation)\n";
  std::cout << "  measured: hotspot read medians — DA "
            << util::FormatDouble(da_read_p50, 1) << " <= SA "
            << util::FormatDouble(sa_read_p50, 1) << " < Quorum "
            << util::FormatDouble(quorum_read_p50, 1) << "\n";
  std::cout << "  verdict:  " << (shape ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n";
  return shape ? 0 : 1;
}
