// Experiment E18 (extension) — the value of future knowledge. §1.4 splits
// DOM algorithms into offline (knows all future requests) and online (knows
// none); this bench charts the spectrum in between with the
// receding-horizon allocator: how much of the online-vs-offline gap does
// each unit of lookahead close?

#include <iostream>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/lookahead_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/stats.h"
#include "objalloc/workload/ensemble.h"

int main() {
  using namespace objalloc;

  const int n = 6, t = 2;
  const size_t kLength = 80;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  const model::ProcessorSet initial = model::ProcessorSet::FirstN(t);

  std::cout << "\n==== E18: the value of lookahead (n=6, t=2, SC cc=0.25 "
               "cd=1.0; mean cost ratio vs exact OPT over the worst-case "
               "ensemble) ====\n\n";

  auto generators = workload::WorstCaseEnsemble(t);
  const int kSeeds = 2;

  util::Table table({"algorithm", "mean_ratio", "worst_ratio"});
  auto measure = [&](auto make_algorithm, const std::string& label) {
    util::RunningStats ratios;
    for (const auto& generator : generators) {
      for (int seed = 1; seed <= kSeeds; ++seed) {
        model::Schedule schedule = generator->Generate(
            n, kLength, static_cast<uint64_t>(seed) * 77);
        double opt = opt::ExactOptCost(sc, schedule, initial);
        if (opt == 0) continue;
        double cost = make_algorithm(schedule);
        ratios.Add(cost / opt);
      }
    }
    table.AddRow().Cell(label).Cell(ratios.mean(), 4).Cell(ratios.max(), 4);
    return ratios.mean();
  };

  core::StaticAllocation sa;
  measure(
      [&](const model::Schedule& schedule) {
        return core::RunWithCost(sa, sc, schedule, initial).cost;
      },
      "SA (online)");
  core::DynamicAllocation da;
  double online = measure(
      [&](const model::Schedule& schedule) {
        return core::RunWithCost(da, sc, schedule, initial).cost;
      },
      "DA (online)");

  double last = online;
  for (int k : {1, 2, 4, 8, 16, 32}) {
    last = measure(
        [&](const model::Schedule& schedule) {
          core::LookaheadAllocation lookahead(sc, k);
          lookahead.Prime(schedule);
          return core::RunWithCost(lookahead, sc, schedule, initial).cost;
        },
        "Lookahead(" + std::to_string(k) + ")");
  }
  measure(
      [&](const model::Schedule& schedule) {
        core::LookaheadAllocation oracle(sc,
                                         static_cast<int>(schedule.size()));
        oracle.Prime(schedule);
        return core::RunWithCost(oracle, sc, schedule, initial).cost;
      },
      "Offline OPT (full)");
  table.WriteAligned(std::cout);

  bool converged = last < 1.02;
  std::cout << "\n  paper:    offline knowledge makes dynamic allocation "
               "optimal (§1.3/§1.4); online algorithms pay a bounded "
               "competitive premium\n";
  std::cout << "  measured: the mean ratio falls from the online level "
               "toward 1.0 as the horizon grows (Lookahead(32): "
            << util::FormatDouble(last, 4) << ")\n";
  std::cout << "  verdict:  " << (converged ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n";
  return converged ? 0 : 1;
}
