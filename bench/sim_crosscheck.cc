// Experiment E6 — validation of the central substitution: the paper's cost
// model is analytic, and this repo *measures* it with a message-passing
// simulator. For the substitution to be sound, the simulator's message and
// I/O counters must equal the analytic CostBreakdown of the allocation
// schedule the algorithm produces — count for count, on every workload.

#include <iostream>

#include "objalloc/analysis/report.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/sim/simulator.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/ensemble.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  const int kProcessors = 9;
  const model::ProcessorSet kInitial{0, 1, 2};

  PrintExperimentHeader(std::cout, "E6",
                        "Simulator vs analytic cost model: exact count "
                        "equality (n=9, t=3, failure-free)");

  util::Table table({"protocol", "workload", "ctrl(sim/model)",
                     "data(sim/model)", "io(sim/model)", "fresh_reads",
                     "match"});
  bool all_match = true;
  auto generators = workload::AverageCaseEnsemble();
  for (bool dynamic : {false, true}) {
    for (const auto& generator : generators) {
      model::Schedule schedule = generator->Generate(kProcessors, 400, 3);

      model::CostBreakdown analytic;
      if (dynamic) {
        core::DynamicAllocation da;
        analytic = core::RunWithCost(
                       da, model::CostModel::StationaryComputing(0.5, 1.0),
                       schedule, kInitial)
                       .breakdown;
      } else {
        core::StaticAllocation sa;
        analytic = core::RunWithCost(
                       sa, model::CostModel::StationaryComputing(0.5, 1.0),
                       schedule, kInitial)
                       .breakdown;
      }

      sim::SimulatorOptions options;
      options.protocol =
          dynamic ? sim::ProtocolKind::kDynamic : sim::ProtocolKind::kStatic;
      options.num_processors = kProcessors;
      options.initial_scheme = kInitial;
      sim::Simulator simulator(options);
      auto report = simulator.RunSchedule(schedule);

      bool match = report.metrics.ToBreakdown() == analytic &&
                   report.stale_reads == 0 && report.unavailable == 0;
      all_match = all_match && match;
      auto pair = [](int64_t a, int64_t b) {
        return std::to_string(a) + "/" + std::to_string(b);
      };
      table.AddRow()
          .Cell(dynamic ? "DA" : "SA")
          .Cell(generator->name())
          .Cell(pair(report.metrics.control_messages,
                     analytic.control_messages))
          .Cell(pair(report.metrics.data_messages, analytic.data_messages))
          .Cell(pair(report.metrics.io_ops, analytic.io_ops))
          .Cell(std::to_string(report.served - report.stale_reads) + "/" +
                std::to_string(report.served))
          .Cell(match ? "EXACT" : "MISMATCH");
    }
  }
  table.WriteAligned(std::cout);
  std::cout << "\n";
  PrintPaperVsMeasured(std::cout,
                       "analytic cost function counts the protocol's real "
                       "messages and I/O (§3.2)",
                       all_match ? "all workloads match count-for-count"
                                 : "mismatch found",
                       all_match);
  return all_match ? 0 : 1;
}
