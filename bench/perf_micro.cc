// Experiment E11 — engineering microbenchmarks (google-benchmark): online
// step throughput of the DOM algorithms, exact-OPT DP scaling in the system
// size and in the thread count, the polynomial brackets, and simulator
// request throughput. Not a paper artifact; documents the library's own
// performance envelope.
//
// Machine-readable runs: pass the standard google-benchmark flags
//   perf_micro --benchmark_out=BENCH_perf.json --benchmark_out_format=json
// and check the artifact into the repo root so the perf trajectory
// accumulates across PRs (see also bench/parallel_scaling.cc).

#include <benchmark/benchmark.h>

#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/object_service.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/shard_executor.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/sim/simulator.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/spsc_queue.h"
#include "objalloc/workload/multi_object.h"
#include "objalloc/workload/uniform.h"

namespace {

using namespace objalloc;

model::Schedule MakeSchedule(int n, size_t length) {
  workload::UniformWorkload uniform(0.7);
  return uniform.Generate(n, length, 1234);
}

void BM_SaOnlineRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 1000);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    core::StaticAllocation sa;
    benchmark::DoNotOptimize(
        core::RunWithCost(sa, sc, schedule, model::ProcessorSet{0, 1}).cost);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SaOnlineRun)->Arg(8)->Arg(32);

void BM_DaOnlineRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 1000);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    core::DynamicAllocation da;
    benchmark::DoNotOptimize(
        core::RunWithCost(da, sc, schedule, model::ProcessorSet{0, 1}).cost);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DaOnlineRun)->Arg(8)->Arg(32);

void BM_AdaptiveOnlineRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 1000);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    core::AdaptiveAllocation adaptive(sc, core::AdaptiveOptions{});
    benchmark::DoNotOptimize(
        core::RunWithCost(adaptive, sc, schedule, model::ProcessorSet{0, 1})
            .cost);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_AdaptiveOnlineRun)->Arg(8)->Arg(32);

// Exponential in n: the DP over allocation schemes.
void BM_ExactOptDp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 200);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::ExactOptCost(sc, schedule, model::ProcessorSet{0, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_ExactOptDp)->DenseRange(6, 14, 2);

// The DP at a size where the per-request transitions split across the pool;
// the argument is the thread count.
void BM_ExactOptDpParallel(benchmark::State& state) {
  util::ScopedThreads threads(static_cast<int>(state.range(0)));
  model::Schedule schedule = MakeSchedule(16, 100);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::ExactOptCost(sc, schedule, model::ProcessorSet{0, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ExactOptDpParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RelaxationLowerBound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 1000);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::RelaxationLowerBound(sc, schedule, model::ProcessorSet{0, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RelaxationLowerBound)->Arg(16)->Arg(48);

void BM_IntervalOpt(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  model::Schedule schedule = MakeSchedule(n, 1000);
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::IntervalOptCost(sc, schedule, model::ProcessorSet{0, 1}));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalOpt)->Arg(16)->Arg(48);

// ---- Hot-path serving engine (DESIGN.md §8) -------------------------------

workload::MultiObjectTrace ServiceTrace(size_t length) {
  workload::MultiObjectOptions options;
  options.num_processors = 16;
  options.num_objects = 256;
  options.length = length;
  options.popularity_skew = 0.9;
  return workload::GenerateMultiObjectTrace(options, 0x5eed);
}

core::ObjectConfig InlineConfig(core::AlgorithmKind kind) {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = kind;
  return config;
}

// The devirtualized per-request core: inline SA/DA dispatch through
// ObjectShard::ServeSlot, no routing, no batching — the ceiling every
// higher layer is measured against. Arg: 0 = SA, 1 = DA.
void BM_ShardServeInline(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? core::AlgorithmKind::kStatic
                                        : core::AlgorithmKind::kDynamic;
  const workload::MultiObjectTrace trace = ServiceTrace(4096);
  core::ObjectShard shard(16, model::CostModel::StationaryComputing(0.25, 1.0));
  for (int id = 0; id < 256; ++id) {
    if (!shard.AddObject(id, InlineConfig(kind)).ok()) std::abort();
  }
  for (auto _ : state) {
    double total = 0;
    for (const auto& event : trace.events) {
      total += shard.ServeSlot(static_cast<uint32_t>(event.object),
                               event.request, nullptr);
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * trace.events.size());
}
BENCHMARK(BM_ShardServeInline)->Arg(0)->Arg(1);

// Id-addressed batch path: admission hashes each event through the route
// directory. Arg: shard count.
void BM_ServiceBatchIdPath(benchmark::State& state) {
  util::ScopedThreads threads(1);
  const workload::MultiObjectTrace trace = ServiceTrace(8192);
  core::ServiceOptions options;
  options.num_shards = static_cast<int>(state.range(0));
  core::ObjectService service(
      16, model::CostModel::StationaryComputing(0.25, 1.0), options);
  service.ReserveObjects(256);
  for (int id = 0; id < 256; ++id) {
    if (!service.AddObject(id, InlineConfig(core::AlgorithmKind::kDynamic))
             .ok()) {
      std::abort();
    }
  }
  core::BatchResult result;
  for (auto _ : state) {
    util::Status status = service.ServeBatchInto(
        std::span<const workload::MultiObjectEvent>(trace.events), &result);
    if (!status.ok()) std::abort();
    benchmark::DoNotOptimize(result.cost);
  }
  state.SetItemsProcessed(state.iterations() * trace.events.size());
}
BENCHMARK(BM_ServiceBatchIdPath)->Arg(1)->Arg(16);

// Handle-addressed batch path: routes resolved once outside the loop, zero
// hash lookups per event in steady state. Arg: shard count.
void BM_ServiceBatchHandles(benchmark::State& state) {
  util::ScopedThreads threads(1);
  const workload::MultiObjectTrace trace = ServiceTrace(8192);
  core::ServiceOptions options;
  options.num_shards = static_cast<int>(state.range(0));
  core::ObjectService service(
      16, model::CostModel::StationaryComputing(0.25, 1.0), options);
  service.ReserveObjects(256);
  for (int id = 0; id < 256; ++id) {
    if (!service.AddObject(id, InlineConfig(core::AlgorithmKind::kDynamic))
             .ok()) {
      std::abort();
    }
  }
  std::vector<core::HandleEvent> events;
  events.reserve(trace.events.size());
  for (const auto& event : trace.events) {
    events.push_back(
        core::HandleEvent{*service.Resolve(event.object), event.request});
  }
  core::BatchResult result;
  for (auto _ : state) {
    util::Status status = service.ServeBatchInto(
        std::span<const core::HandleEvent>(events), &result);
    if (!status.ok()) std::abort();
    benchmark::DoNotOptimize(result.cost);
  }
  state.SetItemsProcessed(state.iterations() * trace.events.size());
}
BENCHMARK(BM_ServiceBatchHandles)->Arg(1)->Arg(16);

// ---- Shard-owned executor (DESIGN.md §11) ---------------------------------

// Raw SPSC ring cost, single-threaded: push a burst, pop a burst — the
// per-task overhead floor of the per-shard queues, with both counters
// bouncing between the producer and consumer cache lines of one core.
// Arg: burst size (= ring capacity).
void BM_SpscEnqueueDequeue(benchmark::State& state) {
  const size_t burst = static_cast<size_t>(state.range(0));
  util::SpscQueue<core::ShardTask> queue(burst);
  for (auto _ : state) {
    for (size_t i = 0; i < burst; ++i) {
      const bool pushed = queue.TryPush(
          core::ShardTask{static_cast<uint32_t>(i), 0});
      benchmark::DoNotOptimize(pushed);
    }
    core::ShardTask task;
    while (queue.TryPop(&task)) benchmark::DoNotOptimize(task.context);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(burst));
}
BENCHMARK(BM_SpscEnqueueDequeue)->Arg(4)->Arg(64);

// Submit -> Wait round-trip through the executor with one tiny task per
// shard: measures the handoff machinery itself (wake, pop, completion
// countdown), not the serving work — the fixed cost a batch must amortize
// before shard parallelism pays. Arg: shard count (= task fan-out).
void BM_ExecutorBatchHandoff(benchmark::State& state) {
  const size_t shards_n = static_cast<size_t>(state.range(0));
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  std::vector<core::ObjectShard> shards;
  shards.reserve(shards_n);
  for (size_t s = 0; s < shards_n; ++s) {
    core::ObjectShard shard(16, sc);
    if (!shard.AddObject(static_cast<core::ObjectId>(s),
                         InlineConfig(core::AlgorithmKind::kDynamic))
             .ok()) {
      std::abort();
    }
    shards.push_back(std::move(shard));
  }
  core::ShardExecutor executor(shards.data(), shards.size(),
                               util::GlobalThreads());
  std::vector<double> costs(shards_n, 0.0);
  uint64_t n = 0;
  for (auto _ : state) {
    const uint32_t slot = executor.Acquire();
    core::BatchContext& context = executor.context(slot);
    context.costs = costs.data();
    for (size_t s = 0; s < shards_n; ++s) {
      context.ops[s].push_back(core::ShardOp{
          static_cast<uint32_t>(s), 0,
          n % 2 == 0 ? model::Request::Read(static_cast<int>(n % 16))
                     : model::Request::Write(static_cast<int>(n % 16))});
      ++n;
    }
    executor.Submit(slot);
    executor.Wait(slot);
    benchmark::DoNotOptimize(costs[0]);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(shards_n));
}
BENCHMARK(BM_ExecutorBatchHandoff)->Arg(4)->Arg(16);

// Bulk registration cost with and without ReserveObjects: reserved
// registration does O(1) amortized rehashes across every internal table.
// Arg: 1 = call ReserveObjects first, 0 = grow incrementally.
void BM_ServiceRegistration(benchmark::State& state) {
  const bool reserve = state.range(0) != 0;
  constexpr int kObjects = 4096;
  core::ServiceOptions options;
  options.num_shards = 16;
  for (auto _ : state) {
    core::ObjectService service(
        16, model::CostModel::StationaryComputing(0.25, 1.0), options);
    if (reserve) service.ReserveObjects(kObjects);
    for (int id = 0; id < kObjects; ++id) {
      if (!service.AddObject(id, InlineConfig(core::AlgorithmKind::kDynamic))
               .ok()) {
        std::abort();
      }
    }
    benchmark::DoNotOptimize(service.object_count());
  }
  state.SetItemsProcessed(state.iterations() * kObjects);
}
BENCHMARK(BM_ServiceRegistration)->Arg(0)->Arg(1);

void BM_SimulatorRequests(benchmark::State& state) {
  const bool dynamic = state.range(0) != 0;
  model::Schedule schedule = MakeSchedule(16, 1000);
  for (auto _ : state) {
    sim::SimulatorOptions options;
    options.protocol =
        dynamic ? sim::ProtocolKind::kDynamic : sim::ProtocolKind::kStatic;
    options.num_processors = 16;
    options.initial_scheme = model::ProcessorSet{0, 1};
    sim::Simulator simulator(options);
    benchmark::DoNotOptimize(simulator.RunSchedule(schedule).served);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorRequests)->Arg(0)->Arg(1);

}  // namespace
