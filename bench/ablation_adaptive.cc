// Experiment E10 — competitive vs convergent allocation (§5.1): the paper
// argues a competitive algorithm (DA) suits chaotic access patterns while a
// convergent one (here: the sliding-window AdaptiveAllocation) suits
// regular patterns — and that neither dominates the other. This bench
// measures total costs of SA / DA / Adaptive on regular (regime-switching)
// and chaotic (uniform) workloads, bracketing OPT for context.

#include <iostream>

#include "objalloc/analysis/report.h"
#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/stats.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/uniform.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  const int kProcessors = 12;
  const model::ProcessorSet kInitial{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.2, 1.0);
  const int kSeeds = 5;

  PrintExperimentHeader(std::cout, "E10",
                        "Competitive (DA) vs convergent (Adaptive) "
                        "allocation, SC cc=0.2 cd=1.0, n=12, t=2");

  struct Family {
    std::string label;
    std::unique_ptr<workload::ScheduleGenerator> generator;
  };
  std::vector<Family> families;
  families.push_back(
      {"regular: regime shifts (hot set of 2, 90% hot, 85% reads)",
       std::make_unique<workload::RegimeWorkload>(250, 2, 0.85)});
  families.push_back({"chaotic: uniform issuers (85% reads)",
                      std::make_unique<workload::UniformWorkload>(0.85)});

  util::Table table({"workload", "SA_mean", "DA_mean", "Adaptive_mean",
                     "OPT_lower", "OPT_upper", "best_online"});
  double regular_adaptive = 0, regular_da = 0;
  double chaotic_adaptive = 0, chaotic_da = 0;
  for (const Family& family : families) {
    util::RunningStats sa_stats, da_stats, adaptive_stats, lb_stats, ub_stats;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      model::Schedule schedule =
          family.generator->Generate(kProcessors, 1200, seed);
      core::StaticAllocation sa;
      core::DynamicAllocation da;
      core::AdaptiveAllocation adaptive(sc, core::AdaptiveOptions{});
      sa_stats.Add(core::RunWithCost(sa, sc, schedule, kInitial).cost);
      da_stats.Add(core::RunWithCost(da, sc, schedule, kInitial).cost);
      adaptive_stats.Add(
          core::RunWithCost(adaptive, sc, schedule, kInitial).cost);
      lb_stats.Add(opt::RelaxationLowerBound(sc, schedule, kInitial));
      ub_stats.Add(opt::IntervalOptCost(sc, schedule, kInitial));
    }
    const char* best =
        adaptive_stats.mean() < da_stats.mean() &&
                adaptive_stats.mean() < sa_stats.mean()
            ? "Adaptive"
            : (da_stats.mean() < sa_stats.mean() ? "DA" : "SA");
    table.AddRow()
        .Cell(family.label)
        .Cell(sa_stats.mean(), 1)
        .Cell(da_stats.mean(), 1)
        .Cell(adaptive_stats.mean(), 1)
        .Cell(lb_stats.mean(), 1)
        .Cell(ub_stats.mean(), 1)
        .Cell(best);
    if (family.label[0] == 'r') {
      regular_adaptive = adaptive_stats.mean();
      regular_da = da_stats.mean();
    } else {
      chaotic_adaptive = adaptive_stats.mean();
      chaotic_da = da_stats.mean();
    }
  }
  table.WriteAligned(std::cout);
  std::cout << "\n";

  bool adaptive_wins_regular = regular_adaptive < regular_da;
  PrintPaperVsMeasured(
      std::cout,
      "convergent algorithms suit regular patterns; competitive ones are "
      "for chaos (§5.1)",
      std::string("Adaptive ") +
          (adaptive_wins_regular ? "beats" : "loses to") +
          " DA on the regular workload (" +
          util::FormatDouble(regular_adaptive, 0) + " vs " +
          util::FormatDouble(regular_da, 0) + "); on chaos: " +
          util::FormatDouble(chaotic_adaptive, 0) + " vs " +
          util::FormatDouble(chaotic_da, 0),
      adaptive_wins_regular);
  return adaptive_wins_regular ? 0 : 1;
}
