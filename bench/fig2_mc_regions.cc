// Experiment E2 — Figure 2 (mobile computing): with cio = 0, SA is not
// competitive at all (Proposition 3) while DA is (2 + 3cc/cd)-competitive
// (Theorem 4), so DA is superior on the entire valid half-plane cc <= cd.
// The harness measures both algorithms' worst-case ratios at every grid
// point and checks DA wins everywhere.

#include <iostream>

#include "objalloc/analysis/region_map.h"
#include "objalloc/analysis/report.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  RegionSweepOptions options = RegionSweepOptions::PaperGrid(/*mobile=*/true);
  options.ratio.num_processors = 7;
  options.ratio.schedule_length = 140;
  options.ratio.seeds_per_generator = 3;

  PrintExperimentHeader(std::cout, "E2 / Figure 2",
                        "DA dominance, mobile computing (cio = 0)");
  std::cout << "grid: " << options.cd_values.size() << " cd values x "
            << options.cc_values.size() << " cc values; n="
            << options.ratio.num_processors << " t=" << options.ratio.t
            << " len=" << options.ratio.schedule_length << "\n\n";

  std::cout << "Analytic regions (the paper's Figure 2):\n"
            << RenderAnalyticMap(options) << "\n";

  auto points = SweepRegions(options);
  std::cout << "Empirical winner (worst measured ratio vs exact OPT):\n"
            << RenderEmpiricalMap(options, points) << "\n";

  util::Table table = RegionTable(points);
  table.WriteAligned(std::cout);

  int da_wins = 0;
  for (const RegionPoint& p : points) {
    da_wins += p.empirical == Region::kDaSuperior ? 1 : 0;
  }
  std::cout << "\n";
  PrintPaperVsMeasured(
      std::cout,
      "DA strictly superior to SA everywhere in MC (Figure 2)",
      "DA measured superior at " + std::to_string(da_wins) + "/" +
          std::to_string(points.size()) + " grid points",
      da_wins == static_cast<int>(points.size()));
  return da_wins == static_cast<int>(points.size()) ? 0 : 1;
}
