// Experiment E12 (extension) — average-case companion to the paper's
// worst-case theory: exact expected cost per request for SA (closed form)
// and DA (scheme-evolution Markov chain) under symmetric i.i.d. workloads,
// validated against long-run algorithm runs, plus the read-fraction band
// where SA is cheaper on average at each (cc, cd).
//
// The worst-case Figure 1 says SA is superior when cc + cd < 0.5; the
// average-case picture refines it: the gap DA - SA is non-monotone in the
// read fraction (DA wins at both extremes), and the SA-favorable band
// shrinks as the data-message cost grows — collapsing entirely deep in the
// DA-superior region.

#include <cmath>
#include <iostream>

#include "objalloc/analysis/report.h"
#include "objalloc/analysis/steady_state.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/uniform.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  const int n = 8, t = 2;

  PrintExperimentHeader(std::cout, "E12a",
                        "Expected cost per request: prediction vs long-run "
                        "measurement (n=8, t=2, SC cc=0.25 cd=1.0)");
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);
  util::Table table({"read_fraction", "SA_predicted", "SA_measured",
                     "DA_predicted", "DA_measured", "cheaper_on_average"});
  bool predictions_hold = true;
  for (double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    SymmetricWorkload workload{n, rho};
    double sa_pred = SaExpectedCostPerRequest(sc, workload, t);
    double da_pred = DaExpectedCostPerRequest(sc, workload, t);
    workload::UniformWorkload uniform(rho);
    double sa_meas = 0, da_meas = 0;
    const size_t kLen = 6000;
    const int kSeeds = 3;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      model::Schedule schedule = uniform.Generate(n, kLen, seed);
      core::StaticAllocation sa;
      core::DynamicAllocation da;
      sa_meas += core::RunWithCost(sa, sc, schedule,
                                   model::ProcessorSet::FirstN(t))
                     .cost;
      da_meas += core::RunWithCost(da, sc, schedule,
                                   model::ProcessorSet::FirstN(t))
                     .cost;
    }
    sa_meas /= kLen * kSeeds;
    da_meas /= kLen * kSeeds;
    predictions_hold = predictions_hold &&
                       std::abs(sa_meas - sa_pred) < 0.05 * sa_pred &&
                       std::abs(da_meas - da_pred) < 0.05 * da_pred;
    table.AddRow()
        .Cell(rho, 2)
        .Cell(sa_pred, 4)
        .Cell(sa_meas, 4)
        .Cell(da_pred, 4)
        .Cell(da_meas, 4)
        .Cell(da_pred < sa_pred ? "DA" : "SA");
  }
  table.WriteAligned(std::cout);
  std::cout << "\n";
  PrintPaperVsMeasured(std::cout,
                       "(extension) exact steady-state model of DA's scheme "
                       "evolution",
                       predictions_hold
                           ? "all predictions within 5% of long-run runs"
                           : "prediction drift beyond 5%",
                       predictions_hold);

  PrintExperimentHeader(std::cout, "E12b",
                        "SA-favorable read-fraction band across the (cc, cd) "
                        "plane (average case)");
  util::Table bands({"cc", "cd", "worst_case_region(Fig.1)",
                     "SA_band_on_average"});
  for (auto [cc, cd] : {std::pair{0.05, 0.1}, {0.1, 0.2}, {0.25, 0.5},
                        {0.25, 1.0}, {0.25, 2.0}, {0.5, 2.0}}) {
    model::CostModel cm = model::CostModel::StationaryComputing(cc, cd);
    ReadFractionInterval band = SaFavorableReadFractions(cm, n, t);
    std::string label =
        band.empty ? "none (DA everywhere)"
                   : "[" + util::FormatDouble(band.lo, 3) + ", " +
                         util::FormatDouble(band.hi, 3) + "]";
    bands.AddRow()
        .Cell(cc, 2)
        .Cell(cd, 2)
        .Cell(RegionToString(Classify(cm)))
        .Cell(label);
  }
  bands.WriteAligned(std::cout);
  std::cout << "\n(the band shrinks as cd grows, mirroring Figure 1's "
               "worst-case transition toward DA)\n";
  return predictions_hold ? 0 : 1;
}
