// Experiment E7 — ablations of DA's two design choices:
//
//   1. *Saving-reads*: a non-data reader stores the fetched copy (joining
//      the scheme) so its future reads are local. Ablation: DA-nosave keeps
//      the scheme fixed at F ∪ {writer side} and re-fetches on every read.
//   2. *Join-lists*: each F member remembers exactly which processors
//      joined through it, so a write invalidates precisely the stale copies
//      (|Y \ X \ {writer}| control messages). Ablation: DA-broadcast sends
//      the invalidation to every processor outside the new scheme, as a
//      join-list-free implementation would have to.
//
// Costs are reported per workload; the deltas explain why the paper's DA is
// shaped the way it is.

#include <iostream>

#include "objalloc/analysis/report.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/uniform.h"

namespace {

using namespace objalloc;

// DA without saving-reads: outside readers fetch from F without joining, so
// the scheme is always F plus the current floating member.
class DaNoSave final : public core::DomAlgorithm {
 public:
  std::string name() const override { return "DA-nosave"; }
  void Reset(int num_processors, core::ProcessorSet initial_scheme) override {
    (void)num_processors;
    auto members = initial_scheme.ToVector();
    p_ = members.back();
    f_ = initial_scheme.WithErased(p_);
    scheme_ = initial_scheme;
  }
  core::Decision Step(const core::Request& request) override {
    const auto i = request.processor;
    if (request.is_read()) {
      if (scheme_.Contains(i)) return {core::ProcessorSet::Singleton(i), false};
      return {core::ProcessorSet::Singleton(f_.First()), false};
    }
    core::ProcessorSet x = (f_.Contains(i) || i == p_) ? f_.WithInserted(p_)
                                                       : f_.WithInserted(i);
    scheme_ = x;
    return {x, false};
  }
  std::unique_ptr<core::DomAlgorithm> Clone() const override {
    return std::make_unique<DaNoSave>(*this);
  }

 private:
  core::ProcessorSet f_;
  core::ProcessorSet scheme_;
  int p_ = -1;
};

// Cost of `allocation` if invalidations were broadcast to every processor
// outside the new scheme instead of targeted via join-lists.
double BroadcastInvalidationCost(const model::CostModel& cost_model,
                                 const model::AllocationSchedule& allocation) {
  double cost = model::ScheduleCost(cost_model, allocation);
  const int n = allocation.num_processors();
  for (size_t i = 0; i < allocation.size(); ++i) {
    const auto& entry = allocation[i];
    if (!entry.request.is_write()) continue;
    model::ProcessorSet scheme = allocation.SchemeAt(i);
    int targeted = scheme.Minus(entry.execution_set)
                       .WithErased(entry.request.processor)
                       .Size();
    int broadcast =
        n - entry.execution_set.WithInserted(entry.request.processor).Size();
    cost += cost_model.control * (broadcast - targeted);
  }
  return cost;
}

}  // namespace

int main() {
  using namespace objalloc::analysis;

  const int kProcessors = 10;
  const model::ProcessorSet kInitial{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  PrintExperimentHeader(std::cout, "E7",
                        "DA design ablations: saving-reads and join-lists "
                        "(SC, cc=0.25 cd=1.0, n=10, t=2)");

  struct WorkloadSpec {
    std::string label;
    model::Schedule schedule;
  };
  workload::RegimeWorkload bursty(300, 2, 0.9);
  workload::UniformWorkload churn(0.9), write_heavy(0.4);
  workload::HotspotWorkload hotspot(1.0, 0.8);
  WorkloadSpec specs[] = {
      {"bursty repeat readers (hot set 2, 90% reads)",
       bursty.Generate(kProcessors, 600, 11)},
      {"uniform churn (90% reads, one-shot readers)",
       churn.Generate(kProcessors, 600, 12)},
      {"uniform write-heavy (40% reads)",
       write_heavy.Generate(kProcessors, 600, 14)},
      {"hotspot (zipf 1.0, 80% reads)",
       hotspot.Generate(kProcessors, 600, 13)},
  };

  util::Table table({"workload", "DA", "DA_nosave", "DA_broadcast_inval",
                     "saving_gain", "joinlist_gain"});
  bool save_helps_on_reads = false;  // on the bursty repeat-reader workload
  bool joinlist_always_helps = true;
  for (const WorkloadSpec& spec : specs) {
    core::DynamicAllocation da;
    DaNoSave nosave;
    core::RunResult da_run = core::RunWithCost(da, sc, spec.schedule, kInitial);
    core::RunResult nosave_run =
        core::RunWithCost(nosave, sc, spec.schedule, kInitial);
    double broadcast_cost = BroadcastInvalidationCost(sc, da_run.allocation);

    double saving_gain = nosave_run.cost / da_run.cost;
    double joinlist_gain = broadcast_cost / da_run.cost;
    if (spec.label.find("bursty") != std::string::npos) {
      save_helps_on_reads = saving_gain > 1.0;
    }
    joinlist_always_helps = joinlist_always_helps && joinlist_gain >= 1.0;
    table.AddRow()
        .Cell(spec.label)
        .Cell(da_run.cost, 1)
        .Cell(nosave_run.cost, 1)
        .Cell(broadcast_cost, 1)
        .Cell(saving_gain, 3)
        .Cell(joinlist_gain, 3);
  }
  table.WriteAligned(std::cout);
  std::cout << "\n(gains are cost multipliers of the ablated variant over "
               "the paper's DA; > 1 means the design choice pays off)\n\n";

  PrintPaperVsMeasured(std::cout,
                       "saving-reads amortize remote fetches when readers "
                       "repeat; join-lists invalidate only stale copies",
                       std::string("saving-reads ") +
                           (save_helps_on_reads ? "win" : "lose") +
                           " on bursty repeat readers (and are a worst-case "
                           "guarantee, not an average-case win, under "
                           "one-shot churn); join-lists never lose",
                       save_helps_on_reads && joinlist_always_helps);
  return save_helps_on_reads && joinlist_always_helps ? 0 : 1;
}
