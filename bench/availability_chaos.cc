// Fault-tolerant serving under deterministic chaos: events/sec and
// repair-latency percentiles of the ObjectService at a sweep of crash rates
// (DESIGN.md §9), written as a machine-readable JSON artifact
// (BENCH_availability_chaos.json) like the other serving benches.
//
// Usage: availability_chaos [--out=BENCH_availability_chaos.json]
//                           [--events=1000000] [--objects=512]
//                           [--processors=16] [--shards=1,4,16]
//                           [--threads=1,2,4] [--batch=8192] [--repeats=2]
//                           [--crash_rates=0,1e-5,1e-3]
//                           [--recover_factor=10] [--chaos_seed=77]
//                           [--expect_control=N] [--expect_data=N]
//                           [--expect_io=N] [--expect_crc=N]
//
// Per crash rate, every (shards, threads) configuration must reproduce a
// byte-identical fingerprint — integer traffic counts, fault counters, the
// repair-latency multiset, and a CRC32 over the sorted per-object (id,
// scheme) table — or the bench aborts: chaos is part of the determinism
// contract, not an exemption from it. The zero-rate row is additionally
// replayed through the *plain* (injector-free) engine and must match it
// exactly — the fault path is cost-identical when no fault fires. The
// --expect_* flags pin that zero-rate fingerprint to the same committed
// goldens service_scaling uses (the CI perf-smoke gate).
//
// Random crashes honor min_live = t, so no batch is ever rejected here;
// requests from crashed issuers go unavailable and schemes heal by
// deterministic re-replication, whose virtual latency (two hops per replica
// plus retransmission backoff) is summarized as p50/p90/p99/max.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/stats.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

struct Fingerprint {
  model::CostBreakdown breakdown;
  int64_t requests = 0;
  uint32_t scheme_crc = 0;
  int64_t crashes = 0;
  int64_t recoveries = 0;
  int64_t repairs = 0;
  int64_t replicas_added = 0;
  int64_t unavailable = 0;
  uint32_t latency_crc = 0;  // CRC over the sorted repair-latency multiset

  bool operator==(const Fingerprint& other) const {
    return breakdown == other.breakdown && requests == other.requests &&
           scheme_crc == other.scheme_crc && crashes == other.crashes &&
           recoveries == other.recoveries && repairs == other.repairs &&
           replicas_added == other.replicas_added &&
           unavailable == other.unavailable &&
           latency_crc == other.latency_crc;
  }
};

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

uint32_t SchemeCrc(const core::ObjectService& service) {
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  return crc;
}

uint32_t LatencyCrc(std::vector<double> samples) {
  // Sample *order* depends on the shard/thread configuration; the multiset
  // does not — fingerprint the sorted sequence.
  std::sort(samples.begin(), samples.end());
  uint32_t crc = 0;
  for (const double sample : samples) {
    crc = util::Crc32(&sample, sizeof(sample), crc);
  }
  return crc;
}

std::vector<int> ParseIntList(const std::string& arg, const char* flag) {
  std::vector<int> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    int value = 0;
    try {
      size_t used = 0;
      value = std::stoi(token, &used);
      if (used != token.size()) value = 0;
    } catch (const std::exception&) {
      value = 0;
    }
    if (value <= 0) {
      std::fprintf(stderr, "bad value in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(value);
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

std::vector<double> ParseDoubleList(const std::string& arg,
                                    const char* flag) {
  std::vector<double> values;
  size_t pos = 0;
  while (pos <= arg.size()) {
    size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string token = arg.substr(pos, comma - pos);
    double value = -1;
    try {
      size_t used = 0;
      value = std::stod(token, &used);
      if (used != token.size()) value = -1;
    } catch (const std::exception&) {
      value = -1;
    }
    if (value < 0 || value > 1) {
      std::fprintf(stderr, "bad rate in %s: '%s'\n", flag, token.c_str());
      std::exit(1);
    }
    values.push_back(value);
    pos = comma + 1;
    if (pos == arg.size() + 1) break;
  }
  return values;
}

struct RateResult {
  double crash_rate = 0;
  double events_per_sec = 0;  // best across configs and repeats
  Fingerprint fingerprint;
  double repair_p50 = 0;
  double repair_p90 = 0;
  double repair_p99 = 0;
  double repair_max = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_availability_chaos.json";
  size_t events = 1000000;
  int objects = 512;
  int processors = 16;
  std::vector<int> shard_counts = {1, 4, 16};
  std::vector<int> thread_counts = {1, 2, 4};
  size_t batch_size = 8192;
  int repeats = 2;
  std::vector<double> crash_rates = {0, 1e-5, 1e-3};
  double recover_factor = 10;
  uint64_t chaos_seed = 77;
  long long expect_control = -1;
  long long expect_data = -1;
  long long expect_io = -1;
  long long expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (int_flag("--events=", &events) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--repeats=", &repeats) ||
               int_flag("--chaos_seed=", &chaos_seed) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else if (arg.rfind("--shards=", 0) == 0) {
      shard_counts = ParseIntList(arg.substr(9), "--shards=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = ParseIntList(arg.substr(10), "--threads=");
    } else if (arg.rfind("--crash_rates=", 0) == 0) {
      crash_rates = ParseDoubleList(arg.substr(14), "--crash_rates=");
    } else if (arg.rfind("--recover_factor=", 0) == 0) {
      recover_factor = std::atof(arg.substr(17).c_str());
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  // The service_scaling trace, so the zero-rate goldens are shared.
  const uint64_t kSeed = 0x5eed5ca1e;
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  std::printf("generating %zu events over %d objects, %d processors "
              "(seed %llu)...\n",
              events, objects, processors,
              static_cast<unsigned long long>(kSeed));
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, kSeed);
  const model::CostModel cost_model =
      model::CostModel::StationaryComputing(0.25, 1.0);
  const int threshold = ServiceConfig().initial_scheme.Size();

  // Plain-engine reference: the zero-fault chaos row must match this
  // exactly (the fault path is cost-identical when no fault fires).
  Fingerprint plain;
  {
    util::ScopedThreads scope(1);
    core::ObjectService service(processors, cost_model);
    service.ReserveObjects(static_cast<size_t>(objects));
    for (int id = 0; id < objects; ++id) {
      OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
    }
    std::span<const workload::MultiObjectEvent> all(trace.events);
    for (size_t pos = 0; pos < all.size(); pos += batch_size) {
      auto batch = service.ServeBatch(
          all.subspan(pos, std::min(batch_size, all.size() - pos)));
      OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
    }
    plain.breakdown = service.TotalBreakdown();
    plain.requests = service.TotalRequests();
    plain.scheme_crc = SchemeCrc(service);
  }

  std::vector<RateResult> results;
  for (const double crash_rate : crash_rates) {
    core::FaultInjectorOptions fault_options;
    fault_options.seed = chaos_seed;
    fault_options.crash_rate = crash_rate;
    fault_options.recover_rate =
        std::min(1.0, crash_rate * std::max(recover_factor, 1.0));
    fault_options.min_live = threshold;  // never below t live: no rejects

    RateResult result;
    result.crash_rate = crash_rate;
    bool have_reference = false;
    std::vector<double> repair_latency;
    for (int shards : shard_counts) {
      for (int threads : thread_counts) {
        util::ScopedThreads scope(threads);
        double best = 0;
        Fingerprint fingerprint;
        for (int r = 0; r < repeats; ++r) {
          core::ServiceOptions service_options;
          service_options.num_shards = shards;
          core::ObjectService service(processors, cost_model,
                                      service_options);
          service.ReserveObjects(static_cast<size_t>(objects));
          for (int id = 0; id < objects; ++id) {
            OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
          }
          OBJALLOC_CHECK(service.EnableFaults(fault_options).ok());
          auto start = std::chrono::steady_clock::now();
          std::span<const workload::MultiObjectEvent> all(trace.events);
          for (size_t pos = 0; pos < all.size(); pos += batch_size) {
            auto batch = service.ServeBatch(
                all.subspan(pos, std::min(batch_size, all.size() - pos)));
            OBJALLOC_CHECK(batch.ok()) << batch.status().ToString();
          }
          auto stop = std::chrono::steady_clock::now();
          const double seconds =
              std::chrono::duration<double>(stop - start).count();
          if (r == 0 || seconds < best) best = seconds;
          const core::FaultStats& stats = service.fault_stats();
          fingerprint.breakdown = service.TotalBreakdown();
          fingerprint.requests = service.TotalRequests();
          fingerprint.scheme_crc = SchemeCrc(service);
          fingerprint.crashes = stats.crashes;
          fingerprint.recoveries = stats.recoveries;
          fingerprint.repairs = stats.repairs;
          fingerprint.replicas_added = stats.replicas_added;
          fingerprint.unavailable = stats.unavailable_requests;
          fingerprint.latency_crc = LatencyCrc(stats.repair_latency);
          if (!have_reference) repair_latency = stats.repair_latency;
        }
        if (!have_reference) {
          result.fingerprint = fingerprint;
          have_reference = true;
        }
        OBJALLOC_CHECK(fingerprint == result.fingerprint)
            << "crash_rate=" << crash_rate << " shards=" << shards
            << " threads=" << threads
            << " diverged from the reference run: chaos must be "
               "bit-identical across every configuration";
        const double eps = static_cast<double>(events) / best;
        if (eps > result.events_per_sec) result.events_per_sec = eps;
      }
    }
    if (crash_rate == 0) {
      OBJALLOC_CHECK(result.fingerprint.breakdown == plain.breakdown &&
                     result.fingerprint.requests == plain.requests &&
                     result.fingerprint.scheme_crc == plain.scheme_crc)
          << "zero-fault chaos path diverged from the plain engine: the "
             "fault path must be cost-identical when no fault fires";
      OBJALLOC_CHECK(result.fingerprint.crashes == 0 &&
                     result.fingerprint.repairs == 0 &&
                     result.fingerprint.unavailable == 0);
    }
    if (!repair_latency.empty()) {
      util::PercentileTracker tracker;
      double max_sample = 0;
      for (const double sample : repair_latency) {
        tracker.Add(sample);
        max_sample = std::max(max_sample, sample);
      }
      result.repair_p50 = tracker.Percentile(0.5);
      result.repair_p90 = tracker.Percentile(0.9);
      result.repair_p99 = tracker.Percentile(0.99);
      result.repair_max = max_sample;
    }
    results.push_back(result);
    std::printf(
        "crash_rate=%-8g %12.0f events/sec  crashes=%-6lld repairs=%-6lld "
        "replicas=%-6lld unavailable=%-7lld repair p50/p90/p99/max = "
        "%.0f/%.0f/%.0f/%.0f\n",
        crash_rate, result.events_per_sec,
        static_cast<long long>(result.fingerprint.crashes),
        static_cast<long long>(result.fingerprint.repairs),
        static_cast<long long>(result.fingerprint.replicas_added),
        static_cast<long long>(result.fingerprint.unavailable),
        result.repair_p50, result.repair_p90, result.repair_p99,
        result.repair_max);
  }

  // Golden-fingerprint gate (CI perf-smoke): pins the zero-rate row to the
  // same committed goldens as service_scaling.
  bool golden_ok = true;
  auto check_golden = [&](const char* name, long long expected,
                          long long actual) {
    if (expected < 0) return;
    if (expected != actual) {
      std::fprintf(stderr,
                   "golden fingerprint mismatch: %s expected %lld got %lld\n",
                   name, expected, actual);
      golden_ok = false;
    }
  };
  const RateResult* zero_rate = nullptr;
  for (const RateResult& result : results) {
    if (result.crash_rate == 0) zero_rate = &result;
  }
  if (expect_control >= 0 || expect_data >= 0 || expect_io >= 0 ||
      expect_crc >= 0) {
    OBJALLOC_CHECK(zero_rate != nullptr)
        << "--expect_* flags need a zero entry in --crash_rates";
    check_golden("control", expect_control,
                 zero_rate->fingerprint.breakdown.control_messages);
    check_golden("data", expect_data,
                 zero_rate->fingerprint.breakdown.data_messages);
    check_golden("io", expect_io, zero_rate->fingerprint.breakdown.io_ops);
    check_golden("scheme_crc", expect_crc,
                 static_cast<long long>(zero_rate->fingerprint.scheme_crc));
    if (!golden_ok) return 1;
    std::printf("golden fingerprint matches expected values\n");
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"benchmark\": \"availability_chaos\",\n";
  out << "  \"hardware_concurrency\": " << util::GlobalThreads() << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"objects\": " << objects << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"repeats\": " << repeats << ",\n";
  out << "  \"chaos_seed\": " << chaos_seed << ",\n";
  out << "  \"recover_factor\": " << recover_factor << ",\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    out << "    {\"crash_rate\": " << r.crash_rate
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"crashes\": " << r.fingerprint.crashes
        << ", \"recoveries\": " << r.fingerprint.recoveries
        << ", \"repairs\": " << r.fingerprint.repairs
        << ", \"replicas_added\": " << r.fingerprint.replicas_added
        << ", \"unavailable\": " << r.fingerprint.unavailable
        << ", \"repair_latency_p50\": " << r.repair_p50
        << ", \"repair_latency_p90\": " << r.repair_p90
        << ", \"repair_latency_p99\": " << r.repair_p99
        << ", \"repair_latency_max\": " << r.repair_max
        << ", \"fingerprint\": {\"control\": "
        << r.fingerprint.breakdown.control_messages
        << ", \"data\": " << r.fingerprint.breakdown.data_messages
        << ", \"io\": " << r.fingerprint.breakdown.io_ops
        << ", \"scheme_crc\": " << r.fingerprint.scheme_crc
        << ", \"latency_crc\": " << r.fingerprint.latency_crc << "}}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
