// Experiment E15 (extension) — heterogeneous networks (§6's extension
// discussion): the same allocation policies evaluated under weighted
// topologies. Two scenarios:
//
//   * two clusters joined by an expensive WAN link (inter multiplier 4x):
//     readers in the far cluster punish SA per read; DA amortizes the link
//     once per joiner per write interval; the topology-aware DA variant
//     additionally fetches from a same-cluster replica when one exists;
//   * a base-station star (spoke-to-spoke relayed at 2x, fast center disk):
//     the paper's own mobile scenario, where placing F at the base station
//     is exactly what DA's natural configuration suggests (§2).

#include <iostream>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/core/topology_aware.h"
#include "objalloc/model/topology.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/rng.h"

namespace {

using namespace objalloc;

// Readers mostly in cluster 1 (processors >= split); writers near the core.
model::Schedule ClusterWorkload(int n, int split, size_t length,
                                uint64_t seed) {
  util::Rng rng(seed);
  model::Schedule schedule(n);
  for (size_t k = 0; k < length; ++k) {
    if (rng.NextBernoulli(0.85)) {
      auto reader = static_cast<util::ProcessorId>(
          split + static_cast<int>(rng.NextBounded(
                      static_cast<uint64_t>(n - split))));
      schedule.AppendRead(reader);
    } else {
      schedule.AppendWrite(static_cast<util::ProcessorId>(
          rng.NextBounded(static_cast<uint64_t>(split))));
    }
  }
  return schedule;
}

}  // namespace

int main() {
  using namespace objalloc;

  const int n = 10;
  const model::ProcessorSet initial{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  std::cout << "\n==== E15: heterogeneous-network scenarios (n=10, t=2, SC "
               "cc=0.25 cd=1.0) ====\n\n";

  struct Scenario {
    std::string label;
    model::NetworkTopology topology;
    model::Schedule schedule;
  };
  Scenario scenarios[] = {
      {"two clusters, 4x WAN link, far-cluster readers",
       model::NetworkTopology::TwoClusters(n, 5, 4.0),
       ClusterWorkload(n, 5, 800, 1)},
      {"base-station star, relayed spokes, fast center disk",
       model::NetworkTopology::Star(n, 0, 0.5),
       ClusterWorkload(n, 1, 800, 2)},
  };

  util::Table table({"scenario", "SA", "DA", "TopoDA", "TopoDA_gain_vs_DA"});
  bool topo_never_worse = true;
  for (Scenario& scenario : scenarios) {
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    core::TopologyAwareAllocation topo(scenario.topology);

    auto weighted = [&](core::DomAlgorithm& algorithm) {
      model::AllocationSchedule allocation =
          core::RunAlgorithm(algorithm, scenario.schedule, initial);
      return model::WeightedScheduleCost(sc, scenario.topology, allocation);
    };
    double sa_cost = weighted(sa);
    double da_cost = weighted(da);
    double topo_cost = weighted(topo);
    topo_never_worse = topo_never_worse && topo_cost <= da_cost * 1.001;
    table.AddRow()
        .Cell(scenario.label)
        .Cell(sa_cost, 1)
        .Cell(da_cost, 1)
        .Cell(topo_cost, 1)
        .Cell(da_cost / topo_cost, 3);
  }
  table.WriteAligned(std::cout);

  std::cout << "\n  paper:    the model extends beyond homogeneous networks "
               "(§6); F belongs at the base station (§2)\n";
  std::cout << "  measured: topology-aware DA "
            << (topo_never_worse ? "never loses to" : "can lose to")
            << " plain DA and both beat SA on far-cluster reads\n";
  std::cout << "  verdict:  "
            << (topo_never_worse ? "REPRODUCED" : "NOT REPRODUCED") << "\n";
  return topo_never_worse ? 0 : 1;
}
