// Experiment E8 — availability under failures (§2): the paper proposes that
// DA handle an F-member failure by degrading to quorum consensus via a
// missing-writes transition. This bench crashes processors mid-schedule and
// reports, per protocol: requests served, requests refused, stale reads
// (must be zero), failovers, and traffic.
//
// Expected shape: strict-ROWA SA refuses every write while any scheme
// member is down; DA fails over once and keeps serving; quorum consensus
// sails through minority crashes at a higher steady-state message cost.

#include <iostream>

#include "objalloc/sim/simulator.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/uniform.h"

int main() {
  using namespace objalloc;

  const int kProcessors = 7;
  const model::ProcessorSet kInitial{0, 1};
  model::CostModel sc = model::CostModel::StationaryComputing(0.5, 1.0);

  std::cout << "\n==== E8: availability under failures (n=7, t=2, "
               "crash F-member 0 at request 100, recover at 300; crash "
               "processor 4 at 350, recover at 450) ====\n\n";

  workload::UniformWorkload uniform(0.7);
  model::Schedule schedule = uniform.Generate(kProcessors, 500, 77);

  sim::FailurePlan plan;
  plan.events.push_back(sim::FailureEvent::Crash(100, 0));
  plan.events.push_back(sim::FailureEvent::Recover(300, 0));
  plan.events.push_back(sim::FailureEvent::Crash(350, 4));
  plan.events.push_back(sim::FailureEvent::Recover(450, 4));

  util::Table table({"protocol", "served", "unavailable", "stale_reads",
                     "failovers", "ctrl_msgs", "data_msgs", "io_ops",
                     "total_cost"});
  bool da_ok = false, sa_blocks = false, fresh = true;
  for (auto kind : {sim::ProtocolKind::kStatic, sim::ProtocolKind::kDynamic,
                    sim::ProtocolKind::kQuorum}) {
    sim::SimulatorOptions options;
    options.protocol = kind;
    options.num_processors = kProcessors;
    options.initial_scheme = kInitial;
    sim::Simulator simulator(options);
    auto report = simulator.RunSchedule(schedule, plan);

    const char* name = kind == sim::ProtocolKind::kStatic
                           ? "SA (strict ROWA)"
                           : kind == sim::ProtocolKind::kDynamic
                                 ? "DA (+quorum failover)"
                                 : "Quorum consensus";
    table.AddRow()
        .Cell(name)
        .Cell(report.served)
        .Cell(report.unavailable)
        .Cell(report.stale_reads)
        .Cell(report.metrics.failovers)
        .Cell(report.metrics.control_messages)
        .Cell(report.metrics.data_messages)
        .Cell(report.metrics.io_ops)
        .Cell(report.metrics.Cost(sc), 1);

    fresh = fresh && report.stale_reads == 0;
    if (kind == sim::ProtocolKind::kDynamic) {
      // DA refuses only requests issued *by* crashed processors.
      da_ok = report.unavailable <= 60 && report.metrics.failovers >= 1;
    }
    if (kind == sim::ProtocolKind::kStatic) {
      sa_blocks = report.unavailable > 50;  // all writes during the outage
    }
  }
  table.WriteAligned(std::cout);

  std::cout << "\n  paper:    DA degrades to quorum consensus on an "
               "F-member failure and keeps serving (§2)\n";
  std::cout << "  measured: DA " << (da_ok ? "kept serving" : "DID NOT")
            << " with zero stale reads; strict-ROWA SA "
            << (sa_blocks ? "blocked its writes" : "did not block")
            << " during the outage\n";
  std::cout << "  verdict:  "
            << (da_ok && sa_blocks && fresh ? "REPRODUCED" : "NOT REPRODUCED")
            << "\n";
  return da_ok && sa_blocks && fresh ? 0 : 1;
}
