// Experiment E13 (extension) — all five allocation policies side by side:
// SA, DA, quorum voting (Gifford/Thomas, the paper's [14, 25]), the
// counter-based CDDR-like policy ([17]), and the convergent adaptive
// allocator. Two views:
//
//   (a) §5.1's claim that CDDR "is not competitive when the I/O cost and
//       the availability constraints are taken into consideration": the
//       counter policy's worst measured ratio must exceed DA's analytic
//       factor somewhere on the grid while DA itself stays below it;
//   (b) average costs across workload families — no policy dominates.

#include <iostream>

#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/report.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/counter_replication.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/quorum_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/csv.h"
#include "objalloc/workload/ensemble.h"

int main() {
  using namespace objalloc;
  using namespace objalloc::analysis;

  RatioOptions options;
  options.num_processors = 7;
  options.t = 2;
  options.schedule_length = 140;
  options.seeds_per_generator = 3;
  auto adversaries = workload::WorstCaseEnsemble(options.t);

  PrintExperimentHeader(std::cout, "E13a",
                        "Worst measured ratio vs exact OPT per policy (SC); "
                        "DA's analytic factor shown for reference");
  util::Table worst({"cc", "cd", "DA_factor", "SA", "DA", "Counter",
                     "QuorumVoting", "Adaptive"});
  bool da_within = true;
  bool counter_exceeds_somewhere = false;
  for (auto [cc, cd] : {std::pair{0.1, 0.2}, {0.25, 0.5}, {0.5, 1.0},
                        {0.25, 2.0}, {0.02, 2.0}}) {
    model::CostModel cm = model::CostModel::StationaryComputing(cc, cd);
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    // A longer counter lifetime strengthens the hysteresis — and with it
    // the I/O-blind refresh traffic that breaks competitiveness here.
    core::CounterReplicationOptions counter_options;
    counter_options.lifetime = 4;
    core::CounterReplication counter(counter_options);
    core::QuorumAllocation quorum(core::QuorumAllocationOptions{});
    core::AdaptiveAllocation adaptive(cm, core::AdaptiveOptions{});
    core::DomAlgorithm* algorithms[] = {&sa, &da, &counter, &quorum,
                                        &adaptive};
    double ratios[5];
    for (int a = 0; a < 5; ++a) {
      ratios[a] = MeasureCompetitiveRatio(*algorithms[a], cm, adversaries,
                                          options)
                      .worst.ratio;
    }
    double factor = DaCompetitiveFactor(cm);
    da_within = da_within && ratios[1] <= factor + 0.05;
    counter_exceeds_somewhere =
        counter_exceeds_somewhere || ratios[2] > factor + 0.05;
    worst.AddRow()
        .Cell(cc, 2)
        .Cell(cd, 2)
        .Cell(factor, 3)
        .Cell(ratios[0], 3)
        .Cell(ratios[1], 3)
        .Cell(ratios[2], 3)
        .Cell(ratios[3], 3)
        .Cell(ratios[4], 3);
  }
  worst.WriteAligned(std::cout);
  std::cout << "\n";
  PrintPaperVsMeasured(
      std::cout,
      "CDDR-style replication is not competitive in the unified model "
      "(§5.1); DA is",
      std::string("counter policy ") +
          (counter_exceeds_somewhere ? "exceeds" : "never exceeds") +
          " DA's factor on the grid; DA itself " +
          (da_within ? "stays within it" : "VIOLATES it"),
      counter_exceeds_somewhere && da_within);

  PrintExperimentHeader(std::cout, "E13b",
                        "Mean cost per request across workload families "
                        "(SC cc=0.25 cd=1.0, n=7, t=2)");
  model::CostModel cm = model::CostModel::StationaryComputing(0.25, 1.0);
  util::Table average({"workload", "SA", "DA", "Counter", "QuorumVoting",
                       "Adaptive", "best"});
  auto families = workload::AverageCaseEnsemble();
  for (const auto& family : families) {
    const char* names[] = {"SA", "DA", "Counter", "QuorumVoting",
                           "Adaptive"};
    double costs[5] = {0, 0, 0, 0, 0};
    const int kSeeds = 4;
    const size_t kLen = 600;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      model::Schedule schedule =
          family->Generate(options.num_processors, kLen, seed);
      core::StaticAllocation sa;
      core::DynamicAllocation da;
      core::CounterReplication counter(core::CounterReplicationOptions{});
      core::QuorumAllocation quorum(core::QuorumAllocationOptions{});
      core::AdaptiveAllocation adaptive(cm, core::AdaptiveOptions{});
      core::DomAlgorithm* algorithms[] = {&sa, &da, &counter, &quorum,
                                          &adaptive};
      for (int a = 0; a < 5; ++a) {
        costs[a] += core::RunWithCost(*algorithms[a], cm, schedule,
                                      model::ProcessorSet::FirstN(options.t))
                        .cost;
      }
    }
    int best = 0;
    for (int a = 1; a < 5; ++a) {
      if (costs[a] < costs[best]) best = a;
    }
    auto row = average.AddRow();
    row.Cell(family->name());
    for (double cost : costs) row.Cell(cost / (kSeeds * kLen), 4);
    row.Cell(names[best]);
  }
  average.WriteAligned(std::cout);
  std::cout << "\n(no single policy dominates: the structure the paper's "
               "worst-case theory predicts)\n";
  return counter_exceeds_somewhere && da_within ? 0 : 1;
}
