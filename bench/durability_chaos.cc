// Durability-under-fire benchmark (DESIGN.md §14): throughput and commit
// latency while a seeded FaultyEnv chews on the disk.
//
// One table, one story: the same deterministic trace as service_scaling /
// crash_recover is served durably while the Env injects EIO bursts, latency
// spikes, or a scripted dead-disk; every row reports events/sec, commit
// p50/p99, how many faults the retry path absorbed, and whether the run
// stayed durable or degraded (and then how long ReattachDurability took to
// heal on a fresh disk).
//
// Correctness is gated, not just measured: the in-memory fingerprint must
// equal the plain engine's in EVERY row — a fault that changes an
// allocation decision fails the bench — and after heal/sync the directory
// must recover to the same fingerprint. The zero-injection row doubles as
// the CI golden gate via --expect_control/--expect_data/--expect_io/
// --expect_crc (the same values the plain perf smoke pins).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/faulty_env.h"
#include "objalloc/util/logging.h"
#include "objalloc/workload/multi_object.h"

namespace {

using namespace objalloc;

struct Fingerprint {
  model::CostBreakdown breakdown;
  int64_t requests = 0;
  uint32_t scheme_crc = 0;

  bool operator==(const Fingerprint& other) const {
    return breakdown == other.breakdown && requests == other.requests &&
           scheme_crc == other.scheme_crc;
  }
};

core::ObjectConfig ServiceConfig() {
  core::ObjectConfig config;
  config.initial_scheme = model::ProcessorSet{0, 1};
  config.algorithm = core::AlgorithmKind::kDynamic;
  return config;
}

Fingerprint Capture(const core::ObjectService& service) {
  Fingerprint fingerprint;
  fingerprint.breakdown = service.TotalBreakdown();
  fingerprint.requests = service.TotalRequests();
  uint32_t crc = 0;
  for (core::ObjectId id : service.SortedObjectIds()) {
    const uint64_t mask = service.StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  fingerprint.scheme_crc = crc;
  return fingerprint;
}

double Seconds(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double>(stop - start).count();
}

// One fault profile = one table row.
struct Profile {
  const char* name;
  double error_rate = 0;  // EIO on read/write/sync, seeded per-op
  double slow_rate = 0;   // latency spikes
  uint64_t slow_us = 0;
  bool dead_disk = false;  // scripted: EIO forever from op --dead_at on
};

struct Row {
  std::string name;
  double serve_seconds = 0;
  double events_per_sec = 0;
  double overhead_vs_plain = 0;
  uint64_t group_commits = 0;
  double commit_latency_p50_us = 0;
  double commit_latency_p99_us = 0;
  uint64_t faults_injected = 0;
  uint64_t wal_write_retries = 0;
  uint64_t checkpoint_retries = 0;
  uint64_t degraded_batches = 0;
  std::string final_state;
  bool reattached = false;
  double reattach_seconds = 0;
};

const char* StateName(core::DurabilityState state) {
  switch (state) {
    case core::DurabilityState::kDetached:
      return "detached";
    case core::DurabilityState::kDurable:
      return "durable";
    case core::DurabilityState::kDegraded:
      return "degraded";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_durability_chaos.json";
  std::string dir_root =
      (std::filesystem::temp_directory_path() / "objalloc_chaos_bench")
          .string();
  size_t events = 100000;
  int objects = 512;
  int processors = 16;
  size_t batch_size = 1024;
  size_t interval = 25000;
  // Counted ops after going live before the scripted disk dies. Group
  // commits coalesce aggressively, so a full serve is only a few hundred
  // counted ops; 25 lands the death mid-stream.
  uint64_t dead_at = 25;
  long long expect_control = -1, expect_data = -1, expect_io = -1,
            expect_crc = -1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto int_flag = [&](const char* prefix, auto* out) {
      const size_t n = std::string(prefix).size();
      if (arg.rfind(prefix, 0) != 0) return false;
      long long value = std::atoll(arg.substr(n).c_str());
      if (value <= 0) {
        std::fprintf(stderr, "bad value: %s\n", arg.c_str());
        std::exit(1);
      }
      *out = static_cast<std::decay_t<decltype(*out)>>(value);
      return true;
    };
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir_root = arg.substr(6);
    } else if (int_flag("--events=", &events) ||
               int_flag("--objects=", &objects) ||
               int_flag("--processors=", &processors) ||
               int_flag("--batch=", &batch_size) ||
               int_flag("--interval=", &interval) ||
               int_flag("--dead_at=", &dead_at) ||
               int_flag("--expect_control=", &expect_control) ||
               int_flag("--expect_data=", &expect_data) ||
               int_flag("--expect_io=", &expect_io) ||
               int_flag("--expect_crc=", &expect_crc)) {
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  const uint64_t kSeed = 0x5eed5ca1e;  // same trace as service_scaling
  workload::MultiObjectOptions options;
  options.num_processors = processors;
  options.num_objects = objects;
  options.length = events;
  options.popularity_skew = 0.9;
  std::printf("generating %zu events over %d objects, %d processors...\n",
              events, objects, processors);
  const workload::MultiObjectTrace trace =
      workload::GenerateMultiObjectTrace(options, kSeed);
  const std::span<const workload::MultiObjectEvent> all(trace.events);
  const model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  auto serve_all = [&](core::ObjectService& service) {
    for (size_t pos = 0; pos < all.size(); pos += batch_size) {
      const size_t n = std::min(batch_size, all.size() - pos);
      auto result = service.ServeBatch(all.subspan(pos, n));
      OBJALLOC_CHECK(result.ok()) << result.status().ToString();
    }
  };

  // --- Plain engine: the golden fingerprint and the throughput baseline --
  Fingerprint plain;
  double plain_seconds = 0;
  {
    core::ObjectService service(processors, sc);
    service.ReserveObjects(static_cast<size_t>(objects));
    for (int id = 0; id < objects; ++id) {
      OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
    }
    auto start = std::chrono::steady_clock::now();
    serve_all(service);
    auto stop = std::chrono::steady_clock::now();
    plain_seconds = Seconds(start, stop);
    plain = Capture(service);
    std::printf("%-28s %12.0f events/sec   fingerprint control=%lld "
                "data=%lld io=%lld crc=%u\n",
                "plain (no durability)",
                static_cast<double>(events) / plain_seconds,
                static_cast<long long>(plain.breakdown.control_messages),
                static_cast<long long>(plain.breakdown.data_messages),
                static_cast<long long>(plain.breakdown.io_ops),
                plain.scheme_crc);
  }
  auto check_golden = [](const char* name, long long expect, long long got) {
    if (expect >= 0 && expect != got) {
      std::fprintf(stderr, "GOLDEN MISMATCH: %s expected %lld, got %lld\n",
                   name, expect, got);
      std::exit(1);
    }
  };
  check_golden("control", expect_control, plain.breakdown.control_messages);
  check_golden("data", expect_data, plain.breakdown.data_messages);
  check_golden("io", expect_io, plain.breakdown.io_ops);
  check_golden("scheme_crc", expect_crc,
               static_cast<long long>(plain.scheme_crc));

  const Profile profiles[] = {
      {"no injection"},
      {"eio 2%", /*error_rate=*/0.02},
      {"eio 10%", /*error_rate=*/0.10},
      {"latency 5% x 2ms", 0, /*slow_rate=*/0.05, /*slow_us=*/2000},
      {"dead disk mid-run", 0, 0, 0, /*dead_disk=*/true},
  };

  std::vector<Row> rows;
  for (size_t p = 0; p < std::size(profiles); ++p) {
    const Profile& profile = profiles[p];
    const std::string dir = dir_root + "/row_" + std::to_string(p);
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    util::FaultyEnvOptions fault_options;
    fault_options.seed = 0xc4a05 + p;
    fault_options.real_time = true;  // measured latency, real backoff
    util::FaultyEnv faulty(fault_options);

    core::DurabilityOptions durability;
    durability.checkpoint_interval_events = interval;

    Row row;
    row.name = profile.name;
    core::ObjectService service(processors, sc);
    {
      // Everything the service opens inside this scope — WAL, checkpoints,
      // manifest — captures the faulty env and keeps it for life.
      util::ScopedEnv scoped(&faulty);
      service.ReserveObjects(static_cast<size_t>(objects));
      for (int id = 0; id < objects; ++id) {
        OBJALLOC_CHECK(service.AddObject(id, ServiceConfig()).ok());
      }
      OBJALLOC_CHECK(service.EnableDurability(dir, durability).ok());
      // The disk was healthy at mount; it goes bad once the service is
      // live (rates are zero until here, so EnableDurability's full
      // checkpoint write never has to survive a lossy disk).
      faulty.SetRates(profile.error_rate, 0, profile.slow_rate,
                      profile.slow_us);
      if (profile.dead_disk) {
        // Dies `dead_at` counted ops after going live, then never recovers.
        faulty.SetPlan({faulty.op_count() + dead_at, util::FaultKind::kEio,
                        util::FaultPlan::kForever});
      }
      auto start = std::chrono::steady_clock::now();
      serve_all(service);
      // Drain the pipeline inside the timed window: commit latency under
      // faults is part of the row. A degraded service fails this; the
      // state is read below either way.
      (void)service.SyncDurable();
      auto stop = std::chrono::steady_clock::now();
      row.serve_seconds = Seconds(start, stop);
    }
    row.events_per_sec = static_cast<double>(events) / row.serve_seconds;
    row.overhead_vs_plain = row.serve_seconds / plain_seconds;

    // Serving correctness is non-negotiable in every row: faults may cost
    // durability and time, never allocation decisions.
    OBJALLOC_CHECK(Capture(service) == plain)
        << "row '" << profile.name << "' diverged from the plain engine";

    const core::ServiceStats stats = service.Stats();
    row.group_commits = stats.commit.group_commits;
    row.commit_latency_p50_us = stats.commit.commit_latency_p50_us;
    row.commit_latency_p99_us = stats.commit.commit_latency_p99_us;
    row.faults_injected = faulty.faults_injected();
    row.wal_write_retries = stats.wal_write_retries;
    row.checkpoint_retries = stats.checkpoint_retries;
    row.degraded_batches = stats.degraded_batches;
    row.final_state = StateName(stats.durability);

    if (stats.durability == core::DurabilityState::kDegraded) {
      // "Replace the disk": the scope above ended, so reattach IO goes
      // through the clean default env. Time the heal — fresh checkpoint,
      // new WAL generation, verified resync.
      faulty.ClearPlan();
      auto start = std::chrono::steady_clock::now();
      util::Status status = service.ReattachDurability();
      auto stop = std::chrono::steady_clock::now();
      OBJALLOC_CHECK(status.ok())
          << "reattach after '" << profile.name
          << "': " << status.ToString();
      row.reattached = true;
      row.reattach_seconds = Seconds(start, stop);
      OBJALLOC_CHECK(service.SyncDurable().ok());
    }

    // Whether the row stayed durable or was healed, the directory must now
    // recover to the exact fingerprint.
    {
      const Fingerprint expected = Capture(service);
      core::ObjectService drop = std::move(service);
      (void)drop;
    }
    {
      auto recovered = core::ObjectService::Recover(dir, durability);
      OBJALLOC_CHECK(recovered.ok()) << recovered.status().ToString();
      OBJALLOC_CHECK(Capture(*recovered) == plain)
          << "recovery after '" << profile.name
          << "' diverged from the plain engine";
    }

    char heal_text[32];
    if (row.reattached) {
      std::snprintf(heal_text, sizeof(heal_text), "healed in %.3fs",
                    row.reattach_seconds);
    } else {
      std::snprintf(heal_text, sizeof(heal_text), "-");
    }
    std::printf("%-28s %10.0f events/sec (%5.2fx plain)  commit p50/p99 "
                "%6.0f/%6.0fus  faults %5llu  retries %llu+%llu  "
                "degraded_batches %5llu  %-8s %s\n",
                row.name.c_str(), row.events_per_sec, row.overhead_vs_plain,
                row.commit_latency_p50_us, row.commit_latency_p99_us,
                static_cast<unsigned long long>(row.faults_injected),
                static_cast<unsigned long long>(row.wal_write_retries),
                static_cast<unsigned long long>(row.checkpoint_retries),
                static_cast<unsigned long long>(row.degraded_batches),
                row.final_state.c_str(), heal_text);
    rows.push_back(std::move(row));
    std::filesystem::remove_all(dir);
  }

  std::ofstream out(out_path);
  OBJALLOC_CHECK(out.good()) << "cannot open " << out_path;
  out << "{\n";
  out << "  \"benchmark\": \"durability_chaos\",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"objects\": " << objects << ",\n";
  out << "  \"processors\": " << processors << ",\n";
  out << "  \"batch_size\": " << batch_size << ",\n";
  out << "  \"checkpoint_interval\": " << interval << ",\n";
  out << "  \"plain_events_per_sec\": "
      << static_cast<double>(events) / plain_seconds << ",\n";
  out << "  \"fingerprint\": {\"control\": "
      << plain.breakdown.control_messages
      << ", \"data\": " << plain.breakdown.data_messages
      << ", \"io\": " << plain.breakdown.io_ops
      << ", \"scheme_crc\": " << plain.scheme_crc << "},\n";
  out << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\""
        << ", \"serve_seconds\": " << row.serve_seconds
        << ", \"events_per_sec\": " << row.events_per_sec
        << ", \"overhead_vs_plain\": " << row.overhead_vs_plain
        << ", \"group_commits\": " << row.group_commits
        << ", \"commit_latency_p50_us\": " << row.commit_latency_p50_us
        << ", \"commit_latency_p99_us\": " << row.commit_latency_p99_us
        << ", \"faults_injected\": " << row.faults_injected
        << ", \"wal_write_retries\": " << row.wal_write_retries
        << ", \"checkpoint_retries\": " << row.checkpoint_retries
        << ", \"degraded_batches\": " << row.degraded_batches
        << ", \"final_state\": \"" << row.final_state << "\""
        << ", \"reattached\": " << (row.reattached ? "true" : "false")
        << ", \"reattach_seconds\": " << row.reattach_seconds << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
