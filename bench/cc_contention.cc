// Experiment E17 (extension) — the concurrency-control layer §3.1 assumes,
// under contention: strict 2PL with deadlock-victim retries, sweeping the
// number of hot objects. Fewer objects -> more lock conflicts -> more
// waiting, upgrades, and deadlock aborts; the emitted per-object schedules
// then flow into the allocation layer, where contention also concentrates
// requests (longer per-object schedules -> more to gain from DA's caching).

#include <iostream>

#include "objalloc/cc/serializer.h"
#include "objalloc/core/object_manager.h"
#include "objalloc/util/csv.h"
#include "objalloc/util/rng.h"

int main() {
  using namespace objalloc;

  const int kSites = 8;
  const int kTransactions = 300;
  model::CostModel sc = model::CostModel::StationaryComputing(0.25, 1.0);

  std::cout << "\n==== E17: strict-2PL serialization under contention "
               "(300 transactions, 8 sites, 3 ops each) ====\n\n";

  util::Table table({"objects", "deadlock_aborts", "SA_total_cost",
                     "DA_total_cost", "DA_gain"});
  int64_t aborts_few = 0, aborts_many = 0;
  for (int num_objects : {2, 4, 8, 16, 32, 64}) {
    util::Rng rng(static_cast<uint64_t>(num_objects) * 101);
    std::vector<cc::Transaction> transactions;
    for (cc::TransactionId id = 1; id <= kTransactions; ++id) {
      cc::Transaction txn;
      txn.id = id;
      txn.processor =
          static_cast<model::ProcessorId>(rng.NextBounded(kSites));
      for (int k = 0; k < 3; ++k) {
        auto object = static_cast<cc::ObjectId>(
            rng.NextBounded(static_cast<uint64_t>(num_objects)));
        txn.operations.push_back(rng.NextBernoulli(0.7)
                                     ? cc::Operation::Read(object)
                                     : cc::Operation::Write(object));
      }
      transactions.push_back(std::move(txn));
    }
    cc::Serializer serializer(kSites);
    cc::SerializerResult serialized = serializer.Run(transactions, 11);

    auto total_cost = [&](core::AlgorithmKind kind) {
      core::ObjectManager manager(kSites, sc);
      core::ObjectConfig config;
      config.initial_scheme = model::ProcessorSet{0, 1};
      config.algorithm = kind;
      for (const auto& [object, schedule] : serialized.schedules) {
        OBJALLOC_CHECK(manager.AddObject(object, config).ok());
        for (const auto& request : schedule.requests()) {
          OBJALLOC_CHECK(manager.Serve(object, request).ok());
        }
      }
      return manager.TotalCost();
    };
    double sa_cost = total_cost(core::AlgorithmKind::kStatic);
    double da_cost = total_cost(core::AlgorithmKind::kDynamic);
    if (num_objects == 2) aborts_few = serialized.deadlock_aborts;
    if (num_objects == 64) aborts_many = serialized.deadlock_aborts;
    table.AddRow()
        .Cell(num_objects)
        .Cell(serialized.deadlock_aborts)
        .Cell(sa_cost, 1)
        .Cell(da_cost, 1)
        .Cell(sa_cost / da_cost, 3);
  }
  table.WriteAligned(std::cout);

  bool contention_shape = aborts_few > aborts_many;
  std::cout << "\n  paper:    requests arrive 'ordered by some "
               "concurrency-control mechanism' (§3.1) — here made "
               "explicit\n";
  std::cout << "  measured: deadlock aborts fall from " << aborts_few
            << " (2 hot objects) to " << aborts_many
            << " (64 objects); every transaction commits\n";
  std::cout << "  verdict:  "
            << (contention_shape ? "CONSISTENT" : "INCONSISTENT") << "\n";
  return contention_shape ? 0 : 1;
}
