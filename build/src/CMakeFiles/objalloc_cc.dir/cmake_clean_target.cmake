file(REMOVE_RECURSE
  "libobjalloc_cc.a"
)
