# Empty dependencies file for objalloc_cc.
# This may be replaced when dependencies are built.
