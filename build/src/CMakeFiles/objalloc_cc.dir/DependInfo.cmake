
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/cc/lock_manager.cc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/lock_manager.cc.o" "gcc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/lock_manager.cc.o.d"
  "/root/repo/src/objalloc/cc/serializer.cc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/serializer.cc.o" "gcc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/serializer.cc.o.d"
  "/root/repo/src/objalloc/cc/transaction.cc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/transaction.cc.o" "gcc" "src/CMakeFiles/objalloc_cc.dir/objalloc/cc/transaction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
