file(REMOVE_RECURSE
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/lock_manager.cc.o"
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/lock_manager.cc.o.d"
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/serializer.cc.o"
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/serializer.cc.o.d"
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/transaction.cc.o"
  "CMakeFiles/objalloc_cc.dir/objalloc/cc/transaction.cc.o.d"
  "libobjalloc_cc.a"
  "libobjalloc_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
