file(REMOVE_RECURSE
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/exact_opt.cc.o"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/exact_opt.cc.o.d"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/interval_opt.cc.o"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/interval_opt.cc.o.d"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/relaxation_lower_bound.cc.o"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/relaxation_lower_bound.cc.o.d"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/weighted_opt.cc.o"
  "CMakeFiles/objalloc_opt.dir/objalloc/opt/weighted_opt.cc.o.d"
  "libobjalloc_opt.a"
  "libobjalloc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
