file(REMOVE_RECURSE
  "libobjalloc_opt.a"
)
