# Empty compiler generated dependencies file for objalloc_opt.
# This may be replaced when dependencies are built.
