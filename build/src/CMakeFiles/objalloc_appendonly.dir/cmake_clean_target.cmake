file(REMOVE_RECURSE
  "libobjalloc_appendonly.a"
)
