# Empty dependencies file for objalloc_appendonly.
# This may be replaced when dependencies are built.
