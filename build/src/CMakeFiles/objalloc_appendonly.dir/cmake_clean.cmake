file(REMOVE_RECURSE
  "CMakeFiles/objalloc_appendonly.dir/objalloc/appendonly/feed.cc.o"
  "CMakeFiles/objalloc_appendonly.dir/objalloc/appendonly/feed.cc.o.d"
  "CMakeFiles/objalloc_appendonly.dir/objalloc/appendonly/feed_manager.cc.o"
  "CMakeFiles/objalloc_appendonly.dir/objalloc/appendonly/feed_manager.cc.o.d"
  "libobjalloc_appendonly.a"
  "libobjalloc_appendonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_appendonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
