file(REMOVE_RECURSE
  "CMakeFiles/objalloc_util.dir/objalloc/util/ascii_plot.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/ascii_plot.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/crc32.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/crc32.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/csv.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/csv.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/logging.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/logging.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/rng.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/rng.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/stats.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/stats.cc.o.d"
  "CMakeFiles/objalloc_util.dir/objalloc/util/status.cc.o"
  "CMakeFiles/objalloc_util.dir/objalloc/util/status.cc.o.d"
  "libobjalloc_util.a"
  "libobjalloc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
