
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/util/ascii_plot.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/ascii_plot.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/ascii_plot.cc.o.d"
  "/root/repo/src/objalloc/util/crc32.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/crc32.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/crc32.cc.o.d"
  "/root/repo/src/objalloc/util/csv.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/csv.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/csv.cc.o.d"
  "/root/repo/src/objalloc/util/logging.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/logging.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/logging.cc.o.d"
  "/root/repo/src/objalloc/util/rng.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/rng.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/rng.cc.o.d"
  "/root/repo/src/objalloc/util/stats.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/stats.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/stats.cc.o.d"
  "/root/repo/src/objalloc/util/status.cc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/status.cc.o" "gcc" "src/CMakeFiles/objalloc_util.dir/objalloc/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
