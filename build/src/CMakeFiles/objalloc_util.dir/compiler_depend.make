# Empty compiler generated dependencies file for objalloc_util.
# This may be replaced when dependencies are built.
