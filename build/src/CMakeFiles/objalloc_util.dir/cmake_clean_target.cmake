file(REMOVE_RECURSE
  "libobjalloc_util.a"
)
