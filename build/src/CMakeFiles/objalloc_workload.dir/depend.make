# Empty dependencies file for objalloc_workload.
# This may be replaced when dependencies are built.
