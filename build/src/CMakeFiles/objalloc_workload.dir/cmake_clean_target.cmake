file(REMOVE_RECURSE
  "libobjalloc_workload.a"
)
