file(REMOVE_RECURSE
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/adversary.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/adversary.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/generator.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/generator.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/hotspot.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/hotspot.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/multi_object.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/multi_object.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/regime.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/regime.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/trace_io.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/trace_io.cc.o.d"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/uniform.cc.o"
  "CMakeFiles/objalloc_workload.dir/objalloc/workload/uniform.cc.o.d"
  "libobjalloc_workload.a"
  "libobjalloc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
