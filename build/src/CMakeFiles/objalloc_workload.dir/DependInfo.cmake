
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/workload/adversary.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/adversary.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/adversary.cc.o.d"
  "/root/repo/src/objalloc/workload/generator.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/generator.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/generator.cc.o.d"
  "/root/repo/src/objalloc/workload/hotspot.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/hotspot.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/hotspot.cc.o.d"
  "/root/repo/src/objalloc/workload/multi_object.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/multi_object.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/multi_object.cc.o.d"
  "/root/repo/src/objalloc/workload/regime.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/regime.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/regime.cc.o.d"
  "/root/repo/src/objalloc/workload/trace_io.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/trace_io.cc.o.d"
  "/root/repo/src/objalloc/workload/uniform.cc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/uniform.cc.o" "gcc" "src/CMakeFiles/objalloc_workload.dir/objalloc/workload/uniform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
