file(REMOVE_RECURSE
  "libobjalloc_model.a"
)
