# Empty compiler generated dependencies file for objalloc_model.
# This may be replaced when dependencies are built.
