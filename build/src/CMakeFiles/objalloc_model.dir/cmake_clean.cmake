file(REMOVE_RECURSE
  "CMakeFiles/objalloc_model.dir/objalloc/model/allocation_schedule.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/allocation_schedule.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/cost_evaluator.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/cost_evaluator.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/cost_model.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/cost_model.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/legality.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/legality.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/request.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/request.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/schedule.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/schedule.cc.o.d"
  "CMakeFiles/objalloc_model.dir/objalloc/model/topology.cc.o"
  "CMakeFiles/objalloc_model.dir/objalloc/model/topology.cc.o.d"
  "libobjalloc_model.a"
  "libobjalloc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
