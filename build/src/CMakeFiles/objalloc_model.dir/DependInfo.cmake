
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/model/allocation_schedule.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/allocation_schedule.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/allocation_schedule.cc.o.d"
  "/root/repo/src/objalloc/model/cost_evaluator.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/cost_evaluator.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/cost_evaluator.cc.o.d"
  "/root/repo/src/objalloc/model/cost_model.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/cost_model.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/cost_model.cc.o.d"
  "/root/repo/src/objalloc/model/legality.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/legality.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/legality.cc.o.d"
  "/root/repo/src/objalloc/model/request.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/request.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/request.cc.o.d"
  "/root/repo/src/objalloc/model/schedule.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/schedule.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/schedule.cc.o.d"
  "/root/repo/src/objalloc/model/topology.cc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/topology.cc.o" "gcc" "src/CMakeFiles/objalloc_model.dir/objalloc/model/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
