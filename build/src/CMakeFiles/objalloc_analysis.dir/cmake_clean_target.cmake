file(REMOVE_RECURSE
  "libobjalloc_analysis.a"
)
