file(REMOVE_RECURSE
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/adversarial_search.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/adversarial_search.cc.o.d"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/competitive.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/competitive.cc.o.d"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/region_map.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/region_map.cc.o.d"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/report.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/report.cc.o.d"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/steady_state.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/steady_state.cc.o.d"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/theorems.cc.o"
  "CMakeFiles/objalloc_analysis.dir/objalloc/analysis/theorems.cc.o.d"
  "libobjalloc_analysis.a"
  "libobjalloc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
