# Empty dependencies file for objalloc_analysis.
# This may be replaced when dependencies are built.
