
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/analysis/adversarial_search.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/adversarial_search.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/adversarial_search.cc.o.d"
  "/root/repo/src/objalloc/analysis/competitive.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/competitive.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/competitive.cc.o.d"
  "/root/repo/src/objalloc/analysis/region_map.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/region_map.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/region_map.cc.o.d"
  "/root/repo/src/objalloc/analysis/report.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/report.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/report.cc.o.d"
  "/root/repo/src/objalloc/analysis/steady_state.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/steady_state.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/steady_state.cc.o.d"
  "/root/repo/src/objalloc/analysis/theorems.cc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/theorems.cc.o" "gcc" "src/CMakeFiles/objalloc_analysis.dir/objalloc/analysis/theorems.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
