file(REMOVE_RECURSE
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/da_protocol.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/da_protocol.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/durable_store.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/durable_store.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/failure.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/failure.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/local_database.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/local_database.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/message.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/message.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/metrics.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/metrics.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/network.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/network.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/processor.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/processor.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/quorum_protocol.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/quorum_protocol.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/sa_protocol.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/sa_protocol.cc.o.d"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/simulator.cc.o"
  "CMakeFiles/objalloc_sim.dir/objalloc/sim/simulator.cc.o.d"
  "libobjalloc_sim.a"
  "libobjalloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
