
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/sim/da_protocol.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/da_protocol.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/da_protocol.cc.o.d"
  "/root/repo/src/objalloc/sim/durable_store.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/durable_store.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/durable_store.cc.o.d"
  "/root/repo/src/objalloc/sim/failure.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/failure.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/failure.cc.o.d"
  "/root/repo/src/objalloc/sim/local_database.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/local_database.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/local_database.cc.o.d"
  "/root/repo/src/objalloc/sim/message.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/message.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/message.cc.o.d"
  "/root/repo/src/objalloc/sim/metrics.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/metrics.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/metrics.cc.o.d"
  "/root/repo/src/objalloc/sim/network.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/network.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/network.cc.o.d"
  "/root/repo/src/objalloc/sim/processor.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/processor.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/processor.cc.o.d"
  "/root/repo/src/objalloc/sim/quorum_protocol.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/quorum_protocol.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/quorum_protocol.cc.o.d"
  "/root/repo/src/objalloc/sim/sa_protocol.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/sa_protocol.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/sa_protocol.cc.o.d"
  "/root/repo/src/objalloc/sim/simulator.cc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/simulator.cc.o" "gcc" "src/CMakeFiles/objalloc_sim.dir/objalloc/sim/simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
