file(REMOVE_RECURSE
  "libobjalloc_sim.a"
)
