# Empty compiler generated dependencies file for objalloc_sim.
# This may be replaced when dependencies are built.
