file(REMOVE_RECURSE
  "CMakeFiles/objalloc_core.dir/objalloc/core/adaptive_allocation.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/adaptive_allocation.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/counter_replication.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/counter_replication.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/dom_algorithm.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/dom_algorithm.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/dynamic_allocation.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/dynamic_allocation.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/lookahead_allocation.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/lookahead_allocation.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/object_manager.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/object_manager.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/quorum_allocation.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/quorum_allocation.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/runner.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/runner.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/static_allocation.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/static_allocation.cc.o.d"
  "CMakeFiles/objalloc_core.dir/objalloc/core/topology_aware.cc.o"
  "CMakeFiles/objalloc_core.dir/objalloc/core/topology_aware.cc.o.d"
  "libobjalloc_core.a"
  "libobjalloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objalloc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
