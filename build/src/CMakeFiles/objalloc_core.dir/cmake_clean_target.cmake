file(REMOVE_RECURSE
  "libobjalloc_core.a"
)
