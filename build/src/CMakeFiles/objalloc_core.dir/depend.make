# Empty dependencies file for objalloc_core.
# This may be replaced when dependencies are built.
