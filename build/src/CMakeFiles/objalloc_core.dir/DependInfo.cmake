
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/objalloc/core/adaptive_allocation.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/adaptive_allocation.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/adaptive_allocation.cc.o.d"
  "/root/repo/src/objalloc/core/counter_replication.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/counter_replication.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/counter_replication.cc.o.d"
  "/root/repo/src/objalloc/core/dom_algorithm.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/dom_algorithm.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/dom_algorithm.cc.o.d"
  "/root/repo/src/objalloc/core/dynamic_allocation.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/dynamic_allocation.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/dynamic_allocation.cc.o.d"
  "/root/repo/src/objalloc/core/lookahead_allocation.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/lookahead_allocation.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/lookahead_allocation.cc.o.d"
  "/root/repo/src/objalloc/core/object_manager.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/object_manager.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/object_manager.cc.o.d"
  "/root/repo/src/objalloc/core/quorum_allocation.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/quorum_allocation.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/quorum_allocation.cc.o.d"
  "/root/repo/src/objalloc/core/runner.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/runner.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/runner.cc.o.d"
  "/root/repo/src/objalloc/core/static_allocation.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/static_allocation.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/static_allocation.cc.o.d"
  "/root/repo/src/objalloc/core/topology_aware.cc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/topology_aware.cc.o" "gcc" "src/CMakeFiles/objalloc_core.dir/objalloc/core/topology_aware.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
