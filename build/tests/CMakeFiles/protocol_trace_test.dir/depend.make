# Empty dependencies file for protocol_trace_test.
# This may be replaced when dependencies are built.
