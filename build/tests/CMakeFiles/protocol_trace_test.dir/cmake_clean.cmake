file(REMOVE_RECURSE
  "CMakeFiles/protocol_trace_test.dir/protocol_trace_test.cc.o"
  "CMakeFiles/protocol_trace_test.dir/protocol_trace_test.cc.o.d"
  "protocol_trace_test"
  "protocol_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
