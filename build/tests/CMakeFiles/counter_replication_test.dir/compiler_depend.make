# Empty compiler generated dependencies file for counter_replication_test.
# This may be replaced when dependencies are built.
