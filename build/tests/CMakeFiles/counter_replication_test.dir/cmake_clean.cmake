file(REMOVE_RECURSE
  "CMakeFiles/counter_replication_test.dir/counter_replication_test.cc.o"
  "CMakeFiles/counter_replication_test.dir/counter_replication_test.cc.o.d"
  "counter_replication_test"
  "counter_replication_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_replication_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
