file(REMOVE_RECURSE
  "CMakeFiles/durable_store_test.dir/durable_store_test.cc.o"
  "CMakeFiles/durable_store_test.dir/durable_store_test.cc.o.d"
  "durable_store_test"
  "durable_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
