file(REMOVE_RECURSE
  "CMakeFiles/quorum_allocation_test.dir/quorum_allocation_test.cc.o"
  "CMakeFiles/quorum_allocation_test.dir/quorum_allocation_test.cc.o.d"
  "quorum_allocation_test"
  "quorum_allocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
