
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/weighted_opt_test.cc" "tests/CMakeFiles/weighted_opt_test.dir/weighted_opt_test.cc.o" "gcc" "tests/CMakeFiles/weighted_opt_test.dir/weighted_opt_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
