# Empty compiler generated dependencies file for weighted_opt_test.
# This may be replaced when dependencies are built.
