file(REMOVE_RECURSE
  "CMakeFiles/weighted_opt_test.dir/weighted_opt_test.cc.o"
  "CMakeFiles/weighted_opt_test.dir/weighted_opt_test.cc.o.d"
  "weighted_opt_test"
  "weighted_opt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
