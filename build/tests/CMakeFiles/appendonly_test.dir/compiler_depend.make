# Empty compiler generated dependencies file for appendonly_test.
# This may be replaced when dependencies are built.
