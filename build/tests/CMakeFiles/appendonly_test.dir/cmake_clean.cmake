file(REMOVE_RECURSE
  "CMakeFiles/appendonly_test.dir/appendonly_test.cc.o"
  "CMakeFiles/appendonly_test.dir/appendonly_test.cc.o.d"
  "appendonly_test"
  "appendonly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendonly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
