file(REMOVE_RECURSE
  "CMakeFiles/topology_aware_test.dir/topology_aware_test.cc.o"
  "CMakeFiles/topology_aware_test.dir/topology_aware_test.cc.o.d"
  "topology_aware_test"
  "topology_aware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
