# Empty dependencies file for topology_aware_test.
# This may be replaced when dependencies are built.
