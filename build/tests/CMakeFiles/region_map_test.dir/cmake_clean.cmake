file(REMOVE_RECURSE
  "CMakeFiles/region_map_test.dir/region_map_test.cc.o"
  "CMakeFiles/region_map_test.dir/region_map_test.cc.o.d"
  "region_map_test"
  "region_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
