# Empty compiler generated dependencies file for region_map_test.
# This may be replaced when dependencies are built.
