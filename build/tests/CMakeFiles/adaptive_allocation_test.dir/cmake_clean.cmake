file(REMOVE_RECURSE
  "CMakeFiles/adaptive_allocation_test.dir/adaptive_allocation_test.cc.o"
  "CMakeFiles/adaptive_allocation_test.dir/adaptive_allocation_test.cc.o.d"
  "adaptive_allocation_test"
  "adaptive_allocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
