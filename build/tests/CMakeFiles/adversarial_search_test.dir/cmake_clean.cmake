file(REMOVE_RECURSE
  "CMakeFiles/adversarial_search_test.dir/adversarial_search_test.cc.o"
  "CMakeFiles/adversarial_search_test.dir/adversarial_search_test.cc.o.d"
  "adversarial_search_test"
  "adversarial_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
