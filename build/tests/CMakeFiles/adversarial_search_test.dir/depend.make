# Empty dependencies file for adversarial_search_test.
# This may be replaced when dependencies are built.
