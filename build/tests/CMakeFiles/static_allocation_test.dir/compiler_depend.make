# Empty compiler generated dependencies file for static_allocation_test.
# This may be replaced when dependencies are built.
