file(REMOVE_RECURSE
  "CMakeFiles/static_allocation_test.dir/static_allocation_test.cc.o"
  "CMakeFiles/static_allocation_test.dir/static_allocation_test.cc.o.d"
  "static_allocation_test"
  "static_allocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
