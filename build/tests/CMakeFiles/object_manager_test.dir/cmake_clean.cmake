file(REMOVE_RECURSE
  "CMakeFiles/object_manager_test.dir/object_manager_test.cc.o"
  "CMakeFiles/object_manager_test.dir/object_manager_test.cc.o.d"
  "object_manager_test"
  "object_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
