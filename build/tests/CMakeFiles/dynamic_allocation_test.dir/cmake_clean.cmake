file(REMOVE_RECURSE
  "CMakeFiles/dynamic_allocation_test.dir/dynamic_allocation_test.cc.o"
  "CMakeFiles/dynamic_allocation_test.dir/dynamic_allocation_test.cc.o.d"
  "dynamic_allocation_test"
  "dynamic_allocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_allocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
