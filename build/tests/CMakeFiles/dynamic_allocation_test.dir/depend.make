# Empty dependencies file for dynamic_allocation_test.
# This may be replaced when dependencies are built.
