# Empty compiler generated dependencies file for electronic_publishing.
# This may be replaced when dependencies are built.
