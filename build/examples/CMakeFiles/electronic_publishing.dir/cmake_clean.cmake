file(REMOVE_RECURSE
  "CMakeFiles/electronic_publishing.dir/electronic_publishing.cpp.o"
  "CMakeFiles/electronic_publishing.dir/electronic_publishing.cpp.o.d"
  "electronic_publishing"
  "electronic_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electronic_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
