# Empty compiler generated dependencies file for transactional_store.
# This may be replaced when dependencies are built.
