file(REMOVE_RECURSE
  "CMakeFiles/transactional_store.dir/transactional_store.cpp.o"
  "CMakeFiles/transactional_store.dir/transactional_store.cpp.o.d"
  "transactional_store"
  "transactional_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
