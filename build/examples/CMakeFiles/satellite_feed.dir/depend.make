# Empty dependencies file for satellite_feed.
# This may be replaced when dependencies are built.
