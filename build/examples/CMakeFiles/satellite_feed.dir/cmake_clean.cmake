file(REMOVE_RECURSE
  "CMakeFiles/satellite_feed.dir/satellite_feed.cpp.o"
  "CMakeFiles/satellite_feed.dir/satellite_feed.cpp.o.d"
  "satellite_feed"
  "satellite_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
