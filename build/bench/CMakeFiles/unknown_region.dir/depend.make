# Empty dependencies file for unknown_region.
# This may be replaced when dependencies are built.
