file(REMOVE_RECURSE
  "CMakeFiles/unknown_region.dir/unknown_region.cc.o"
  "CMakeFiles/unknown_region.dir/unknown_region.cc.o.d"
  "unknown_region"
  "unknown_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
