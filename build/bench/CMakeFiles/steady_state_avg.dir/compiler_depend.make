# Empty compiler generated dependencies file for steady_state_avg.
# This may be replaced when dependencies are built.
