file(REMOVE_RECURSE
  "CMakeFiles/steady_state_avg.dir/steady_state_avg.cc.o"
  "CMakeFiles/steady_state_avg.dir/steady_state_avg.cc.o.d"
  "steady_state_avg"
  "steady_state_avg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steady_state_avg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
