file(REMOVE_RECURSE
  "CMakeFiles/cc_contention.dir/cc_contention.cc.o"
  "CMakeFiles/cc_contention.dir/cc_contention.cc.o.d"
  "cc_contention"
  "cc_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
