# Empty dependencies file for cc_contention.
# This may be replaced when dependencies are built.
