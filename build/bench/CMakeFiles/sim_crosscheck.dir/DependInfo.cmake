
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/sim_crosscheck.cc" "bench/CMakeFiles/sim_crosscheck.dir/sim_crosscheck.cc.o" "gcc" "bench/CMakeFiles/sim_crosscheck.dir/sim_crosscheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
