# Empty compiler generated dependencies file for sim_crosscheck.
# This may be replaced when dependencies are built.
