file(REMOVE_RECURSE
  "CMakeFiles/sim_crosscheck.dir/sim_crosscheck.cc.o"
  "CMakeFiles/sim_crosscheck.dir/sim_crosscheck.cc.o.d"
  "sim_crosscheck"
  "sim_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
