file(REMOVE_RECURSE
  "CMakeFiles/latency_analysis.dir/latency_analysis.cc.o"
  "CMakeFiles/latency_analysis.dir/latency_analysis.cc.o.d"
  "latency_analysis"
  "latency_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
