file(REMOVE_RECURSE
  "CMakeFiles/ablation_t_sweep.dir/ablation_t_sweep.cc.o"
  "CMakeFiles/ablation_t_sweep.dir/ablation_t_sweep.cc.o.d"
  "ablation_t_sweep"
  "ablation_t_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_t_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
