# Empty dependencies file for ablation_t_sweep.
# This may be replaced when dependencies are built.
