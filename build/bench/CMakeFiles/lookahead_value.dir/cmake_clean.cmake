file(REMOVE_RECURSE
  "CMakeFiles/lookahead_value.dir/lookahead_value.cc.o"
  "CMakeFiles/lookahead_value.dir/lookahead_value.cc.o.d"
  "lookahead_value"
  "lookahead_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookahead_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
