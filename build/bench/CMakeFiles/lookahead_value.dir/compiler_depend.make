# Empty compiler generated dependencies file for lookahead_value.
# This may be replaced when dependencies are built.
