file(REMOVE_RECURSE
  "CMakeFiles/appendonly_feed.dir/appendonly_feed.cc.o"
  "CMakeFiles/appendonly_feed.dir/appendonly_feed.cc.o.d"
  "appendonly_feed"
  "appendonly_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendonly_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
