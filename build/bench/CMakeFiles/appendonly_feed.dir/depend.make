# Empty dependencies file for appendonly_feed.
# This may be replaced when dependencies are built.
