file(REMOVE_RECURSE
  "CMakeFiles/topology_scenarios.dir/topology_scenarios.cc.o"
  "CMakeFiles/topology_scenarios.dir/topology_scenarios.cc.o.d"
  "topology_scenarios"
  "topology_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
