# Empty compiler generated dependencies file for topology_scenarios.
# This may be replaced when dependencies are built.
