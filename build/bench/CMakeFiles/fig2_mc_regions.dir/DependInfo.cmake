
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_mc_regions.cc" "bench/CMakeFiles/fig2_mc_regions.dir/fig2_mc_regions.cc.o" "gcc" "bench/CMakeFiles/fig2_mc_regions.dir/fig2_mc_regions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/objalloc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/objalloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
