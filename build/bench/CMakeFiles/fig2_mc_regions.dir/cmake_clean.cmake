file(REMOVE_RECURSE
  "CMakeFiles/fig2_mc_regions.dir/fig2_mc_regions.cc.o"
  "CMakeFiles/fig2_mc_regions.dir/fig2_mc_regions.cc.o.d"
  "fig2_mc_regions"
  "fig2_mc_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mc_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
