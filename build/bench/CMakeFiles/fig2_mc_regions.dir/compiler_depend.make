# Empty compiler generated dependencies file for fig2_mc_regions.
# This may be replaced when dependencies are built.
