# Empty dependencies file for ablation_da_design.
# This may be replaced when dependencies are built.
