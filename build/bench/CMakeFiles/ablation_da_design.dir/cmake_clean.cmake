file(REMOVE_RECURSE
  "CMakeFiles/ablation_da_design.dir/ablation_da_design.cc.o"
  "CMakeFiles/ablation_da_design.dir/ablation_da_design.cc.o.d"
  "ablation_da_design"
  "ablation_da_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_da_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
