# Empty dependencies file for fig1_sc_regions.
# This may be replaced when dependencies are built.
