file(REMOVE_RECURSE
  "CMakeFiles/fig1_sc_regions.dir/fig1_sc_regions.cc.o"
  "CMakeFiles/fig1_sc_regions.dir/fig1_sc_regions.cc.o.d"
  "fig1_sc_regions"
  "fig1_sc_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sc_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
