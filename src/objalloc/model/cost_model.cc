#include "objalloc/model/cost_model.h"

#include <sstream>

namespace objalloc::model {

util::Status CostModel::Validate() const {
  if (io < 0 || control < 0 || data < 0) {
    return util::Status::InvalidArgument("cost components must be >= 0");
  }
  if (control > data) {
    return util::Status::InvalidArgument(
        "cc > cd cannot be true: a data message carries the control fields "
        "plus the object content");
  }
  return util::Status::Ok();
}

std::string CostModel::ToString() const {
  std::ostringstream os;
  os << (is_mobile() ? "MC" : "SC") << "{cio=" << io << ", cc=" << control
     << ", cd=" << data << "}";
  return os.str();
}

bool operator==(const CostModel& a, const CostModel& b) {
  return a.io == b.io && a.control == b.control && a.data == b.data;
}

}  // namespace objalloc::model
