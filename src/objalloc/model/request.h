// Read/write requests — the atoms of a schedule (§3.1).

#ifndef OBJALLOC_MODEL_REQUEST_H_
#define OBJALLOC_MODEL_REQUEST_H_

#include <string>

#include "objalloc/util/processor_set.h"

namespace objalloc::model {

using util::ProcessorId;

enum class RequestKind { kRead, kWrite };

// A single request: `r3` is a read issued by processor 3, `w1` a write by
// processor 1.
struct Request {
  RequestKind kind = RequestKind::kRead;
  ProcessorId processor = 0;

  static Request Read(ProcessorId p) { return {RequestKind::kRead, p}; }
  static Request Write(ProcessorId p) { return {RequestKind::kWrite, p}; }

  bool is_read() const { return kind == RequestKind::kRead; }
  bool is_write() const { return kind == RequestKind::kWrite; }

  // "r3" / "w1".
  std::string ToString() const;
};

bool operator==(const Request& a, const Request& b);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_REQUEST_H_
