// The paper's cost model (§3.2, §3.3).
//
// Servicing a request incurs:
//   * cio per local-database input/output of the object,
//   * cc  per control message (read request, invalidate),
//   * cd  per data message (object transfer).
//
// The *stationary computing* (SC) model normalizes cio = 1; the *mobile
// computing* (MC) model sets cio = 0 because wireless communication charges
// dominate and local I/O carries no out-of-pocket expense. A data message can
// never cost less than a control message (cc <= cd): the control message
// carries only the object id and operation, the data message additionally
// carries the object content.

#ifndef OBJALLOC_MODEL_COST_MODEL_H_
#define OBJALLOC_MODEL_COST_MODEL_H_

#include <string>

#include "objalloc/util/status.h"

namespace objalloc::model {

struct CostModel {
  double io = 1.0;       // cio: local database input/output
  double control = 0.0;  // cc: control message
  double data = 0.0;     // cd: data message

  // SC model: cio normalized to 1 (§4.2).
  static CostModel StationaryComputing(double cc, double cd) {
    return CostModel{1.0, cc, cd};
  }
  // MC model: cio = 0 (§3.3).
  static CostModel MobileComputing(double cc, double cd) {
    return CostModel{0.0, cc, cd};
  }

  bool is_mobile() const { return io == 0.0; }

  // Rejects negative costs and cc > cd ("cannot be true" in Figures 1-2).
  util::Status Validate() const;

  std::string ToString() const;
};

bool operator==(const CostModel& a, const CostModel& b);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_COST_MODEL_H_
