// Allocation schedules (§3.1): a schedule in which every request carries an
// *execution set* and some reads are converted into *saving-reads*.
//
// The allocation scheme (the set of processors holding the latest version in
// their local database) evolves deterministically:
//   * a write with execution set X replaces the scheme with X,
//   * a saving-read by processor i adds i to the scheme,
//   * a plain read leaves the scheme unchanged.

#ifndef OBJALLOC_MODEL_ALLOCATION_SCHEDULE_H_
#define OBJALLOC_MODEL_ALLOCATION_SCHEDULE_H_

#include <string>
#include <vector>

#include "objalloc/model/request.h"
#include "objalloc/model/schedule.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::model {

using util::ProcessorSet;

// A request together with the decisions a DOM algorithm made for it.
struct AllocatedRequest {
  Request request;
  ProcessorSet execution_set;
  // Only meaningful for reads; a saving-read stores the object in the
  // reader's local database, joining the allocation scheme.
  bool saving = false;

  bool is_saving_read() const { return request.is_read() && saving; }

  // "r4{1,2}" or "R4{1,2}" for a saving-read (the paper's underline).
  std::string ToString() const;
};

class AllocationSchedule {
 public:
  // `initial_scheme` is the allocation scheme before the first request.
  AllocationSchedule(int num_processors, ProcessorSet initial_scheme);

  // Appends a request with its decisions. Reads may set `saving`.
  void Append(Request request, ProcessorSet execution_set, bool saving = false);

  int num_processors() const { return num_processors_; }
  ProcessorSet initial_scheme() const { return initial_scheme_; }
  size_t size() const { return entries_.size(); }
  const AllocatedRequest& operator[](size_t i) const { return entries_[i]; }
  const std::vector<AllocatedRequest>& entries() const { return entries_; }

  // Allocation scheme *at* request i (right before executing it).
  // SchemeAt(size()) is the scheme after the last request.
  ProcessorSet SchemeAt(size_t i) const;

  // Scheme after the whole schedule (== SchemeAt(size())).
  ProcessorSet FinalScheme() const { return SchemeAt(entries_.size()); }

  // The corresponding plain schedule: drops execution sets and saving marks.
  Schedule ToSchedule() const;

  std::string ToString() const;

 private:
  int num_processors_;
  ProcessorSet initial_scheme_;
  std::vector<AllocatedRequest> entries_;
  // schemes_[i] == scheme after entry i (cached during Append).
  std::vector<ProcessorSet> schemes_;
};

// Applies the scheme-transition rule for one request.
ProcessorSet NextScheme(ProcessorSet scheme, const AllocatedRequest& entry);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_ALLOCATION_SCHEDULE_H_
