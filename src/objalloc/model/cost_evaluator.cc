#include "objalloc/model/cost_evaluator.h"

#include <sstream>

namespace objalloc::model {

CostBreakdown& CostBreakdown::operator+=(const CostBreakdown& other) {
  control_messages += other.control_messages;
  data_messages += other.data_messages;
  io_ops += other.io_ops;
  return *this;
}

std::string CostBreakdown::ToString() const {
  std::ostringstream os;
  os << "{ctrl=" << control_messages << ", data=" << data_messages
     << ", io=" << io_ops << "}";
  return os.str();
}

bool operator==(const CostBreakdown& a, const CostBreakdown& b) {
  return a.control_messages == b.control_messages &&
         a.data_messages == b.data_messages && a.io_ops == b.io_ops;
}

double RequestCost(const CostModel& model, const AllocatedRequest& entry,
                   ProcessorSet scheme) {
  return RequestBreakdown(entry, scheme).Cost(model);
}

CostBreakdown ScheduleBreakdown(const AllocationSchedule& schedule) {
  CostBreakdown total;
  for (size_t i = 0; i < schedule.size(); ++i) {
    total += RequestBreakdown(schedule[i], schedule.SchemeAt(i));
  }
  return total;
}

double ScheduleCost(const CostModel& model,
                    const AllocationSchedule& schedule) {
  double total = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    total += RequestCost(model, schedule[i], schedule.SchemeAt(i));
  }
  return total;
}

}  // namespace objalloc::model
