// Heterogeneous-network extension (§6.1 discusses extending the results
// beyond the homogeneous model; the wireless scenario of §1.2 already has
// two message classes in spirit). A NetworkTopology scales the homogeneous
// cost model per processor pair (message multipliers) and per processor
// (I/O multiplier), so one can express two-cluster WANs, base-station stars,
// or slow-disk nodes.
//
// WeightedScheduleCost evaluates an allocation schedule under a topology.
// Attribution choices (documented, cost-neutral in the homogeneous case):
// read traffic flows between the reader and each execution-set member;
// write transfers flow from the writer; invalidations are attributed to the
// writer-to-stale-copy pairs (in DA they are physically sent by F members —
// with a homogeneous core this distinction does not change totals, and the
// evaluator keeps the model simple).

#ifndef OBJALLOC_MODEL_TOPOLOGY_H_
#define OBJALLOC_MODEL_TOPOLOGY_H_

#include <vector>

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_model.h"

namespace objalloc::model {

class NetworkTopology {
 public:
  explicit NetworkTopology(int num_processors);

  // Homogeneous: all multipliers 1 (recovers the paper's model exactly).
  static NetworkTopology Uniform(int num_processors);
  // Processors below `split` form cluster 0, the rest cluster 1;
  // intra-cluster messages cost 1x, inter-cluster `inter` x.
  static NetworkTopology TwoClusters(int num_processors, int split,
                                     double inter);
  // Star: every message to/from a non-center processor pays `spoke` x
  // unless it involves `center` directly... i.e. center<->spoke costs 1x,
  // spoke<->spoke costs 2x (relayed via the center), center I/O costs
  // `center_io` x (a beefy server may be cheaper).
  static NetworkTopology Star(int num_processors, ProcessorId center,
                              double center_io);

  int num_processors() const { return num_processors_; }

  double MessageMultiplier(ProcessorId from, ProcessorId to) const;
  void SetMessageMultiplier(ProcessorId from, ProcessorId to,
                            double multiplier);  // symmetric

  double IoMultiplier(ProcessorId p) const;
  void SetIoMultiplier(ProcessorId p, double multiplier);

 private:
  size_t PairIndex(ProcessorId a, ProcessorId b) const;

  int num_processors_;
  std::vector<double> message_;  // n*n, symmetric
  std::vector<double> io_;
};

// Cost of one allocated request under `topology` (scheme = allocation
// scheme at the request).
double WeightedRequestCost(const CostModel& cost_model,
                           const NetworkTopology& topology,
                           const AllocatedRequest& entry,
                           ProcessorSet scheme);

// Cost of a whole allocation schedule under `topology`.
double WeightedScheduleCost(const CostModel& cost_model,
                            const NetworkTopology& topology,
                            const AllocationSchedule& schedule);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_TOPOLOGY_H_
