#include "objalloc/model/legality.h"

#include <string>

namespace objalloc::model {

util::Status CheckLegal(const AllocationSchedule& schedule) {
  for (size_t i = 0; i < schedule.size(); ++i) {
    const AllocatedRequest& entry = schedule[i];
    if (entry.execution_set.Empty()) {
      return util::Status::FailedPrecondition(
          "empty execution set at request " + std::to_string(i) + " (" +
          entry.request.ToString() + ")");
    }
    if (entry.request.is_read() &&
        !entry.execution_set.Intersects(schedule.SchemeAt(i))) {
      return util::Status::FailedPrecondition(
          "illegal read at request " + std::to_string(i) + ": execution set " +
          entry.execution_set.ToString() + " misses scheme " +
          schedule.SchemeAt(i).ToString());
    }
  }
  return util::Status::Ok();
}

util::Status CheckTAvailable(const AllocationSchedule& schedule, int t) {
  for (size_t i = 0; i <= schedule.size(); ++i) {
    if (schedule.SchemeAt(i).Size() < t) {
      return util::Status::FailedPrecondition(
          "t-availability violated at position " + std::to_string(i) +
          ": scheme " + schedule.SchemeAt(i).ToString() + " smaller than t=" +
          std::to_string(t));
    }
  }
  return util::Status::Ok();
}

util::Status CheckLegalAndTAvailable(const AllocationSchedule& schedule,
                                     int t) {
  OBJALLOC_RETURN_IF_ERROR(CheckLegal(schedule));
  return CheckTAvailable(schedule, t);
}

util::Status CheckSchemeAvailable(ProcessorSet scheme, ProcessorSet live,
                                  int t) {
  const int alive = scheme.Intersect(live).Size();
  if (alive < t) {
    return util::Status::FailedPrecondition(
        "availability invariant violated: scheme " + scheme.ToString() +
        " has " + std::to_string(alive) + " live member(s) (live set " +
        live.ToString() + "), needs t=" + std::to_string(t));
  }
  return util::Status::Ok();
}

}  // namespace objalloc::model
