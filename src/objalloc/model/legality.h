// Legality and t-availability checking (§3.1).
//
// A legal allocation schedule is one where every read's execution set
// intersects the allocation scheme at that read (the read reaches a processor
// holding the latest version). The t-available constraint requires the
// allocation scheme to have at least t members at every request.

#ifndef OBJALLOC_MODEL_LEGALITY_H_
#define OBJALLOC_MODEL_LEGALITY_H_

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/util/status.h"

namespace objalloc::model {

// Verifies legality: non-empty execution sets; every read's execution set
// intersects the scheme at the read.
util::Status CheckLegal(const AllocationSchedule& schedule);

// Verifies the t-available constraint: |scheme| >= t at every request and
// after the final request.
util::Status CheckTAvailable(const AllocationSchedule& schedule, int t);

// Both checks.
util::Status CheckLegalAndTAvailable(const AllocationSchedule& schedule, int t);

// t-availability under failures: at least t *live* replicas of the latest
// version must exist, i.e. |scheme ∩ live| >= t. This is the per-event
// AvailabilityInvariant the fault-tolerant serving engine asserts after
// every served request (DESIGN.md §9); the offline CheckTAvailable above is
// its failure-free specialization (live = all processors).
util::Status CheckSchemeAvailable(ProcessorSet scheme, ProcessorSet live,
                                  int t);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_LEGALITY_H_
