#include "objalloc/model/schedule.h"

#include <sstream>

#include "objalloc/util/logging.h"

namespace objalloc::model {

Schedule::Schedule(int num_processors) : num_processors_(num_processors) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
}

Schedule::Schedule(int num_processors, std::vector<Request> requests)
    : Schedule(num_processors) {
  for (Request& r : requests) Append(r);
}

util::StatusOr<Schedule> Schedule::Parse(int num_processors,
                                         const std::string& text) {
  if (num_processors <= 0 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  Schedule schedule(num_processors);
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    if (token.size() < 2 || (token[0] != 'r' && token[0] != 'w')) {
      return util::Status::InvalidArgument("bad request token: " + token);
    }
    int id = 0;
    for (size_t i = 1; i < token.size(); ++i) {
      if (token[i] < '0' || token[i] > '9') {
        return util::Status::InvalidArgument("bad processor id in: " + token);
      }
      id = id * 10 + (token[i] - '0');
      if (id >= util::kMaxProcessors) break;
    }
    if (id >= num_processors) {
      return util::Status::OutOfRange("processor id too large in: " + token);
    }
    schedule.Append(token[0] == 'r' ? Request::Read(id) : Request::Write(id));
  }
  return schedule;
}

void Schedule::Append(Request request) {
  OBJALLOC_CHECK_GE(request.processor, 0);
  OBJALLOC_CHECK_LT(request.processor, num_processors_);
  requests_.push_back(request);
}

size_t Schedule::CountReads() const {
  size_t count = 0;
  for (const Request& r : requests_) count += r.is_read() ? 1 : 0;
  return count;
}

size_t Schedule::CountWrites() const { return size() - CountReads(); }

std::string Schedule::ToString() const {
  std::string out;
  for (size_t i = 0; i < requests_.size(); ++i) {
    if (i != 0) out += " ";
    out += requests_[i].ToString();
  }
  return out;
}

bool operator==(const Schedule& a, const Schedule& b) {
  return a.num_processors() == b.num_processors() &&
         a.requests() == b.requests();
}

}  // namespace objalloc::model
