#include "objalloc/model/topology.h"

#include "objalloc/util/logging.h"

namespace objalloc::model {

NetworkTopology::NetworkTopology(int num_processors)
    : num_processors_(num_processors),
      message_(static_cast<size_t>(num_processors) *
                   static_cast<size_t>(num_processors),
               1.0),
      io_(static_cast<size_t>(num_processors), 1.0) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
}

NetworkTopology NetworkTopology::Uniform(int num_processors) {
  return NetworkTopology(num_processors);
}

NetworkTopology NetworkTopology::TwoClusters(int num_processors, int split,
                                             double inter) {
  OBJALLOC_CHECK_GT(split, 0);
  OBJALLOC_CHECK_LT(split, num_processors);
  OBJALLOC_CHECK_GE(inter, 1.0);
  NetworkTopology topology(num_processors);
  for (ProcessorId a = 0; a < num_processors; ++a) {
    for (ProcessorId b = a + 1; b < num_processors; ++b) {
      if ((a < split) != (b < split)) {
        topology.SetMessageMultiplier(a, b, inter);
      }
    }
  }
  return topology;
}

NetworkTopology NetworkTopology::Star(int num_processors, ProcessorId center,
                                      double center_io) {
  OBJALLOC_CHECK_GE(center, 0);
  OBJALLOC_CHECK_LT(center, num_processors);
  OBJALLOC_CHECK_GT(center_io, 0.0);
  NetworkTopology topology(num_processors);
  for (ProcessorId a = 0; a < num_processors; ++a) {
    for (ProcessorId b = a + 1; b < num_processors; ++b) {
      if (a != center && b != center) {
        topology.SetMessageMultiplier(a, b, 2.0);  // relayed via the center
      }
    }
  }
  topology.SetIoMultiplier(center, center_io);
  return topology;
}

size_t NetworkTopology::PairIndex(ProcessorId a, ProcessorId b) const {
  OBJALLOC_CHECK_GE(a, 0);
  OBJALLOC_CHECK_LT(a, num_processors_);
  OBJALLOC_CHECK_GE(b, 0);
  OBJALLOC_CHECK_LT(b, num_processors_);
  return static_cast<size_t>(a) * static_cast<size_t>(num_processors_) +
         static_cast<size_t>(b);
}

double NetworkTopology::MessageMultiplier(ProcessorId from,
                                          ProcessorId to) const {
  return message_[PairIndex(from, to)];
}

void NetworkTopology::SetMessageMultiplier(ProcessorId from, ProcessorId to,
                                           double multiplier) {
  OBJALLOC_CHECK_GT(multiplier, 0.0);
  message_[PairIndex(from, to)] = multiplier;
  message_[PairIndex(to, from)] = multiplier;
}

double NetworkTopology::IoMultiplier(ProcessorId p) const {
  OBJALLOC_CHECK_GE(p, 0);
  OBJALLOC_CHECK_LT(p, num_processors_);
  return io_[static_cast<size_t>(p)];
}

void NetworkTopology::SetIoMultiplier(ProcessorId p, double multiplier) {
  OBJALLOC_CHECK_GT(multiplier, 0.0);
  OBJALLOC_CHECK_GE(p, 0);
  OBJALLOC_CHECK_LT(p, num_processors_);
  io_[static_cast<size_t>(p)] = multiplier;
}

double WeightedRequestCost(const CostModel& cost_model,
                           const NetworkTopology& topology,
                           const AllocatedRequest& entry,
                           ProcessorSet scheme) {
  const ProcessorId i = entry.request.processor;
  const ProcessorSet x = entry.execution_set;
  double cost = 0;
  if (entry.request.is_read()) {
    for (ProcessorId y : x) {
      cost += cost_model.io * topology.IoMultiplier(y);
      if (y != i) {
        double pair = topology.MessageMultiplier(i, y);
        cost += (cost_model.control + cost_model.data) * pair;
      }
    }
    if (entry.saving) cost += cost_model.io * topology.IoMultiplier(i);
    return cost;
  }
  for (ProcessorId y : x) {
    cost += cost_model.io * topology.IoMultiplier(y);
    if (y != i) {
      cost += cost_model.data * topology.MessageMultiplier(i, y);
    }
  }
  for (ProcessorId stale : scheme.Minus(x).WithErased(i)) {
    cost += cost_model.control * topology.MessageMultiplier(i, stale);
  }
  return cost;
}

double WeightedScheduleCost(const CostModel& cost_model,
                            const NetworkTopology& topology,
                            const AllocationSchedule& schedule) {
  OBJALLOC_CHECK_EQ(topology.num_processors(), schedule.num_processors());
  double total = 0;
  for (size_t k = 0; k < schedule.size(); ++k) {
    total += WeightedRequestCost(cost_model, topology, schedule[k],
                                 schedule.SchemeAt(k));
  }
  return total;
}

}  // namespace objalloc::model
