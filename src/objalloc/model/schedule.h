// A schedule is a finite sequence of read/write requests to the single
// object, each issued by a processor, totally ordered by the (external)
// concurrency-control mechanism (§3.1).

#ifndef OBJALLOC_MODEL_SCHEDULE_H_
#define OBJALLOC_MODEL_SCHEDULE_H_

#include <string>
#include <vector>

#include "objalloc/model/request.h"
#include "objalloc/util/status.h"

namespace objalloc::model {

class Schedule {
 public:
  // `num_processors` is the size of the distributed system; all request
  // issuers must be < num_processors.
  explicit Schedule(int num_processors);
  Schedule(int num_processors, std::vector<Request> requests);

  // Parses "w2 r4 w3 r1 r2" (whitespace-separated, 'r'/'w' + decimal id).
  static util::StatusOr<Schedule> Parse(int num_processors,
                                        const std::string& text);

  void Append(Request request);
  void AppendRead(ProcessorId p) { Append(Request::Read(p)); }
  void AppendWrite(ProcessorId p) { Append(Request::Write(p)); }

  int num_processors() const { return num_processors_; }
  size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  const Request& operator[](size_t i) const { return requests_[i]; }
  const std::vector<Request>& requests() const { return requests_; }

  size_t CountReads() const;
  size_t CountWrites() const;

  // "w2 r4 w3 r1 r2".
  std::string ToString() const;

 private:
  int num_processors_;
  std::vector<Request> requests_;
};

bool operator==(const Schedule& a, const Schedule& b);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_SCHEDULE_H_
