#include "objalloc/model/request.h"

namespace objalloc::model {

std::string Request::ToString() const {
  return (is_read() ? "r" : "w") + std::to_string(processor);
}

bool operator==(const Request& a, const Request& b) {
  return a.kind == b.kind && a.processor == b.processor;
}

}  // namespace objalloc::model
