#include "objalloc/model/allocation_schedule.h"

#include "objalloc/util/logging.h"

namespace objalloc::model {

std::string AllocatedRequest::ToString() const {
  std::string out = is_saving_read() ? "R" : (request.is_read() ? "r" : "w");
  out += std::to_string(request.processor);
  out += execution_set.ToString();
  return out;
}

AllocationSchedule::AllocationSchedule(int num_processors,
                                       ProcessorSet initial_scheme)
    : num_processors_(num_processors), initial_scheme_(initial_scheme) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)))
      << "initial scheme " << initial_scheme.ToString()
      << " outside the system";
  OBJALLOC_CHECK(!initial_scheme.Empty());
}

ProcessorSet NextScheme(ProcessorSet scheme, const AllocatedRequest& entry) {
  if (entry.request.is_write()) return entry.execution_set;
  if (entry.is_saving_read()) {
    return scheme.WithInserted(entry.request.processor);
  }
  return scheme;
}

void AllocationSchedule::Append(Request request, ProcessorSet execution_set,
                                bool saving) {
  OBJALLOC_CHECK_LT(request.processor, num_processors_);
  OBJALLOC_CHECK(
      execution_set.IsSubsetOf(ProcessorSet::FirstN(num_processors_)))
      << "execution set outside the system";
  OBJALLOC_CHECK(!saving || request.is_read()) << "only reads can be saving";
  AllocatedRequest entry{request, execution_set, saving};
  ProcessorSet prev = schemes_.empty() ? initial_scheme_ : schemes_.back();
  entries_.push_back(entry);
  schemes_.push_back(NextScheme(prev, entry));
}

ProcessorSet AllocationSchedule::SchemeAt(size_t i) const {
  OBJALLOC_CHECK_LE(i, entries_.size());
  if (i == 0) return initial_scheme_;
  return schemes_[i - 1];
}

Schedule AllocationSchedule::ToSchedule() const {
  Schedule schedule(num_processors_);
  for (const AllocatedRequest& e : entries_) schedule.Append(e.request);
  return schedule;
}

std::string AllocationSchedule::ToString() const {
  std::string out = "I=" + initial_scheme_.ToString() + " :";
  for (const AllocatedRequest& e : entries_) {
    out += " ";
    out += e.ToString();
  }
  return out;
}

}  // namespace objalloc::model
