// The paper's cost function (§3.2 stationary computing, §3.3 mobile
// computing), implemented once in a form that specializes to both models.
//
// With reader/writer i, execution set X, allocation scheme Y at the request:
//
//   read  (plain):  |X \ {i}| * cc  +  |X| * cio  +  |X \ {i}| * cd
//   read  (saving): plain read + cio       (extra output at i's database)
//   write:          |Y \ X \ {i}| * cc  +  |X \ {i}| * cd  +  |X| * cio
//
// These reproduce the paper's four SC cases (with cio = 1) and four MC cases
// (with cio = 0) exactly:
//   * i in X removes one control and one data message (no self-messages),
//   * a write invalidates the stale copies Y \ X, except the writer's own
//     (the writer knows its copy is stale without a message).
//
// Besides the scalar cost, the evaluator reports the *breakdown* (control
// messages, data messages, I/O operations) so the message-passing simulator
// can be cross-checked against the analytic model count-for-count.

#ifndef OBJALLOC_MODEL_COST_EVALUATOR_H_
#define OBJALLOC_MODEL_COST_EVALUATOR_H_

#include <cstdint>
#include <string>

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_model.h"

namespace objalloc::model {

// Message/IO counts; cost = control*cc + data*cd + io*cio.
struct CostBreakdown {
  int64_t control_messages = 0;
  int64_t data_messages = 0;
  int64_t io_ops = 0;

  double Cost(const CostModel& model) const {
    return static_cast<double>(control_messages) * model.control +
           static_cast<double>(data_messages) * model.data +
           static_cast<double>(io_ops) * model.io;
  }

  CostBreakdown& operator+=(const CostBreakdown& other);
  std::string ToString() const;
};

bool operator==(const CostBreakdown& a, const CostBreakdown& b);

// Breakdown of a single request executed against allocation scheme `scheme`.
// Inline: this is the per-event cost kernel of the serving hot path
// (ObjectShard), where an out-of-line call would dominate the set algebra.
inline CostBreakdown RequestBreakdown(const AllocatedRequest& entry,
                                      ProcessorSet scheme) {
  const util::ProcessorId i = entry.request.processor;
  const ProcessorSet x = entry.execution_set;
  CostBreakdown out;
  if (entry.request.is_read()) {
    // Request messages to, and object transfers from, every member of X
    // other than the reader itself; one input at each member of X.
    const int64_t remote = x.WithErased(i).Size();
    out.control_messages = remote;
    out.data_messages = remote;
    out.io_ops = x.Size();
    if (entry.saving) ++out.io_ops;  // extra output at the reader's database
  } else {
    // Invalidations to stale copies (the writer needs none for itself);
    // object transfers to every member of X other than the writer; one
    // output at each member of X.
    out.control_messages = scheme.Minus(x).WithErased(i).Size();
    out.data_messages = x.WithErased(i).Size();
    out.io_ops = x.Size();
  }
  return out;
}

// Scalar cost of a single request (COST(q) in the paper).
double RequestCost(const CostModel& model, const AllocatedRequest& entry,
                   ProcessorSet scheme);

// Breakdown / cost of a whole allocation schedule (COST(I, tau)).
CostBreakdown ScheduleBreakdown(const AllocationSchedule& schedule);
double ScheduleCost(const CostModel& model, const AllocationSchedule& schedule);

}  // namespace objalloc::model

#endif  // OBJALLOC_MODEL_COST_EVALUATOR_H_
