// Feed managers: SA and DA reformulated as standing-order policies (§6.2).
//
//   * StaticFeedManager — a fixed set Q of t stations holds permanent
//     standing orders; every generated object is transmitted to Q; other
//     stations issue on-demand reads.
//   * DynamicFeedManager — t-1 stations (F) hold permanent standing orders;
//     a station that needs the latest object issues a *temporary* standing
//     order (it receives and stores the object); temporary orders are
//     cancelled (an invalidation control message) when the next object in
//     the sequence arrives.
//
// These are deliberately independent implementations (not wrappers over
// core::StaticAllocation / core::DynamicAllocation); the test suite checks
// that their cost accounting matches the DOM algorithms verbatim under the
// §6.2 mapping, which is the paper's claim.

#ifndef OBJALLOC_APPENDONLY_FEED_MANAGER_H_
#define OBJALLOC_APPENDONLY_FEED_MANAGER_H_

#include <string>

#include "objalloc/appendonly/feed.h"
#include "objalloc/model/cost_evaluator.h"

namespace objalloc::appendonly {

using model::CostBreakdown;
using util::ProcessorSet;

class FeedManager {
 public:
  virtual ~FeedManager() = default;
  virtual std::string name() const = 0;

  virtual void OnGenerate(ProcessorId station) = 0;
  virtual void OnRead(ProcessorId station) = 0;

  // Accumulated traffic/I/O since construction.
  const CostBreakdown& breakdown() const { return breakdown_; }

  // Convenience: replay a whole feed schedule.
  CostBreakdown Run(const FeedSchedule& schedule);

 protected:
  CostBreakdown breakdown_;
};

class StaticFeedManager final : public FeedManager {
 public:
  // `standing_orders` is Q; |Q| = t.
  explicit StaticFeedManager(ProcessorSet standing_orders);

  std::string name() const override { return "SA-feed"; }
  void OnGenerate(ProcessorId station) override;
  void OnRead(ProcessorId station) override;

 private:
  ProcessorSet q_;
};

class DynamicFeedManager final : public FeedManager {
 public:
  // `initial_holders` is F ∪ {p} with the library's usual split (p =
  // largest member).
  explicit DynamicFeedManager(ProcessorSet initial_holders);

  std::string name() const override { return "DA-feed"; }
  void OnGenerate(ProcessorId station) override;
  void OnRead(ProcessorId station) override;

  ProcessorSet holders() const { return holders_; }

 private:
  ProcessorSet f_;         // permanent standing orders
  ProcessorId p_;          // availability backstop
  ProcessorSet holders_;   // stations currently holding the latest object
};

}  // namespace objalloc::appendonly

#endif  // OBJALLOC_APPENDONLY_FEED_MANAGER_H_
