#include "objalloc/appendonly/feed.h"

#include "objalloc/util/logging.h"

namespace objalloc::appendonly {

FeedSchedule::FeedSchedule(int num_stations) : num_stations_(num_stations) {
  OBJALLOC_CHECK_GT(num_stations, 0);
  OBJALLOC_CHECK_LE(num_stations, util::kMaxProcessors);
}

void FeedSchedule::Append(FeedEvent event) {
  OBJALLOC_CHECK_GE(event.station, 0);
  OBJALLOC_CHECK_LT(event.station, num_stations_);
  events_.push_back(event);
}

model::Schedule FeedSchedule::ToObjectSchedule() const {
  model::Schedule schedule(num_stations_);
  for (const FeedEvent& event : events_) {
    if (event.kind == FeedEventKind::kGenerate) {
      schedule.AppendWrite(event.station);
    } else {
      schedule.AppendRead(event.station);
    }
  }
  return schedule;
}

}  // namespace objalloc::appendonly
