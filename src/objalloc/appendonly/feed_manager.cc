#include "objalloc/appendonly/feed_manager.h"

#include "objalloc/util/logging.h"

namespace objalloc::appendonly {

CostBreakdown FeedManager::Run(const FeedSchedule& schedule) {
  for (size_t i = 0; i < schedule.size(); ++i) {
    const FeedEvent& event = schedule[i];
    if (event.kind == FeedEventKind::kGenerate) {
      OnGenerate(event.station);
    } else {
      OnRead(event.station);
    }
  }
  return breakdown_;
}

StaticFeedManager::StaticFeedManager(ProcessorSet standing_orders)
    : q_(standing_orders) {
  OBJALLOC_CHECK(!standing_orders.Empty());
}

void StaticFeedManager::OnGenerate(ProcessorId station) {
  // The new object is transmitted to every standing-order station (the
  // generator keeps its copy locally if it is one of them) and stored there.
  breakdown_.data_messages += q_.WithErased(station).Size();
  breakdown_.io_ops += q_.Size();
}

void StaticFeedManager::OnRead(ProcessorId station) {
  if (q_.Contains(station)) {
    breakdown_.io_ops += 1;  // local input
    return;
  }
  // On-demand: request to one standing-order station, input there, transfer.
  breakdown_.control_messages += 1;
  breakdown_.io_ops += 1;
  breakdown_.data_messages += 1;
}

DynamicFeedManager::DynamicFeedManager(ProcessorSet initial_holders) {
  OBJALLOC_CHECK_GE(initial_holders.Size(), 2);
  auto members = initial_holders.ToVector();
  p_ = members.back();
  f_ = initial_holders.WithErased(p_);
  holders_ = initial_holders;
}

void DynamicFeedManager::OnGenerate(ProcessorId station) {
  // The new object goes to the permanent standing orders plus the generator
  // (plus p when the generator already holds a permanent order, keeping t
  // copies); every temporary standing order from the previous object is
  // cancelled with one control message.
  ProcessorSet next = (f_.Contains(station) || station == p_)
                          ? f_.WithInserted(p_)
                          : f_.WithInserted(station);
  breakdown_.control_messages +=
      holders_.Minus(next).WithErased(station).Size();
  breakdown_.data_messages += next.WithErased(station).Size();
  breakdown_.io_ops += next.Size();
  holders_ = next;
}

void DynamicFeedManager::OnRead(ProcessorId station) {
  if (holders_.Contains(station)) {
    breakdown_.io_ops += 1;  // the latest object is already local
    return;
  }
  // Temporary standing order: request, input at an F station, transfer,
  // and store locally (the extra I/O of a saving-read).
  breakdown_.control_messages += 1;
  breakdown_.io_ops += 1;
  breakdown_.data_messages += 1;
  breakdown_.io_ops += 1;
  holders_.Insert(station);
}

}  // namespace objalloc::appendonly
