// The append-only distributed-database model of §6.2: a sequence of objects
// (e.g. satellite images, one per minute) generated at earth stations; each
// object must be stored at >= t processors for reliability; stations read
// the *latest* object in the sequence at arbitrary points in time.
//
// The paper observes that the allocation results apply verbatim: generating
// the next object plays the role of a write (it obsoletes the previous
// object), and reading the latest object plays the role of a read. The
// test suite verifies this equivalence between the feed managers here and
// the SA/DA algorithms, cost-for-cost.

#ifndef OBJALLOC_APPENDONLY_FEED_H_
#define OBJALLOC_APPENDONLY_FEED_H_

#include <string>
#include <vector>

#include "objalloc/model/schedule.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::appendonly {

using util::ProcessorId;

enum class FeedEventKind {
  kGenerate,  // a station produces the next object in the sequence
  kRead,      // a station needs the latest object
};

struct FeedEvent {
  FeedEventKind kind = FeedEventKind::kRead;
  ProcessorId station = 0;

  static FeedEvent Generate(ProcessorId s) {
    return {FeedEventKind::kGenerate, s};
  }
  static FeedEvent Read(ProcessorId s) { return {FeedEventKind::kRead, s}; }
};

class FeedSchedule {
 public:
  explicit FeedSchedule(int num_stations);

  void Append(FeedEvent event);
  void AppendGenerate(ProcessorId s) { Append(FeedEvent::Generate(s)); }
  void AppendRead(ProcessorId s) { Append(FeedEvent::Read(s)); }

  int num_stations() const { return num_stations_; }
  size_t size() const { return events_.size(); }
  const FeedEvent& operator[](size_t i) const { return events_[i]; }

  // The §6.2 mapping: generate -> write, read-latest -> read.
  model::Schedule ToObjectSchedule() const;

 private:
  int num_stations_;
  std::vector<FeedEvent> events_;
};

}  // namespace objalloc::appendonly

#endif  // OBJALLOC_APPENDONLY_FEED_H_
