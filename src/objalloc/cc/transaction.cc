#include "objalloc/cc/transaction.h"

#include <sstream>

namespace objalloc::cc {

std::string Transaction::ToString() const {
  std::ostringstream os;
  os << "T" << id << "@" << processor << "[";
  for (size_t k = 0; k < operations.size(); ++k) {
    if (k != 0) os << " ";
    os << (operations[k].is_write() ? "w" : "r") << operations[k].object;
  }
  os << "]";
  return os.str();
}

}  // namespace objalloc::cc
