// LockManager — per-object shared/exclusive locks with FIFO waiting and
// wait-for-graph deadlock detection. Used by the Serializer to implement
// strict two-phase locking.

#ifndef OBJALLOC_CC_LOCK_MANAGER_H_
#define OBJALLOC_CC_LOCK_MANAGER_H_

#include <deque>
#include <set>
#include <unordered_map>
#include <vector>

#include "objalloc/cc/transaction.h"

namespace objalloc::cc {

enum class LockMode { kShared, kExclusive };

enum class LockOutcome {
  kGranted,   // the lock is held
  kWaiting,   // enqueued behind conflicting holders/waiters
  kDeadlock,  // granting would close a wait-for cycle: the caller must abort
};

class LockManager {
 public:
  LockManager() = default;

  // Requests `mode` on `object` for `txn`. Shared locks are compatible with
  // each other; a held shared lock upgrades to exclusive when `txn` is the
  // sole holder. Returns kDeadlock when enqueueing would create a cycle in
  // the wait-for graph (the requester is chosen as the victim).
  LockOutcome Acquire(TransactionId txn, ObjectId object, LockMode mode);

  // Drops every lock and waiting request of `txn` (commit or abort), then
  // grants whatever now-compatible waiters are at the head of each queue.
  // Returns the transactions that acquired a lock as a result.
  std::vector<TransactionId> ReleaseAll(TransactionId txn);

  bool Holds(TransactionId txn, ObjectId object) const;
  bool IsWaiting(TransactionId txn) const;

 private:
  struct LockState {
    LockMode mode = LockMode::kShared;
    std::set<TransactionId> holders;
    struct Waiter {
      TransactionId txn;
      LockMode mode;
    };
    std::deque<Waiter> queue;
  };

  // The transactions `txn` waits for: the holders plus (unless upgrading)
  // the first `waiters_ahead` queued requests.
  std::set<TransactionId> Blockers(const LockState& state, TransactionId txn,
                                   size_t waiters_ahead) const;
  // True if `from` can reach `to` in the wait-for graph.
  bool WaitsForTransitively(TransactionId from, TransactionId to) const;
  // Grants head-of-queue waiters that have become compatible.
  void PromoteWaiters(ObjectId object,
                      std::vector<TransactionId>* newly_granted);

  // Hash tables: lock lookups are the hot path and no caller iterates these
  // in key order — the one order-sensitive consumer (ReleaseAll's waiter
  // promotion) sorts the touched objects explicitly before promoting, so
  // grant order stays deterministic.
  std::unordered_map<ObjectId, LockState> locks_;
  // wait_for_[t] = transactions t is currently waiting on.
  std::unordered_map<TransactionId, std::set<TransactionId>> wait_for_;
};

}  // namespace objalloc::cc

#endif  // OBJALLOC_CC_LOCK_MANAGER_H_
