// Transactions — the workload source above the allocation layer. The paper
// assumes read-write requests arrive already serialized ("this set is
// usually ordered by some concurrency-control mechanism", §3.1); this
// module provides that mechanism: transactions declare operations on
// objects, and the Serializer runs strict two-phase locking to produce the
// per-object schedules the DOM algorithms consume.

#ifndef OBJALLOC_CC_TRANSACTION_H_
#define OBJALLOC_CC_TRANSACTION_H_

#include <string>
#include <vector>

#include "objalloc/model/request.h"

namespace objalloc::cc {

using ObjectId = int64_t;
using TransactionId = int64_t;

struct Operation {
  ObjectId object = 0;
  model::RequestKind kind = model::RequestKind::kRead;

  static Operation Read(ObjectId object) {
    return {object, model::RequestKind::kRead};
  }
  static Operation Write(ObjectId object) {
    return {object, model::RequestKind::kWrite};
  }
  bool is_write() const { return kind == model::RequestKind::kWrite; }
};

struct Transaction {
  TransactionId id = 0;
  model::ProcessorId processor = 0;  // the issuing site
  std::vector<Operation> operations;

  std::string ToString() const;
};

}  // namespace objalloc::cc

#endif  // OBJALLOC_CC_TRANSACTION_H_
