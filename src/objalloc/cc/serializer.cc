#include "objalloc/cc/serializer.h"

#include <algorithm>
#include <unordered_map>

#include "objalloc/util/logging.h"
#include "objalloc/util/rng.h"

namespace objalloc::cc {

namespace {

enum class TxnStatus { kReady, kBlocked, kCommitted };

struct TxnState {
  const Transaction* txn = nullptr;
  TxnStatus status = TxnStatus::kReady;
  size_t pc = 0;  // next operation index
  bool pending_granted = false;  // the blocked-on lock arrived
  int retries = 0;
  // (global grant sequence, operation) of this attempt.
  std::vector<std::pair<int64_t, Operation>> granted_ops;
};

}  // namespace

Serializer::Serializer(int num_processors)
    : num_processors_(num_processors) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
}

SerializerResult Serializer::Run(
    const std::vector<Transaction>& transactions, uint64_t seed) {
  for (const Transaction& txn : transactions) {
    OBJALLOC_CHECK_GE(txn.processor, 0);
    OBJALLOC_CHECK_LT(txn.processor, num_processors_);
    OBJALLOC_CHECK(!txn.operations.empty())
        << "empty transaction " << txn.id;
  }
  // Ids must be unique: they key the lock tables and wait-for graph.
  {
    std::vector<TransactionId> ids;
    for (const Transaction& txn : transactions) ids.push_back(txn.id);
    std::sort(ids.begin(), ids.end());
    OBJALLOC_CHECK(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
        << "duplicate transaction ids";
  }

  util::Rng rng(seed);
  LockManager locks;
  std::vector<TxnState> states(transactions.size());
  std::unordered_map<TransactionId, size_t> index;
  index.reserve(transactions.size());
  for (size_t k = 0; k < transactions.size(); ++k) {
    states[k].txn = &transactions[k];
    index[transactions[k].id] = k;
  }

  SerializerResult result;
  int64_t grant_seq = 0;
  size_t committed = 0;
  int64_t guard = 0;
  const int64_t max_steps =
      static_cast<int64_t>(transactions.size() + 1) * 10000;

  while (committed < transactions.size()) {
    OBJALLOC_CHECK_LT(++guard, max_steps) << "serializer livelock";
    // Pick a random ready transaction.
    std::vector<size_t> ready;
    for (size_t k = 0; k < states.size(); ++k) {
      if (states[k].status == TxnStatus::kReady) ready.push_back(k);
    }
    OBJALLOC_CHECK(!ready.empty()) << "all transactions blocked: the "
                                      "deadlock detector missed a cycle";
    TxnState& state = states[ready[rng.NextBounded(ready.size())]];
    const Transaction& txn = *state.txn;

    if (state.pending_granted) {
      // The lock we were blocked on arrived while we slept.
      state.pending_granted = false;
      state.granted_ops.emplace_back(grant_seq++,
                                     txn.operations[state.pc]);
      ++state.pc;
    }

    if (state.pc == txn.operations.size()) {
      // Commit: the buffered operations become final; release locks and
      // wake promoted waiters.
      state.status = TxnStatus::kCommitted;
      ++committed;
      for (TransactionId woken : locks.ReleaseAll(txn.id)) {
        TxnState& waiter = states[index.at(woken)];
        OBJALLOC_CHECK(waiter.status == TxnStatus::kBlocked);
        waiter.status = TxnStatus::kReady;
        waiter.pending_granted = true;
      }
      continue;
    }

    const Operation& op = txn.operations[state.pc];
    // Update-lock escalation: a read on an object this transaction will
    // write later takes the exclusive lock immediately — the classic cure
    // for upgrade deadlocks (two shared holders both converting).
    bool writes_later = op.is_write();
    for (size_t k = state.pc + 1; !writes_later && k < txn.operations.size();
         ++k) {
      writes_later = txn.operations[k].is_write() &&
                     txn.operations[k].object == op.object;
    }
    LockOutcome outcome = locks.Acquire(
        txn.id, op.object,
        writes_later ? LockMode::kExclusive : LockMode::kShared);
    switch (outcome) {
      case LockOutcome::kGranted:
        state.granted_ops.emplace_back(grant_seq++, op);
        ++state.pc;
        break;
      case LockOutcome::kWaiting:
        state.status = TxnStatus::kBlocked;
        break;
      case LockOutcome::kDeadlock: {
        // Victim: roll back this attempt entirely and retry later.
        ++result.deadlock_aborts;
        OBJALLOC_CHECK_LT(++state.retries, 1000)
            << "transaction " << txn.id << " starves";
        state.pc = 0;
        state.granted_ops.clear();
        state.pending_granted = false;
        for (TransactionId woken : locks.ReleaseAll(txn.id)) {
          TxnState& waiter = states[index.at(woken)];
          OBJALLOC_CHECK(waiter.status == TxnStatus::kBlocked);
          waiter.status = TxnStatus::kReady;
          waiter.pending_granted = true;
        }
        break;
      }
    }
  }

  // Assemble per-object schedules in global grant order (conflicting
  // operations respect 2PL order; concurrent reads land in an arbitrary
  // but fixed order, which §3.1 permits).
  std::vector<std::tuple<int64_t, ObjectId, model::Request>> all_ops;
  for (const TxnState& state : states) {
    for (const auto& [sequence, operation] : state.granted_ops) {
      all_ops.emplace_back(
          sequence, operation.object,
          model::Request{operation.kind, state.txn->processor});
    }
  }
  std::sort(all_ops.begin(), all_ops.end(),
            [](const auto& a, const auto& b) {
              return std::get<0>(a) < std::get<0>(b);
            });
  for (const auto& [sequence, object, request] : all_ops) {
    (void)sequence;
    auto [it, inserted] =
        result.schedules.try_emplace(object, num_processors_);
    it->second.Append(request);
  }
  result.committed = committed;
  return result;
}

}  // namespace objalloc::cc
