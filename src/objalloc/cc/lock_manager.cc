#include "objalloc/cc/lock_manager.h"

#include <algorithm>

#include "objalloc/util/logging.h"

namespace objalloc::cc {

std::set<TransactionId> LockManager::Blockers(const LockState& state,
                                              TransactionId txn,
                                              size_t waiters_ahead) const {
  std::set<TransactionId> blockers;
  for (TransactionId holder : state.holders) {
    if (holder != txn) blockers.insert(holder);
  }
  // A FIFO waiter also waits (transitively) on everything ahead of it; the
  // edge to its *immediate predecessor* captures that chain, keeping the
  // graph linear in the queue length. Upgrades jump the queue and wait on
  // the holders only.
  const bool upgrading = state.holders.count(txn) > 0;
  if (!upgrading && waiters_ahead > 0) {
    const LockState::Waiter& predecessor = state.queue[waiters_ahead - 1];
    if (predecessor.txn != txn) blockers.insert(predecessor.txn);
  }
  return blockers;
}

bool LockManager::WaitsForTransitively(TransactionId from,
                                       TransactionId to) const {
  std::vector<TransactionId> stack = {from};
  std::set<TransactionId> seen;
  while (!stack.empty()) {
    TransactionId current = stack.back();
    stack.pop_back();
    if (current == to) return true;
    if (!seen.insert(current).second) continue;
    auto it = wait_for_.find(current);
    if (it == wait_for_.end()) continue;
    for (TransactionId next : it->second) stack.push_back(next);
  }
  return false;
}

LockOutcome LockManager::Acquire(TransactionId txn, ObjectId object,
                                 LockMode mode) {
  OBJALLOC_CHECK(!IsWaiting(txn)) << "blocked transaction cannot request";
  LockState& state = locks_[object];
  const bool holds = state.holders.count(txn) > 0;

  if (holds) {
    if (mode == LockMode::kShared || state.mode == LockMode::kExclusive) {
      return LockOutcome::kGranted;  // already strong enough
    }
    // Shared -> exclusive upgrade.
    if (state.holders.size() == 1) {
      state.mode = LockMode::kExclusive;
      return LockOutcome::kGranted;
    }
  } else if (state.holders.empty() && state.queue.empty()) {
    state.mode = mode;
    state.holders.insert(txn);
    return LockOutcome::kGranted;
  } else if (mode == LockMode::kShared &&
             state.mode == LockMode::kShared && !state.holders.empty() &&
             state.queue.empty()) {
    state.holders.insert(txn);
    return LockOutcome::kGranted;
  }

  // Must wait: deadlock check first (requester is the victim).
  std::set<TransactionId> blockers =
      Blockers(state, txn, state.queue.size());
  OBJALLOC_CHECK(!blockers.empty());
  for (TransactionId blocker : blockers) {
    if (WaitsForTransitively(blocker, txn)) {
      return LockOutcome::kDeadlock;
    }
  }
  if (holds) {
    // Upgrade requests jump to the head of the queue.
    state.queue.push_front(LockState::Waiter{txn, mode});
  } else {
    state.queue.push_back(LockState::Waiter{txn, mode});
  }
  wait_for_[txn] = std::move(blockers);
  return LockOutcome::kWaiting;
}

void LockManager::PromoteWaiters(ObjectId object,
                                 std::vector<TransactionId>* newly_granted) {
  auto it = locks_.find(object);
  if (it == locks_.end()) return;
  LockState& state = it->second;
  while (!state.queue.empty()) {
    const LockState::Waiter head = state.queue.front();
    const bool upgrade = state.holders.count(head.txn) > 0;
    bool grantable = false;
    if (upgrade) {
      grantable = state.holders.size() == 1;
      if (grantable) state.mode = LockMode::kExclusive;
    } else if (state.holders.empty()) {
      grantable = true;
      state.mode = head.mode;
      state.holders.insert(head.txn);
    } else if (head.mode == LockMode::kShared &&
               state.mode == LockMode::kShared) {
      grantable = true;
      state.holders.insert(head.txn);
    }
    if (!grantable) break;
    state.queue.pop_front();
    wait_for_.erase(head.txn);
    newly_granted->push_back(head.txn);
  }
  // Refresh the wait-for edges of the waiters left behind: their original
  // blockers may be gone, and stale-empty edge sets would blind the cycle
  // detector. Each waiter waits only on holders and the waiters ahead of
  // it (never behind — that would fabricate cycles).
  for (size_t position = 0; position < state.queue.size(); ++position) {
    const LockState::Waiter& waiter = state.queue[position];
    wait_for_[waiter.txn] = Blockers(state, waiter.txn, position);
  }
}

std::vector<TransactionId> LockManager::ReleaseAll(TransactionId txn) {
  std::vector<TransactionId> newly_granted;
  std::vector<ObjectId> touched;
  for (auto& [object, state] : locks_) {
    bool changed = state.holders.erase(txn) > 0;
    auto is_txn = [txn](const LockState::Waiter& waiter) {
      return waiter.txn == txn;
    };
    auto removed =
        std::remove_if(state.queue.begin(), state.queue.end(), is_txn);
    changed = changed || removed != state.queue.end();
    state.queue.erase(removed, state.queue.end());
    if (changed) touched.push_back(object);
  }
  wait_for_.erase(txn);
  for (auto& [waiter, blockers] : wait_for_) blockers.erase(txn);
  // `touched` was collected in hash-table order; promote in object-id order
  // so the grant sequence is independent of the table's bucket layout.
  std::sort(touched.begin(), touched.end());
  for (ObjectId object : touched) PromoteWaiters(object, &newly_granted);
  return newly_granted;
}

bool LockManager::Holds(TransactionId txn, ObjectId object) const {
  auto it = locks_.find(object);
  return it != locks_.end() && it->second.holders.count(txn) > 0;
}

bool LockManager::IsWaiting(TransactionId txn) const {
  return wait_for_.count(txn) > 0;
}

}  // namespace objalloc::cc
