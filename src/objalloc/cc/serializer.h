// Serializer — strict two-phase locking over a batch of transactions,
// producing the per-object read/write schedules that the allocation layer
// consumes (§3.1's "ordered by some concurrency-control mechanism").
//
// Execution model: transactions run concurrently under a seeded random
// interleaving; each operation takes a shared (read) or exclusive (write)
// lock before executing; locks are held to commit (strict 2PL), so the
// emitted per-object operation orders are conflict-serializable. Deadlock
// victims (detected on the wait-for graph) abort, release everything, and
// retry from the start.

#ifndef OBJALLOC_CC_SERIALIZER_H_
#define OBJALLOC_CC_SERIALIZER_H_

#include <map>
#include <vector>

#include "objalloc/cc/lock_manager.h"
#include "objalloc/cc/transaction.h"
#include "objalloc/model/schedule.h"

namespace objalloc::cc {

struct SerializerResult {
  // Committed operations per object, in lock-grant (execution) order; the
  // input to one DOM algorithm instance per object. Deliberately an ordered
  // map: consumers iterate it to produce deterministic reports (and break
  // max-element ties by object id), so ordered iteration is part of the
  // contract here — unlike the lock manager's internal tables, which are
  // hash-based.
  std::map<ObjectId, model::Schedule> schedules;
  size_t committed = 0;
  int64_t deadlock_aborts = 0;
};

class Serializer {
 public:
  explicit Serializer(int num_processors);

  // Runs the batch to completion (every transaction commits, possibly
  // after deadlock retries). Deterministic for a given seed.
  SerializerResult Run(const std::vector<Transaction>& transactions,
                       uint64_t seed);

 private:
  int num_processors_;
};

}  // namespace objalloc::cc

#endif  // OBJALLOC_CC_SERIALIZER_H_
