// WeightedExactOpt — the optimal offline t-available allocation under a
// heterogeneous NetworkTopology (the §6 extension), generalizing the
// homogeneous subset DP of exact_opt.h.
//
// The same O(n·2^n)-per-write lattice sweeps apply because the write
// transition's invalidation penalty is additive per stale processor:
//   cost(Y -> X, writer i) = Σ_{j∈Y\X\{i}} cc·w(i,j)
//                          + Σ_{j∈X\{i}}  cd·w(i,j) + Σ_{j∈X} cio·u(j)
// so C[Z] = min_{Y⊇Z} dp[Y] + Σ_{j∈Y\Z} a_j is computed by a per-bit sweep
// with bit weight a_j = cc·w(i,j), and A[T] = min_{Z⊆T} C[Z] as before.
// Reads additionally choose the cheapest source in the scheme (O(n) per
// state).

#ifndef OBJALLOC_OPT_WEIGHTED_OPT_H_
#define OBJALLOC_OPT_WEIGHTED_OPT_H_

#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"
#include "objalloc/model/topology.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::opt {

// Minimum cost over all legal, t-available allocation schedules for
// `schedule` from `initial_scheme` (t = |initial_scheme|), under
// `topology`-weighted costs. Exponential in the processor count; guarded by
// kMaxExactOptProcessors like the homogeneous DP.
double WeightedExactOptCost(const model::CostModel& cost_model,
                            const model::NetworkTopology& topology,
                            const model::Schedule& schedule,
                            util::ProcessorSet initial_scheme);

}  // namespace objalloc::opt

#endif  // OBJALLOC_OPT_WEIGHTED_OPT_H_
