// RelaxationLowerBound — a polynomial-time LOWER bound on OPT.
//
// The paper's cost function decomposes exactly into per-processor terms:
//   write w^i with execution set X, scheme Y:
//     each j in X \ {i} contributes cd + cio; the writer contributes cio if
//     i in X; each j in Y \ X \ {i} contributes cc (invalidation);
//   read r^j:
//     cio if j holds a copy; cc + cio + cd otherwise (+ cio when saving).
//
// Relaxing (a) the t-availability constraint and (b) the coupling between
// processors (each processor chooses its own copy/no-copy trajectory
// independently) yields a sum of independent 2-state dynamic programs, one
// per processor, each O(schedule length). Any legal t-available allocation
// schedule induces feasible trajectories with exactly the decomposed cost
// (singleton reads; larger read execution sets only cost more), so the bound
// is valid: RelaxationLowerBound <= OPT <= IntervalOpt.

#ifndef OBJALLOC_OPT_RELAXATION_LOWER_BOUND_H_
#define OBJALLOC_OPT_RELAXATION_LOWER_BOUND_H_

#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::opt {

double RelaxationLowerBound(const model::CostModel& cost_model,
                            const model::Schedule& schedule,
                            util::ProcessorSet initial_scheme);

}  // namespace objalloc::opt

#endif  // OBJALLOC_OPT_RELAXATION_LOWER_BOUND_H_
