#include "objalloc/opt/relaxation_lower_bound.h"

#include <algorithm>
#include <limits>

#include "objalloc/util/logging.h"

namespace objalloc::opt {

using model::CostModel;
using model::Request;
using model::Schedule;
using util::ProcessorId;
using util::ProcessorSet;

double RelaxationLowerBound(const CostModel& cost_model,
                            const Schedule& schedule,
                            ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  const double cc = cost_model.control;
  const double cd = cost_model.data;
  const double cio = cost_model.io;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  double total = 0;
  for (ProcessorId j = 0; j < schedule.num_processors(); ++j) {
    // has[0]: minimal cost so far with j not holding a copy; has[1]: holding.
    double no_copy = initial_scheme.Contains(j) ? kInf : 0;
    double copy = initial_scheme.Contains(j) ? 0 : kInf;
    for (const Request& req : schedule.requests()) {
      if (req.is_write()) {
        double next_no, next_copy;
        if (req.processor == j) {
          // The writer pays cio to keep a copy; dropping its own stale copy
          // needs no invalidation message.
          next_no = std::min(no_copy, copy);
          next_copy = std::min(no_copy, copy) + cio;
        } else {
          // A pushed copy costs cd + cio; dropping a held copy costs one
          // invalidation (cc).
          next_copy = std::min(no_copy, copy) + cd + cio;
          next_no = std::min(no_copy, copy + cc);
        }
        no_copy = next_no;
        copy = next_copy;
      } else if (req.processor == j) {
        // Read by j: local input, or remote fetch with optional save.
        double next_copy = std::min(copy + cio,
                                    no_copy + cc + 2 * cio + cd);
        double next_no = no_copy + cc + cio + cd;
        no_copy = next_no;
        copy = next_copy;
      }
      // Reads by other processors do not charge j.
    }
    total += std::min(no_copy, copy);
  }
  return total;
}

}  // namespace objalloc::opt
