// IntervalOpt — an offline *heuristic* that exploits the write-interval
// structure of the problem: between two consecutive writes the scheme can
// only grow (saving-reads), and a write resets it. Because it outputs some
// legal, t-available allocation schedule, its cost is an UPPER bound on OPT;
// together with RelaxationLowerBound it brackets OPT when the exact DP is
// intractable (large n).
//
// Decisions:
//   * Write w^i: the execution set contains i, every processor whose reads in
//     the upcoming interval make a pushed copy cheaper than fetching
//     (include: cd + cio + k*cio  vs  save-on-first-read: cc + cd + 2cio +
//     (k-1)*cio  vs  always-remote: k*(cc + cio + cd)), padded to size t —
//     preferring current scheme members, whose retention avoids an
//     invalidation message.
//   * Read r^j from outside the scheme: saving iff j reads again before the
//     next write and saving is cheaper than repeated remote reads.

#ifndef OBJALLOC_OPT_INTERVAL_OPT_H_
#define OBJALLOC_OPT_INTERVAL_OPT_H_

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"

namespace objalloc::opt {

model::AllocationSchedule IntervalOptSchedule(
    const model::CostModel& cost_model, const model::Schedule& schedule,
    model::ProcessorSet initial_scheme);

double IntervalOptCost(const model::CostModel& cost_model,
                       const model::Schedule& schedule,
                       model::ProcessorSet initial_scheme);

}  // namespace objalloc::opt

#endif  // OBJALLOC_OPT_INTERVAL_OPT_H_
