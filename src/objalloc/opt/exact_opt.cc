#include "objalloc/opt/exact_opt.h"

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::opt {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Minimum chunk of the 2^n state space per parallel task. Below two grains
// ParallelFor runs inline, so small systems stay on the fast serial path.
constexpr size_t kStateGrain = size_t{1} << 12;

int Popcount(uint32_t mask) { return std::popcount(mask); }

// Core DP. When `parents` is non-null, records for every request index and
// every reachable state the predecessor state mask (for reconstruction).
double RunDp(const CostModel& cost_model, const Schedule& schedule,
             ProcessorSet initial_scheme, int t,
             std::vector<std::vector<uint32_t>>* parents) {
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  const int n = schedule.num_processors();
  OBJALLOC_CHECK_LE(n, kMaxExactOptProcessors)
      << "exact OPT is exponential in the number of processors";
  OBJALLOC_CHECK_GE(t, 1);
  OBJALLOC_CHECK_LE(t, initial_scheme.Size())
      << "initial scheme must satisfy the availability threshold";
  const size_t num_states = size_t{1} << n;
  const uint32_t initial = static_cast<uint32_t>(initial_scheme.mask());
  const double cc = cost_model.control;
  const double cd = cost_model.data;
  const double cio = cost_model.io;

  std::vector<double> dp(num_states, kInf);
  dp[initial] = 0;
  std::vector<double> dp_next(num_states);
  std::vector<double> c(num_states), a(num_states);
  // Argmin tracking for reconstruction of write transitions.
  std::vector<uint32_t> c_from, a_from;
  if (parents != nullptr) {
    parents->assign(schedule.size(), {});
    c_from.resize(num_states);
    a_from.resize(num_states);
  }

  for (size_t step = 0; step < schedule.size(); ++step) {
    const model::Request& req = schedule[step];
    const uint32_t i_bit = uint32_t{1} << req.processor;
    std::vector<uint32_t>* parent =
        parents != nullptr ? &(*parents)[step] : nullptr;
    if (parent != nullptr) parent->resize(num_states);

    if (req.is_read()) {
      // Gather form: every target state u is determined by dp[u] (plain
      // read) and dp[u \ {i}] (saving-read joining the scheme), so the loop
      // writes disjoint indices and parallelizes with bit-identical results.
      // Tie-break matches the serial scatter: a saving-read that equals the
      // plain-read cost wins (it was written first, and the plain read only
      // replaced it on strict improvement).
      const double remote_read = cc + cio + cd;
      const double saving_read = cc + 2 * cio + cd;
      util::ParallelFor(0, num_states, kStateGrain, [&](size_t lo,
                                                        size_t hi) {
        for (uint32_t u = static_cast<uint32_t>(lo); u < hi; ++u) {
          if ((u & i_bit) == 0) {
            dp_next[u] = dp[u] + remote_read;
            if (parent != nullptr) (*parent)[u] = dp[u] < kInf ? u : 0;
            continue;
          }
          const uint32_t v = u ^ i_bit;
          const double stay = dp[u] + cio;
          const double join = dp[v] + saving_read;
          if (stay < join) {
            dp_next[u] = stay;
            if (parent != nullptr) (*parent)[u] = u;
          } else if (join < kInf) {
            dp_next[u] = join;
            if (parent != nullptr) (*parent)[u] = v;
          } else {
            dp_next[u] = kInf;
            if (parent != nullptr) (*parent)[u] = 0;
          }
        }
      });
    } else {
      // Write transition via the two lattice sweeps described in the header.
      // Each per-bit phase reads indices with bit j set and writes indices
      // with bit j clear (or vice versa) — disjoint sets, so the phase body
      // parallelizes over the state space; phases are separated by the
      // ParallelFor barrier.
      // C[Z] = min over Y ⊇ Z of dp[Y] + cc*|Y \ Z|.
      c = dp;
      if (parent != nullptr) {
        for (uint32_t z = 0; z < num_states; ++z) c_from[z] = z;
      }
      for (int j = 0; j < n; ++j) {
        const uint32_t j_bit = uint32_t{1} << j;
        util::ParallelFor(0, num_states, kStateGrain, [&](size_t lo,
                                                          size_t hi) {
          for (uint32_t z = static_cast<uint32_t>(lo); z < hi; ++z) {
            if ((z & j_bit) != 0) continue;
            double via = c[z | j_bit] + cc;
            if (via < c[z]) {
              c[z] = via;
              if (parent != nullptr) c_from[z] = c_from[z | j_bit];
            }
          }
        });
      }
      // A[T] = min over Z ⊆ T of C[Z].
      a = c;
      if (parent != nullptr) a_from = c_from;
      for (int j = 0; j < n; ++j) {
        const uint32_t j_bit = uint32_t{1} << j;
        util::ParallelFor(0, num_states, kStateGrain, [&](size_t lo,
                                                          size_t hi) {
          for (uint32_t tmask = static_cast<uint32_t>(lo); tmask < hi;
               ++tmask) {
            if ((tmask & j_bit) == 0) continue;
            double via = a[tmask ^ j_bit];
            if (via < a[tmask]) {
              a[tmask] = via;
              if (parent != nullptr) a_from[tmask] = a_from[tmask ^ j_bit];
            }
          }
        });
      }
      util::ParallelFor(0, num_states, kStateGrain, [&](size_t lo,
                                                        size_t hi) {
        for (uint32_t x = static_cast<uint32_t>(lo); x < hi; ++x) {
          if (Popcount(x) < t) {
            dp_next[x] = kInf;
            if (parent != nullptr) (*parent)[x] = 0;
            continue;
          }
          const double base = a[x | i_bit];
          if (base == kInf) {
            dp_next[x] = kInf;
            if (parent != nullptr) (*parent)[x] = 0;
            continue;
          }
          const int transfers = Popcount(x & ~i_bit);
          dp_next[x] = base + cd * transfers + cio * Popcount(x);
          if (parent != nullptr) (*parent)[x] = a_from[x | i_bit];
        }
      });
    }
    dp.swap(dp_next);
  }

  double best = kInf;
  for (uint32_t s = 0; s < num_states; ++s) best = std::min(best, dp[s]);
  OBJALLOC_CHECK_LT(best, kInf) << "no feasible allocation schedule";
  if (parents != nullptr) {
    // Record the final argmin in the first slot of a sentinel row.
    uint32_t final_state = 0;
    for (uint32_t s = 0; s < num_states; ++s) {
      if (dp[s] == best) {
        final_state = s;
        break;
      }
    }
    parents->push_back(std::vector<uint32_t>{final_state});
  }
  return best;
}

}  // namespace

double ExactOptCost(const CostModel& cost_model, const Schedule& schedule,
                    ProcessorSet initial_scheme) {
  return ExactOptCostWithThreshold(cost_model, schedule, initial_scheme,
                                   initial_scheme.Size());
}

double ExactOptCostWithThreshold(const CostModel& cost_model,
                                 const Schedule& schedule,
                                 ProcessorSet initial_scheme, int t) {
  return RunDp(cost_model, schedule, initial_scheme, t, nullptr);
}

AllocationSchedule ExactOptSchedule(const CostModel& cost_model,
                                    const Schedule& schedule,
                                    ProcessorSet initial_scheme) {
  return ExactOptScheduleWithThreshold(cost_model, schedule, initial_scheme,
                                       initial_scheme.Size());
}

AllocationSchedule ExactOptScheduleWithThreshold(const CostModel& cost_model,
                                                 const Schedule& schedule,
                                                 ProcessorSet initial_scheme,
                                                 int t) {
  const int n = schedule.num_processors();
  OBJALLOC_CHECK_LE(n, kMaxExactOptReconstructProcessors)
      << "reconstruction stores one mask per (request, state)";
  std::vector<std::vector<uint32_t>> parents;
  RunDp(cost_model, schedule, initial_scheme, t, &parents);

  // Walk the parent chain backwards from the recorded final state.
  OBJALLOC_CHECK_EQ(parents.size(), schedule.size() + 1);
  std::vector<uint32_t> states(schedule.size() + 1);
  states[schedule.size()] = parents.back()[0];
  for (size_t step = schedule.size(); step-- > 0;) {
    states[step] = parents[step][states[step + 1]];
  }
  OBJALLOC_CHECK_EQ(states[0], static_cast<uint32_t>(initial_scheme.mask()));

  AllocationSchedule allocation(n, initial_scheme);
  for (size_t step = 0; step < schedule.size(); ++step) {
    const model::Request& req = schedule[step];
    const ProcessorSet before(uint64_t{states[step]});
    const ProcessorSet after(uint64_t{states[step + 1]});
    if (req.is_write()) {
      allocation.Append(req, after);
    } else if (before.Contains(req.processor)) {
      allocation.Append(req, ProcessorSet::Singleton(req.processor));
    } else {
      // Remote read from any holder (homogeneous network: pick the first);
      // a grown scheme means the DP chose a saving-read.
      const bool saving = after != before;
      allocation.Append(req, ProcessorSet::Singleton(before.First()), saving);
    }
  }
  return allocation;
}

}  // namespace objalloc::opt
