#include "objalloc/opt/weighted_opt.h"

#include <bit>
#include <limits>
#include <vector>

#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"

namespace objalloc::opt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double WeightedExactOptCost(const model::CostModel& cost_model,
                            const model::NetworkTopology& topology,
                            const model::Schedule& schedule,
                            util::ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  OBJALLOC_CHECK_EQ(topology.num_processors(), schedule.num_processors());
  const int n = schedule.num_processors();
  OBJALLOC_CHECK_LE(n, kMaxExactOptProcessors);
  const int t = initial_scheme.Size();
  OBJALLOC_CHECK_GE(t, 1);
  const size_t num_states = size_t{1} << n;
  const double cc = cost_model.control;
  const double cd = cost_model.data;
  const double cio = cost_model.io;

  std::vector<double> dp(num_states, kInf);
  dp[static_cast<uint32_t>(initial_scheme.mask())] = 0;
  std::vector<double> dp_next(num_states), c(num_states), a(num_states);

  for (size_t step = 0; step < schedule.size(); ++step) {
    const model::Request& req = schedule[step];
    const int i = req.processor;
    const uint32_t i_bit = uint32_t{1} << i;

    if (req.is_read()) {
      std::fill(dp_next.begin(), dp_next.end(), kInf);
      for (uint32_t s = 0; s < num_states; ++s) {
        if (dp[s] == kInf) continue;
        if ((s & i_bit) != 0) {
          double stay = dp[s] + cio * topology.IoMultiplier(i);
          if (stay < dp_next[s]) dp_next[s] = stay;
          continue;
        }
        // Cheapest source in the scheme.
        double fetch = kInf;
        uint32_t members = s;
        while (members != 0) {
          int y = std::countr_zero(members);
          members &= members - 1;
          fetch = std::min(fetch,
                           (cc + cd) * topology.MessageMultiplier(i, y) +
                               cio * topology.IoMultiplier(y));
        }
        double stay = dp[s] + fetch;
        if (stay < dp_next[s]) dp_next[s] = stay;
        double join = dp[s] + fetch + cio * topology.IoMultiplier(i);
        if (join < dp_next[s | i_bit]) dp_next[s | i_bit] = join;
      }
    } else {
      // Per-bit invalidation weights for this writer.
      std::vector<double> inval(static_cast<size_t>(n), 0.0);
      for (int j = 0; j < n; ++j) {
        if (j != i) inval[static_cast<size_t>(j)] =
            cc * topology.MessageMultiplier(i, j);
      }
      // C[Z] = min over Y ⊇ Z of dp[Y] + sum of inval over Y \ Z.
      c = dp;
      for (int j = 0; j < n; ++j) {
        const uint32_t j_bit = uint32_t{1} << j;
        const double weight = inval[static_cast<size_t>(j)];
        for (uint32_t z = 0; z < num_states; ++z) {
          if ((z & j_bit) != 0) continue;
          double via = c[z | j_bit] + weight;
          if (via < c[z]) c[z] = via;
        }
      }
      // A[T] = min over Z ⊆ T of C[Z].
      a = c;
      for (int j = 0; j < n; ++j) {
        const uint32_t j_bit = uint32_t{1} << j;
        for (uint32_t tmask = 0; tmask < num_states; ++tmask) {
          if ((tmask & j_bit) == 0) continue;
          double via = a[tmask ^ j_bit];
          if (via < a[tmask]) a[tmask] = via;
        }
      }
      std::fill(dp_next.begin(), dp_next.end(), kInf);
      for (uint32_t x = 1; x < num_states; ++x) {
        if (std::popcount(x) < t) continue;
        const double base = a[x | i_bit];
        if (base == kInf) continue;
        double transfer = 0;
        uint32_t members = x;
        while (members != 0) {
          int j = std::countr_zero(members);
          members &= members - 1;
          transfer += cio * topology.IoMultiplier(j);
          if (j != i) transfer += cd * topology.MessageMultiplier(i, j);
        }
        dp_next[x] = base + transfer;
      }
    }
    dp.swap(dp_next);
  }

  double best = kInf;
  for (uint32_t s = 0; s < num_states; ++s) best = std::min(best, dp[s]);
  OBJALLOC_CHECK_LT(best, kInf) << "no feasible allocation schedule";
  return best;
}

}  // namespace objalloc::opt
