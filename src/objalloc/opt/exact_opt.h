// ExactOpt — the optimal offline t-available DOM algorithm (the paper's OPT,
// §4.1), computed by dynamic programming over allocation schemes.
//
// State: the allocation scheme S (any subset with |S| >= t). dp[S] is the
// minimum cost of serving the prefix so that the scheme is S afterwards.
//
//   * Read r^i: either a plain read (scheme unchanged; the cheapest execution
//     set is a singleton — the read cost is strictly increasing in |X|), or,
//     when i is outside the scheme, a saving-read moving S to S ∪ {i}.
//   * Write w^i: any successor scheme X with |X| >= t, at cost
//       |Y \ X \ {i}|*cc + |X \ {i}|*cd + |X|*cio.
//     Enumerating all (Y, X) pairs would be O(4^n); instead the transition is
//     computed in O(n * 2^n) with two lattice sweeps:
//       C[Z] = min over Y ⊇ Z of dp[Y] + cc*|Y \ Z|   (drop elements at cc)
//       A[T] = min over Z ⊆ T of C[Z]                 (subset minimum)
//     so dp'[X] = A[X ∪ {i}] + cd*|X \ {i}| + cio*|X|.
//
// The DP is exact: singleton reads and source-independence (homogeneous
// network) mean no other choices can be cheaper. It is exponential in the
// number of processors; the library guards it to n <= kMaxExactOptProcessors
// and provides IntervalOpt / RelaxationLowerBound as brackets beyond that.

#ifndef OBJALLOC_OPT_EXACT_OPT_H_
#define OBJALLOC_OPT_EXACT_OPT_H_

#include <optional>

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"

namespace objalloc::opt {

using model::AllocationSchedule;
using model::CostModel;
using model::ProcessorSet;
using model::Schedule;

// Exact DP is O(L * n * 2^n) time and O(2^n) memory for cost-only queries.
// The per-request transitions parallelize over the 2^n state space (see
// util/parallel.h), which is what makes the top of this range practical.
inline constexpr int kMaxExactOptProcessors = 20;
// Reconstruction stores one predecessor mask per (request, state).
inline constexpr int kMaxExactOptReconstructProcessors = 12;

// Minimum cost over all legal, t-available allocation schedules for
// `schedule` starting from `initial_scheme`, with t = |initial_scheme|.
double ExactOptCost(const CostModel& cost_model, const Schedule& schedule,
                    ProcessorSet initial_scheme);

// As above with an explicit availability threshold t <= |initial_scheme|.
double ExactOptCostWithThreshold(const CostModel& cost_model,
                                 const Schedule& schedule,
                                 ProcessorSet initial_scheme, int t);

// Reconstructs an optimal allocation schedule (requires small n; see
// kMaxExactOptReconstructProcessors).
AllocationSchedule ExactOptSchedule(const CostModel& cost_model,
                                    const Schedule& schedule,
                                    ProcessorSet initial_scheme);

// As above with an explicit availability threshold t <= |initial_scheme|
// (used by the receding-horizon allocator, whose current scheme may exceed
// the threshold through saving-reads).
AllocationSchedule ExactOptScheduleWithThreshold(const CostModel& cost_model,
                                                 const Schedule& schedule,
                                                 ProcessorSet initial_scheme,
                                                 int t);

}  // namespace objalloc::opt

#endif  // OBJALLOC_OPT_EXACT_OPT_H_
