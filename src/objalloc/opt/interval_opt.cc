#include "objalloc/opt/interval_opt.h"

#include <algorithm>
#include <vector>

#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/logging.h"

namespace objalloc::opt {

using model::AllocationSchedule;
using model::CostModel;
using model::ProcessorSet;
using model::Request;
using model::Schedule;
using util::ProcessorId;

namespace {

// Read counts per processor in requests [begin, end) of `schedule`.
std::vector<int> IntervalReadCounts(const Schedule& schedule, size_t begin,
                                    size_t end) {
  std::vector<int> counts(static_cast<size_t>(schedule.num_processors()), 0);
  for (size_t k = begin; k < end && k < schedule.size(); ++k) {
    if (schedule[k].is_read()) {
      ++counts[static_cast<size_t>(schedule[k].processor)];
    }
  }
  return counts;
}

size_t NextWriteAfter(const Schedule& schedule, size_t index) {
  for (size_t k = index + 1; k < schedule.size(); ++k) {
    if (schedule[k].is_write()) return k;
  }
  return schedule.size();
}

}  // namespace

AllocationSchedule IntervalOptSchedule(const CostModel& cost_model,
                                       const Schedule& schedule,
                                       ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  const int t = initial_scheme.Size();
  const double cc = cost_model.control;
  const double cd = cost_model.data;
  const double cio = cost_model.io;

  AllocationSchedule allocation(schedule.num_processors(), initial_scheme);
  ProcessorSet scheme = initial_scheme;

  for (size_t index = 0; index < schedule.size(); ++index) {
    const Request& req = schedule[index];
    if (req.is_write()) {
      const ProcessorId i = req.processor;
      const size_t next_write = NextWriteAfter(schedule, index);
      std::vector<int> reads =
          IntervalReadCounts(schedule, index + 1, next_write);
      ProcessorSet x = ProcessorSet::Singleton(i);
      for (ProcessorId j = 0; j < schedule.num_processors(); ++j) {
        if (j == i) continue;
        const int k = reads[static_cast<size_t>(j)];
        if (k == 0) continue;
        const double include = cd + cio + k * cio;
        const double save_on_first = cc + cd + 2 * cio + (k - 1) * cio;
        const double always_remote = k * (cc + cio + cd);
        if (include <= std::min(save_on_first, always_remote)) x.Insert(j);
      }
      // Pad to the availability threshold, preferring current members: a
      // retained member costs the same push but saves one invalidation.
      if (x.Size() < t) {
        for (ProcessorId j : scheme) {
          if (x.Size() >= t) break;
          x.Insert(j);
        }
        for (ProcessorId j = 0; j < schedule.num_processors() && x.Size() < t;
             ++j) {
          x.Insert(j);
        }
      }
      allocation.Append(req, x);
      scheme = x;
      continue;
    }

    const ProcessorId j = req.processor;
    if (scheme.Contains(j)) {
      allocation.Append(req, ProcessorSet::Singleton(j));
      continue;
    }
    // Remote read: decide saving by comparing with the remaining reads by j
    // before the next write (counting this one).
    const size_t next_write = NextWriteAfter(schedule, index);
    int k = 0;
    for (size_t m = index; m < next_write; ++m) {
      if (schedule[m].is_read() && schedule[m].processor == j) ++k;
    }
    const double save_now = cc + cd + 2 * cio + (k - 1) * cio;
    const double stay_remote = k * (cc + cio + cd);
    const bool saving = save_now < stay_remote;
    allocation.Append(req, ProcessorSet::Singleton(scheme.First()), saving);
    if (saving) scheme.Insert(j);
  }
  return allocation;
}

double IntervalOptCost(const CostModel& cost_model, const Schedule& schedule,
                       ProcessorSet initial_scheme) {
  return model::ScheduleCost(
      cost_model, IntervalOptSchedule(cost_model, schedule, initial_scheme));
}

}  // namespace objalloc::opt
