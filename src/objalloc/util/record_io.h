// CRC32-framed, length-prefixed records — the one on-disk framing shared by
// the write-ahead log, the checkpoint files, the durability manifest
// (core/wal.h, core/checkpoint.h) and the simulator's DurableObjectStore.
//
// Frame layout (12-byte header, then the payload):
//
//   u32 payload_length | u8 type | u8[3] reserved (0) | u32 crc | payload
//
// The CRC covers the first 8 header bytes and the payload, so any bit flip
// in length, type, or body is detected; a record cut short by a crash is a
// *torn tail*, distinguished from corruption so recovery can truncate it
// and keep the valid prefix. Encoding uses the native (little-endian on
// every supported target) fixed-width layout; files are not interchanged
// across architectures.

#ifndef OBJALLOC_UTIL_RECORD_IO_H_
#define OBJALLOC_UTIL_RECORD_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "objalloc/util/status.h"

namespace objalloc::util {

inline constexpr size_t kRecordHeaderSize = 12;

// Appends one framed record to `*out`.
void AppendRecord(uint8_t type, std::string_view payload, std::string* out);

// A decoded record; `payload` points into the cursor's buffer.
struct RecordView {
  uint8_t type = 0;
  std::string_view payload;
};

// Walks the records of a buffer. After Next returns false, exactly one of
// three terminal states holds:
//   * clean end:  status().ok() and valid_prefix() == buffer size,
//   * torn tail:  status().ok() and valid_prefix() < buffer size — the
//     bytes past valid_prefix() are an incomplete final record (crash mid
//     append); truncating there restores a well-formed log,
//   * corruption: !status().ok() — a complete-looking record failed its
//     CRC (or declared an absurd length); valid_prefix() still marks the
//     end of the last good record.
class RecordCursor {
 public:
  explicit RecordCursor(std::string_view buffer) : buffer_(buffer) {}

  // Advances to the next record; false at any terminal state.
  bool Next(RecordView* out);

  // Byte offset one past the last successfully decoded record.
  size_t valid_prefix() const { return valid_prefix_; }
  // Bytes past the valid prefix (0 on a clean end).
  size_t tail_bytes() const { return buffer_.size() - valid_prefix_; }
  const Status& status() const { return status_; }

 private:
  std::string_view buffer_;
  size_t pos_ = 0;
  size_t valid_prefix_ = 0;
  Status status_;
  bool done_ = false;
};

// --- Payload building helpers ------------------------------------------
// Fixed-width scalar append/read used by every record payload in the
// durability layer; Reader range-checks so a corrupt-but-CRC-valid payload
// (impossible short of a CRC collision) still cannot over-read.

template <typename T>
void AppendScalar(T value, std::string* out) {
  static_assert(std::is_trivially_copyable_v<T>);
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  template <typename T>
  Status Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload_.size() - pos_ < sizeof(T)) {
      return Status::Internal("record payload underrun");
    }
    std::memcpy(out, payload_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  size_t remaining() const { return payload_.size() - pos_; }
  bool exhausted() const { return pos_ == payload_.size(); }

 private:
  std::string_view payload_;
  size_t pos_ = 0;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_RECORD_IO_H_
