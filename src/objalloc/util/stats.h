// Streaming statistics and a simple fixed-bucket histogram for experiment
// reporting.

#ifndef OBJALLOC_UTIL_STATS_H_
#define OBJALLOC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace objalloc::util {

// Welford-style running mean/variance plus min/max.
class RunningStats {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

  // Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Collects samples and answers percentile queries; O(n log n) on demand.
class PercentileTracker {
 public:
  void Add(double x);
  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  // q in [0, 1]; nearest-rank percentile. Requires at least one sample.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-range, equal-width histogram. Out-of-range samples clamp to the
// first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, int buckets);

  void Add(double x);
  int64_t total() const { return total_; }
  const std::vector<int64_t>& buckets() const { return counts_; }

  // Multi-line ASCII rendering with proportional bars.
  std::string Render(int bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_STATS_H_
