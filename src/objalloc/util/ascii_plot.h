// ASCII renderer for 2-D region maps — used to reproduce the paper's
// Figure 1 and Figure 2, which partition the (cd, cc) plane into regions
// ("SA superior", "DA superior", "Unknown", "Cannot be true").

#ifndef OBJALLOC_UTIL_ASCII_PLOT_H_
#define OBJALLOC_UTIL_ASCII_PLOT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace objalloc::util {

// Renders a grid over [x_lo, x_hi] x [y_lo, y_hi]. `classify(x, y)` returns
// the single character to draw at that point; y grows upward (last row is
// y_lo), matching the paper's axes (x = cd, y = cc).
class RegionPlot {
 public:
  RegionPlot(double x_lo, double x_hi, double y_lo, double y_hi, int cols,
             int rows);

  // Adds a legend line such as "S  SA superior".
  void AddLegend(char symbol, const std::string& meaning);

  std::string Render(
      const std::function<char(double x, double y)>& classify) const;

 private:
  double x_lo_, x_hi_, y_lo_, y_hi_;
  int cols_, rows_;
  std::vector<std::pair<char, std::string>> legend_;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_ASCII_PLOT_H_
