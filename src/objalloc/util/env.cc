#include "objalloc/util/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace objalloc::util {

int Env::Open(const char* path, int flags, int mode) {
  return ::open(path, flags, mode);
}

ssize_t Env::Read(int fd, void* buf, size_t count) {
  return ::read(fd, buf, count);
}

ssize_t Env::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}

int Env::Fsync(int fd) { return ::fsync(fd); }

int Env::Fdatasync(int fd) { return ::fdatasync(fd); }

int Env::Close(int fd) { return ::close(fd); }

int Env::Rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int Env::Unlink(const char* path) { return ::unlink(path); }

int Env::Mkdir(const char* path, int mode) {
  return ::mkdir(path, static_cast<mode_t>(mode));
}

int Env::Stat(const char* path, struct ::stat* st) {
  return ::stat(path, st);
}

int Env::Fstat(int fd, struct ::stat* st) { return ::fstat(fd, st); }

int Env::Truncate(const char* path, int64_t size) {
  return ::truncate(path, static_cast<off_t>(size));
}

int Env::Ftruncate(int fd, int64_t size) {
  return ::ftruncate(fd, static_cast<off_t>(size));
}

int64_t Env::Lseek(int fd, int64_t offset, int whence) {
  return static_cast<int64_t>(::lseek(fd, static_cast<off_t>(offset), whence));
}

int Env::ListDirNames(const char* dir, std::vector<std::string>* names) {
  DIR* d = ::opendir(dir);
  if (d == nullptr) return -1;
  names->clear();
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names->push_back(name);
  }
  ::closedir(d);
  return 0;
}

uint64_t Env::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Env::SleepMicros(uint64_t micros) {
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

Env* Env::Default() {
  static Env* env = new Env();  // leaked: outlives every static destructor
  return env;
}

namespace {
std::atomic<Env*> g_current_env{nullptr};
}  // namespace

Env* CurrentEnv() {
  Env* env = g_current_env.load(std::memory_order_acquire);
  return env != nullptr ? env : Env::Default();
}

Env* SetCurrentEnv(Env* env) {
  Env* previous = g_current_env.exchange(env, std::memory_order_acq_rel);
  return previous != nullptr ? previous : Env::Default();
}

Status RetryPolicy::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("retry policy: max_attempts must be >= 1");
  }
  if (backoff_multiplier < 1) {
    return Status::InvalidArgument(
        "retry policy: backoff_multiplier must be >= 1");
  }
  if (max_backoff_us < initial_backoff_us) {
    return Status::InvalidArgument(
        "retry policy: max_backoff_us must be >= initial_backoff_us");
  }
  return Status::Ok();
}

bool IsTransientIoError(const Status& status) {
  return status.code() == StatusCode::kUnavailable;
}

}  // namespace objalloc::util
