// Durable file I/O primitives for the durability layer (DESIGN.md §10):
// whole-file reads, crash-atomic whole-file writes (temp file + fsync +
// rename), and an fsync-able append handle for write-ahead logging. All
// operations report failures through util::Status — a torn disk, a missing
// directory, or an interrupted rename is an error to handle, never an abort.
//
// Every syscall goes through a util::Env (env.h): pass one explicitly, or
// leave the parameter null to use CurrentEnv(). Handles capture the Env at
// Open time, so a reader/appender keeps talking to the same (possibly
// fault-injected) environment for its whole life even if the global is
// swapped mid-stream.
//
// Error classification (DESIGN.md §14): failures whose errno names a
// transient media condition (EIO and friends) map to kUnavailable — retry
// may help; persistent conditions (ENOSPC, EROFS, EACCES, ...) map to
// kInternal — retry cannot help. ENOENT stays kNotFound. The retry helpers
// in env.h key off exactly this split.

#ifndef OBJALLOC_UTIL_IO_H_
#define OBJALLOC_UTIL_IO_H_

#include <cstddef>
#include <cstdint>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

#include "objalloc/util/env.h"
#include "objalloc/util/status.h"

namespace objalloc::util {

// How Sync() makes appended bytes durable. The crash-safety tradeoff:
//   * kFsync     — data + metadata reach stable storage (the default; what
//                  every durability proof in DESIGN.md assumes).
//   * kFdatasync — data reaches stable storage; file metadata (mtime, and —
//                  on filesystems that defer it — the size) may lag. Safe
//                  for a preallocated or append-only log on mainstream
//                  filesystems, and measurably cheaper.
//   * kNone      — no sync at all. ONLY for benchmarking the non-sync cost;
//                  a crash can lose everything since the last natural
//                  writeback. Never use where durability matters.
enum class SyncMode : uint8_t { kFsync = 0, kFdatasync = 1, kNone = 2 };

// Reads the whole file at `path`. NotFound when it does not exist.
StatusOr<std::string> ReadFileToString(const std::string& path,
                                       Env* env = nullptr);

// Crash-atomically replaces `path` with `data`: writes `path + ".tmp"`,
// fsyncs it, renames over `path`, then fsyncs the containing directory so
// the rename itself is durable. A crash leaves either the old file or the
// new one, never a mix; a stale ".tmp" from an earlier crash is replaced.
Status WriteFileAtomic(const std::string& path, std::string_view data,
                       Env* env = nullptr);

// Removes `path`; a missing file is Ok (idempotent cleanup).
Status RemoveFile(const std::string& path, Env* env = nullptr);

// Renames `from` over `to` (same filesystem), then fsyncs the containing
// directory. Used to quarantine a failed WAL generation under a new name.
Status RenameFile(const std::string& from, const std::string& to,
                  Env* env = nullptr);

bool FileExists(const std::string& path, Env* env = nullptr);

// File size in bytes; NotFound when missing.
StatusOr<uint64_t> FileSize(const std::string& path, Env* env = nullptr);

// Creates the directory (one level) if it does not exist.
Status EnsureDir(const std::string& path, Env* env = nullptr);

// Plain file names (not paths) of the entries in `dir`, sorted ascending.
StatusOr<std::vector<std::string>> ListDir(const std::string& dir,
                                           Env* env = nullptr);

// Truncates `path` to `size` bytes (used to drop a torn WAL tail).
Status TruncateFile(const std::string& path, uint64_t size,
                    Env* env = nullptr);

// A sequential binary reader for the streaming recovery path: bounded
// buffer reads without materializing the file. Movable, not copyable.
class FileReader {
 public:
  // Opens `path` for reading. NotFound when it does not exist.
  static StatusOr<FileReader> Open(const std::string& path,
                                   Env* env = nullptr);

  FileReader() = default;
  FileReader(FileReader&& other) noexcept;
  FileReader& operator=(FileReader&& other) noexcept;
  FileReader(const FileReader&) = delete;
  FileReader& operator=(const FileReader&) = delete;
  ~FileReader();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Reads up to `n` bytes into `buf`; returns the count actually read
  // (0 only at end of file).
  StatusOr<size_t> Read(char* buf, size_t n);

  // Reads exactly `n` bytes, or fails. `*eof` (optional) distinguishes a
  // clean end of file *before any byte* from a short read mid-buffer.
  Status ReadExact(char* buf, size_t n, bool* eof = nullptr);

  void Close();

 private:
  FileReader(int fd, std::string path, Env* env)
      : fd_(fd), path_(std::move(path)), env_(env) {}

  int fd_ = -1;
  std::string path_;
  Env* env_ = nullptr;
};

// Adapts a FileReader to std::streambuf so line-oriented parsers
// (std::istream, std::getline) can stream a file through the Env seam with
// a bounded buffer. Read-only, no seeking.
class FileStreamBuf : public std::streambuf {
 public:
  explicit FileStreamBuf(FileReader reader) : reader_(std::move(reader)) {}

  bool is_open() const { return reader_.is_open(); }
  // First read failure, if any (EOF is not a failure). std::istream can
  // only report badbit; the Status carries the real errno story.
  const Status& status() const { return status_; }

 protected:
  int_type underflow() override;

 private:
  FileReader reader_;
  Status status_;
  char buffer_[1 << 16];
};

// An append-only file handle with explicit durability control: Append
// buffers nothing (one write syscall), Sync fsyncs. Movable, not copyable;
// the destructor closes without syncing (call Sync first where it matters).
class AppendFile {
 public:
  // Opens `path` for appending, creating it if missing. When `truncate_to`
  // is not npos the file is first truncated to that many bytes (recovery
  // drops a torn tail before appending resumes).
  static constexpr uint64_t kNoTruncate = ~uint64_t{0};
  static StatusOr<AppendFile> Open(const std::string& path,
                                   uint64_t truncate_to = kNoTruncate,
                                   Env* env = nullptr);

  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile();

  bool is_open() const { return fd_ >= 0; }
  // Bytes in the file (logical append offset).
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

  Status Append(std::string_view data);
  // Makes appended bytes durable per `mode` (kNone is a no-op).
  Status Sync(SyncMode mode = SyncMode::kFsync);
  // Rolls the file back to `size` bytes (<= offset()) and repositions the
  // append cursor there. The WAL retry path uses this to erase a partial
  // group write before rewriting it — appending after a partial write
  // would splice garbage into the middle of the log.
  Status TruncateTo(uint64_t size);
  void Close();

 private:
  AppendFile(int fd, uint64_t offset, std::string path, Env* env)
      : fd_(fd), offset_(offset), path_(std::move(path)), env_(env) {}

  int fd_ = -1;
  uint64_t offset_ = 0;
  std::string path_;
  Env* env_ = nullptr;
};

// The streaming twin of WriteFileAtomic: appends chunks to `path + ".tmp"`,
// then Commit() fsyncs, renames over `path`, and fsyncs the containing
// directory. Peak memory is one chunk regardless of total size. Destroying
// an uncommitted writer removes the temp file, so a failed producer never
// leaves a half-written final file *or* temp debris behind.
class AtomicFileWriter {
 public:
  static StatusOr<AtomicFileWriter> Open(const std::string& path,
                                         Env* env = nullptr);

  AtomicFileWriter() = default;
  AtomicFileWriter(AtomicFileWriter&&) = default;
  AtomicFileWriter& operator=(AtomicFileWriter&& other) noexcept;
  ~AtomicFileWriter();

  Status Append(std::string_view data) { return file_.Append(data); }
  // fsync + rename + directory fsync; the writer is closed afterwards.
  Status Commit();
  // Drops the temp file without publishing (idempotent).
  void Abandon();

 private:
  AppendFile file_;
  std::string final_path_;
  Env* env_ = nullptr;
  bool committed_ = false;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_IO_H_
