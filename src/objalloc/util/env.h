// A pluggable filesystem-and-clock seam for everything the durability layer
// does to the outside world (DESIGN.md §14). Every open/read/write/sync/
// rename/truncate in util/io routes through an Env, so one injected
// implementation can make the "disk" fail on purpose — deterministically —
// while the production default compiles down to plain syscalls.
//
// The interface is deliberately POSIX-shaped (fd in, count out, errno on
// failure) rather than Status-shaped: the seam sits *below* util/io's error
// mapping, so a fault injected here exercises exactly the same
// errno-to-Status classification, retry, and degradation code that a real
// bad disk would.
//
// Installation is process-global (`SetCurrentEnv` / `ScopedEnv`), not
// thread-local, on purpose: the async WAL log thread performs IO on behalf
// of the serving thread and must see the same Env. Tests run one process
// per test binary, so a scoped global override is race-free as long as it
// brackets the lifetime of every service using it.
//
// The clock hooks (NowMicros/SleepMicros) exist for the retry/backoff path:
// a FaultyEnv substitutes virtual time so exponential-backoff tests run in
// microseconds of wall clock, not seconds.

#ifndef OBJALLOC_UTIL_ENV_H_
#define OBJALLOC_UTIL_ENV_H_

#include <sys/stat.h>
#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "objalloc/util/status.h"

namespace objalloc::util {

class Env {
 public:
  virtual ~Env() = default;

  // --- Filesystem primitives (syscall semantics: result as the syscall
  // returns it, errno carries the failure) ------------------------------
  virtual int Open(const char* path, int flags, int mode);
  virtual ssize_t Read(int fd, void* buf, size_t count);
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual int Fsync(int fd);
  virtual int Fdatasync(int fd);
  virtual int Close(int fd);
  virtual int Rename(const char* from, const char* to);
  virtual int Unlink(const char* path);
  virtual int Mkdir(const char* path, int mode);
  virtual int Stat(const char* path, struct ::stat* st);
  virtual int Fstat(int fd, struct ::stat* st);
  virtual int Truncate(const char* path, int64_t size);
  virtual int Ftruncate(int fd, int64_t size);
  virtual int64_t Lseek(int fd, int64_t offset, int whence);
  // Directory listing (names only, unsorted, "." and ".." excluded).
  // Returns 0 on success, -1 with errno on failure.
  virtual int ListDirNames(const char* dir, std::vector<std::string>* names);

  // --- Clock ------------------------------------------------------------
  // Monotonic microseconds (for backoff arithmetic, never wall time).
  virtual uint64_t NowMicros();
  virtual void SleepMicros(uint64_t micros);

  // The process-wide passthrough singleton. Zero overhead beyond one
  // virtual call per IO operation — which is noise next to the syscall it
  // wraps.
  static Env* Default();
};

// The installed Env. Defaults to Env::Default(); never null.
Env* CurrentEnv();

// Installs `env` (nullptr restores the default) and returns the previous
// one. See the header comment for the global-not-thread-local rationale.
Env* SetCurrentEnv(Env* env);

// RAII override: installs in the constructor, restores in the destructor.
class ScopedEnv {
 public:
  explicit ScopedEnv(Env* env) : previous_(SetCurrentEnv(env)) {}
  ~ScopedEnv() { SetCurrentEnv(previous_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  Env* previous_;
};

// --- Retry policy -------------------------------------------------------
// Bounded retry with exponential backoff for IO operations whose failure
// was classified transient (IsTransientIoError). Shared by the async WAL
// writer and the checkpoint/manifest publication path.
struct RetryPolicy {
  // Total tries including the first; 1 disables retry entirely.
  int max_attempts = 4;
  uint32_t initial_backoff_us = 200;
  uint32_t max_backoff_us = 50000;
  uint32_t backoff_multiplier = 4;

  Status Validate() const;
};

// True when `status` is an IO failure a retry can plausibly clear: util/io
// maps the EIO class of errnos (a flaky cable, a mid-remap sector) to
// kUnavailable, and everything persistent (ENOSPC, EROFS, EACCES, ...) to
// kInternal. Ok and non-IO codes return false.
bool IsTransientIoError(const Status& status);

// Runs `op` (a callable returning Status) up to policy.max_attempts times,
// sleeping the backoff schedule through `env` between attempts. Only
// transient failures are retried; a persistent error (or exhaustion)
// returns the last failure unchanged. `*retries` (optional) is incremented
// once per re-attempt. The callable must be idempotent-or-self-repairing:
// wherever a failed attempt can leave partial state behind (a half-written
// append), the callable itself must roll back before rewriting.
template <typename Fn>
Status RetryIo(const RetryPolicy& policy, Env* env, uint64_t* retries,
               Fn&& op) {
  Status status = op();
  uint64_t backoff = policy.initial_backoff_us;
  for (int attempt = 1;
       !status.ok() && IsTransientIoError(status) && attempt < policy.max_attempts;
       ++attempt) {
    env->SleepMicros(backoff);
    backoff *= policy.backoff_multiplier;
    if (backoff > policy.max_backoff_us) backoff = policy.max_backoff_us;
    if (retries != nullptr) ++*retries;
    status = op();
  }
  return status;
}

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_ENV_H_
