#include "objalloc/util/ascii_plot.h"

#include <iomanip>
#include <sstream>

#include "objalloc/util/logging.h"

namespace objalloc::util {

RegionPlot::RegionPlot(double x_lo, double x_hi, double y_lo, double y_hi,
                       int cols, int rows)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi), cols_(cols),
      rows_(rows) {
  OBJALLOC_CHECK_LT(x_lo, x_hi);
  OBJALLOC_CHECK_LT(y_lo, y_hi);
  OBJALLOC_CHECK_GT(cols, 1);
  OBJALLOC_CHECK_GT(rows, 1);
}

void RegionPlot::AddLegend(char symbol, const std::string& meaning) {
  legend_.emplace_back(symbol, meaning);
}

std::string RegionPlot::Render(
    const std::function<char(double x, double y)>& classify) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  for (int r = rows_ - 1; r >= 0; --r) {
    double y = y_lo_ + (y_hi_ - y_lo_) * (static_cast<double>(r) + 0.5) /
                           static_cast<double>(rows_);
    os << std::setw(6) << y << " |";
    for (int c = 0; c < cols_; ++c) {
      double x = x_lo_ + (x_hi_ - x_lo_) * (static_cast<double>(c) + 0.5) /
                             static_cast<double>(cols_);
      os << classify(x, y);
    }
    os << "\n";
  }
  os << std::setw(6) << "" << " +" << std::string(static_cast<size_t>(cols_), '-')
     << "\n";
  os << std::setw(8) << "" << std::setw(0) << x_lo_ << std::string(
            static_cast<size_t>(cols_) > 12 ? static_cast<size_t>(cols_) - 8
                                            : 4,
            ' ')
     << x_hi_ << "\n";
  if (!legend_.empty()) {
    os << "legend:";
    for (const auto& [sym, meaning] : legend_) {
      os << "  '" << sym << "' " << meaning;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace objalloc::util
