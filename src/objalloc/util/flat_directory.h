// FlatDirectory: an open-addressing int64 key → uint32 index map for the
// serving hot path's id → dense-slot directories.
//
// std::unordered_map is the wrong shape for a per-event lookup: every find
// costs an integer division (hash % bucket_count) plus a pointer chase into
// a node allocation, and at the ~0.9 load factor a reserved map settles
// into, random key subsets (hash-sharded object ids) build collision chains
// of cache-missing nodes. This directory instead keeps {key, value} pairs
// in one contiguous power-of-two array probed linearly: the splitmix64 bit
// mix randomizes buckets for any key distribution, the capacity mask
// replaces the division, a probe touches consecutive cache lines, and the
// load factor is capped at 3/4. Lookups are 1-2 cache lines in the common
// case and allocation-free always.
//
// Deliberately minimal: value-based absence (kNotFound) — exactly the
// contract the serving engine needs. The value type is a template
// parameter: ObjectShard maps id → uint32 slot, ObjectService maps id →
// uint64 packed (shard, slot) route. Iteration order is intentionally not
// provided; deterministic listings must come from the dense slot vector,
// never from a hash table.
//
// Erase support uses tombstones (the fault-tolerance layer's per-shard
// degraded-object registry inserts an object when a crash drops its scheme
// below t and erases it once repaired): an erased bucket keeps its place in
// every probe chain that stepped over it, so Find never terminates early
// past a deletion. Tombstones count toward the load cap — a rehash (which
// drops them) is triggered by the same 3/4 bound, so churn-heavy
// erase/insert cycles cannot degenerate probe chains unboundedly.

#ifndef OBJALLOC_UTIL_FLAT_DIRECTORY_H_
#define OBJALLOC_UTIL_FLAT_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

template <typename Value = uint32_t>
class FlatDirectory {
 public:
  // Returned by Find for absent keys; never a legal value.
  static constexpr Value kNotFound = static_cast<Value>(-1);
  // Marks an erased bucket; also never a legal value. Probe chains treat a
  // tombstone as occupied (keep probing) while Find reports the key absent.
  static constexpr Value kTombstone = static_cast<Value>(-2);

  FlatDirectory() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pre-sizes the table so `expected` inserts trigger no rehash.
  void Reserve(size_t expected) {
    const size_t capacity = CapacityFor(expected);
    if (capacity > entries_.size()) Rehash(capacity);
  }

  // Value stored under `key`, or kNotFound.
  Value Find(int64_t key) const {
    if (entries_.empty()) return kNotFound;
    size_t i = Mix(key) & mask_;
    while (true) {
      const Entry& entry = entries_[i];
      if (entry.value == kNotFound) return kNotFound;
      if (entry.value != kTombstone && entry.key == key) return entry.value;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(int64_t key) const { return Find(key) != kNotFound; }

  // Inserts key → value. The key must be absent and the value legal;
  // both are programming errors of the caller, checked fatally. Reuses the
  // first tombstone on the probe chain (after confirming the key is indeed
  // absent further down the chain).
  void Insert(int64_t key, Value value) {
    OBJALLOC_CHECK_NE(value, kNotFound) << "reserved sentinel value";
    OBJALLOC_CHECK_NE(value, kTombstone) << "reserved sentinel value";
    if ((used_ + 1) * 4 > entries_.size() * 3) {
      Rehash(CapacityFor(size_ + 1));
    }
    size_t i = Mix(key) & mask_;
    size_t place = entries_.size();  // first tombstone seen, if any
    while (entries_[i].value != kNotFound) {
      if (entries_[i].value == kTombstone) {
        if (place == entries_.size()) place = i;
      } else {
        OBJALLOC_CHECK_NE(entries_[i].key, key) << "duplicate key " << key;
      }
      i = (i + 1) & mask_;
    }
    if (place == entries_.size()) {
      place = i;
      ++used_;  // a tombstone was already counted as used
    }
    entries_[place] = Entry{key, value};
    ++size_;
  }

  // Erases `key` if present, leaving a tombstone so probe chains through
  // this bucket stay intact. Returns whether the key was present.
  bool Erase(int64_t key) {
    if (entries_.empty()) return false;
    size_t i = Mix(key) & mask_;
    while (true) {
      Entry& entry = entries_[i];
      if (entry.value == kNotFound) return false;
      if (entry.value != kTombstone && entry.key == key) {
        entry.value = kTombstone;
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Entry {
    int64_t key = 0;
    Value value = kNotFound;  // kNotFound marks an empty bucket
  };

  // splitmix64 finalizer: a fixed, platform-independent mix (identity
  // hashes would chain badly for the hash-sharded id subsets this
  // directory exists to serve).
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Smallest power of two holding `n` entries under the 3/4 load cap.
  static size_t CapacityFor(size_t n) {
    size_t capacity = 16;
    while (capacity * 3 < n * 4) capacity <<= 1;
    return capacity;
  }

  // Rebuilds at `capacity`, dropping tombstones (live entries only).
  void Rehash(size_t capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(capacity, Entry{});
    mask_ = capacity - 1;
    for (const Entry& entry : old) {
      if (entry.value == kNotFound || entry.value == kTombstone) continue;
      size_t i = Mix(entry.key) & mask_;
      while (entries_[i].value != kNotFound) i = (i + 1) & mask_;
      entries_[i] = entry;
    }
    used_ = size_;
  }

  std::vector<Entry> entries_;
  size_t mask_ = 0;
  size_t size_ = 0;  // live entries
  size_t used_ = 0;  // live entries + tombstones (load-factor accounting)
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_FLAT_DIRECTORY_H_
