// FlatDirectory: an open-addressing int64 key → uint32 index map for the
// serving hot path's id → dense-slot directories.
//
// std::unordered_map is the wrong shape for a per-event lookup: every find
// costs an integer division (hash % bucket_count) plus a pointer chase into
// a node allocation, and at the ~0.9 load factor a reserved map settles
// into, random key subsets (hash-sharded object ids) build collision chains
// of cache-missing nodes. This directory instead keeps {key, value} pairs
// in one contiguous power-of-two array probed linearly: the splitmix64 bit
// mix randomizes buckets for any key distribution, the capacity mask
// replaces the division, a probe touches consecutive cache lines, and the
// load factor is capped at 3/4. Lookups are 1-2 cache lines in the common
// case and allocation-free always.
//
// Deliberately minimal: insert-only (objects are never unregistered) and
// value-based absence (kNotFound) — exactly the contract the serving
// engine needs. The value type is a template parameter: ObjectShard maps
// id → uint32 slot, ObjectService maps id → uint64 packed (shard, slot)
// route. Iteration order is intentionally not provided; deterministic
// listings must come from the dense slot vector, never from a hash table.

#ifndef OBJALLOC_UTIL_FLAT_DIRECTORY_H_
#define OBJALLOC_UTIL_FLAT_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

template <typename Value = uint32_t>
class FlatDirectory {
 public:
  // Returned by Find for absent keys; never a legal value.
  static constexpr Value kNotFound = static_cast<Value>(-1);

  FlatDirectory() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Pre-sizes the table so `expected` inserts trigger no rehash.
  void Reserve(size_t expected) {
    const size_t capacity = CapacityFor(expected);
    if (capacity > entries_.size()) Rehash(capacity);
  }

  // Value stored under `key`, or kNotFound.
  Value Find(int64_t key) const {
    if (entries_.empty()) return kNotFound;
    size_t i = Mix(key) & mask_;
    while (true) {
      const Entry& entry = entries_[i];
      if (entry.value == kNotFound) return kNotFound;
      if (entry.key == key) return entry.value;
      i = (i + 1) & mask_;
    }
  }

  bool Contains(int64_t key) const { return Find(key) != kNotFound; }

  // Inserts key → value. The key must be absent and the value legal;
  // both are programming errors of the caller, checked fatally.
  void Insert(int64_t key, Value value) {
    OBJALLOC_CHECK_NE(value, kNotFound) << "reserved sentinel value";
    if ((size_ + 1) * 4 > entries_.size() * 3) {
      Rehash(CapacityFor(size_ + 1));
    }
    size_t i = Mix(key) & mask_;
    while (entries_[i].value != kNotFound) {
      OBJALLOC_CHECK_NE(entries_[i].key, key) << "duplicate key " << key;
      i = (i + 1) & mask_;
    }
    entries_[i] = Entry{key, value};
    ++size_;
  }

 private:
  struct Entry {
    int64_t key = 0;
    Value value = kNotFound;  // kNotFound marks an empty bucket
  };

  // splitmix64 finalizer: a fixed, platform-independent mix (identity
  // hashes would chain badly for the hash-sharded id subsets this
  // directory exists to serve).
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Smallest power of two holding `n` entries under the 3/4 load cap.
  static size_t CapacityFor(size_t n) {
    size_t capacity = 16;
    while (capacity * 3 < n * 4) capacity <<= 1;
    return capacity;
  }

  void Rehash(size_t capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(capacity, Entry{});
    mask_ = capacity - 1;
    for (const Entry& entry : old) {
      if (entry.value == kNotFound) continue;
      size_t i = Mix(entry.key) & mask_;
      while (entries_[i].value != kNotFound) i = (i + 1) & mask_;
      entries_[i] = entry;
    }
  }

  std::vector<Entry> entries_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_FLAT_DIRECTORY_H_
