// FlatDirectory: an open-addressing int64 key → small-value map for the
// serving hot path's id → dense-slot directories.
//
// std::unordered_map is the wrong shape for a per-event lookup: every find
// costs an integer division (hash % bucket_count) plus a pointer chase into
// a node allocation, and at the ~0.9 load factor a reserved map settles
// into, random key subsets (hash-sharded object ids) build collision chains
// of cache-missing nodes. This directory instead keeps keys and values in
// two parallel power-of-two arrays probed linearly: the splitmix64 bit mix
// randomizes buckets for any key distribution, the capacity mask replaces
// the division, a probe touches consecutive cache lines, and the load
// factor is capped at 3/4. Splitting keys from values keeps a bucket at
// 8 + sizeof(Value) bytes — 12 for the uint32 directories — which is what
// lets a million-object route table fit a ~25-byte/object budget
// (DESIGN.md §12). Lookups are 1-2 cache lines in the common case and
// allocation-free always.
//
// Growth is *incremental*: when the load cap trips, the full table is not
// rehashed in one stop-the-world sweep. Instead the current arrays are
// frozen as the "old" table, fresh arrays are allocated, and every
// subsequent Insert migrates a bounded run of old buckets before adding its
// own key (lookups probe new-then-old until the drain completes). The step
// size is chosen per migration so the drain always finishes before the new
// table can trip its own load cap, so registering the 10-millionth object
// does the same bounded work as registering the first — no rehash cliff in
// the tail latency (bench/footprint_scaling measures this). Reserve
// force-finishes any drain and pre-sizes in one step, which is what bulk
// registration wants instead.
//
// Deliberately minimal: value-based absence (kNotFound) — exactly the
// contract the serving engine needs. The value type is a template
// parameter: ObjectShard maps id → uint32 slot, ObjectService maps id →
// packed uint32 (shard, slot) route. Iteration order is intentionally not
// provided; deterministic listings must come from the dense slot vector,
// never from a hash table.
//
// Erase support uses tombstones (the fault-tolerance layer's per-shard
// degraded-object registry inserts an object when a crash drops its scheme
// below t and erases it once repaired): an erased bucket keeps its place in
// every probe chain that stepped over it, so Find never terminates early
// past a deletion. Tombstones count toward the load cap, so churn-heavy
// erase/insert cycles trip the same 3/4 bound and drain into a fresh table
// sized for the *live* entries alone — a same-or-smaller-capacity migration
// is exactly tombstone compaction, and probe lengths stay bounded under
// unbounded churn (tests/util_test.cc drives a million-entry churn sweep).

#ifndef OBJALLOC_UTIL_FLAT_DIRECTORY_H_
#define OBJALLOC_UTIL_FLAT_DIRECTORY_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

template <typename Value = uint32_t>
class FlatDirectory {
 public:
  // Returned by Find for absent keys; never a legal value.
  static constexpr Value kNotFound = static_cast<Value>(-1);
  // Marks an erased bucket; also never a legal value. Probe chains treat a
  // tombstone as occupied (keep probing) while Find reports the key absent.
  static constexpr Value kTombstone = static_cast<Value>(-2);

  FlatDirectory() = default;

  size_t size() const { return live_.size + old_.size; }
  bool empty() const { return size() == 0; }

  // Buckets across both tables (old table nonzero only mid-drain).
  size_t capacity() const { return live_.keys.size() + old_.keys.size(); }

  // Erased-but-not-yet-compacted buckets (load-factor accounting).
  size_t tombstones() const {
    return (live_.used - live_.size) + (old_.used - old_.size);
  }

  // True while an incremental growth/compaction drain is in progress.
  bool migrating() const { return !old_.keys.empty(); }

  // Heap bytes held by the bucket arrays of both tables.
  size_t MemoryUsageBytes() const {
    return (live_.keys.capacity() + old_.keys.capacity()) * sizeof(int64_t) +
           (live_.values.capacity() + old_.values.capacity()) * sizeof(Value);
  }

  // Pre-sizes the table so `expected` inserts trigger no growth. Finishes
  // any in-progress drain first (bulk registration wants one big step, not
  // amortized ones).
  void Reserve(size_t expected) {
    FinishMigration();
    const size_t capacity = CapacityFor(expected);
    if (capacity > live_.keys.size()) {
      BeginMigration(capacity);
      FinishMigration();
    }
  }

  // Value stored under `key`, or kNotFound. Mid-drain, un-migrated entries
  // still live in the old table: probe new first (every fresh insert and
  // every migrated entry lands there), then old.
  Value Find(int64_t key) const {
    const Value in_new = FindIn(live_, key);
    if (in_new != kNotFound) return in_new;
    if (!old_.keys.empty()) [[unlikely]] return FindIn(old_, key);
    return kNotFound;
  }

  bool Contains(int64_t key) const { return Find(key) != kNotFound; }

  // Inserts key → value. The key must be absent and the value legal; both
  // are programming errors of the caller, checked fatally. Amortizes the
  // incremental drain: when a migration is in progress, a bounded run of
  // old-table buckets is rehashed into the new table first.
  void Insert(int64_t key, Value value) {
    OBJALLOC_CHECK_NE(value, kNotFound) << "reserved sentinel value";
    OBJALLOC_CHECK_NE(value, kTombstone) << "reserved sentinel value";
    if (live_.keys.empty()) InitTable(&live_, kMinCapacity);
    if (!old_.keys.empty()) [[unlikely]] {
      MigrateStep();
      // The step arithmetic guarantees the drain completes before the new
      // table trips its own cap; this backstop keeps the invariant even if
      // a caller mixes Reserve/erase patterns the bound does not model.
      if ((live_.used + 1) * 4 > live_.keys.size() * 3) FinishMigration();
    }
    if (old_.keys.empty() && (live_.used + 1) * 4 > live_.keys.size() * 3) {
      // Target ≤ 3/8 load at drain end: the new table then absorbs the whole
      // drain plus every interleaved insert before its own 3/4 cap can trip.
      // Sizing by live entries (not used buckets) makes a churn-trippped
      // growth a compaction: tombstones are dropped, capacity can shrink.
      BeginMigration(CapacityFor(2 * (size() + 1)));
      MigrateStep();
    }
    if (!old_.keys.empty()) {
      // The duplicate check must cover un-migrated entries too.
      OBJALLOC_CHECK_EQ(FindIn(old_, key), kNotFound)
          << "duplicate key " << key;
    }
    InsertIn(&live_, key, value, /*check_duplicate=*/true);
  }

  // Erases `key` if present, leaving a tombstone so probe chains through
  // this bucket stay intact. Returns whether the key was present.
  bool Erase(int64_t key) {
    if (EraseIn(&live_, key)) return true;
    if (!old_.keys.empty()) [[unlikely]] return EraseIn(&old_, key);
    return false;
  }

  // Buckets a Find(key) touches today (across both tables for a miss) —
  // the observable the churn tests bound.
  size_t ProbeLength(int64_t key) const {
    size_t probes = 0;
    if (ProbeIn(live_, key, &probes)) return probes;
    if (!old_.keys.empty()) ProbeIn(old_, key, &probes);
    return probes;
  }

 private:
  static constexpr size_t kMinCapacity = 16;
  // Minimum old-table buckets rehashed per Insert while draining.
  static constexpr size_t kMinMigrateStep = 8;

  // One open-addressing table: parallel key/value arrays (values carry the
  // empty/tombstone sentinels), power-of-two sized.
  struct Table {
    std::vector<int64_t> keys;
    std::vector<Value> values;
    size_t mask = 0;
    size_t size = 0;  // live entries
    size_t used = 0;  // live entries + tombstones (load-factor accounting)
  };

  // splitmix64 finalizer: a fixed, platform-independent mix (identity
  // hashes would chain badly for the hash-sharded id subsets this
  // directory exists to serve).
  static uint64_t Mix(int64_t key) {
    uint64_t x = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  // Smallest power of two holding `n` entries under the 3/4 load cap.
  static size_t CapacityFor(size_t n) {
    size_t capacity = kMinCapacity;
    while (capacity * 3 < n * 4) capacity <<= 1;
    return capacity;
  }

  static void InitTable(Table* table, size_t capacity) {
    table->keys.assign(capacity, 0);
    table->values.assign(capacity, kNotFound);
    table->mask = capacity - 1;
    table->size = 0;
    table->used = 0;
  }

  static Value FindIn(const Table& table, int64_t key) {
    if (table.keys.empty()) return kNotFound;
    size_t i = Mix(key) & table.mask;
    while (true) {
      const Value value = table.values[i];
      if (value == kNotFound) return kNotFound;
      if (value != kTombstone && table.keys[i] == key) return value;
      i = (i + 1) & table.mask;
    }
  }

  // Like FindIn but counts probed buckets into `*probes` (accumulating);
  // returns whether the key was found.
  static bool ProbeIn(const Table& table, int64_t key, size_t* probes) {
    if (table.keys.empty()) return false;
    size_t i = Mix(key) & table.mask;
    while (true) {
      ++*probes;
      const Value value = table.values[i];
      if (value == kNotFound) return false;
      if (value != kTombstone && table.keys[i] == key) return true;
      i = (i + 1) & table.mask;
    }
  }

  static void InsertIn(Table* table, int64_t key, Value value,
                       bool check_duplicate) {
    size_t i = Mix(key) & table->mask;
    size_t place = table->keys.size();  // first tombstone seen, if any
    while (table->values[i] != kNotFound) {
      if (table->values[i] == kTombstone) {
        if (place == table->keys.size()) place = i;
      } else if (check_duplicate) {
        OBJALLOC_CHECK_NE(table->keys[i], key) << "duplicate key " << key;
      }
      i = (i + 1) & table->mask;
    }
    if (place == table->keys.size()) {
      place = i;
      ++table->used;  // a tombstone was already counted as used
    }
    table->keys[place] = key;
    table->values[place] = value;
    ++table->size;
  }

  static bool EraseIn(Table* table, int64_t key) {
    if (table->keys.empty()) return false;
    size_t i = Mix(key) & table->mask;
    while (true) {
      const Value value = table->values[i];
      if (value == kNotFound) return false;
      if (value != kTombstone && table->keys[i] == key) {
        table->values[i] = kTombstone;
        --table->size;
        return true;
      }
      i = (i + 1) & table->mask;
    }
  }

  // Freezes the current arrays as the drain source and starts fresh ones.
  // The per-insert step is sized so scanning all old buckets finishes
  // within ~3/8 of the new capacity inserts — before the new table (seeded
  // with at most the old live entries) can reach its own 3/4 cap.
  void BeginMigration(size_t capacity) {
    old_ = std::move(live_);
    InitTable(&live_, capacity);
    scan_pos_ = 0;
    migrate_step_ = kMinMigrateStep;
    const size_t budget = capacity * 3 / 8;
    if (budget > 0) {
      const size_t paced = (old_.keys.size() + budget - 1) / budget;
      if (paced > migrate_step_) migrate_step_ = paced;
    }
  }

  // Rehashes the next `migrate_step_` old buckets into the new table;
  // drops the old arrays when the scan completes. Migrated keys are unique
  // across both tables by construction, so no duplicate check is needed.
  void MigrateStep() {
    const size_t end = scan_pos_ + migrate_step_ < old_.keys.size()
                           ? scan_pos_ + migrate_step_
                           : old_.keys.size();
    for (; scan_pos_ < end; ++scan_pos_) {
      const Value value = old_.values[scan_pos_];
      if (value == kNotFound || value == kTombstone) continue;
      InsertIn(&live_, old_.keys[scan_pos_], value,
               /*check_duplicate=*/false);
      old_.values[scan_pos_] = kTombstone;
      --old_.size;  // bucket flips live → tombstone; used is unchanged
    }
    if (scan_pos_ >= old_.keys.size()) {
      old_ = Table();  // drain complete: free the old arrays
      scan_pos_ = 0;
    }
  }

  void FinishMigration() {
    if (old_.keys.empty()) return;
    migrate_step_ = old_.keys.size();
    MigrateStep();
  }

  Table live_;  // every new insert and every migrated entry lands here
  Table old_;   // drain source; empty except mid-migration
  size_t scan_pos_ = 0;
  size_t migrate_step_ = kMinMigrateStep;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_FLAT_DIRECTORY_H_
