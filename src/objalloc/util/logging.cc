#include "objalloc/util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace objalloc::util {

void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s:%d] %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace objalloc::util
