#include "objalloc/util/faulty_env.h"

#include <cerrno>

#include "objalloc/util/rng.h"

namespace objalloc::util {

FaultyEnv::FaultyEnv(FaultyEnvOptions options, Env* base)
    : options_(options),
      base_(base != nullptr ? base : Env::Default()),
      rng_(options.seed) {}

void FaultyEnv::SetPlan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
}

void FaultyEnv::SetRates(double error_rate, double enospc_rate,
                         double slow_rate, uint64_t slow_us) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.error_rate = error_rate;
  options_.enospc_rate = enospc_rate;
  options_.slow_rate = slow_rate;
  options_.slow_us = slow_us;
}

uint64_t FaultyEnv::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

uint64_t FaultyEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return faults_;
}

FaultKind FaultyEnv::NextOp(OpClass op, uint64_t* latency_us,
                            uint64_t* draw) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t index = ops_++;
  *draw = SplitMix64(rng_);
  FaultKind kind = FaultKind::kNone;
  *latency_us = 0;
  if (plan_.kind != FaultKind::kNone && index >= plan_.op_index &&
      (plan_.count == FaultPlan::kForever ||
       index - plan_.op_index < plan_.count)) {
    kind = plan_.kind;
    *latency_us = plan_.latency_us;
  } else if (options_.error_rate > 0 || options_.enospc_rate > 0 ||
             options_.slow_rate > 0) {
    // Uniform in [0, 1) from the top 53 bits; one draw, stacked bands.
    const double u =
        static_cast<double>(*draw >> 11) * 0x1.0p-53;
    if (u < options_.error_rate) {
      kind = FaultKind::kEio;
    } else if (u < options_.error_rate + options_.enospc_rate) {
      kind = FaultKind::kEnospc;
    } else if (u < options_.error_rate + options_.enospc_rate +
                       options_.slow_rate) {
      kind = FaultKind::kLatency;
      *latency_us = options_.slow_us;
    }
  }
  if (kind == FaultKind::kNone) return kind;
  // Specialize the kind to the op class; a kind that cannot apply falls
  // back to plain EIO so a scripted fault fires at *every* op index.
  switch (kind) {
    case FaultKind::kEnospc:
      if (op != OpClass::kWrite && op != OpClass::kSync) kind = FaultKind::kEio;
      break;
    case FaultKind::kTornWrite:
    case FaultKind::kShortWrite:
      if (op != OpClass::kWrite) kind = FaultKind::kEio;
      break;
    case FaultKind::kBitFlipRead:
      if (op != OpClass::kRead) kind = FaultKind::kEio;
      break;
    default:
      break;
  }
  ++faults_;
  return kind;
}

void FaultyEnv::Stall(uint64_t micros) {
  if (options_.real_time) {
    base_->SleepMicros(micros);
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    virtual_now_us_ += micros;
  }
}

int FaultyEnv::Open(const char* path, int flags, int mode) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kOpen, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Open(path, flags, mode);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Open(path, flags, mode);
    default:
      errno = EIO;
      return -1;
  }
}

ssize_t FaultyEnv::Read(int fd, void* buf, size_t count) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kRead, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Read(fd, buf, count);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Read(fd, buf, count);
    case FaultKind::kBitFlipRead: {
      const ssize_t n = base_->Read(fd, buf, count);
      if (n > 0) {
        const uint64_t bit = draw % (static_cast<uint64_t>(n) * 8);
        static_cast<unsigned char*>(buf)[bit / 8] ^=
            static_cast<unsigned char>(1u << (bit % 8));
      }
      return n;
    }
    default:
      errno = EIO;
      return -1;
  }
}

ssize_t FaultyEnv::Write(int fd, const void* buf, size_t count) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kWrite, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Write(fd, buf, count);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Write(fd, buf, count);
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return -1;
    case FaultKind::kShortWrite:
      if (count > 1) return base_->Write(fd, buf, count / 2);
      errno = EIO;
      return -1;
    case FaultKind::kTornWrite:
      // The dangerous shape: bytes land, the call still fails.
      if (count > 1) (void)base_->Write(fd, buf, count / 2);
      errno = EIO;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

int FaultyEnv::Fsync(int fd) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kSync, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Fsync(fd);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Fsync(fd);
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

int FaultyEnv::Fdatasync(int fd) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kSync, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Fdatasync(fd);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Fdatasync(fd);
    case FaultKind::kEnospc:
      errno = ENOSPC;
      return -1;
    default:
      errno = EIO;
      return -1;
  }
}

int FaultyEnv::Rename(const char* from, const char* to) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kOther, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Rename(from, to);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Rename(from, to);
    default:
      errno = EIO;
      return -1;
  }
}

int FaultyEnv::Truncate(const char* path, int64_t size) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kOther, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Truncate(path, size);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Truncate(path, size);
    default:
      errno = EIO;
      return -1;
  }
}

int FaultyEnv::Ftruncate(int fd, int64_t size) {
  uint64_t latency = 0, draw = 0;
  switch (NextOp(OpClass::kOther, &latency, &draw)) {
    case FaultKind::kNone:
      return base_->Ftruncate(fd, size);
    case FaultKind::kLatency:
      Stall(latency);
      return base_->Ftruncate(fd, size);
    default:
      errno = EIO;
      return -1;
  }
}

uint64_t FaultyEnv::NowMicros() {
  if (options_.real_time) return base_->NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  return virtual_now_us_;
}

void FaultyEnv::SleepMicros(uint64_t micros) { Stall(micros); }

}  // namespace objalloc::util
