#include "objalloc/util/record_io.h"

#include "objalloc/util/crc32.h"

namespace objalloc::util {

namespace {

// Upper bound on a single record's payload: far above anything the
// durability layer writes (a checkpoint shard record is the largest), low
// enough that a corrupted length field cannot drive a multi-gigabyte
// allocation before the CRC check runs.
constexpr uint32_t kMaxPayload = 1u << 30;

}  // namespace

void AppendRecord(uint8_t type, std::string_view payload, std::string* out) {
  OBJALLOC_CHECK_LE(payload.size(), kMaxPayload) << "record payload too large";
  char header[kRecordHeaderSize] = {};
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::memcpy(header, &length, 4);
  header[4] = static_cast<char>(type);
  uint32_t crc = Crc32(header, 8);
  crc = Crc32(payload.data(), payload.size(), crc);
  std::memcpy(header + 8, &crc, 4);
  out->append(header, kRecordHeaderSize);
  out->append(payload.data(), payload.size());
}

bool RecordCursor::Next(RecordView* out) {
  if (done_) return false;
  if (pos_ == buffer_.size()) {
    done_ = true;  // clean end
    return false;
  }
  if (buffer_.size() - pos_ < kRecordHeaderSize) {
    done_ = true;  // torn tail: header cut short
    return false;
  }
  uint32_t length = 0, crc = 0;
  std::memcpy(&length, buffer_.data() + pos_, 4);
  std::memcpy(&crc, buffer_.data() + pos_ + 8, 4);
  if (length > kMaxPayload) {
    // A length this large is never written, so the header bytes are
    // corrupt, not torn: report it rather than silently truncating.
    status_ = Status::Internal("record at offset " + std::to_string(pos_) +
                               " declares absurd length " +
                               std::to_string(length));
    done_ = true;
    return false;
  }
  if (buffer_.size() - pos_ - kRecordHeaderSize < length) {
    done_ = true;  // torn tail: payload cut short
    return false;
  }
  uint32_t actual = Crc32(buffer_.data() + pos_, 8);
  actual = Crc32(buffer_.data() + pos_ + kRecordHeaderSize, length, actual);
  if (actual != crc) {
    status_ = Status::Internal("record at offset " + std::to_string(pos_) +
                               " failed its CRC check");
    done_ = true;
    return false;
  }
  out->type = static_cast<uint8_t>(buffer_[pos_ + 4]);
  out->payload =
      std::string_view(buffer_.data() + pos_ + kRecordHeaderSize, length);
  pos_ += kRecordHeaderSize + length;
  valid_prefix_ = pos_;
  return true;
}

}  // namespace objalloc::util
