// CRC-32 (IEEE 802.3 polynomial, table-driven) for on-disk record
// integrity checks.

#ifndef OBJALLOC_UTIL_CRC32_H_
#define OBJALLOC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace objalloc::util {

// CRC of `size` bytes at `data`; `seed` allows incremental computation
// (pass a previous result).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_CRC32_H_
