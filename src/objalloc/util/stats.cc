#include "objalloc/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "objalloc/util/logging.h"

namespace objalloc::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  OBJALLOC_CHECK_GT(count_, 0);
  return min_;
}

double RunningStats::max() const {
  OBJALLOC_CHECK_GT(count_, 0);
  return max_;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ = new_mean;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean();
  if (count_ > 0) os << " min=" << min_ << " max=" << max_;
  os << " sd=" << stddev();
  return os.str();
}

void PercentileTracker::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double PercentileTracker::Percentile(double q) const {
  OBJALLOC_CHECK(!samples_.empty());
  OBJALLOC_CHECK_GE(q, 0.0);
  OBJALLOC_CHECK_LE(q, 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  if (rank > 0) --rank;
  return samples_[std::min(rank, samples_.size() - 1)];
}

Histogram::Histogram(double lo, double hi, int buckets) : lo_(lo), hi_(hi) {
  OBJALLOC_CHECK_LT(lo, hi);
  OBJALLOC_CHECK_GT(buckets, 0);
  counts_.assign(static_cast<size_t>(buckets), 0);
}

void Histogram::Add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  int idx = static_cast<int>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp(idx, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

std::string Histogram::Render(int bar_width) const {
  std::ostringstream os;
  int64_t max_count = 1;
  for (int64_t c : counts_) max_count = std::max(max_count, c);
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    double b_lo = lo_ + width * static_cast<double>(i);
    int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                               static_cast<double>(max_count) * bar_width);
    os << "[";
    os.width(8);
    os << b_lo << ", ";
    os.width(8);
    os << b_lo + width << ") " << std::string(static_cast<size_t>(bar), '#')
       << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace objalloc::util
