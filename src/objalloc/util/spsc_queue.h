// SpscQueue — a bounded lock-free single-producer / single-consumer ring.
//
// The shard executor (core/shard_executor.h) feeds each shard-owning worker
// through one of these per shard: the serving thread is the only producer
// and the shard's owning worker the only consumer, so the queue needs no
// CAS loops — one release store per side, with cached counter mirrors so
// the common push/pop touches a single shared cache line. FIFO order is
// the executor's determinism backbone: sub-batches of consecutive batches
// drain per shard in exactly the order they were enqueued.
//
// The capacity is exact (a queue built with capacity 3 holds 3 elements,
// never 2), while storage is rounded up to a power of two so the ring
// index is a mask, not a modulo. Counters are monotonically increasing
// 64-bit positions — at one push per nanosecond they wrap after ~584
// years, so wraparound of the *ring* (positions masked into the buffer)
// is exercised constantly and wraparound of the counters never is.
//
// TryPush/TryPop never block and never allocate; blocking, parking, and
// shutdown are the executor's job, not the queue's. T must be trivially
// copyable in spirit (it is copied in and out by value); the executor's
// ShardTask is two 32-bit ints.

#ifndef OBJALLOC_UTIL_SPSC_QUEUE_H_
#define OBJALLOC_UTIL_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(size_t capacity)
      : capacity_(capacity), mask_(RoundUpPow2(capacity) - 1),
        buffer_(mask_ + 1) {
    OBJALLOC_CHECK_GE(capacity, size_t{1});
  }

  // Single-owner resource (the atomics pin it in place).
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return capacity_; }

  // Producer side. False when the queue holds `capacity` elements.
  bool TryPush(const T& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity_) return false;
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. False when the queue is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    *out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Element count as seen from outside both roles: exact while the queue is
  // quiescent, a snapshot otherwise (each side's own Try* is the authority).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  bool EmptyApprox() const { return SizeApprox() == 0; }

 private:
  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::vector<T> buffer_;
  // Producer-owned line: the tail position plus its stale view of head.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  // Consumer-owned line: the head position plus its stale view of tail.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_SPSC_QUEUE_H_
