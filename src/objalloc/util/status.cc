#include "objalloc/util/status.h"

namespace objalloc::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace objalloc::util
