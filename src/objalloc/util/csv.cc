#include "objalloc/util/csv.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "objalloc/util/logging.h"

namespace objalloc::util {

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string FormatDouble(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  OBJALLOC_CHECK(!header_.empty());
}

Table::RowBuilder& Table::RowBuilder::Cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(const char* value) {
  cells_.emplace_back(value);
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(double value, int precision) {
  cells_.push_back(FormatDouble(value, precision));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::Cell(int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_->AddRawRow(std::move(cells_)); }

void Table::AddRawRow(std::vector<std::string> cells) {
  OBJALLOC_CHECK_EQ(cells.size(), header_.size())
      << "row width does not match header";
  rows_.push_back(std::move(cells));
}

void Table::WriteCsv(std::ostream& os) const {
  for (size_t i = 0; i < header_.size(); ++i) {
    if (i != 0) os << ",";
    os << CsvEscape(header_[i]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) os << ",";
      os << CsvEscape(row[i]);
    }
    os << "\n";
  }
}

void Table::WriteAligned(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  write_row(header_);
  size_t rule = 0;
  for (size_t w : widths) rule += w + 2;
  os << std::string(rule, '-') << "\n";
  for (const auto& row : rows_) write_row(row);
}

}  // namespace objalloc::util
