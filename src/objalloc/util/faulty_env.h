// A seeded, deterministic fault-injecting Env — the storage-layer sibling
// of core/fault_injector (DESIGN.md §14). It counts the *data-path*
// operations flowing through it (open, read, write, sync, rename,
// truncate) and fires a scripted fault at a chosen op index, or draws
// per-op faults from a seeded stream at configured rates. Everything else
// (stat, close, mkdir, unlink, directory listing) passes through
// untouched: those either have no data to corrupt or are already
// best-effort in the callers.
//
// Two modes, composable:
//   * Scripted (SetPlan): exactly one fault description — kind, the op
//     index where it starts, and how many consecutive counted ops it
//     covers. `count = 1` models a transient glitch a retry can clear;
//     `kForever` models a persistently bad disk. The error-at-every-op
//     sweep in tests/io_fault_test.cc drives this: a fault-free run counts
//     the ops, then one run per index injects there.
//   * Random-rate (FaultyEnvOptions::*_rate): each counted op
//     independently fails or stalls per a splitmix64 stream; used by
//     bench/durability_chaos to measure throughput and commit tails under
//     a lossy disk.
//
// Determinism: with the same seed, plan, and caller op sequence, the same
// ops fail the same way — which is what lets the sweep assert bit-identical
// outcomes. Thread-safe: op accounting is mutex-guarded (the WAL log
// thread and the serving thread both reach the Env).
//
// Time is virtual by default: SleepMicros advances an internal counter
// instead of sleeping, so backoff-heavy tests cost nothing; set
// `real_time` for benchmarks that measure actual latency under injected
// stalls.

#ifndef OBJALLOC_UTIL_FAULTY_ENV_H_
#define OBJALLOC_UTIL_FAULTY_ENV_H_

#include <cstdint>
#include <mutex>

#include "objalloc/util/env.h"

namespace objalloc::util {

enum class FaultKind : uint8_t {
  kNone = 0,
  // The op fails with EIO (classified transient by util/io; retried).
  kEio,
  // A write/sync fails with ENOSPC (persistent: retries cannot help).
  // On a counted op that is not a write/sync, degrades to kEio.
  kEnospc,
  // A torn write: roughly half the bytes reach the file, then the call
  // reports EIO — the partial-write hazard the WAL retry path must roll
  // back before rewriting. Non-write ops degrade to kEio.
  kTornWrite,
  // A short write: half the bytes are written and *reported* (POSIX allows
  // this); a correct caller loops. Non-write ops degrade to kEio.
  kShortWrite,
  // The read succeeds but one seeded bit of the returned buffer is
  // flipped — the CRC-detection case. Non-read ops degrade to kEio.
  kBitFlipRead,
  // The op stalls for `latency_us`, then proceeds normally.
  kLatency,
};

struct FaultPlan {
  static constexpr uint64_t kNever = ~uint64_t{0};
  static constexpr uint64_t kForever = ~uint64_t{0};

  // Counted-op index at which the fault starts firing (kNever disarms).
  uint64_t op_index = kNever;
  FaultKind kind = FaultKind::kNone;
  // Consecutive counted ops (from op_index) the fault covers; kForever
  // models a dead disk that never recovers.
  uint64_t count = 1;
  uint64_t latency_us = 0;  // for kLatency
};

struct FaultyEnvOptions {
  uint64_t seed = 1;
  // Random-rate mode: independent per-op probabilities on counted ops.
  double error_rate = 0;   // EIO on read/write/sync
  double enospc_rate = 0;  // ENOSPC on write/sync
  double slow_rate = 0;    // latency spike of slow_us
  uint64_t slow_us = 0;
  // False (default): SleepMicros/latency advance a virtual clock only.
  // True: delegate to the base Env (real sleeps; benchmark mode).
  bool real_time = false;
};

class FaultyEnv : public Env {
 public:
  explicit FaultyEnv(FaultyEnvOptions options = {}, Env* base = nullptr);

  // Replaces the scripted fault plan (thread-safe; takes effect on the next
  // counted op).
  void SetPlan(const FaultPlan& plan);
  // "The disk was replaced": no scripted fault fires from here on.
  void ClearPlan() { SetPlan(FaultPlan{}); }

  // Replaces the random-rate profile mid-flight (thread-safe). The chaos
  // bench mounts on a healthy disk — rates zero — then turns the rates on
  // once durability is attached: a disk that ages in service, not one that
  // was broken at mount. Determinism holds as long as the call sits at a
  // deterministic point in the caller's op sequence.
  void SetRates(double error_rate, double enospc_rate, double slow_rate,
                uint64_t slow_us);

  // Counted data-path ops so far (a fault-free run of a workload measures
  // the sweep space).
  uint64_t op_count() const;
  uint64_t faults_injected() const;

  int Open(const char* path, int flags, int mode) override;
  ssize_t Read(int fd, void* buf, size_t count) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  int Fsync(int fd) override;
  int Fdatasync(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Truncate(const char* path, int64_t size) override;
  int Ftruncate(int fd, int64_t size) override;

  uint64_t NowMicros() override;
  void SleepMicros(uint64_t micros) override;

 private:
  enum class OpClass : uint8_t { kOpen, kRead, kWrite, kSync, kOther };

  // Counts the op and decides its fate. Returns kNone for a clean op;
  // otherwise the kind (already specialized to the op class) and, for
  // kLatency, the stall length. Also hands out a seeded draw for the
  // bit-flip position.
  FaultKind NextOp(OpClass op, uint64_t* latency_us, uint64_t* draw);
  void Stall(uint64_t micros);

  FaultyEnvOptions options_;
  Env* base_;

  mutable std::mutex mu_;
  FaultPlan plan_;
  uint64_t ops_ = 0;
  uint64_t faults_ = 0;
  uint64_t rng_;  // splitmix64 state for rate draws and flip positions
  uint64_t virtual_now_us_ = 0;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_FAULTY_ENV_H_
