// Shared-memory parallelism for the compute layers (exact-OPT DP sweeps,
// analysis grids, workload ensembles).
//
// The model is deliberately small: one lazily-created global thread pool and
// a blocking ParallelFor with *static chunking*. Callers split [begin, end)
// into at most `threads` contiguous chunks of at least `grain` iterations and
// run `body(chunk_begin, chunk_end)` on each. Which thread executes which
// chunk is unspecified; the chunk boundaries are not. The determinism
// contract therefore is: a loop body that writes only to indices in its own
// chunk (and reads only state fixed before the loop) produces bit-identical
// results for every thread count, including 1.
//
// Nested ParallelFor calls from inside a pool worker run serially inline, so
// outer-level parallel drivers (ensembles, grids) compose with inner-level
// parallel kernels (the DP) without deadlock or oversubscription.

#ifndef OBJALLOC_UTIL_PARALLEL_H_
#define OBJALLOC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace objalloc::util {

// Per-call thread-count override; 0 means "use the global default".
struct ParallelOptions {
  int threads = 0;
};

// The global default thread count: SetGlobalThreads() if set, else the
// OBJALLOC_THREADS environment variable, else hardware_concurrency().
int GlobalThreads();

// Overrides the global default; 0 restores the automatic choice.
void SetGlobalThreads(int threads);

// RAII override of the global default, for tests and benchmarks.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int saved_;
};

// Runs `body(chunk_begin, chunk_end)` over disjoint contiguous chunks that
// partition [begin, end). Blocks until every chunk has finished. Falls back
// to one inline call of `body(begin, end)` when the range is smaller than
// two grains, when the effective thread count is 1, or when invoked from
// inside a pool worker. Rethrows the first exception thrown by any chunk.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelOptions& options = {});

// True when the calling thread is a pool worker (useful for asserting that
// code expected to stay serial really is).
bool InParallelWorker();

// Marks the calling thread as a pool-style worker for the lifetime of the
// thread, so nested ParallelFor calls run serially inline. The shard
// executor's long-lived workers (core/shard_executor.h) call this once at
// startup — they are the parallelism; anything they invoke must not fan out
// again.
void MarkParallelWorker();

// Physical hardware concurrency of this host (>= 1), independent of
// OBJALLOC_THREADS and SetGlobalThreads. Benchmarks use it to tell a real
// speedup measurement from time-slicing on an undersized machine.
int HardwareConcurrency();

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_PARALLEL_H_
