// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// experiments are reproducible; benches print the seeds they use. The
// generator is xoshiro256** seeded via splitmix64 (the reference seeding
// procedure), which is fast, high-quality, and has a tiny state.

#ifndef OBJALLOC_UTIL_RNG_H_
#define OBJALLOC_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace objalloc::util {

// Stateless splitmix64 step; used for seeding and for hashing seeds.
uint64_t SplitMix64(uint64_t& state);

// Deterministic sub-seed for component `index` of a run seeded by `base`.
// Parallel drivers (ensemble runners, grid sweeps, restart searches) hand
// each independent unit SubSeed(base, unit_index) so the result stream of a
// unit depends only on (base, index), never on thread scheduling.
uint64_t SubSeed(uint64_t base, uint64_t index);

// xoshiro256** PRNG. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  // unbiased multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  // Samples an index according to non-negative `weights` (not necessarily
  // normalized). Requires at least one strictly positive weight.
  size_t NextWeighted(const std::vector<double>& weights);

  // Returns a fresh generator whose stream is independent of this one;
  // useful for handing sub-seeds to parallel components.
  Rng Fork();

 private:
  uint64_t state_[4];
};

// Zipf(n, theta) sampler over {0, ..., n-1} using the standard CDF-inversion
// with precomputed harmonic weights. theta = 0 is uniform; larger theta is
// more skewed.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);

  size_t Sample(Rng& rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_RNG_H_
