#include "objalloc/util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

namespace {

constexpr int kMaxThreads = 256;

thread_local bool t_in_worker = false;

int HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

int EnvThreads() {
  static const int env = [] {
    const char* value = std::getenv("OBJALLOC_THREADS");
    if (value == nullptr || *value == '\0') return 0;
    // "hw" explicitly requests hardware concurrency — the spelling CI uses
    // to mean "whatever this runner has" without baking in a count.
    if (std::strcmp(value, "hw") == 0) return HardwareThreads();
    char* end = nullptr;
    long parsed = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || parsed <= 0) return 0;
    return static_cast<int>(std::min<long>(parsed, kMaxThreads));
  }();
  return env;
}

std::atomic<int> g_threads{0};

// One ParallelFor invocation. Chunk boundaries are fixed up front (static
// chunking); participants claim chunk *indices* via an atomic counter, which
// affects load balance only, never results. Helpers hold the block through a
// shared_ptr so a late-waking worker never touches a dead frame.
struct ForJob {
  size_t begin = 0;
  size_t chunk = 0;       // iterations per chunk (last chunk may be short)
  size_t end = 0;
  int num_chunks = 0;
  const std::function<void(size_t, size_t)>* body = nullptr;

  std::atomic<int> next{0};
  std::atomic<int> completed{0};
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;

  // Runs chunks until none are left. Returns after contributing the last
  // completion signal if this call finished the final chunk.
  void Work() {
    for (;;) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t lo = begin + chunk * static_cast<size_t>(c);
      const size_t hi = std::min(end, lo + chunk);
      try {
        (*body)(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          num_chunks) {
        std::lock_guard<std::mutex> lock(mutex);
        done.notify_all();
      }
    }
  }
};

// Global pool. Created on first parallel call and intentionally leaked so
// worker lifetime never races static destruction.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool;
    return *pool;
  }

  void Submit(int helpers, const std::shared_ptr<ForJob>& job) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      EnsureWorkersLocked(helpers);
      for (int i = 0; i < helpers; ++i) queue_.push_back(job);
    }
    wake_.notify_all();
  }

 private:
  ThreadPool() = default;

  void EnsureWorkersLocked(int wanted) {
    wanted = std::min(wanted, kMaxThreads);
    while (static_cast<int>(workers_.size()) < wanted) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    t_in_worker = true;
    for (;;) {
      std::shared_ptr<ForJob> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return !queue_.empty(); });
        job = std::move(queue_.front());
        queue_.pop_front();
      }
      job->Work();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<ForJob>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace

int GlobalThreads() {
  const int t = g_threads.load(std::memory_order_relaxed);
  if (t > 0) return t;
  const int env = EnvThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetGlobalThreads(int threads) {
  OBJALLOC_CHECK_GE(threads, 0);
  g_threads.store(std::min(threads, kMaxThreads),
                  std::memory_order_relaxed);
}

ScopedThreads::ScopedThreads(int threads)
    : saved_(g_threads.load(std::memory_order_relaxed)) {
  SetGlobalThreads(threads);
}

ScopedThreads::~ScopedThreads() {
  g_threads.store(saved_, std::memory_order_relaxed);
}

bool InParallelWorker() { return t_in_worker; }

void MarkParallelWorker() { t_in_worker = true; }

int HardwareConcurrency() { return HardwareThreads(); }

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& body,
                 const ParallelOptions& options) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t count = end - begin;
  const int threads =
      options.threads > 0 ? std::min(options.threads, kMaxThreads)
                          : GlobalThreads();
  const size_t max_chunks = (count + grain - 1) / grain;
  const int num_chunks =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(threads),
                                        max_chunks));
  if (num_chunks <= 1 || t_in_worker) {
    body(begin, end);
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->begin = begin;
  job->end = end;
  job->chunk = (count + static_cast<size_t>(num_chunks) - 1) /
               static_cast<size_t>(num_chunks);
  job->num_chunks = num_chunks;
  job->body = &body;

  ThreadPool::Instance().Submit(num_chunks - 1, job);
  job->Work();  // the caller is a participant, not just a waiter

  {
    std::unique_lock<std::mutex> lock(job->mutex);
    job->done.wait(lock, [&job] {
      return job->completed.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
    if (job->error) std::rethrow_exception(job->error);
  }
}

}  // namespace objalloc::util
