#include "objalloc/util/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace objalloc::util {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// fsyncs the directory containing `path` so a rename inside it is durable.
// Best effort: some filesystems refuse O_RDONLY directory fsync; the rename
// itself already happened, so a failure here only weakens durability, not
// consistency.
void SyncContainingDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status WriteAll(int fd, std::string_view data, const std::string& path) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write failed for", path));
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("cannot open", path));
  }
  std::string data;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string message = Errno("read failed for", path);
      ::close(fd);
      return Status::Internal(message);
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return data;
}

StatusOr<FileReader> FileReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("cannot open", path));
  }
  return FileReader(fd, path);
}

FileReader::FileReader(FileReader&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

FileReader::~FileReader() { Close(); }

StatusOr<size_t> FileReader::Read(char* buf, size_t n) {
  while (true) {
    const ssize_t got = ::read(fd_, buf, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("read failed for", path_));
    }
    return static_cast<size_t>(got);
  }
}

Status FileReader::ReadExact(char* buf, size_t n, bool* eof) {
  if (eof != nullptr) *eof = false;
  size_t filled = 0;
  while (filled < n) {
    auto got = Read(buf + filled, n - filled);
    if (!got.ok()) return got.status();
    if (*got == 0) {
      if (filled == 0 && eof != nullptr) {
        *eof = true;
        return Status::Ok();
      }
      return Status::Internal("unexpected end of file in " + path_);
    }
    filled += *got;
  }
  return Status::Ok();
}

void FileReader::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<AtomicFileWriter> AtomicFileWriter::Open(const std::string& path) {
  auto file = AppendFile::Open(path + ".tmp", /*truncate_to=*/0);
  if (!file.ok()) return file.status();
  AtomicFileWriter writer;
  writer.file_ = std::move(*file);
  writer.final_path_ = path;
  return writer;
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    file_ = std::move(other.file_);
    final_path_ = std::move(other.final_path_);
    committed_ = other.committed_;
    other.committed_ = true;  // the moved-from shell owns nothing
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

Status AtomicFileWriter::Commit() {
  if (!file_.is_open()) {
    return Status::Internal("atomic writer: commit without an open file");
  }
  OBJALLOC_RETURN_IF_ERROR(file_.Sync());
  const std::string temp = file_.path();
  file_.Close();
  if (::rename(temp.c_str(), final_path_.c_str()) != 0) {
    return Status::Internal(Errno("rename failed for", final_path_));
  }
  committed_ = true;
  SyncContainingDir(final_path_);
  return Status::Ok();
}

void AtomicFileWriter::Abandon() {
  if (committed_ || !file_.is_open()) return;
  const std::string temp = file_.path();
  file_.Close();
  ::unlink(temp.c_str());
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string temp = path + ".tmp";
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::Internal(Errno("cannot open", temp));
  Status status = WriteAll(fd, data, temp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::Internal(Errno("fsync failed for", temp));
  }
  ::close(fd);
  if (!status.ok()) {
    ::unlink(temp.c_str());
    return status;
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    const Status error = Status::Internal(Errno("rename failed for", path));
    ::unlink(temp.c_str());
    return error;
  }
  SyncContainingDir(path);
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("unlink failed for", path));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

StatusOr<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::Internal(Errno("stat failed for", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return Status::Internal(Errno("mkdir failed for", path));
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return Status::Internal(Errno("opendir failed for", dir));
  }
  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("truncate failed for", path));
  }
  return Status::Ok();
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path,
                                      uint64_t truncate_to) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Status::Internal(Errno("cannot open", path));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status error = Status::Internal(Errno("fstat failed for", path));
    ::close(fd);
    return error;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (truncate_to != kNoTruncate && truncate_to < size) {
    if (::ftruncate(fd, static_cast<off_t>(truncate_to)) != 0) {
      const Status error = Status::Internal(Errno("ftruncate failed for", path));
      ::close(fd);
      return error;
    }
    size = truncate_to;
  }
  if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
    const Status error = Status::Internal(Errno("lseek failed for", path));
    ::close(fd);
    return error;
  }
  return AppendFile(fd, size, path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), offset_(other.offset_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.offset_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  OBJALLOC_RETURN_IF_ERROR(WriteAll(fd_, data, path_));
  offset_ += data.size();
  return Status::Ok();
}

Status AppendFile::Sync(SyncMode mode) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  switch (mode) {
    case SyncMode::kFsync:
      if (::fsync(fd_) != 0) {
        return Status::Internal(Errno("fsync failed for", path_));
      }
      return Status::Ok();
    case SyncMode::kFdatasync:
      if (::fdatasync(fd_) != 0) {
        return Status::Internal(Errno("fdatasync failed for", path_));
      }
      return Status::Ok();
    case SyncMode::kNone:
      return Status::Ok();
  }
  return Status::Internal("unknown sync mode");
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace objalloc::util
