#include "objalloc/util/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace objalloc::util {

namespace {

Env* Resolve(Env* env) { return env != nullptr ? env : CurrentEnv(); }

// errno → Status with the transient/persistent split the retry layer keys
// off (env.h): the EIO class is kUnavailable (a retry may clear it);
// everything persistent is kInternal. Callers special-case ENOENT→NotFound
// where a missing file is a distinct outcome.
Status IoError(const std::string& what, const std::string& path, int err) {
  const std::string message = what + " " + path + ": " + std::strerror(err);
  switch (err) {
    case EIO:
    case EAGAIN:
    case EBUSY:
    case ETIMEDOUT:
    case ENXIO:
      return Status::Unavailable(message);
    default:
      return Status::Internal(message);
  }
}

// fsyncs the directory containing `path` so a rename inside it is durable.
// Best effort: some filesystems refuse O_RDONLY directory fsync; the rename
// itself already happened, so a failure here only weakens durability, not
// consistency.
void SyncContainingDir(const std::string& path, Env* env) {
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = env->Open(dir.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return;
  env->Fsync(fd);
  env->Close(fd);
}

Status WriteAll(int fd, std::string_view data, const std::string& path,
                Env* env) {
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    const ssize_t n = env->Write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write failed for", path, errno);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path, Env* env) {
  env = Resolve(env);
  const int fd = env->Open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IoError("cannot open", path, errno);
  }
  std::string data;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = env->Read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status error = IoError("read failed for", path, errno);
      env->Close(fd);
      return error;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  env->Close(fd);
  return data;
}

StatusOr<FileReader> FileReader::Open(const std::string& path, Env* env) {
  env = Resolve(env);
  const int fd = env->Open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IoError("cannot open", path, errno);
  }
  return FileReader(fd, path, env);
}

FileReader::FileReader(FileReader&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), env_(other.env_) {
  other.fd_ = -1;
}

FileReader& FileReader::operator=(FileReader&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    env_ = other.env_;
    other.fd_ = -1;
  }
  return *this;
}

FileReader::~FileReader() { Close(); }

StatusOr<size_t> FileReader::Read(char* buf, size_t n) {
  while (true) {
    const ssize_t got = env_->Read(fd_, buf, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return IoError("read failed for", path_, errno);
    }
    return static_cast<size_t>(got);
  }
}

Status FileReader::ReadExact(char* buf, size_t n, bool* eof) {
  if (eof != nullptr) *eof = false;
  size_t filled = 0;
  while (filled < n) {
    auto got = Read(buf + filled, n - filled);
    if (!got.ok()) return got.status();
    if (*got == 0) {
      if (filled == 0 && eof != nullptr) {
        *eof = true;
        return Status::Ok();
      }
      return Status::Internal("unexpected end of file in " + path_);
    }
    filled += *got;
  }
  return Status::Ok();
}

void FileReader::Close() {
  if (fd_ >= 0) {
    env_->Close(fd_);
    fd_ = -1;
  }
}

FileStreamBuf::int_type FileStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  if (!reader_.is_open() || !status_.ok()) return traits_type::eof();
  auto got = reader_.Read(buffer_, sizeof(buffer_));
  if (!got.ok()) {
    status_ = got.status();
    return traits_type::eof();
  }
  if (*got == 0) return traits_type::eof();
  setg(buffer_, buffer_, buffer_ + *got);
  return traits_type::to_int_type(*gptr());
}

StatusOr<AtomicFileWriter> AtomicFileWriter::Open(const std::string& path,
                                                  Env* env) {
  env = Resolve(env);
  auto file = AppendFile::Open(path + ".tmp", /*truncate_to=*/0, env);
  if (!file.ok()) return file.status();
  AtomicFileWriter writer;
  writer.file_ = std::move(*file);
  writer.final_path_ = path;
  writer.env_ = env;
  return writer;
}

AtomicFileWriter& AtomicFileWriter::operator=(
    AtomicFileWriter&& other) noexcept {
  if (this != &other) {
    Abandon();
    file_ = std::move(other.file_);
    final_path_ = std::move(other.final_path_);
    env_ = other.env_;
    committed_ = other.committed_;
    other.committed_ = true;  // the moved-from shell owns nothing
  }
  return *this;
}

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

Status AtomicFileWriter::Commit() {
  if (!file_.is_open()) {
    return Status::Internal("atomic writer: commit without an open file");
  }
  OBJALLOC_RETURN_IF_ERROR(file_.Sync());
  const std::string temp = file_.path();
  file_.Close();
  if (env_->Rename(temp.c_str(), final_path_.c_str()) != 0) {
    return IoError("rename failed for", final_path_, errno);
  }
  committed_ = true;
  SyncContainingDir(final_path_, env_);
  return Status::Ok();
}

void AtomicFileWriter::Abandon() {
  if (committed_ || !file_.is_open()) return;
  const std::string temp = file_.path();
  file_.Close();
  env_->Unlink(temp.c_str());
}

Status WriteFileAtomic(const std::string& path, std::string_view data,
                       Env* env) {
  env = Resolve(env);
  const std::string temp = path + ".tmp";
  const int fd = env->Open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("cannot open", temp, errno);
  Status status = WriteAll(fd, data, temp, env);
  if (status.ok() && env->Fsync(fd) != 0) {
    status = IoError("fsync failed for", temp, errno);
  }
  env->Close(fd);
  if (!status.ok()) {
    env->Unlink(temp.c_str());
    return status;
  }
  if (env->Rename(temp.c_str(), path.c_str()) != 0) {
    const Status error = IoError("rename failed for", path, errno);
    env->Unlink(temp.c_str());
    return error;
  }
  SyncContainingDir(path, env);
  return Status::Ok();
}

Status RemoveFile(const std::string& path, Env* env) {
  env = Resolve(env);
  if (env->Unlink(path.c_str()) != 0 && errno != ENOENT) {
    return IoError("unlink failed for", path, errno);
  }
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to, Env* env) {
  env = Resolve(env);
  if (env->Rename(from.c_str(), to.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + from);
    return IoError("rename failed for", to, errno);
  }
  SyncContainingDir(to, env);
  return Status::Ok();
}

bool FileExists(const std::string& path, Env* env) {
  struct stat st;
  return Resolve(env)->Stat(path.c_str(), &st) == 0;
}

StatusOr<uint64_t> FileSize(const std::string& path, Env* env) {
  struct stat st;
  if (Resolve(env)->Stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return IoError("stat failed for", path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status EnsureDir(const std::string& path, Env* env) {
  env = Resolve(env);
  if (env->Mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return IoError("mkdir failed for", path, errno);
}

StatusOr<std::vector<std::string>> ListDir(const std::string& dir, Env* env) {
  std::vector<std::string> names;
  if (Resolve(env)->ListDirNames(dir.c_str(), &names) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such directory: " + dir);
    return IoError("opendir failed for", dir, errno);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status TruncateFile(const std::string& path, uint64_t size, Env* env) {
  if (Resolve(env)->Truncate(path.c_str(), static_cast<int64_t>(size)) != 0) {
    return IoError("truncate failed for", path, errno);
  }
  return Status::Ok();
}

StatusOr<AppendFile> AppendFile::Open(const std::string& path,
                                      uint64_t truncate_to, Env* env) {
  env = Resolve(env);
  const int fd = env->Open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return IoError("cannot open", path, errno);
  struct stat st;
  if (env->Fstat(fd, &st) != 0) {
    const Status error = IoError("fstat failed for", path, errno);
    env->Close(fd);
    return error;
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (truncate_to != kNoTruncate && truncate_to < size) {
    if (env->Ftruncate(fd, static_cast<int64_t>(truncate_to)) != 0) {
      const Status error = IoError("ftruncate failed for", path, errno);
      env->Close(fd);
      return error;
    }
    size = truncate_to;
  }
  if (env->Lseek(fd, static_cast<int64_t>(size), SEEK_SET) < 0) {
    const Status error = IoError("lseek failed for", path, errno);
    env->Close(fd);
    return error;
  }
  return AppendFile(fd, size, path, env);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_),
      offset_(other.offset_),
      path_(std::move(other.path_)),
      env_(other.env_) {
  other.fd_ = -1;
  other.offset_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    offset_ = other.offset_;
    path_ = std::move(other.path_);
    env_ = other.env_;
    other.fd_ = -1;
    other.offset_ = 0;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  OBJALLOC_RETURN_IF_ERROR(WriteAll(fd_, data, path_, env_));
  offset_ += data.size();
  return Status::Ok();
}

Status AppendFile::Sync(SyncMode mode) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  switch (mode) {
    case SyncMode::kFsync:
      if (env_->Fsync(fd_) != 0) {
        return IoError("fsync failed for", path_, errno);
      }
      return Status::Ok();
    case SyncMode::kFdatasync:
      if (env_->Fdatasync(fd_) != 0) {
        return IoError("fdatasync failed for", path_, errno);
      }
      return Status::Ok();
    case SyncMode::kNone:
      return Status::Ok();
  }
  return Status::Internal("unknown sync mode");
}

Status AppendFile::TruncateTo(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("append file not open");
  if (size > offset_) {
    return Status::InvalidArgument("truncate past the append offset of " +
                                   path_);
  }
  // A failed (possibly partial) write leaves the kernel file position — and
  // possibly the file length — past `offset_`; both are reset together so
  // the next Append lands exactly at the last good byte.
  if (env_->Ftruncate(fd_, static_cast<int64_t>(size)) != 0) {
    return IoError("ftruncate failed for", path_, errno);
  }
  if (env_->Lseek(fd_, static_cast<int64_t>(size), SEEK_SET) < 0) {
    return IoError("lseek failed for", path_, errno);
  }
  offset_ = size;
  return Status::Ok();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    env_->Close(fd_);
    fd_ = -1;
  }
}

}  // namespace objalloc::util
