// ProcessorSet: a set of processor ids backed by a 64-bit mask.
//
// The paper's model and the offline dynamic program manipulate sets of
// processors (allocation schemes, execution sets) constantly; a bitmask gives
// O(1) union/intersection/difference and popcount-based cardinality. The
// library therefore supports up to 64 processors, which far exceeds the sizes
// for which the exact offline OPT is tractable.

#ifndef OBJALLOC_UTIL_PROCESSOR_SET_H_
#define OBJALLOC_UTIL_PROCESSOR_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::util {

// Identifies a processor in the distributed system; ids are 0-based.
using ProcessorId = int;

inline constexpr int kMaxProcessors = 64;

class ProcessorSet {
 public:
  constexpr ProcessorSet() : mask_(0) {}
  constexpr explicit ProcessorSet(uint64_t mask) : mask_(mask) {}
  ProcessorSet(std::initializer_list<ProcessorId> ids) : mask_(0) {
    for (ProcessorId id : ids) Insert(id);
  }

  // The set {id}.
  static ProcessorSet Singleton(ProcessorId id) {
    return ProcessorSet().WithInserted(id);
  }
  // The set {0, 1, ..., n-1}.
  static ProcessorSet FirstN(int n) {
    OBJALLOC_CHECK_GE(n, 0);
    OBJALLOC_CHECK_LE(n, kMaxProcessors);
    if (n == kMaxProcessors) return ProcessorSet(~uint64_t{0});
    return ProcessorSet((uint64_t{1} << n) - 1);
  }

  bool Contains(ProcessorId id) const { return (mask_ >> Checked(id)) & 1; }
  bool Empty() const { return mask_ == 0; }
  int Size() const { return std::popcount(mask_); }
  uint64_t mask() const { return mask_; }

  void Insert(ProcessorId id) { mask_ |= uint64_t{1} << Checked(id); }
  void Erase(ProcessorId id) { mask_ &= ~(uint64_t{1} << Checked(id)); }
  void Clear() { mask_ = 0; }

  ProcessorSet WithInserted(ProcessorId id) const {
    ProcessorSet s = *this;
    s.Insert(id);
    return s;
  }
  ProcessorSet WithErased(ProcessorId id) const {
    ProcessorSet s = *this;
    s.Erase(id);
    return s;
  }

  // Set algebra.
  ProcessorSet Union(ProcessorSet other) const {
    return ProcessorSet(mask_ | other.mask_);
  }
  ProcessorSet Intersect(ProcessorSet other) const {
    return ProcessorSet(mask_ & other.mask_);
  }
  ProcessorSet Minus(ProcessorSet other) const {
    return ProcessorSet(mask_ & ~other.mask_);
  }
  bool Intersects(ProcessorSet other) const {
    return (mask_ & other.mask_) != 0;
  }
  bool IsSubsetOf(ProcessorSet other) const {
    return (mask_ & ~other.mask_) == 0;
  }

  // Smallest member; the set must be non-empty.
  ProcessorId First() const {
    OBJALLOC_CHECK(!Empty());
    return std::countr_zero(mask_);
  }

  // Largest member; the set must be non-empty.
  ProcessorId Last() const {
    OBJALLOC_CHECK(!Empty());
    return kMaxProcessors - 1 - std::countl_zero(mask_);
  }

  // k-th smallest member (0-based); requires k < Size().
  ProcessorId Nth(int k) const {
    OBJALLOC_CHECK_GE(k, 0);
    OBJALLOC_CHECK_LT(k, Size());
    uint64_t m = mask_;
    while (k-- > 0) m &= m - 1;
    return std::countr_zero(m);
  }

  // Allocation-free iteration over members in increasing order:
  //   for (ProcessorId id : set) ...
  class iterator {
   public:
    using value_type = ProcessorId;
    using difference_type = std::ptrdiff_t;

    constexpr explicit iterator(uint64_t remaining)
        : remaining_(remaining) {}
    ProcessorId operator*() const { return std::countr_zero(remaining_); }
    iterator& operator++() {
      remaining_ &= remaining_ - 1;  // clear the lowest set bit
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(iterator a, iterator b) {
      return a.remaining_ == b.remaining_;
    }
    friend bool operator!=(iterator a, iterator b) {
      return a.remaining_ != b.remaining_;
    }

   private:
    uint64_t remaining_;
  };

  iterator begin() const { return iterator(mask_); }
  iterator end() const { return iterator(0); }

  // Member ids in increasing order. Allocates; hot loops should iterate the
  // set directly instead.
  std::vector<ProcessorId> ToVector() const {
    std::vector<ProcessorId> out;
    out.reserve(static_cast<size_t>(Size()));
    for (ProcessorId id : *this) out.push_back(id);
    return out;
  }

  // "{0,3,5}" rendering for logs and test failures.
  std::string ToString() const {
    std::string out = "{";
    bool first = true;
    for (ProcessorId id : *this) {
      if (!first) out += ",";
      out += std::to_string(id);
      first = false;
    }
    out += "}";
    return out;
  }

  friend bool operator==(ProcessorSet a, ProcessorSet b) {
    return a.mask_ == b.mask_;
  }
  friend bool operator!=(ProcessorSet a, ProcessorSet b) {
    return a.mask_ != b.mask_;
  }

 private:
  static ProcessorId Checked(ProcessorId id) {
    OBJALLOC_CHECK_GE(id, 0);
    OBJALLOC_CHECK_LT(id, kMaxProcessors);
    return id;
  }

  uint64_t mask_;
};

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_PROCESSOR_SET_H_
