// Minimal logging and invariant-checking support.
//
// OBJALLOC_CHECK(cond) aborts with a message when `cond` is false. It is used
// for *programming errors* (broken invariants); fallible operations driven by
// user input return util::Status instead (see status.h).

#ifndef OBJALLOC_UTIL_LOGGING_H_
#define OBJALLOC_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace objalloc::util {

// Terminates the process after printing `message` with source location.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);

namespace internal_logging {

// Accumulates a failure message via operator<< and aborts on destruction.
// Usage: OBJALLOC_CHECK(x > 0) << "x was " << x;
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* condition)
      : file_(file), line_(line) {
    stream_ << "CHECK failed: " << condition << " ";
  }

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace objalloc::util

#define OBJALLOC_CHECK(condition)                                       \
  if (condition) {                                                      \
  } else /* NOLINT */                                                   \
    ::objalloc::util::internal_logging::CheckMessageBuilder(__FILE__,   \
                                                            __LINE__,   \
                                                            #condition)

#define OBJALLOC_CHECK_EQ(a, b) \
  OBJALLOC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define OBJALLOC_CHECK_NE(a, b) \
  OBJALLOC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define OBJALLOC_CHECK_LE(a, b) \
  OBJALLOC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OBJALLOC_CHECK_LT(a, b) \
  OBJALLOC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define OBJALLOC_CHECK_GE(a, b) \
  OBJALLOC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "
#define OBJALLOC_CHECK_GT(a, b) \
  OBJALLOC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // OBJALLOC_UTIL_LOGGING_H_
