// Tiny CSV / fixed-width table writer used by the bench harnesses to emit the
// paper's tables and figure series in machine- and human-readable form.

#ifndef OBJALLOC_UTIL_CSV_H_
#define OBJALLOC_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace objalloc::util {

// Accumulates rows of string cells; renders as CSV or an aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Convenience: cells may be added as strings or numerics.
  class RowBuilder {
   public:
    explicit RowBuilder(Table* table) : table_(table) {}
    RowBuilder& Cell(const std::string& value);
    RowBuilder& Cell(const char* value);
    RowBuilder& Cell(double value, int precision = 4);
    RowBuilder& Cell(int64_t value);
    RowBuilder& Cell(int value) { return Cell(static_cast<int64_t>(value)); }
    ~RowBuilder();

    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table* table_;
    std::vector<std::string> cells_;
  };

  RowBuilder AddRow() { return RowBuilder(this); }
  void AddRawRow(std::vector<std::string> cells);

  size_t num_rows() const { return rows_.size(); }

  // RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  void WriteCsv(std::ostream& os) const;
  // Space-aligned table with a header rule, for terminal output.
  void WriteAligned(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (no trailing-zero stripping).
std::string FormatDouble(double value, int precision);

}  // namespace objalloc::util

#endif  // OBJALLOC_UTIL_CSV_H_
