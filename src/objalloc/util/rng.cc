#include "objalloc/util/rng.h"

#include <algorithm>
#include <cmath>

#include "objalloc/util/logging.h"

namespace objalloc::util {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t SubSeed(uint64_t base, uint64_t index) {
  // Two dependent splitmix steps decorrelate nearby (base, index) pairs.
  uint64_t state = base ^ (index * 0x9e3779b97f4a7c15ULL);
  uint64_t first = SplitMix64(state);
  state ^= first;
  return SplitMix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  OBJALLOC_CHECK_GT(bound, 0u);
  // Lemire's method: multiply-high with rejection of the biased low range.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  OBJALLOC_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    OBJALLOC_CHECK_GE(w, 0.0);
    total += w;
  }
  OBJALLOC_CHECK_GT(total, 0.0) << "all weights zero";
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(size_t n, double theta) {
  OBJALLOC_CHECK_GT(n, 0u);
  OBJALLOC_CHECK_GE(theta, 0.0);
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace objalloc::util
