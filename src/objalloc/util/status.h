// Status / StatusOr: exception-free error propagation for fallible public
// APIs (configuration validation, trace parsing, ...). Modeled on the
// absl::Status / rocksdb::Status idiom.

#ifndef OBJALLOC_UTIL_STATUS_H_
#define OBJALLOC_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "objalloc/util/logging.h"

namespace objalloc::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kUnavailable = 7,
  kTimeout = 8,
  kOverloaded = 9,
};

// Returns a stable human-readable name for `code` ("OK", "INVALID_ARGUMENT"...).
const char* StatusCodeToString(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // Transient refusal: the system cannot serve the request *now* (too few
  // live processors to preserve t-availability); retrying after recovery
  // can succeed, unlike the permanent-error codes above.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // The request's deadline elapsed before it was served (it was never
  // applied — a retry with a fresh deadline is safe).
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  // Load shedding: an admission budget (in-flight requests, shard-queue
  // depth, WAL backlog) refused the request *before* any state changed.
  // Retrying after backing off can succeed.
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

// Rejection taxonomy (DESIGN.md §15). Admission rejects fall in two
// classes, and wire replies and library errors agree on them:
//
//   * transient — the request was refused *before* any state changed and a
//     retry (after backoff / recovery / a fresh deadline) can succeed:
//     kUnavailable (too few live processors, degraded durability),
//     kOverloaded (an admission budget shed it), kTimeout (its deadline
//     elapsed while queued).
//   * caller error — the request itself is wrong and retrying verbatim
//     cannot help: kInvalidArgument, kNotFound, kOutOfRange,
//     kFailedPrecondition, kUnimplemented.
//
// kInternal is neither: it reports a broken invariant, not a rejection.
inline bool IsTransientRejection(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kTimeout ||
         code == StatusCode::kOverloaded;
}
inline bool IsTransientRejection(const Status& status) {
  return IsTransientRejection(status.code());
}
inline bool IsCallerError(StatusCode code) {
  return code == StatusCode::kInvalidArgument ||
         code == StatusCode::kNotFound || code == StatusCode::kOutOfRange ||
         code == StatusCode::kFailedPrecondition ||
         code == StatusCode::kUnimplemented;
}
inline bool IsCallerError(const Status& status) {
  return IsCallerError(status.code());
}

// A value or an error. Accessing the value of a non-OK StatusOr is a fatal
// programming error.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so callers can `return value;` / `return status;`.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    OBJALLOC_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    OBJALLOC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    OBJALLOC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    OBJALLOC_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace objalloc::util

// Propagates a non-OK Status from an expression, absl-style.
#define OBJALLOC_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::objalloc::util::Status _status = (expr);     \
    if (!_status.ok()) return _status;             \
  } while (false)

#endif  // OBJALLOC_UTIL_STATUS_H_
