#include "objalloc/workload/uniform.h"

#include "objalloc/util/csv.h"
#include "objalloc/util/logging.h"

namespace objalloc::workload {

UniformWorkload::UniformWorkload(double read_ratio) : read_ratio_(read_ratio) {
  OBJALLOC_CHECK_GE(read_ratio, 0.0);
  OBJALLOC_CHECK_LE(read_ratio, 1.0);
}

std::string UniformWorkload::name() const {
  return "uniform(r=" + util::FormatDouble(read_ratio_, 2) + ")";
}

Schedule UniformWorkload::Generate(int num_processors, size_t length,
                                   uint64_t seed) const {
  util::Rng rng(seed);
  Schedule schedule(num_processors);
  for (size_t k = 0; k < length; ++k) {
    auto p = static_cast<util::ProcessorId>(
        rng.NextBounded(static_cast<uint64_t>(num_processors)));
    if (rng.NextBernoulli(read_ratio_)) {
      schedule.AppendRead(p);
    } else {
      schedule.AppendWrite(p);
    }
  }
  return schedule;
}

}  // namespace objalloc::workload
