// Adversarial schedule generators realizing the paper's lower-bound
// constructions (Propositions 1-3). The proofs are omitted in the paper
// ("due to space limitations"); these generators reconstruct the request
// patterns the bounds rely on, and the analysis harness verifies that the
// measured cost ratios approach the stated constants.
//
// Conventions: the initial allocation scheme is {0, ..., t-1}; DA therefore
// uses F = {0, ..., t-2} and floating processor p = t-1 (see
// DynamicAllocation::Reset). Nemesis processors are drawn from outside the
// initial scheme, so the system must have more than t processors.

#ifndef OBJALLOC_WORKLOAD_ADVERSARY_H_
#define OBJALLOC_WORKLOAD_ADVERSARY_H_

#include "objalloc/workload/generator.h"

namespace objalloc::workload {

// Nemesis for SA (Propositions 1 and 3): an endless stream of reads from a
// single processor outside the static scheme Q. Under SC each such read
// costs SA (cc + 1 + cd) while OPT pays one saving-read and then reads
// locally — the ratio tends to (1 + cc + cd), SA's tight factor. Under MC
// the same schedule drives SA's ratio to infinity with the schedule length
// (OPT's local reads are free), proving SA non-competitive in MC.
class SaNemesis final : public ScheduleGenerator {
 public:
  explicit SaNemesis(int t) : t_(t) {}

  std::string name() const override { return "sa-nemesis"; }
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  int t_;
};

// Nemesis for DA (used for Proposition 2): rounds of `readers_per_round`
// one-shot reads from distinct processors outside the scheme, followed by a
// write from inside F. DA converts every such read into a saving-read (an
// extra I/O) and then pays one invalidation per joiner at the write; OPT
// reads remotely without saving. The round ratio is
//   (k*(cc+cd+2) + k*cc + (t-1)*cd + t) / (k*(cc+1+cd) + (t-1)*cd + t)
// which tends to (2+2cc+cd)/(1+cc+cd) for large k — at least 1.5 whenever
// cc + cd <= 1 + cc, in particular throughout the paper's "SA superior"
// region cc + cd < 0.5 where Proposition 2 is load-bearing.
class DaNemesis final : public ScheduleGenerator {
 public:
  DaNemesis(int t, int readers_per_round) : t_(t), readers_(readers_per_round) {}

  std::string name() const override { return "da-nemesis"; }
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  int t_;
  int readers_;
};

// A write-churn adversary: writes alternate among processors outside the
// scheme, forcing DA to hand the floating membership around (invalidating
// the previous writer each time). Included in the worst-case ensembles to
// probe the upper bounds from a second direction.
class WriteChurnAdversary final : public ScheduleGenerator {
 public:
  explicit WriteChurnAdversary(int t) : t_(t) {}

  std::string name() const override { return "write-churn"; }
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  int t_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_ADVERSARY_H_
