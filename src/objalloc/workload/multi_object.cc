#include "objalloc/workload/multi_object.h"

#include "objalloc/util/logging.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::workload {

util::Status MultiObjectOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (num_objects < 1) {
    return util::Status::InvalidArgument("need at least one object");
  }
  if (min_read_fraction < 0 || max_read_fraction > 1 ||
      min_read_fraction > max_read_fraction) {
    return util::Status::InvalidArgument("bad read fraction range");
  }
  if (locality_set < 1 || locality_set > num_processors) {
    return util::Status::InvalidArgument("bad locality set size");
  }
  return util::Status::Ok();
}

MultiObjectTrace GenerateMultiObjectTrace(const MultiObjectOptions& options,
                                          uint64_t seed) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  util::Rng rng(seed);
  util::ZipfSampler popularity(static_cast<size_t>(options.num_objects),
                               options.popularity_skew);

  // Per-object personalities.
  std::vector<double> read_fraction(
      static_cast<size_t>(options.num_objects));
  std::vector<std::vector<util::ProcessorId>> home(
      static_cast<size_t>(options.num_objects));
  for (int object = 0; object < options.num_objects; ++object) {
    read_fraction[static_cast<size_t>(object)] =
        options.min_read_fraction +
        rng.NextDouble() *
            (options.max_read_fraction - options.min_read_fraction);
    std::vector<util::ProcessorId> pool;
    for (int p = 0; p < options.num_processors; ++p) pool.push_back(p);
    auto& hot = home[static_cast<size_t>(object)];
    for (int k = 0; k < options.locality_set; ++k) {
      size_t pick = rng.NextBounded(pool.size());
      hot.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
    }
  }

  MultiObjectTrace trace;
  trace.num_processors = options.num_processors;
  trace.num_objects = options.num_objects;
  trace.events.reserve(options.length);
  for (size_t k = 0; k < options.length; ++k) {
    auto object = static_cast<int64_t>(popularity.Sample(rng));
    util::ProcessorId issuer;
    const auto& hot = home[static_cast<size_t>(object)];
    if (rng.NextBernoulli(0.8)) {
      issuer = hot[rng.NextBounded(hot.size())];
    } else {
      issuer = static_cast<util::ProcessorId>(
          rng.NextBounded(static_cast<uint64_t>(options.num_processors)));
    }
    model::Request request =
        rng.NextBernoulli(read_fraction[static_cast<size_t>(object)])
            ? model::Request::Read(issuer)
            : model::Request::Write(issuer);
    trace.events.push_back(MultiObjectEvent{object, request});
  }
  return trace;
}

}  // namespace objalloc::workload
