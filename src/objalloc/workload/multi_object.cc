#include "objalloc/workload/multi_object.h"

#include "objalloc/util/logging.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::workload {

util::Status MultiObjectOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (num_objects < 1) {
    return util::Status::InvalidArgument("need at least one object");
  }
  if (min_read_fraction < 0 || max_read_fraction > 1 ||
      min_read_fraction > max_read_fraction) {
    return util::Status::InvalidArgument("bad read fraction range");
  }
  if (locality_set < 1 || locality_set > num_processors) {
    return util::Status::InvalidArgument("bad locality set size");
  }
  return util::Status::Ok();
}

MultiObjectGenerator::MultiObjectGenerator(const MultiObjectOptions& options,
                                           uint64_t seed)
    : options_(options),
      rng_(seed),
      popularity_(static_cast<size_t>(options.num_objects),
                  options.popularity_skew),
      read_fraction_(static_cast<size_t>(options.num_objects)),
      home_(static_cast<size_t>(options.num_objects)) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  for (int object = 0; object < options_.num_objects; ++object) {
    read_fraction_[static_cast<size_t>(object)] =
        options_.min_read_fraction +
        rng_.NextDouble() *
            (options_.max_read_fraction - options_.min_read_fraction);
    std::vector<util::ProcessorId> pool;
    for (int p = 0; p < options_.num_processors; ++p) pool.push_back(p);
    auto& hot = home_[static_cast<size_t>(object)];
    for (int k = 0; k < options_.locality_set; ++k) {
      size_t pick = rng_.NextBounded(pool.size());
      hot.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
}

MultiObjectEvent MultiObjectGenerator::Next() {
  auto object = static_cast<int64_t>(popularity_.Sample(rng_));
  util::ProcessorId issuer;
  const auto& hot = home_[static_cast<size_t>(object)];
  if (rng_.NextBernoulli(0.8)) {
    issuer = hot[rng_.NextBounded(hot.size())];
  } else {
    issuer = static_cast<util::ProcessorId>(
        rng_.NextBounded(static_cast<uint64_t>(options_.num_processors)));
  }
  model::Request request =
      rng_.NextBernoulli(read_fraction_[static_cast<size_t>(object)])
          ? model::Request::Read(issuer)
          : model::Request::Write(issuer);
  return MultiObjectEvent{object, request};
}

MultiObjectTrace GenerateMultiObjectTrace(const MultiObjectOptions& options,
                                          uint64_t seed) {
  MultiObjectGenerator generator(options, seed);
  MultiObjectTrace trace;
  trace.num_processors = options.num_processors;
  trace.num_objects = options.num_objects;
  trace.events.reserve(options.length);
  for (size_t k = 0; k < options.length; ++k) {
    trace.events.push_back(generator.Next());
  }
  return trace;
}

}  // namespace objalloc::workload
