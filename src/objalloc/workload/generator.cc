#include "objalloc/workload/generator.h"

#include "objalloc/workload/adversary.h"
#include "objalloc/workload/ensemble.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::workload {

std::vector<std::unique_ptr<ScheduleGenerator>> WorstCaseEnsemble(int t) {
  std::vector<std::unique_ptr<ScheduleGenerator>> out;
  out.push_back(std::make_unique<SaNemesis>(t));
  out.push_back(std::make_unique<DaNemesis>(t, /*readers_per_round=*/8));
  out.push_back(std::make_unique<DaNemesis>(t, /*readers_per_round=*/2));
  out.push_back(std::make_unique<WriteChurnAdversary>(t));
  out.push_back(std::make_unique<UniformWorkload>(/*read_ratio=*/0.8));
  out.push_back(std::make_unique<UniformWorkload>(/*read_ratio=*/0.3));
  out.push_back(std::make_unique<HotspotWorkload>(/*theta=*/0.9,
                                                  /*read_ratio=*/0.7));
  return out;
}

std::vector<std::unique_ptr<ScheduleGenerator>> AverageCaseEnsemble() {
  std::vector<std::unique_ptr<ScheduleGenerator>> out;
  out.push_back(std::make_unique<UniformWorkload>(/*read_ratio=*/0.9));
  out.push_back(std::make_unique<UniformWorkload>(/*read_ratio=*/0.5));
  out.push_back(std::make_unique<HotspotWorkload>(/*theta=*/0.9,
                                                  /*read_ratio=*/0.7));
  out.push_back(std::make_unique<RegimeWorkload>(/*regime_length=*/100,
                                                 /*hot_set_size=*/2,
                                                 /*read_ratio=*/0.8));
  return out;
}

}  // namespace objalloc::workload
