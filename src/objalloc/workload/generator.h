// Schedule generators: the workloads the experiments run on.
//
// Each generator is deterministic given its seed; competitive-analysis
// sweeps draw many schedules per grid point by varying the seed.

#ifndef OBJALLOC_WORKLOAD_GENERATOR_H_
#define OBJALLOC_WORKLOAD_GENERATOR_H_

#include <memory>
#include <string>

#include "objalloc/model/schedule.h"
#include "objalloc/util/rng.h"

namespace objalloc::workload {

using model::Schedule;

class ScheduleGenerator {
 public:
  virtual ~ScheduleGenerator() = default;
  virtual std::string name() const = 0;
  // Produces a schedule of `length` requests over `num_processors`
  // processors, deterministically derived from `seed`.
  virtual Schedule Generate(int num_processors, size_t length,
                            uint64_t seed) const = 0;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_GENERATOR_H_
