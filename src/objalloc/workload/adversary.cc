#include "objalloc/workload/adversary.h"

#include "objalloc/util/logging.h"

namespace objalloc::workload {

Schedule SaNemesis::Generate(int num_processors, size_t length,
                             uint64_t seed) const {
  OBJALLOC_CHECK_GT(num_processors, t_)
      << "the nemesis reader must live outside the initial scheme";
  util::Rng rng(seed);
  // Any fixed outside processor works; vary it with the seed so ensembles
  // exercise different readers.
  auto reader = static_cast<util::ProcessorId>(
      t_ + static_cast<int>(rng.NextBounded(
               static_cast<uint64_t>(num_processors - t_))));
  Schedule schedule(num_processors);
  for (size_t k = 0; k < length; ++k) schedule.AppendRead(reader);
  return schedule;
}

Schedule DaNemesis::Generate(int num_processors, size_t length,
                             uint64_t seed) const {
  OBJALLOC_CHECK_GT(num_processors, t_);
  util::Rng rng(seed);
  const int outsiders = num_processors - t_;
  const int k = std::min(readers_, outsiders);
  OBJALLOC_CHECK_GT(k, 0);
  // The writer sits inside F (processor 0) so DA's write execution set is
  // F ∪ {p} and every joiner gets invalidated.
  Schedule schedule(num_processors);
  int next_reader = 0;
  size_t emitted = 0;
  while (emitted < length) {
    for (int j = 0; j < k && emitted < length; ++j, ++emitted) {
      schedule.AppendRead(t_ + next_reader);
      next_reader = (next_reader + 1) % outsiders;
    }
    if (emitted < length) {
      schedule.AppendWrite(0);
      ++emitted;
    }
  }
  return schedule;
}

Schedule WriteChurnAdversary::Generate(int num_processors, size_t length,
                                       uint64_t seed) const {
  OBJALLOC_CHECK_GT(num_processors, t_);
  util::Rng rng(seed);
  const int outsiders = num_processors - t_;
  Schedule schedule(num_processors);
  for (size_t m = 0; m < length; ++m) {
    auto writer = static_cast<util::ProcessorId>(
        t_ + static_cast<int>(m % static_cast<size_t>(outsiders)));
    // Mostly writes; an occasional read keeps legality interesting.
    if (rng.NextBernoulli(0.2)) {
      schedule.AppendRead(writer);
    } else {
      schedule.AppendWrite(writer);
    }
  }
  return schedule;
}

}  // namespace objalloc::workload
