// Plain-text trace format for schedules, so workloads can be captured,
// shared, and replayed:
//
//   # optional comment lines
//   processors <n>
//   w2 r4 w3 r1 r2 ...        (any number of request lines)

#ifndef OBJALLOC_WORKLOAD_TRACE_IO_H_
#define OBJALLOC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "objalloc/model/schedule.h"
#include "objalloc/util/env.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::workload {

// The *File variants route every byte through a util::Env (null = the
// installed CurrentEnv), so trace capture and replay obey the same fault
// injection as the durability layer. Writes are crash-atomic (temp file +
// rename); reads preserve NotFound for a missing file.

// Serializes `schedule` (wrapping request lines at ~80 columns).
void WriteTrace(const model::Schedule& schedule, std::ostream& os);
util::Status WriteTraceFile(const model::Schedule& schedule,
                            const std::string& path, util::Env* env = nullptr);

// Parses a trace; rejects malformed headers, tokens, and out-of-range ids.
util::StatusOr<model::Schedule> ReadTrace(std::istream& is);
util::StatusOr<model::Schedule> ReadTraceFile(const std::string& path,
                                              util::Env* env = nullptr);

// Multi-object traces use one event per line after the header:
//
//   # optional comments
//   multiobject processors <n> objects <m>
//   <object-id> <r|w><processor>
void WriteMultiObjectTrace(const MultiObjectTrace& trace, std::ostream& os);
util::Status WriteMultiObjectTraceFile(const MultiObjectTrace& trace,
                                       const std::string& path,
                                       util::Env* env = nullptr);
util::StatusOr<MultiObjectTrace> ReadMultiObjectTrace(std::istream& is);
util::StatusOr<MultiObjectTrace> ReadMultiObjectTraceFile(
    const std::string& path, util::Env* env = nullptr);

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_TRACE_IO_H_
