#include "objalloc/workload/hotspot.h"

#include "objalloc/util/csv.h"
#include "objalloc/util/logging.h"

namespace objalloc::workload {

HotspotWorkload::HotspotWorkload(double theta, double read_ratio)
    : theta_(theta), read_ratio_(read_ratio) {
  OBJALLOC_CHECK_GE(theta, 0.0);
  OBJALLOC_CHECK_GE(read_ratio, 0.0);
  OBJALLOC_CHECK_LE(read_ratio, 1.0);
}

std::string HotspotWorkload::name() const {
  return "hotspot(theta=" + util::FormatDouble(theta_, 2) +
         ",r=" + util::FormatDouble(read_ratio_, 2) + ")";
}

Schedule HotspotWorkload::Generate(int num_processors, size_t length,
                                   uint64_t seed) const {
  util::Rng rng(seed);
  util::ZipfSampler zipf(static_cast<size_t>(num_processors), theta_);
  Schedule schedule(num_processors);
  for (size_t k = 0; k < length; ++k) {
    auto p = static_cast<util::ProcessorId>(zipf.Sample(rng));
    if (rng.NextBernoulli(read_ratio_)) {
      schedule.AppendRead(p);
    } else {
      schedule.AppendWrite(p);
    }
  }
  return schedule;
}

}  // namespace objalloc::workload
