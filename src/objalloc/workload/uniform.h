// Uniform workload: every request is a read with probability `read_ratio`,
// issued by a uniformly random processor. The "chaotic" access pattern of
// §5.1, for which competitive (rather than convergent) algorithms are
// designed.

#ifndef OBJALLOC_WORKLOAD_UNIFORM_H_
#define OBJALLOC_WORKLOAD_UNIFORM_H_

#include "objalloc/workload/generator.h"

namespace objalloc::workload {

class UniformWorkload final : public ScheduleGenerator {
 public:
  explicit UniformWorkload(double read_ratio);

  std::string name() const override;
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  double read_ratio_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_UNIFORM_H_
