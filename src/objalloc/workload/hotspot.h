// Hotspot workload: request issuers follow a Zipf distribution — a few
// processors account for most of the traffic. Models the paper's electronic-
// publishing and financial-instrument scenarios where a document has a small
// set of heavy writers/readers and a long tail of occasional readers.

#ifndef OBJALLOC_WORKLOAD_HOTSPOT_H_
#define OBJALLOC_WORKLOAD_HOTSPOT_H_

#include "objalloc/workload/generator.h"

namespace objalloc::workload {

class HotspotWorkload final : public ScheduleGenerator {
 public:
  // `theta` is the Zipf skew (0 = uniform); `read_ratio` as in
  // UniformWorkload. Writers are drawn from the same Zipf law.
  HotspotWorkload(double theta, double read_ratio);

  std::string name() const override;
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  double theta_;
  double read_ratio_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_HOTSPOT_H_
