// Multi-object traces: an interleaved request stream over many objects with
// Zipf-distributed object popularity and per-object read/write mixes —
// the workload shape of a directory service (many user-location records) or
// a document store.
//
// Two forms: GenerateMultiObjectTrace materializes a fixed-length vector;
// MultiObjectGenerator produces the same event stream one event at a time,
// so unbounded traces can be served in bounded memory (see event_source.h
// for the pull-based adapter the service layer consumes).

#ifndef OBJALLOC_WORKLOAD_MULTI_OBJECT_H_
#define OBJALLOC_WORKLOAD_MULTI_OBJECT_H_

#include <vector>

#include "objalloc/model/request.h"
#include "objalloc/util/rng.h"
#include "objalloc/util/status.h"

namespace objalloc::workload {

struct MultiObjectEvent {
  int64_t object = 0;
  model::Request request;
};

struct MultiObjectTrace {
  int num_processors = 0;
  int num_objects = 0;
  std::vector<MultiObjectEvent> events;
};

struct MultiObjectOptions {
  int num_processors = 8;
  int num_objects = 64;
  size_t length = 1000;
  double popularity_skew = 0.8;  // Zipf theta over objects
  // Each object draws its read fraction uniformly from this range —
  // read-mostly objects and write-mostly objects coexist in one trace.
  double min_read_fraction = 0.5;
  double max_read_fraction = 0.95;
  // Each object gets a random "home" hot set of this size issuing 80% of
  // its requests.
  int locality_set = 3;

  util::Status Validate() const;
};

// Streams the multi-object workload event by event. For a given (options,
// seed) the stream is identical to the events GenerateMultiObjectTrace
// materializes; the generator itself is unbounded (`options.length` only
// caps the materialized form).
class MultiObjectGenerator {
 public:
  // Options must validate; checked fatally (generation is internal code,
  // configs are validated at the API boundary).
  MultiObjectGenerator(const MultiObjectOptions& options, uint64_t seed);

  MultiObjectEvent Next();

  const MultiObjectOptions& options() const { return options_; }

 private:
  MultiObjectOptions options_;
  util::Rng rng_;
  util::ZipfSampler popularity_;
  // Per-object personalities, fixed at construction.
  std::vector<double> read_fraction_;
  std::vector<std::vector<util::ProcessorId>> home_;
};

MultiObjectTrace GenerateMultiObjectTrace(const MultiObjectOptions& options,
                                          uint64_t seed);

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_MULTI_OBJECT_H_
