#include "objalloc/workload/event_source.h"

#include <algorithm>
#include <istream>
#include <sstream>

#include "objalloc/model/schedule.h"

namespace objalloc::workload {

util::StatusOr<size_t> TraceEventSource::FillBatch(
    std::span<MultiObjectEvent> out) {
  const size_t n =
      std::min(out.size(), trace_->events.size() - position_);
  std::copy_n(trace_->events.begin() + static_cast<ptrdiff_t>(position_), n,
              out.begin());
  position_ += n;
  return n;
}

util::StatusOr<size_t> GeneratorEventSource::FillBatch(
    std::span<MultiObjectEvent> out) {
  const size_t n = std::min(out.size(), remaining_);
  for (size_t i = 0; i < n; ++i) out[i] = generator_.Next();
  remaining_ -= n;
  return n;
}

util::Status TraceStreamEventSource::ReadHeader() {
  if (have_header_) return util::Status::Ok();
  if (failed_) {
    return util::Status::FailedPrecondition("trace source already failed");
  }
  std::string line;
  while (std::getline(*is_, line)) {
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string keyword, processors_kw, objects_kw, extra;
    if (!(tokens >> keyword >> processors_kw >> num_processors_ >>
          objects_kw >> num_objects_) ||
        keyword != "multiobject" || processors_kw != "processors" ||
        objects_kw != "objects" || num_processors_ <= 0 ||
        num_objects_ <= 0 || (tokens >> extra)) {
      failed_ = true;
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number_) +
          ": bad trace header: " + line);
    }
    have_header_ = true;
    return util::Status::Ok();
  }
  failed_ = true;
  if (is_->bad()) {
    return util::Status::Internal("trace read failed after line " +
                                  std::to_string(line_number_));
  }
  return util::Status::InvalidArgument(
      "trace missing 'multiobject' header");
}

util::StatusOr<bool> TraceStreamEventSource::NextEvent(
    MultiObjectEvent* event) {
  std::string line;
  while (std::getline(*is_, line)) {
    ++line_number_;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    int64_t object = -1;
    std::string request_token, extra;
    if (!(tokens >> object >> request_token)) {
      failed_ = true;
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number_) +
          ": malformed event line (want '<object-id> <r|w><processor>'): " +
          line);
    }
    if (tokens >> extra) {
      failed_ = true;
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number_) +
          ": trailing tokens after event: " + line);
    }
    if (object < 0 || object >= num_objects_) {
      failed_ = true;
      return util::Status::OutOfRange(
          "line " + std::to_string(line_number_) +
          ": object id out of range: " + line);
    }
    auto request = model::Schedule::Parse(num_processors_, request_token);
    if (!request.ok()) {
      failed_ = true;
      return util::Status(request.status().code(),
                          "line " + std::to_string(line_number_) + ": " +
                              request.status().message());
    }
    if (request->size() != 1) {
      failed_ = true;
      return util::Status::InvalidArgument(
          "line " + std::to_string(line_number_) +
          ": expected one request: " + line);
    }
    *event = MultiObjectEvent{object, (*request)[0]};
    return true;
  }
  if (is_->bad()) {
    failed_ = true;
    return util::Status::Internal("trace read failed after line " +
                                  std::to_string(line_number_));
  }
  return false;
}

util::StatusOr<size_t> TraceStreamEventSource::FillBatch(
    std::span<MultiObjectEvent> out) {
  if (failed_) {
    return util::Status::FailedPrecondition("trace source already failed");
  }
  OBJALLOC_RETURN_IF_ERROR(ReadHeader());
  size_t filled = 0;
  while (filled < out.size()) {
    auto more = NextEvent(&out[filled]);
    if (!more.ok()) return more.status();
    if (!*more) break;
    ++filled;
  }
  return filled;
}

namespace {

std::unique_ptr<util::FileStreamBuf> OpenTraceBuf(const std::string& path,
                                                  util::Env* env,
                                                  util::Status* status) {
  auto reader = util::FileReader::Open(path, env);
  if (!reader.ok()) {
    *status = reader.status();
    return nullptr;
  }
  return std::make_unique<util::FileStreamBuf>(std::move(*reader));
}

}  // namespace

TraceFileEventSource::TraceFileEventSource(const std::string& path,
                                           util::Env* env)
    : path_(path),
      buf_(OpenTraceBuf(path, env, &open_status_)),
      is_(buf_.get()),  // a null streambuf sets badbit; guarded below anyway
      stream_(is_) {}

util::Status TraceFileEventSource::ReadHeader() {
  if (buf_ == nullptr) return open_status_;
  util::Status status = stream_.ReadHeader();
  // The streambuf remembers the first read failure with its errno story;
  // the istream can only say badbit.
  if (!status.ok() && !buf_->status().ok()) return buf_->status();
  return status;
}

util::StatusOr<size_t> TraceFileEventSource::FillBatch(
    std::span<MultiObjectEvent> out) {
  if (buf_ == nullptr) return open_status_;
  auto filled = stream_.FillBatch(out);
  if (!filled.ok() && !buf_->status().ok()) return buf_->status();
  return filled;
}

}  // namespace objalloc::workload
