#include "objalloc/workload/regime.h"

#include <vector>

#include "objalloc/util/logging.h"

namespace objalloc::workload {

RegimeWorkload::RegimeWorkload(size_t regime_length, int hot_set_size,
                               double read_ratio)
    : regime_length_(regime_length),
      hot_set_size_(hot_set_size),
      read_ratio_(read_ratio) {
  OBJALLOC_CHECK_GT(regime_length, 0u);
  OBJALLOC_CHECK_GT(hot_set_size, 0);
  OBJALLOC_CHECK_GE(read_ratio, 0.0);
  OBJALLOC_CHECK_LE(read_ratio, 1.0);
}

std::string RegimeWorkload::name() const {
  return "regime(len=" + std::to_string(regime_length_) +
         ",hot=" + std::to_string(hot_set_size_) + ")";
}

Schedule RegimeWorkload::Generate(int num_processors, size_t length,
                                  uint64_t seed) const {
  util::Rng rng(seed);
  Schedule schedule(num_processors);
  const int hot_size = std::min(hot_set_size_, num_processors);
  std::vector<util::ProcessorId> hot;
  for (size_t k = 0; k < length; ++k) {
    if (k % regime_length_ == 0) {
      // New regime: re-draw the hot set (sampling without replacement).
      hot.clear();
      std::vector<util::ProcessorId> pool;
      for (int p = 0; p < num_processors; ++p) pool.push_back(p);
      for (int m = 0; m < hot_size; ++m) {
        size_t pick = rng.NextBounded(pool.size());
        hot.push_back(pool[pick]);
        pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
      }
    }
    util::ProcessorId p;
    if (rng.NextBernoulli(0.9)) {
      p = hot[rng.NextBounded(hot.size())];
    } else {
      p = static_cast<util::ProcessorId>(
          rng.NextBounded(static_cast<uint64_t>(num_processors)));
    }
    if (rng.NextBernoulli(read_ratio_)) {
      schedule.AppendRead(p);
    } else {
      schedule.AppendWrite(p);
    }
  }
  return schedule;
}

}  // namespace objalloc::workload
