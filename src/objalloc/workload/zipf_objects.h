// Million-object Zipf workloads in O(1) generator state.
//
// MultiObjectGenerator (multi_object.h) materializes a personality table —
// a read fraction and a hot processor set per object — which is fine for
// hundreds of objects and hopeless for ten million: the table alone would
// dwarf the storage engine it is meant to exercise, and building it walks
// every object before the first event. ZipfObjectGenerator produces the
// same *shape* of workload (Zipf-skewed popularity, per-object read/write
// mixes, per-object locality sets) with state that is independent of the
// object count:
//
//   * popularity is sampled by the Gray et al. analytic Zipf inversion
//     (the YCSB "zipfian" generator) — constant work per sample after a
//     one-time scalar pass that accumulates the harmonic normalizer, no
//     CDF table;
//   * each object's personality is a pure function of (seed, object id),
//     re-derived on demand from a SplitMix64 chain — two objects never
//     share a personality stream, and object k's personality is the same
//     whether the generator has produced ten events or ten billion.
//
// The stream for a given (options, seed) is fixed: independent of batch
// sizes, thread counts, and how many events were drawn before — which is
// what lets footprint benches assert bit-identical serve fingerprints
// across shard x thread grids.

#ifndef OBJALLOC_WORKLOAD_ZIPF_OBJECTS_H_
#define OBJALLOC_WORKLOAD_ZIPF_OBJECTS_H_

#include <cstdint>
#include <span>

#include "objalloc/util/processor_set.h"
#include "objalloc/util/rng.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::workload {

struct ZipfObjectOptions {
  int num_processors = 16;
  int64_t num_objects = 1 << 20;
  size_t length = 1000000;  // events the EventSource adapter yields
  double skew = 0.9;        // Zipf theta over objects; 0 = uniform
  // Each object draws its read fraction from this range (uniformly, from
  // its own personality stream).
  double min_read_fraction = 0.5;
  double max_read_fraction = 0.95;
  // Per-object hot set: `locality_set` distinct processors issue
  // `locality_bias` of the object's requests.
  int locality_set = 3;
  double locality_bias = 0.8;

  util::Status Validate() const;
};

class ZipfObjectGenerator {
 public:
  // What SplitMix64(seed ^ object) expands into for one object. Derived on
  // demand; never stored per object.
  struct Personality {
    double read_fraction = 0;
    int home_size = 0;
    util::ProcessorId home[util::kMaxProcessors];

    // The hot set as a ProcessorSet — convenient as a registration-time
    // initial scheme for benches that want allocation to start at the
    // object's locality.
    util::ProcessorSet HomeSet() const;
  };

  // Options must validate; checked fatally (generation is internal code,
  // configs are validated at the API boundary).
  ZipfObjectGenerator(const ZipfObjectOptions& options, uint64_t seed);

  MultiObjectEvent Next();

  // Object `object`'s fixed personality — a pure function of the
  // construction seed and the id, so callers can consult it before any
  // event is drawn (e.g. to pick registration-time schemes).
  Personality PersonalityFor(int64_t object) const;

  const ZipfObjectOptions& options() const { return options_; }

 private:
  int64_t SampleObject();

  ZipfObjectOptions options_;
  uint64_t seed_;
  util::Rng rng_;
  // Analytic Zipf state (Gray et al.): harmonic normalizer and the derived
  // constants of the inversion formula. All scalars — no per-object table.
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  double half_pow_theta_ = 0;
};

// Streams `options.length` generated events; the EventSource the service
// layer's ServeStream consumes.
class ZipfEventSource : public EventSource {
 public:
  ZipfEventSource(const ZipfObjectOptions& options, uint64_t seed)
      : generator_(options, seed), remaining_(options.length) {}

  int num_processors() const override {
    return generator_.options().num_processors;
  }
  util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out) override;

  const ZipfObjectGenerator& generator() const { return generator_; }

 private:
  ZipfObjectGenerator generator_;
  size_t remaining_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_ZIPF_OBJECTS_H_
