#include "objalloc/workload/zipf_objects.h"

#include <algorithm>
#include <cmath>

#include "objalloc/util/logging.h"

namespace objalloc::workload {
namespace {

// Uniform double in [0, 1) from one SplitMix64 draw (53 mantissa bits).
double NextPersonalityDouble(uint64_t& state) {
  return static_cast<double>(util::SplitMix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

util::Status ZipfObjectOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (num_objects < 1) {
    return util::Status::InvalidArgument("need at least one object");
  }
  if (skew < 0 || skew >= 1) {
    // The analytic inversion needs theta in [0, 1) — theta = 1 divides by
    // zero in alpha, and the classic Zipf range of interest sits below it.
    return util::Status::InvalidArgument("skew must be in [0, 1)");
  }
  if (min_read_fraction < 0 || max_read_fraction > 1 ||
      min_read_fraction > max_read_fraction) {
    return util::Status::InvalidArgument("bad read fraction range");
  }
  if (locality_set < 1 || locality_set > num_processors) {
    return util::Status::InvalidArgument("bad locality set size");
  }
  if (locality_bias < 0 || locality_bias > 1) {
    return util::Status::InvalidArgument("bad locality bias");
  }
  return util::Status::Ok();
}

ZipfObjectGenerator::ZipfObjectGenerator(const ZipfObjectOptions& options,
                                         uint64_t seed)
    : options_(options), seed_(seed), rng_(seed) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  const double theta = options_.skew;
  const auto n = static_cast<double>(options_.num_objects);
  // One O(n) scalar pass for the harmonic normalizer zeta(n, theta); the
  // per-sample work is constant afterwards. (~0.2s for 10^7 objects — paid
  // once, no memory.)
  double zetan = 0;
  for (int64_t i = 1; i <= options_.num_objects; ++i) {
    zetan += std::pow(1.0 / static_cast<double>(i), theta);
  }
  zetan_ = zetan;
  const double zeta2 = options_.num_objects >= 2
                           ? 1.0 + std::pow(0.5, theta)
                           : zetan;
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) / (1.0 - zeta2 / zetan_);
  half_pow_theta_ = std::pow(0.5, theta);
}

int64_t ZipfObjectGenerator::SampleObject() {
  if (options_.num_objects == 1) return 0;
  if (options_.skew == 0) {
    return static_cast<int64_t>(
        rng_.NextBounded(static_cast<uint64_t>(options_.num_objects)));
  }
  // Gray et al.'s inversion: the head ranks get exact thresholds, the tail
  // the analytic approximation of the inverse CDF.
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + half_pow_theta_) return 1;
  const auto rank = static_cast<int64_t>(
      static_cast<double>(options_.num_objects) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::clamp<int64_t>(rank, 0, options_.num_objects - 1);
}

ZipfObjectGenerator::Personality ZipfObjectGenerator::PersonalityFor(
    int64_t object) const {
  // The personality stream is SplitMix64 seeded by (seed, object) — two
  // mixing steps so adjacent ids land in unrelated streams.
  uint64_t state = util::SubSeed(seed_, static_cast<uint64_t>(object));
  Personality personality;
  personality.read_fraction =
      options_.min_read_fraction +
      NextPersonalityDouble(state) *
          (options_.max_read_fraction - options_.min_read_fraction);
  // Partial Fisher–Yates over a stack array: the first `locality_set`
  // entries become the object's distinct hot processors.
  util::ProcessorId pool[util::kMaxProcessors];
  for (int p = 0; p < options_.num_processors; ++p) pool[p] = p;
  personality.home_size = options_.locality_set;
  for (int k = 0; k < options_.locality_set; ++k) {
    const auto remaining = static_cast<uint64_t>(options_.num_processors - k);
    const int pick = k + static_cast<int>(util::SplitMix64(state) % remaining);
    std::swap(pool[k], pool[pick]);
    personality.home[k] = pool[k];
  }
  return personality;
}

util::ProcessorSet ZipfObjectGenerator::Personality::HomeSet() const {
  util::ProcessorSet set;
  for (int k = 0; k < home_size; ++k) set.Insert(home[k]);
  return set;
}

MultiObjectEvent ZipfObjectGenerator::Next() {
  const int64_t object = SampleObject();
  const Personality personality = PersonalityFor(object);
  util::ProcessorId issuer;
  if (rng_.NextBernoulli(options_.locality_bias)) {
    issuer = personality.home[rng_.NextBounded(
        static_cast<uint64_t>(personality.home_size))];
  } else {
    issuer = static_cast<util::ProcessorId>(
        rng_.NextBounded(static_cast<uint64_t>(options_.num_processors)));
  }
  model::Request request = rng_.NextBernoulli(personality.read_fraction)
                               ? model::Request::Read(issuer)
                               : model::Request::Write(issuer);
  return MultiObjectEvent{object, request};
}

util::StatusOr<size_t> ZipfEventSource::FillBatch(
    std::span<MultiObjectEvent> out) {
  const size_t n = std::min(out.size(), remaining_);
  for (size_t i = 0; i < n; ++i) out[i] = generator_.Next();
  remaining_ -= n;
  return n;
}

}  // namespace objalloc::workload
