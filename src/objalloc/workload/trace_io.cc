#include "objalloc/workload/trace_io.h"

#include <array>
#include <sstream>

#include "objalloc/util/io.h"
#include "objalloc/workload/event_source.h"

namespace objalloc::workload {

void WriteTrace(const model::Schedule& schedule, std::ostream& os) {
  os << "# objalloc schedule trace\n";
  os << "processors " << schedule.num_processors() << "\n";
  size_t column = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::string token = schedule[i].ToString();
    if (column > 0 && column + token.size() + 1 > 80) {
      os << "\n";
      column = 0;
    }
    if (column > 0) {
      os << " ";
      ++column;
    }
    os << token;
    column += token.size();
  }
  os << "\n";
}

util::Status WriteTraceFile(const model::Schedule& schedule,
                            const std::string& path, util::Env* env) {
  // Serialize in memory, publish atomically through the Env seam — a trace
  // file is either complete or absent, never a torn capture.
  std::ostringstream out;
  WriteTrace(schedule, out);
  return util::WriteFileAtomic(path, out.str(), env);
}

util::StatusOr<model::Schedule> ReadTrace(std::istream& is) {
  // Parse line by line so a malformed token is reported with its line
  // number instead of pointing vaguely at the concatenated body.
  std::string line;
  int num_processors = -1;
  size_t line_number = 0;
  model::Schedule schedule(1);
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (num_processors < 0) {
      std::istringstream header(line);
      std::string keyword, extra;
      if (!(header >> keyword >> num_processors) || keyword != "processors" ||
          num_processors <= 0 || (header >> extra)) {
        return util::Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": bad trace header: " + line);
      }
      schedule = model::Schedule(num_processors);
      continue;
    }
    auto parsed = model::Schedule::Parse(num_processors, line);
    if (!parsed.ok()) {
      return util::Status(parsed.status().code(),
                          "line " + std::to_string(line_number) + ": " +
                              std::string(parsed.status().message()));
    }
    for (const model::Request& request : parsed->requests()) {
      schedule.Append(request);
    }
  }
  if (is.bad()) {
    return util::Status::Internal("read failed after line " +
                                  std::to_string(line_number));
  }
  if (num_processors < 0) {
    return util::Status::InvalidArgument("trace missing 'processors' header");
  }
  return schedule;
}

util::StatusOr<model::Schedule> ReadTraceFile(const std::string& path,
                                              util::Env* env) {
  auto reader = util::FileReader::Open(path, env);
  if (!reader.ok()) return reader.status();
  util::FileStreamBuf buf(std::move(*reader));
  std::istream in(&buf);
  auto schedule = ReadTrace(in);
  // A mid-stream read failure surfaces as badbit; the streambuf kept the
  // errno story.
  if (!schedule.ok() && !buf.status().ok()) return buf.status();
  return schedule;
}

void WriteMultiObjectTrace(const MultiObjectTrace& trace, std::ostream& os) {
  os << "# objalloc multi-object trace\n";
  os << "multiobject processors " << trace.num_processors << " objects "
     << trace.num_objects << "\n";
  for (const MultiObjectEvent& event : trace.events) {
    os << event.object << " " << event.request.ToString() << "\n";
  }
}

util::Status WriteMultiObjectTraceFile(const MultiObjectTrace& trace,
                                       const std::string& path,
                                       util::Env* env) {
  std::ostringstream out;
  WriteMultiObjectTrace(trace, out);
  return util::WriteFileAtomic(path, out.str(), env);
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTrace(std::istream& is) {
  // Materialization is just the streaming reader drained into a vector, so
  // the two paths cannot diverge on parsing or validation.
  TraceStreamEventSource source(is);
  OBJALLOC_RETURN_IF_ERROR(source.ReadHeader());
  MultiObjectTrace trace;
  trace.num_processors = source.num_processors();
  trace.num_objects = source.num_objects();
  std::array<MultiObjectEvent, 256> buffer;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    trace.events.insert(trace.events.end(), buffer.begin(),
                        buffer.begin() + static_cast<ptrdiff_t>(*filled));
  }
  return trace;
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTraceFile(
    const std::string& path, util::Env* env) {
  auto reader = util::FileReader::Open(path, env);
  if (!reader.ok()) return reader.status();
  util::FileStreamBuf buf(std::move(*reader));
  std::istream in(&buf);
  auto trace = ReadMultiObjectTrace(in);
  if (!trace.ok() && !buf.status().ok()) return buf.status();
  return trace;
}

}  // namespace objalloc::workload
