#include "objalloc/workload/trace_io.h"

#include <fstream>
#include <sstream>

namespace objalloc::workload {

void WriteTrace(const model::Schedule& schedule, std::ostream& os) {
  os << "# objalloc schedule trace\n";
  os << "processors " << schedule.num_processors() << "\n";
  size_t column = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::string token = schedule[i].ToString();
    if (column > 0 && column + token.size() + 1 > 80) {
      os << "\n";
      column = 0;
    }
    if (column > 0) {
      os << " ";
      ++column;
    }
    os << token;
    column += token.size();
  }
  os << "\n";
}

util::Status WriteTraceFile(const model::Schedule& schedule,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteTrace(schedule, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<model::Schedule> ReadTrace(std::istream& is) {
  std::string line;
  int num_processors = -1;
  std::string body;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (num_processors < 0) {
      std::istringstream header(line);
      std::string keyword;
      header >> keyword >> num_processors;
      if (keyword != "processors" || num_processors <= 0) {
        return util::Status::InvalidArgument("bad trace header: " + line);
      }
      continue;
    }
    body += line;
    body += " ";
  }
  if (num_processors < 0) {
    return util::Status::InvalidArgument("trace missing 'processors' header");
  }
  return model::Schedule::Parse(num_processors, body);
}

util::StatusOr<model::Schedule> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadTrace(in);
}

void WriteMultiObjectTrace(const MultiObjectTrace& trace, std::ostream& os) {
  os << "# objalloc multi-object trace\n";
  os << "multiobject processors " << trace.num_processors << " objects "
     << trace.num_objects << "\n";
  for (const MultiObjectEvent& event : trace.events) {
    os << event.object << " " << event.request.ToString() << "\n";
  }
}

util::Status WriteMultiObjectTraceFile(const MultiObjectTrace& trace,
                                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteMultiObjectTrace(trace, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTrace(std::istream& is) {
  MultiObjectTrace trace;
  bool have_header = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    if (!have_header) {
      std::string keyword, processors_kw, objects_kw;
      tokens >> keyword >> processors_kw >> trace.num_processors >>
          objects_kw >> trace.num_objects;
      if (keyword != "multiobject" || processors_kw != "processors" ||
          objects_kw != "objects" || trace.num_processors <= 0 ||
          trace.num_objects <= 0) {
        return util::Status::InvalidArgument("bad trace header: " + line);
      }
      have_header = true;
      continue;
    }
    int64_t object = -1;
    std::string request_token;
    tokens >> object >> request_token;
    if (object < 0 || object >= trace.num_objects) {
      return util::Status::OutOfRange("object id out of range: " + line);
    }
    auto request =
        model::Schedule::Parse(trace.num_processors, request_token);
    if (!request.ok()) return request.status();
    if (request->size() != 1) {
      return util::Status::InvalidArgument("expected one request: " + line);
    }
    trace.events.push_back(MultiObjectEvent{object, (*request)[0]});
  }
  if (!have_header) {
    return util::Status::InvalidArgument(
        "trace missing 'multiobject' header");
  }
  return trace;
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTraceFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadMultiObjectTrace(in);
}

}  // namespace objalloc::workload
