#include "objalloc/workload/trace_io.h"

#include <array>
#include <fstream>
#include <sstream>

#include "objalloc/workload/event_source.h"

namespace objalloc::workload {

void WriteTrace(const model::Schedule& schedule, std::ostream& os) {
  os << "# objalloc schedule trace\n";
  os << "processors " << schedule.num_processors() << "\n";
  size_t column = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::string token = schedule[i].ToString();
    if (column > 0 && column + token.size() + 1 > 80) {
      os << "\n";
      column = 0;
    }
    if (column > 0) {
      os << " ";
      ++column;
    }
    os << token;
    column += token.size();
  }
  os << "\n";
}

util::Status WriteTraceFile(const model::Schedule& schedule,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteTrace(schedule, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<model::Schedule> ReadTrace(std::istream& is) {
  // Parse line by line so a malformed token is reported with its line
  // number instead of pointing vaguely at the concatenated body.
  std::string line;
  int num_processors = -1;
  size_t line_number = 0;
  model::Schedule schedule(1);
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (num_processors < 0) {
      std::istringstream header(line);
      std::string keyword, extra;
      if (!(header >> keyword >> num_processors) || keyword != "processors" ||
          num_processors <= 0 || (header >> extra)) {
        return util::Status::InvalidArgument(
            "line " + std::to_string(line_number) +
            ": bad trace header: " + line);
      }
      schedule = model::Schedule(num_processors);
      continue;
    }
    auto parsed = model::Schedule::Parse(num_processors, line);
    if (!parsed.ok()) {
      return util::Status(parsed.status().code(),
                          "line " + std::to_string(line_number) + ": " +
                              std::string(parsed.status().message()));
    }
    for (const model::Request& request : parsed->requests()) {
      schedule.Append(request);
    }
  }
  if (is.bad()) {
    return util::Status::Internal("read failed after line " +
                                  std::to_string(line_number));
  }
  if (num_processors < 0) {
    return util::Status::InvalidArgument("trace missing 'processors' header");
  }
  return schedule;
}

util::StatusOr<model::Schedule> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadTrace(in);
}

void WriteMultiObjectTrace(const MultiObjectTrace& trace, std::ostream& os) {
  os << "# objalloc multi-object trace\n";
  os << "multiobject processors " << trace.num_processors << " objects "
     << trace.num_objects << "\n";
  for (const MultiObjectEvent& event : trace.events) {
    os << event.object << " " << event.request.ToString() << "\n";
  }
}

util::Status WriteMultiObjectTraceFile(const MultiObjectTrace& trace,
                                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteMultiObjectTrace(trace, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTrace(std::istream& is) {
  // Materialization is just the streaming reader drained into a vector, so
  // the two paths cannot diverge on parsing or validation.
  TraceStreamEventSource source(is);
  OBJALLOC_RETURN_IF_ERROR(source.ReadHeader());
  MultiObjectTrace trace;
  trace.num_processors = source.num_processors();
  trace.num_objects = source.num_objects();
  std::array<MultiObjectEvent, 256> buffer;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    trace.events.insert(trace.events.end(), buffer.begin(),
                        buffer.begin() + static_cast<ptrdiff_t>(*filled));
  }
  return trace;
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTraceFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadMultiObjectTrace(in);
}

}  // namespace objalloc::workload
