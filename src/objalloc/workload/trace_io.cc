#include "objalloc/workload/trace_io.h"

#include <array>
#include <fstream>
#include <sstream>

#include "objalloc/workload/event_source.h"

namespace objalloc::workload {

void WriteTrace(const model::Schedule& schedule, std::ostream& os) {
  os << "# objalloc schedule trace\n";
  os << "processors " << schedule.num_processors() << "\n";
  size_t column = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    std::string token = schedule[i].ToString();
    if (column > 0 && column + token.size() + 1 > 80) {
      os << "\n";
      column = 0;
    }
    if (column > 0) {
      os << " ";
      ++column;
    }
    os << token;
    column += token.size();
  }
  os << "\n";
}

util::Status WriteTraceFile(const model::Schedule& schedule,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteTrace(schedule, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<model::Schedule> ReadTrace(std::istream& is) {
  std::string line;
  int num_processors = -1;
  std::string body;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (num_processors < 0) {
      std::istringstream header(line);
      std::string keyword;
      header >> keyword >> num_processors;
      if (keyword != "processors" || num_processors <= 0) {
        return util::Status::InvalidArgument("bad trace header: " + line);
      }
      continue;
    }
    body += line;
    body += " ";
  }
  if (num_processors < 0) {
    return util::Status::InvalidArgument("trace missing 'processors' header");
  }
  return model::Schedule::Parse(num_processors, body);
}

util::StatusOr<model::Schedule> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadTrace(in);
}

void WriteMultiObjectTrace(const MultiObjectTrace& trace, std::ostream& os) {
  os << "# objalloc multi-object trace\n";
  os << "multiobject processors " << trace.num_processors << " objects "
     << trace.num_objects << "\n";
  for (const MultiObjectEvent& event : trace.events) {
    os << event.object << " " << event.request.ToString() << "\n";
  }
}

util::Status WriteMultiObjectTraceFile(const MultiObjectTrace& trace,
                                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return util::Status::NotFound("cannot open for writing: " + path);
  WriteMultiObjectTrace(trace, out);
  if (!out) return util::Status::Internal("write failed: " + path);
  return util::Status::Ok();
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTrace(std::istream& is) {
  // Materialization is just the streaming reader drained into a vector, so
  // the two paths cannot diverge on parsing or validation.
  TraceStreamEventSource source(is);
  OBJALLOC_RETURN_IF_ERROR(source.ReadHeader());
  MultiObjectTrace trace;
  trace.num_processors = source.num_processors();
  trace.num_objects = source.num_objects();
  std::array<MultiObjectEvent, 256> buffer;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    trace.events.insert(trace.events.end(), buffer.begin(),
                        buffer.begin() + static_cast<ptrdiff_t>(*filled));
  }
  return trace;
}

util::StatusOr<MultiObjectTrace> ReadMultiObjectTraceFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::Status::NotFound("cannot open: " + path);
  return ReadMultiObjectTrace(in);
}

}  // namespace objalloc::workload
