// Regime-switching workload: the "regular" access pattern of §5.1 — the
// read-write pattern is stable for a stretch of requests, then shifts.
// During each regime a (randomly chosen) subset of processors is hot; a
// convergent algorithm should migrate the allocation scheme to each regime's
// hot set, while a competitive algorithm only guarantees a worst-case bound.

#ifndef OBJALLOC_WORKLOAD_REGIME_H_
#define OBJALLOC_WORKLOAD_REGIME_H_

#include "objalloc/workload/generator.h"

namespace objalloc::workload {

class RegimeWorkload final : public ScheduleGenerator {
 public:
  // Each regime lasts `regime_length` requests; within a regime, a hot set
  // of `hot_set_size` processors issues 90% of the requests; reads occur
  // with probability `read_ratio`.
  RegimeWorkload(size_t regime_length, int hot_set_size, double read_ratio);

  std::string name() const override;
  Schedule Generate(int num_processors, size_t length,
                    uint64_t seed) const override;

 private:
  size_t regime_length_;
  int hot_set_size_;
  double read_ratio_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_REGIME_H_
