// Standard generator ensembles used by the competitive-analysis sweeps.

#ifndef OBJALLOC_WORKLOAD_ENSEMBLE_H_
#define OBJALLOC_WORKLOAD_ENSEMBLE_H_

#include <memory>
#include <vector>

#include "objalloc/workload/generator.h"

namespace objalloc::workload {

// Adversaries plus stressful random mixes; the worst measured ratio over
// this ensemble is the empirical estimate of an algorithm's competitive
// factor. `t` is the availability threshold the adversaries assume
// (initial scheme {0..t-1}).
std::vector<std::unique_ptr<ScheduleGenerator>> WorstCaseEnsemble(int t);

// Benign random workloads for average-case comparisons.
std::vector<std::unique_ptr<ScheduleGenerator>> AverageCaseEnsemble();

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_ENSEMBLE_H_
