// EventSource — the pull-based streaming interface the service layer serves
// from. A source yields multi-object events in stream order, a batch at a
// time, so an unbounded trace (a live feed, a huge on-disk capture, a
// synthetic generator) can be served in bounded memory: the consumer owns
// one fixed-size buffer and refills it until the source is exhausted.
//
// Adapters cover the three producers the repo already has:
//   * TraceEventSource      — a materialized MultiObjectTrace (borrowed),
//   * GeneratorEventSource  — MultiObjectGenerator, no materialization,
//   * TraceStreamEventSource / TraceFileEventSource — the trace_io text
//     format, parsed line by line (trace_io's ReadMultiObjectTrace is
//     itself implemented on top of the stream source).

#ifndef OBJALLOC_WORKLOAD_EVENT_SOURCE_H_
#define OBJALLOC_WORKLOAD_EVENT_SOURCE_H_

#include <iosfwd>
#include <istream>
#include <memory>
#include <span>
#include <string>

#include "objalloc/util/io.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::workload {

class EventSource {
 public:
  virtual ~EventSource() = default;

  // The processor universe the events are drawn from.
  virtual int num_processors() const = 0;

  // Fills `out` with up to out.size() events in stream order; returns how
  // many were produced. 0 means the source is exhausted (and every later
  // call also returns 0). Errors — e.g. a malformed trace line — surface as
  // a non-OK status; a failed source stays failed.
  virtual util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out)
      = 0;
};

// Streams a materialized trace. Borrows `trace`; the trace must outlive the
// source and stay unmodified while streaming.
class TraceEventSource : public EventSource {
 public:
  explicit TraceEventSource(const MultiObjectTrace& trace) : trace_(&trace) {}

  int num_processors() const override { return trace_->num_processors; }
  util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out) override;

  // Rewinds to the first event (for repeated benchmark passes).
  void Reset() { position_ = 0; }

 private:
  const MultiObjectTrace* trace_;
  size_t position_ = 0;
};

// Streams `options.length` freshly generated events without materializing
// them; for a given (options, seed) the stream equals the corresponding
// GenerateMultiObjectTrace output event for event.
class GeneratorEventSource : public EventSource {
 public:
  GeneratorEventSource(const MultiObjectOptions& options, uint64_t seed)
      : generator_(options, seed), remaining_(options.length) {}

  int num_processors() const override {
    return generator_.options().num_processors;
  }
  util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out) override;

 private:
  MultiObjectGenerator generator_;
  size_t remaining_;
};

// Streams a multi-object trace in the trace_io text format from an open
// input stream (borrowed, not owned), one parsed line per event. The header
// is parsed on the first FillBatch (or an explicit ReadHeader, after which
// num_processors()/num_objects() are valid).
class TraceStreamEventSource : public EventSource {
 public:
  explicit TraceStreamEventSource(std::istream& is) : is_(&is) {}

  // Idempotent; parses the `multiobject processors <n> objects <m>` header.
  util::Status ReadHeader();

  int num_processors() const override { return num_processors_; }
  int num_objects() const { return num_objects_; }
  util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out) override;

 private:
  // Parses one event line into `*event`; false with OK status on EOF.
  util::StatusOr<bool> NextEvent(MultiObjectEvent* event);

  std::istream* is_;
  bool have_header_ = false;
  bool failed_ = false;
  size_t line_number_ = 0;  // 1-based, for error attribution
  int num_processors_ = 0;
  int num_objects_ = 0;
};

// Owning file variant of TraceStreamEventSource. The file is read through
// the util::Env seam (util::FileStreamBuf over a util::FileReader), so an
// injected fault environment governs trace reads the same way it governs
// the durability layer — still streaming, one bounded buffer.
class TraceFileEventSource : public EventSource {
 public:
  explicit TraceFileEventSource(const std::string& path,
                                util::Env* env = nullptr);

  util::Status ReadHeader();

  int num_processors() const override { return stream_.num_processors(); }
  int num_objects() const { return stream_.num_objects(); }
  util::StatusOr<size_t> FillBatch(std::span<MultiObjectEvent> out) override;

 private:
  std::string path_;
  util::Status open_status_;
  std::unique_ptr<util::FileStreamBuf> buf_;  // null when the open failed
  std::istream is_;
  TraceStreamEventSource stream_;
};

}  // namespace objalloc::workload

#endif  // OBJALLOC_WORKLOAD_EVENT_SOURCE_H_
