// Umbrella header: the library's public API in one include.
//
//   #include "objalloc/objalloc.h"
//
// Pulls in the cost model and schedules, the online DOM algorithms, the
// offline optima and bounds, workload generation, the analysis toolkit, the
// protocol simulator, and the transaction front end. Individual headers
// remain the preferred includes for code that wants fast builds.

#ifndef OBJALLOC_OBJALLOC_H_
#define OBJALLOC_OBJALLOC_H_

// Model: §3 of the paper.
#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/legality.h"
#include "objalloc/model/request.h"
#include "objalloc/model/schedule.h"
#include "objalloc/model/topology.h"

// Online algorithms: §4 plus baselines and extensions.
#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/counter_replication.h"
#include "objalloc/core/dom_algorithm.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/lookahead_allocation.h"
#include "objalloc/core/object_manager.h"
#include "objalloc/core/quorum_allocation.h"
#include "objalloc/core/runner.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/core/topology_aware.h"

// Offline optima and bounds: the competitive-analysis yardsticks.
#include "objalloc/opt/exact_opt.h"
#include "objalloc/opt/interval_opt.h"
#include "objalloc/opt/relaxation_lower_bound.h"
#include "objalloc/opt/weighted_opt.h"

// Workloads and traces.
#include "objalloc/workload/adversary.h"
#include "objalloc/workload/ensemble.h"
#include "objalloc/workload/hotspot.h"
#include "objalloc/workload/multi_object.h"
#include "objalloc/workload/regime.h"
#include "objalloc/workload/trace_io.h"
#include "objalloc/workload/uniform.h"

// Analysis: competitive ratios, theorems, regions, steady state.
#include "objalloc/analysis/adversarial_search.h"
#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/region_map.h"
#include "objalloc/analysis/steady_state.h"
#include "objalloc/analysis/theorems.h"

// Concurrency control front end (§3.1's serialization assumption).
#include "objalloc/cc/serializer.h"

// Protocol simulator.
#include "objalloc/sim/simulator.h"

// §6.2 append-only model.
#include "objalloc/appendonly/feed_manager.h"

#endif  // OBJALLOC_OBJALLOC_H_
