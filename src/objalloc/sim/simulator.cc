#include "objalloc/sim/simulator.h"

#include "objalloc/sim/da_protocol.h"
#include "objalloc/sim/sa_protocol.h"
#include "objalloc/util/logging.h"

namespace objalloc::sim {

util::Status SimulatorOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (initial_scheme.Empty() ||
      !initial_scheme.IsSubsetOf(
          util::ProcessorSet::FirstN(num_processors))) {
    return util::Status::InvalidArgument("bad initial scheme");
  }
  if (protocol == ProtocolKind::kDynamic && initial_scheme.Size() < 2) {
    return util::Status::InvalidArgument("DA needs |initial scheme| >= 2");
  }
  return util::Status::Ok();
}

Simulator::Simulator(const SimulatorOptions& options)
    : options_(options),
      clocks_(options.num_processors, options.latency),
      network_(options.num_processors, &metrics_, &clocks_) {
  util::Status status = options.Validate();
  OBJALLOC_CHECK(status.ok()) << status.ToString();

  const int n = options.num_processors;
  databases_.reserve(static_cast<size_t>(n));
  nodes_.reserve(static_cast<size_t>(n));
  for (util::ProcessorId p = 0; p < n; ++p) {
    databases_.push_back(
        std::make_unique<LocalDatabase>(&metrics_, &clocks_, p));
    if (!options.durable_dir.empty()) {
      stores_.push_back(std::make_unique<DurableObjectStore>(
          options.durable_dir + "/object_p" + std::to_string(p) + ".bin"));
      stores_.back()->Remove();  // a fresh run starts from a clean disk
      databases_.back()->AttachDurable(stores_.back().get());
    }
    if (options.initial_scheme.Contains(p)) {
      databases_.back()->SeedInitial(/*version=*/0, /*value=*/0);
    }
  }
  for (util::ProcessorId p = 0; p < n; ++p) {
    LocalDatabase* db = databases_[static_cast<size_t>(p)].get();
    switch (options.protocol) {
      case ProtocolKind::kStatic:
        nodes_.push_back(std::make_unique<SaNode>(
            p, n, &network_, db, &metrics_, options.initial_scheme));
        break;
      case ProtocolKind::kDynamic:
        nodes_.push_back(std::make_unique<DaNode>(p, n, &network_, db,
                                                  &metrics_, options.quorum,
                                                  options.initial_scheme));
        break;
      case ProtocolKind::kQuorum:
        nodes_.push_back(std::make_unique<QuorumNode>(
            p, n, &network_, db, &metrics_, options.quorum));
        break;
    }
  }
  network_.SetDeliveryHandler([this](const Message& msg) {
    nodes_[static_cast<size_t>(msg.dst)]->HandleMessage(msg);
  });
}

void Simulator::Crash(util::ProcessorId p) {
  OBJALLOC_CHECK(!network_.IsCrashed(p)) << "processor already down";
  network_.SetCrashed(p, true);
  if (!stores_.empty()) {
    // With real durable storage, a crash loses the volatile image; the
    // on-disk record survives for recovery.
    databases_[static_cast<size_t>(p)]->LoseVolatileState();
  }
  nodes_[static_cast<size_t>(p)]->OnCrash();
}

void Simulator::Recover(util::ProcessorId p) {
  OBJALLOC_CHECK(network_.IsCrashed(p)) << "processor is not down";
  network_.SetCrashed(p, false);
  if (!stores_.empty()) {
    util::Status status =
        databases_[static_cast<size_t>(p)]->RecoverFromDurable();
    OBJALLOC_CHECK(status.ok()) << status.ToString();
  }
  if (options_.protocol == ProtocolKind::kDynamic) {
    // Status handshake with a live peer before the protocol's recovery
    // hook: if the system degraded to quorum consensus while we were down,
    // adopt that mode first (two control messages) so the hook can decide
    // whether the reloaded copy is trustworthy.
    for (util::ProcessorId q = 0; q < options_.num_processors; ++q) {
      if (q == p || network_.IsCrashed(q)) continue;
      auto* peer = static_cast<DaNode*>(nodes_[static_cast<size_t>(q)].get());
      metrics_.control_messages += 2;
      if (peer->in_quorum_mode()) {
        static_cast<DaNode*>(nodes_[static_cast<size_t>(p)].get())
            ->ForceQuorumMode();
      }
      break;
    }
  }
  nodes_[static_cast<size_t>(p)]->OnRecover();
}

bool Simulator::PumpUntilDone(util::ProcessorId p) {
  Node* node = nodes_[static_cast<size_t>(p)].get();
  network_.DrainAll();
  int guard = 0;
  while (!node->op_done()) {
    if (!node->OnTimeout()) break;
    network_.DrainAll();
    OBJALLOC_CHECK_LT(++guard, 64) << "protocol livelock at node " << p;
  }
  if (!node->op_done()) {
    node->AbortOp();
    ++metrics_.unavailable_requests;
    return false;
  }
  return true;
}

RequestOutcome Simulator::SubmitRead(util::ProcessorId p) {
  RequestOutcome outcome;
  if (network_.IsCrashed(p)) {
    ++metrics_.unavailable_requests;
    return outcome;
  }
  Node* node = nodes_[static_cast<size_t>(p)].get();
  clocks_.ResetAll();
  node->BeginRead();
  if (!PumpUntilDone(p)) return outcome;
  outcome.ok = true;
  outcome.latency = clocks_.MaxClock();
  outcome.version = node->result_version();
  outcome.value = node->result_value();
  if (outcome.version != latest_version_) {
    outcome.stale = true;
    ++metrics_.stale_reads;
  }
  return outcome;
}

RequestOutcome Simulator::SubmitWrite(util::ProcessorId p, uint64_t value) {
  RequestOutcome outcome;
  if (network_.IsCrashed(p)) {
    ++metrics_.unavailable_requests;
    return outcome;
  }
  const int64_t version = latest_version_ + 1;
  Node* node = nodes_[static_cast<size_t>(p)].get();
  clocks_.ResetAll();
  node->BeginWrite(version, value);
  if (!PumpUntilDone(p)) return outcome;
  latest_version_ = version;
  outcome.ok = true;
  outcome.latency = clocks_.MaxClock();
  outcome.version = version;
  outcome.value = value;
  return outcome;
}

Simulator::RunReport Simulator::RunSchedule(const model::Schedule& schedule,
                                            const FailurePlan& plan) {
  OBJALLOC_CHECK(plan.IsValid(options_.num_processors));
  OBJALLOC_CHECK_EQ(schedule.num_processors(), options_.num_processors);
  RunReport report;
  size_t next_event = 0;
  for (size_t index = 0; index <= schedule.size(); ++index) {
    while (next_event < plan.events.size() &&
           plan.events[next_event].before_request == index) {
      const FailureEvent& event = plan.events[next_event++];
      if (event.crash) {
        Crash(event.processor);
      } else {
        Recover(event.processor);
      }
    }
    if (index == schedule.size()) break;
    const model::Request& request = schedule[index];
    RequestOutcome outcome =
        request.is_read()
            ? SubmitRead(request.processor)
            : SubmitWrite(request.processor,
                          /*value=*/static_cast<uint64_t>(index) + 1);
    if (outcome.ok) {
      ++report.served;
      if (outcome.stale) ++report.stale_reads;
      (request.is_read() ? report.read_latency : report.write_latency)
          .Add(outcome.latency);
    } else {
      ++report.unavailable;
    }
  }
  report.metrics = metrics_;
  return report;
}

}  // namespace objalloc::sim
