// Node: the per-processor protocol endpoint. A node owns its local database,
// reacts to delivered messages, and services locally issued read/write
// requests asynchronously — the simulator pumps the network until the
// operation completes or times out.
//
// Requests are serialized by the (external) concurrency control, so at most
// one operation is in flight system-wide; the distributed character of the
// protocols lives in the per-node state (join-lists, version catalogs, mode
// flags) and in the explicit messages, which are what the cost model counts.

#ifndef OBJALLOC_SIM_PROCESSOR_H_
#define OBJALLOC_SIM_PROCESSOR_H_

#include <cstdint>

#include "objalloc/sim/local_database.h"
#include "objalloc/sim/message.h"
#include "objalloc/sim/network.h"

namespace objalloc::sim {

class Node {
 public:
  Node(ProcessorId id, int num_processors, Network* network,
       LocalDatabase* db, SimMetrics* metrics);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Message delivery (invoked by the network drain).
  virtual void HandleMessage(const Message& msg) = 0;

  // Begins servicing a locally issued request; the simulator then drains the
  // network and, while the operation is still pending, calls OnTimeout().
  void BeginRead();
  void BeginWrite(int64_t version, uint64_t value);

  // Called when the network is quiescent but the operation has not
  // completed (models expiry of a delivery timeout). Returns false when the
  // node gives up — the request is unavailable.
  virtual bool OnTimeout() { return false; }

  // Crash/recovery hooks driven by the simulator. Recovery invalidates the
  // local copy: a recovering processor cannot trust a replica it may have
  // missed invalidations for.
  virtual void OnCrash() {}
  virtual void OnRecover() { db_->Invalidate(); }

  // Abandons the pending operation (the simulator records it unavailable).
  void AbortOp() {
    done_ = true;
    pending_op_ = OpKind::kNone;
  }

  bool op_done() const { return done_; }
  int64_t result_version() const { return result_version_; }
  uint64_t result_value() const { return result_value_; }

  ProcessorId id() const { return id_; }

 protected:
  enum class OpKind { kNone, kRead, kWrite };

  // Protocol-specific request entry points.
  virtual void DoStartRead() = 0;
  virtual void DoStartWrite() = 0;

  void CompleteRead(int64_t version, uint64_t value);
  void CompleteWrite();

  ProcessorId id_;
  int num_processors_;
  Network* network_;
  LocalDatabase* db_;
  SimMetrics* metrics_;

  OpKind pending_op_ = OpKind::kNone;
  int64_t pending_version_ = -1;  // write being serviced
  uint64_t pending_value_ = 0;

 private:
  bool done_ = true;
  int64_t result_version_ = -1;
  uint64_t result_value_ = 0;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_PROCESSOR_H_
