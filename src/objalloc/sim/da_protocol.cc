#include "objalloc/sim/da_protocol.h"

#include "objalloc/util/logging.h"

namespace objalloc::sim {

DaNode::DaNode(ProcessorId id, int num_processors, Network* network,
               LocalDatabase* db, SimMetrics* metrics, QuorumConfig quorum,
               util::ProcessorSet initial_scheme)
    : QuorumNode(id, num_processors, network, db, metrics, quorum) {
  OBJALLOC_CHECK_GE(initial_scheme.Size(), 2);
  auto members = initial_scheme.ToVector();
  p_ = members.back();
  f_ = initial_scheme.WithErased(p_);
  am_f_ = f_.Contains(id);
  floating_ = p_;
}

util::ProcessorSet DaNode::WriteExecutionSet(ProcessorId writer) const {
  return (f_.Contains(writer) || writer == p_) ? f_.WithInserted(p_)
                                               : f_.WithInserted(writer);
}

void DaNode::DoStartRead() {
  if (mode_ == Mode::kQuorum) {
    QuorumNode::DoStartRead();
    return;
  }
  if (db_->has_copy()) {
    LocalDatabase::Record record = db_->Get();
    CompleteRead(record.version, record.value);
    return;
  }
  // Fetch-and-save from an F member; id-based choice spreads join-lists.
  auto f_members = f_.ToVector();
  ProcessorId source =
      f_members[static_cast<size_t>(id_) % f_members.size()];
  if (!network_->Send(Message{MessageType::kReadRequest, id_, source,
                              /*version=*/-1, 0, /*origin=*/id_})) {
    // A member of F is down: degrade to quorum consensus (§2).
    BeginFailover();
  }
}

void DaNode::DoStartWrite() {
  if (mode_ == Mode::kQuorum) {
    QuorumNode::DoStartWrite();
    return;
  }
  // Propagate to F (and to p when the writer is in F ∪ {p}); any
  // unreachable target means the availability constraint cannot be met in
  // normal mode, so the system degrades.
  util::ProcessorSet x = WriteExecutionSet(id_);
  bool degraded = false;
  for (ProcessorId target : x.ToVector()) {
    if (target == id_) continue;
    if (!network_->Send(Message{MessageType::kObjectPropagate, id_, target,
                                pending_version_, pending_value_,
                                /*origin=*/id_})) {
      degraded = true;
    }
  }
  if (degraded) {
    BeginFailover();
    return;
  }
  db_->Put(pending_version_, pending_value_);
  if (am_f_) SendInvalidations(id_);
  CompleteWrite();
}

void DaNode::SendInvalidations(ProcessorId writer) {
  util::ProcessorSet x = WriteExecutionSet(writer);
  for (ProcessorId joiner : join_list_.ToVector()) {
    if (joiner == writer || x.Contains(joiner)) continue;
    network_->Send(Message{MessageType::kInvalidate, id_, joiner,
                           /*version=*/-1, 0, /*origin=*/writer});
  }
  join_list_.Clear();
  if (id_ == f_.First()) {
    if (floating_ >= 0 && floating_ != writer && !x.Contains(floating_)) {
      network_->Send(Message{MessageType::kInvalidate, id_, floating_,
                             /*version=*/-1, 0, /*origin=*/writer});
    }
    floating_ = (f_.Contains(writer) || writer == p_) ? p_ : writer;
  }
}

void DaNode::BeginFailover() {
  ++metrics_->failovers;
  mode_ = Mode::kQuorum;
  // Tell every processor to stop trusting normal-mode local copies. FIFO
  // delivery guarantees the switch arrives before any quorum traffic.
  for (ProcessorId q = 0; q < num_processors_; ++q) {
    if (q == id_) continue;
    network_->Send(Message{MessageType::kModeSwitch, id_, q,
                           /*version=*/-1, 0, /*origin=*/id_});
  }
  // Missing-writes recovery: find the latest surviving version.
  phase_ = Phase::kRecoverScan;
  BroadcastVersionQuery();
}

void DaNode::FinishRecovery(int64_t version, uint64_t value,
                            bool have_locally) {
  // Install the recovered version on a write quorum so every later quorum
  // read intersects it; superseded when the pending operation is itself a
  // write (the new version makes the old one obsolete).
  if (pending_op_ == OpKind::kWrite) {
    int pushed = 0;
    for (const VersionReply& reply : replies_) {
      if (pushed >= config_.write_quorum - 1) break;
      network_->Send(Message{MessageType::kObjectPropagate, id_, reply.from,
                             pending_version_, pending_value_,
                             /*origin=*/id_});
      ++pushed;
    }
    db_->Put(pending_version_, pending_value_);
    phase_ = Phase::kIdle;
    CompleteWrite();
    return;
  }
  if (!have_locally) db_->Put(version, value);
  int pushed = 0;
  for (const VersionReply& reply : replies_) {
    if (pushed >= config_.write_quorum - 1) break;
    network_->Send(Message{MessageType::kObjectPropagate, id_, reply.from,
                           version, value, /*origin=*/id_});
    ++pushed;
  }
  phase_ = Phase::kIdle;
  CompleteRead(version, value);
}

void DaNode::HandleMessage(const Message& msg) {
  if (mode_ == Mode::kQuorum) {
    switch (msg.type) {
      case MessageType::kModeSwitch:
        return;  // already degraded
      case MessageType::kInvalidate:
        db_->Invalidate();  // straggling normal-mode invalidation
        return;
      case MessageType::kObjectReply:
        if (phase_ == Phase::kRecoverFetch) {
          FinishRecovery(msg.version, msg.value, /*have_locally=*/false);
          return;
        }
        break;
      default:
        break;
    }
    OBJALLOC_CHECK(HandleQuorumMessage(msg))
        << "DA(quorum) got unexpected " << msg.ToString();
    return;
  }

  switch (msg.type) {
    case MessageType::kReadRequest: {
      // DA read service: only F members are addressed in normal mode.
      OBJALLOC_CHECK(am_f_) << "normal-mode read request at non-F node "
                            << id_;
      LocalDatabase::Record record = db_->Get();
      join_list_.Insert(msg.src);
      network_->Send(Message{MessageType::kObjectReply, id_, msg.src,
                             record.version, record.value, /*origin=*/id_});
      return;
    }
    case MessageType::kObjectReply:
      // Reply to our saving-read: store the copy, joining the scheme.
      db_->Put(msg.version, msg.value);
      CompleteRead(msg.version, msg.value);
      return;
    case MessageType::kObjectPropagate:
      db_->Put(msg.version, msg.value);
      if (am_f_) SendInvalidations(msg.origin);
      return;
    case MessageType::kInvalidate:
      db_->Invalidate();
      return;
    case MessageType::kModeSwitch:
      mode_ = Mode::kQuorum;
      return;
    case MessageType::kVersionQuery:
    case MessageType::kVersionReply:
      // Quorum traffic from a node that degraded before our kModeSwitch
      // arrived; answer statelessly.
      OBJALLOC_CHECK(HandleQuorumMessage(msg));
      return;
    default:
      OBJALLOC_CHECK(false) << "DA node got unexpected " << msg.ToString();
  }
}

bool DaNode::OnTimeout() {
  if (mode_ == Mode::kNormal) return false;
  if (phase_ == Phase::kRecoverScan) {
    // Quiescent: every reachable processor has answered the recovery scan.
    // Installing needs a write quorum (self included).
    if (static_cast<int>(replies_.size()) + 1 < config_.write_quorum) {
      phase_ = Phase::kIdle;
      return false;
    }
    int64_t best_version = db_->has_copy() ? db_->version() : -1;
    ProcessorId best_holder = db_->has_copy() ? id_ : -1;
    for (const VersionReply& reply : replies_) {
      if (reply.version > best_version) {
        best_version = reply.version;
        best_holder = reply.from;
      }
    }
    if (best_holder < 0) {
      phase_ = Phase::kIdle;
      return false;  // every surviving copy lost: unavailable
    }
    if (best_holder == id_) {
      LocalDatabase::Record record = db_->Get();
      FinishRecovery(record.version, record.value, /*have_locally=*/true);
      return true;
    }
    phase_ = Phase::kRecoverFetch;
    if (!network_->Send(Message{MessageType::kReadRequest, id_, best_holder,
                                /*version=*/-1, 0, /*origin=*/id_})) {
      phase_ = Phase::kIdle;
      return false;
    }
    return true;
  }
  return QuorumNode::OnTimeout();
}

void DaNode::OnRecover() {
  // In normal mode the local copy cannot be trusted (invalidations may have
  // been missed while down); in quorum mode version comparisons make it
  // safe to keep (the simulator synchronizes the mode before this hook).
  if (mode_ == Mode::kNormal) db_->Invalidate();
  join_list_.Clear();
  // The floating-member bookkeeping cannot be trusted after downtime.
  if (id_ == f_.First()) floating_ = -1;
}

}  // namespace objalloc::sim
