#include "objalloc/sim/network.h"

#include "objalloc/util/logging.h"

namespace objalloc::sim {

Network::Network(int num_processors, SimMetrics* metrics,
                 VirtualClocks* clocks)
    : num_processors_(num_processors),
      metrics_(metrics),
      clocks_(clocks),
      crashed_(static_cast<size_t>(num_processors), false) {
  OBJALLOC_CHECK_GT(num_processors, 0);
}

void Network::SetDeliveryHandler(std::function<void(const Message&)> handler) {
  handler_ = std::move(handler);
}

void Network::SetCrashed(ProcessorId p, bool crashed) {
  OBJALLOC_CHECK_GE(p, 0);
  OBJALLOC_CHECK_LT(p, num_processors_);
  crashed_[static_cast<size_t>(p)] = crashed;
}

bool Network::IsCrashed(ProcessorId p) const {
  OBJALLOC_CHECK_GE(p, 0);
  OBJALLOC_CHECK_LT(p, num_processors_);
  return crashed_[static_cast<size_t>(p)];
}

int Network::AliveCount() const {
  int alive = 0;
  for (bool c : crashed_) alive += c ? 0 : 1;
  return alive;
}

bool Network::Send(Message msg) {
  OBJALLOC_CHECK_NE(msg.src, msg.dst) << "self-messages are local operations";
  OBJALLOC_CHECK_GE(msg.dst, 0);
  OBJALLOC_CHECK_LT(msg.dst, num_processors_);
  OBJALLOC_CHECK(!IsCrashed(msg.src)) << "crashed sender " << msg.src;
  if (IsDataMessage(msg.type)) {
    ++metrics_->data_messages;
  } else {
    ++metrics_->control_messages;
  }
  if (clocks_ != nullptr) msg.time = clocks_->Of(msg.src);
  const bool delivered = !IsCrashed(msg.dst);
  if (tracing_) {
    if (trace_.size() >= trace_capacity_) {
      trace_.erase(trace_.begin());
    }
    trace_.push_back(TraceEntry{msg, delivered});
  }
  if (!delivered) {
    ++metrics_->dropped_messages;
    return false;
  }
  queue_.push_back(msg);
  return true;
}

void Network::EnableTrace(size_t capacity) {
  tracing_ = true;
  trace_capacity_ = capacity == 0 ? 1 : capacity;
  trace_.reserve(trace_capacity_);
}

void Network::DrainAll() {
  OBJALLOC_CHECK(handler_ != nullptr) << "no delivery handler installed";
  while (!queue_.empty()) {
    Message msg = queue_.front();
    queue_.pop_front();
    // The destination may have crashed after the message was queued.
    if (IsCrashed(msg.dst)) {
      ++metrics_->dropped_messages;
      continue;
    }
    if (clocks_ != nullptr) {
      clocks_->ObserveArrival(
          msg.dst, msg.time + clocks_->model().ForMessage(msg.type));
    }
    handler_(msg);
  }
}

}  // namespace objalloc::sim
