// Point-to-point network with FIFO delivery, per-type cost accounting and
// crash-aware drops. The paper assumes a homogeneous point-to-point network
// (no broadcast primitive): every message between two distinct processors is
// counted individually.

#ifndef OBJALLOC_SIM_NETWORK_H_
#define OBJALLOC_SIM_NETWORK_H_

#include <deque>
#include <functional>
#include <vector>

#include "objalloc/sim/latency.h"
#include "objalloc/sim/message.h"
#include "objalloc/sim/metrics.h"

namespace objalloc::sim {

class Network {
 public:
  // `clocks` may be null (no latency accounting).
  Network(int num_processors, SimMetrics* metrics, VirtualClocks* clocks);

  // Routes delivered messages to the destination node.
  void SetDeliveryHandler(std::function<void(const Message&)> handler);

  void SetCrashed(ProcessorId p, bool crashed);
  bool IsCrashed(ProcessorId p) const;
  int AliveCount() const;

  // Enqueues `msg` and charges its cost (the sender pays for the
  // transmission whether or not the destination is up — a wireless uplink
  // message is billed on send). Returns false when the destination is
  // crashed: the message is dropped and the *sender observes the failure*
  // (models a delivery timeout without simulating clocks).
  bool Send(Message msg);

  // Delivers queued messages in FIFO order until quiescent. Handlers may
  // send further messages; those are delivered in the same drain.
  void DrainAll();

  bool HasPending() const { return !queue_.empty(); }

  // --- Message tracing (tests / debugging) ------------------------------
  struct TraceEntry {
    Message message;
    bool delivered = false;  // false: destination was down
  };
  // Starts recording every Send (bounded; older entries are dropped).
  void EnableTrace(size_t capacity = 1024);
  void ClearTrace() { trace_.clear(); }
  const std::vector<TraceEntry>& trace() const { return trace_; }

 private:
  int num_processors_;
  SimMetrics* metrics_;
  VirtualClocks* clocks_;
  std::function<void(const Message&)> handler_;
  std::vector<bool> crashed_;
  std::deque<Message> queue_;
  bool tracing_ = false;
  size_t trace_capacity_ = 0;
  std::vector<TraceEntry> trace_;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_NETWORK_H_
