#include "objalloc/sim/local_database.h"

#include "objalloc/util/logging.h"

namespace objalloc::sim {

void LocalDatabase::ChargeIo() {
  ++metrics_->io_ops;
  if (clocks_ != nullptr) clocks_->Advance(owner_, clocks_->model().io);
}

void LocalDatabase::PersistThrough() {
  if (durable_ == nullptr) return;
  util::Status status =
      durable_->Persist(record_.version, record_.value, valid_);
  OBJALLOC_CHECK(status.ok()) << "durable write failed: "
                              << status.ToString();
}

void LocalDatabase::Put(int64_t version, uint64_t value) {
  ChargeIo();
  before_image_ = record_;
  before_image_valid_ = valid_;
  record_ = Record{version, value};
  valid_ = true;
  PersistThrough();
}

LocalDatabase::Record LocalDatabase::Get() {
  OBJALLOC_CHECK(valid_) << "Get on an invalid local copy";
  ChargeIo();
  return record_;
}

void LocalDatabase::Invalidate() {
  valid_ = false;
  PersistThrough();
}

void LocalDatabase::RevertAbortedWrite(int64_t version) {
  if (!valid_ || record_.version != version) return;
  ChargeIo();
  record_ = before_image_;
  valid_ = before_image_valid_;
  PersistThrough();
}

void LocalDatabase::SeedInitial(int64_t version, uint64_t value) {
  record_ = Record{version, value};
  valid_ = true;
  PersistThrough();
}

void LocalDatabase::AttachDurable(DurableObjectStore* store) {
  durable_ = store;
  PersistThrough();
}

void LocalDatabase::LoseVolatileState() {
  record_ = Record{};
  valid_ = false;
  before_image_ = Record{};
  before_image_valid_ = false;
}

util::Status LocalDatabase::RecoverFromDurable() {
  if (durable_ == nullptr) {
    return util::Status::FailedPrecondition("no durable store attached");
  }
  auto snapshot = durable_->Load();
  if (!snapshot.ok()) return snapshot.status();
  if (snapshot->present) {
    record_ = Record{snapshot->version, snapshot->value};
    valid_ = snapshot->valid;
  } else {
    valid_ = false;
  }
  return util::Status::Ok();
}

}  // namespace objalloc::sim
