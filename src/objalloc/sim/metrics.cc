#include "objalloc/sim/metrics.h"

#include <sstream>

namespace objalloc::sim {

std::string SimMetrics::ToString() const {
  std::ostringstream os;
  os << "{ctrl=" << control_messages << ", data=" << data_messages
     << ", io=" << io_ops << ", dropped=" << dropped_messages
     << ", failovers=" << failovers
     << ", unavailable=" << unavailable_requests
     << ", stale=" << stale_reads << "}";
  return os.str();
}

}  // namespace objalloc::sim
