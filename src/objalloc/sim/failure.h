// Failure plans: crash/recover events injected between requests of a
// schedule run.
//
// A plan is the offline description of a fault history. The same plan can
// drive the discrete-event simulator (sim::Simulator / MultiObjectSim) and —
// through ToFaultSchedule — the high-throughput serving engine's
// FaultInjector, which is what makes count-for-count crosschecks between the
// two possible (tests/fault_injection_test.cc).

#ifndef OBJALLOC_SIM_FAILURE_H_
#define OBJALLOC_SIM_FAILURE_H_

#include <cstddef>
#include <vector>

#include "objalloc/core/fault_injector.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::sim {

struct FailureEvent {
  // The event fires immediately before the request with this index is
  // submitted; an index >= schedule length fires after the last request.
  size_t before_request = 0;
  util::ProcessorId processor = 0;
  bool crash = true;  // false = recover

  static FailureEvent Crash(size_t before_request, util::ProcessorId p) {
    return FailureEvent{before_request, p, true};
  }
  static FailureEvent Recover(size_t before_request, util::ProcessorId p) {
    return FailureEvent{before_request, p, false};
  }
};

struct FailurePlan {
  std::vector<FailureEvent> events;  // must be sorted by before_request

  bool empty() const { return events.empty(); }

  // Validates the plan against a world that starts all-live:
  //   * events sorted by before_request, processors in range;
  //   * no duplicate (before_request, processor) pair — a processor changes
  //     state at most once per request boundary;
  //   * no crash of an already-crashed processor and no recover of a live
  //     one (state is tracked across the whole plan).
  bool IsValid(int num_processors) const;

  // Rewrites the plan into valid form: stable-sorts by before_request, then
  // drops no-op transitions (crash of crashed, recover of live) and any
  // later event naming an (index, processor) pair already used. The result
  // passes IsValid and has the same effect on an all-live world.
  void Normalize();
};

// Field-for-field mapping of a failure plan onto the serving engine's
// scripted fault schedule (before_request becomes the global admission-
// stream index). The plan should be valid; the injector treats residual
// no-op transitions as no-ops either way.
core::FaultSchedule ToFaultSchedule(const FailurePlan& plan);

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_FAILURE_H_
