// Failure plans: crash/recover events injected between requests of a
// schedule run.

#ifndef OBJALLOC_SIM_FAILURE_H_
#define OBJALLOC_SIM_FAILURE_H_

#include <cstddef>
#include <vector>

#include "objalloc/util/processor_set.h"

namespace objalloc::sim {

struct FailureEvent {
  // The event fires immediately before the request with this index is
  // submitted; an index >= schedule length fires after the last request.
  size_t before_request = 0;
  util::ProcessorId processor = 0;
  bool crash = true;  // false = recover

  static FailureEvent Crash(size_t before_request, util::ProcessorId p) {
    return FailureEvent{before_request, p, true};
  }
  static FailureEvent Recover(size_t before_request, util::ProcessorId p) {
    return FailureEvent{before_request, p, false};
  }
};

struct FailurePlan {
  std::vector<FailureEvent> events;  // must be sorted by before_request

  bool empty() const { return events.empty(); }
  // Validates ordering and processor ranges.
  bool IsValid(int num_processors) const;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_FAILURE_H_
