#include "objalloc/sim/quorum_protocol.h"

#include <algorithm>

#include "objalloc/util/logging.h"

namespace objalloc::sim {

QuorumConfig QuorumConfig::MajorityFor(int num_processors) {
  QuorumConfig config;
  config.read_quorum = num_processors / 2 + 1;
  config.write_quorum = num_processors / 2 + 1;
  return config;
}

QuorumNode::QuorumNode(ProcessorId id, int num_processors, Network* network,
                       LocalDatabase* db, SimMetrics* metrics,
                       QuorumConfig config)
    : Node(id, num_processors, network, db, metrics), config_(config) {
  if (config_.read_quorum <= 0) {
    config_.read_quorum = num_processors / 2 + 1;
  }
  if (config_.write_quorum <= 0) {
    config_.write_quorum = num_processors / 2 + 1;
  }
  OBJALLOC_CHECK_GT(config_.read_quorum + config_.write_quorum,
                    num_processors)
      << "read and write quorums must intersect";
  OBJALLOC_CHECK_LE(config_.read_quorum, num_processors);
  OBJALLOC_CHECK_LE(config_.write_quorum, num_processors);
}

void QuorumNode::BroadcastVersionQuery() {
  replies_.clear();
  for (ProcessorId p = 0; p < num_processors_; ++p) {
    if (p == id_) continue;
    network_->Send(Message{MessageType::kVersionQuery, id_, p,
                           /*version=*/-1, 0, /*origin=*/id_});
  }
}

void QuorumNode::DoStartRead() {
  phase_ = Phase::kReadScan;
  BroadcastVersionQuery();
}

void QuorumNode::DoStartWrite() {
  phase_ = Phase::kWriteScan;
  BroadcastVersionQuery();
}

bool QuorumNode::FinishReadScan() {
  // Self participates in the quorum for free (its catalog is local).
  if (static_cast<int>(replies_.size()) + 1 < config_.read_quorum) {
    phase_ = Phase::kIdle;
    return false;
  }
  int64_t best_version = db_->has_copy() ? db_->version() : -1;
  ProcessorId best_holder = db_->has_copy() ? id_ : -1;
  for (const VersionReply& reply : replies_) {
    if (reply.version > best_version) {
      best_version = reply.version;
      best_holder = reply.from;
    }
  }
  if (best_holder < 0) {
    // No copy anywhere in the quorum: the object is lost to this quorum.
    phase_ = Phase::kIdle;
    return false;
  }
  if (best_holder == id_) {
    LocalDatabase::Record record = db_->Get();
    phase_ = Phase::kIdle;
    CompleteRead(record.version, record.value);
    return true;
  }
  phase_ = Phase::kReadFetch;
  network_->Send(Message{MessageType::kReadRequest, id_, best_holder,
                         /*version=*/-1, 0, /*origin=*/id_});
  return true;
}

bool QuorumNode::FinishWriteScan() {
  // The responders are the processors known reachable; commit requires a
  // write quorum including self.
  if (static_cast<int>(replies_.size()) + 1 < config_.write_quorum) {
    phase_ = Phase::kIdle;
    return false;
  }
  int pushed = 0;
  for (const VersionReply& reply : replies_) {
    if (pushed >= config_.write_quorum - 1) break;
    network_->Send(Message{MessageType::kObjectPropagate, id_, reply.from,
                           pending_version_, pending_value_,
                           /*origin=*/id_});
    ++pushed;
  }
  db_->Put(pending_version_, pending_value_);
  phase_ = Phase::kIdle;
  CompleteWrite();
  return true;
}

bool QuorumNode::HandleQuorumMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kVersionQuery:
      network_->Send(Message{MessageType::kVersionReply, id_, msg.src,
                             db_->has_copy() ? db_->version() : -1, 0,
                             /*origin=*/id_});
      return true;
    case MessageType::kVersionReply:
      if (phase_ == Phase::kReadScan || phase_ == Phase::kWriteScan ||
          phase_ == Phase::kRecoverScan) {
        replies_.push_back(VersionReply{msg.src, msg.version});
      }
      return true;
    case MessageType::kReadRequest: {
      OBJALLOC_CHECK(db_->has_copy())
          << "quorum fetch addressed a node without a copy";
      LocalDatabase::Record record = db_->Get();
      network_->Send(Message{MessageType::kObjectReply, id_, msg.src,
                             record.version, record.value, /*origin=*/id_});
      return true;
    }
    case MessageType::kObjectReply:
      if (phase_ == Phase::kReadFetch) {
        // Version-maximum read; the fetched copy is not saved (the quorum
        // footnote in §3.1: copies are discarded except the newest).
        phase_ = Phase::kIdle;
        CompleteRead(msg.version, msg.value);
        return true;
      }
      return false;
    case MessageType::kObjectPropagate:
      db_->Put(msg.version, msg.value);
      return true;
    default:
      return false;
  }
}

void QuorumNode::HandleMessage(const Message& msg) {
  OBJALLOC_CHECK(HandleQuorumMessage(msg))
      << "quorum node got unexpected " << msg.ToString();
}

bool QuorumNode::OnTimeout() {
  // Quiescence after a scan means every reachable processor has replied.
  switch (phase_) {
    case Phase::kReadScan:
      return FinishReadScan();
    case Phase::kWriteScan:
      return FinishWriteScan();
    case Phase::kReadFetch:
    case Phase::kIdle:
    case Phase::kRecoverScan:   // DA-only phases, handled in DaNode
    case Phase::kRecoverFetch:
      return false;  // fetch target crashed mid-operation, or nothing to do
  }
  return false;
}

}  // namespace objalloc::sim
