// A processor's local database: the single replicated object on stable
// storage. Every Get/Put is one I/O operation of the cost model;
// invalidation only flips a catalog bit (the paper's write cost charges no
// I/O for invalidated processors).

#ifndef OBJALLOC_SIM_LOCAL_DATABASE_H_
#define OBJALLOC_SIM_LOCAL_DATABASE_H_

#include <cstdint>
#include <optional>

#include "objalloc/sim/durable_store.h"
#include "objalloc/sim/latency.h"
#include "objalloc/sim/metrics.h"

namespace objalloc::sim {

class LocalDatabase {
 public:
  // `clocks` may be null (no latency accounting); `owner` is the processor
  // whose clock each I/O occupies.
  LocalDatabase(SimMetrics* metrics, VirtualClocks* clocks,
                ProcessorId owner)
      : metrics_(metrics), clocks_(clocks), owner_(owner) {}

  struct Record {
    int64_t version = -1;
    uint64_t value = 0;
  };

  // Writes the object to stable storage (one I/O) and marks the copy valid.
  void Put(int64_t version, uint64_t value);

  // Installs the pre-existing initial copy (simulation setup; no I/O is
  // charged, matching the analytic model's treatment of the initial
  // allocation scheme).
  void SeedInitial(int64_t version, uint64_t value);

  // Reads the object from stable storage (one I/O). The copy must be valid.
  Record Get();

  // Drops the catalog entry; the stale bytes stay on disk at no I/O cost.
  void Invalidate();

  // Rolls back an aborted write: if the current record carries `version`,
  // restores the before-image kept by the last Put (one I/O, as for any
  // undo-log application). No-op when the versions do not match.
  void RevertAbortedWrite(int64_t version);

  // Catalog checks (in-memory, free).
  bool has_copy() const { return valid_; }
  int64_t version() const { return record_.version; }

  // --- Durability (optional) -------------------------------------------
  // When a DurableObjectStore is attached, every Put / Invalidate / seed is
  // written through to disk; crash/recovery can then be modeled honestly:
  // the volatile image is lost but the store survives.
  void AttachDurable(DurableObjectStore* store);

  // Crash: the in-memory image is gone (the on-disk record is not).
  void LoseVolatileState();

  // Recovery: reload the catalog and record from the durable store. It is
  // the *protocol's* job to decide whether the reloaded copy may be
  // trusted (quorum mode: yes, versions are compared; DA normal mode: no,
  // invalidations may have been missed).
  util::Status RecoverFromDurable();

 private:
  void ChargeIo();
  void PersistThrough();

  SimMetrics* metrics_;
  VirtualClocks* clocks_;
  ProcessorId owner_;
  DurableObjectStore* durable_ = nullptr;
  Record record_;
  bool valid_ = false;
  // Before-image for aborted-write rollback (undo log, one entry deep —
  // requests are serialized, so one in-flight write at a time).
  Record before_image_;
  bool before_image_valid_ = false;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_LOCAL_DATABASE_H_
